#!/usr/bin/env python3
"""Perf + determinism gate for bench_fleet.

Compares a freshly produced BENCH_fleet.json against the committed baseline
(bench/baselines/BENCH_fleet_baseline.json). Two things are gated:

determinism (hard, machine-independent)
    bench_fleet compares every per-run metrics CRC and checkpoint CRC
    between the 1-worker and the 8-worker sweep. A single diverging byte
    sets "deterministic": false and this gate FAILs regardless of timing —
    worker count must be a throughput knob, never a semantics knob.

speedup (normalized by the core count)
    The raw serial/wide wall-clock ratio depends on how many cores the
    runner actually has, so the requirement scales with it:

        usable   = min(workers, cores)                # cores the sweep can use
        required = max(floor(cores),
                       usable * baseline_efficiency * (1 - tolerance))

    where baseline_efficiency = baseline speedup / baseline usable cores
    (per-core efficiency observed when the baseline was recorded) and
    floor(cores) is a hard floor: 4.0 once the runner has >= 8 cores (the
    acceptance bar "at least 4x at 8 workers"), 1.0 on 2..7 cores (parallel
    must not lose to serial when real parallelism exists), and 0.25 on a
    single core (8-way oversubscription of one core legitimately *slows
    down* — working sets evict each other — so only completion sanity is
    gated there; determinism is the real check).

The scenario list must match the baseline exactly — a sweep that silently
dropped a fabric must not pass on the surviving timing.

Usage: check_bench_fleet.py CURRENT_JSON [BASELINE_JSON]
Exit status: 0 on pass, 1 on any violation or malformed input.
"""

import json
import sys

BENCH_SCHEMAS = ("sheriff.bench_fleet.v1",)
BASELINE_SCHEMAS = ("sheriff.bench_fleet.baseline.v1",)


def fail(msg: str) -> None:
    print(f"check_bench_fleet: FAIL: {msg}")
    sys.exit(1)


def hard_floor(cores: int) -> float:
    if cores >= 8:
        return 4.0
    if cores >= 2:
        return 1.0
    return 0.25


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_bench_fleet.py CURRENT_JSON [BASELINE_JSON]")
    current_path = sys.argv[1]
    baseline_path = (
        sys.argv[2] if len(sys.argv) > 2 else "bench/baselines/BENCH_fleet_baseline.json"
    )

    with open(current_path, encoding="utf-8") as f:
        current = json.load(f)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    if current.get("schema") not in BENCH_SCHEMAS:
        fail(f"unexpected bench schema: {current.get('schema')!r}")
    if baseline.get("schema") not in BASELINE_SCHEMAS:
        fail(f"unexpected baseline schema: {baseline.get('schema')!r}")

    # Determinism first: timing is meaningless if the outputs diverged.
    if current.get("deterministic") is not True:
        fail(
            "per-run outputs diverged between worker counts "
            '("deterministic" is not true) — this is a correctness bug, '
            "not a perf regression"
        )
    print("  determinism: per-run CRCs identical across worker counts ok")

    missing = sorted(set(baseline["scenarios"]) - set(current.get("scenarios", [])))
    if missing:
        fail(
            f"scenarios missing from {current_path}: {', '.join(missing)} "
            f"(baseline gates {sorted(baseline['scenarios'])})"
        )
    if int(current.get("runs", 0)) < int(baseline.get("min_runs", 1)):
        fail(
            f"sweep ran only {current.get('runs')} runs; baseline requires "
            f">= {baseline.get('min_runs')}"
        )

    workers = int(current.get("workers", 8))
    cores = max(1, int(current.get("cores", 1)))
    usable = min(workers, cores)
    tolerance = float(baseline.get("tolerance", 0.25))

    base_speedup = float(baseline["speedup"])
    base_usable = max(1, min(int(baseline["workers"]), int(baseline["cores"])))
    efficiency = base_speedup / base_usable

    got = float(current["speedup"])
    required = max(hard_floor(cores), usable * efficiency * (1.0 - tolerance))
    verdict = "ok" if got >= required else "REGRESSION"
    print(
        f"  speedup: {got:.2f}x on {cores} core(s) "
        f"(baseline {base_speedup:.2f}x on {baseline['cores']} core(s), "
        f"per-core efficiency {efficiency:.2f}, required >= {required:.2f}x) {verdict}"
    )
    if got < required:
        fail(f"speedup {got:.2f}x below required {required:.2f}x on {cores} core(s)")
    print("check_bench_fleet: PASS")


if __name__ == "__main__":
    main()
