#!/usr/bin/env python3
"""Perf-regression gate for bench_scale.

Compares a freshly produced BENCH_scale.json against the committed baseline
(bench/baselines/BENCH_scale_baseline.json). Only the naive-vs-optimized
*ratios* are compared — both runs execute on the same machine, so the ratio
cancels out hardware speed and transfers across CI runners, while absolute
rounds/sec would not.

Four ratios are gated per scenario:

  speedup         end-to-end rounds/sec, optimized vs naive
  manage_ratio    manage-phase wall time, naive vs optimized (schema v2)
  net_ratio       fair-share + routing wall time, naive vs optimized (schema v4)
  decision_ratio  migration decision kernel wall time, naive vs optimized (schema v5)

A scenario passes when

    current >= max(min_<ratio>, baseline_<ratio> * (1 - tolerance))

where the per-scenario `min_*` values are hard floors (the optimization's
acceptance bars) and `tolerance` absorbs runner noise. Baselines in the old
baseline.v1 schema (no manage fields) and bench outputs in the old v1
schema (no manage_ratio) are accepted — the manage gate is simply skipped,
so the script stays usable against historical artifacts. Schema v3 adds
per-shard manage timings (phases_ns.manage_shard_propose / manage_commit);
they are informational here, the gated ratios are unchanged. Schema v4 adds
the network hot path: per-scenario `net_ratio` (naive vs optimized
fair_share + routing wall time, gated when the baseline records a
`min_net_ratio`) plus informational fair_share build/fill sub-phase
timings and component/arena gauges. Schema v5 adds the migration decision
kernel: per-scenario `decision_ratio` (naive vs optimized manage_decision
wall time — the Eq. (1) cost evaluations inside the manage phase, gated
when the baseline records a `min_decision_ratio`) plus an informational
phases_ns.manage_decision entry.

A scenario named in the baseline but absent from the bench output is a hard
FAIL before any ratio check, with the set difference spelled out — a bench
run that silently drops a scenario must not pass on the surviving ratios.

Usage: check_bench_scale.py CURRENT_JSON [BASELINE_JSON]
Exit status: 0 on pass, 1 on any violation or malformed input.
"""

import json
import sys

BENCH_SCHEMAS = (
    "sheriff.bench_scale.v1",
    "sheriff.bench_scale.v2",
    "sheriff.bench_scale.v3",
    "sheriff.bench_scale.v4",
    "sheriff.bench_scale.v5",
)
BASELINE_SCHEMAS = (
    "sheriff.bench_scale.baseline.v1",
    "sheriff.bench_scale.baseline.v2",
    "sheriff.bench_scale.baseline.v3",
    "sheriff.bench_scale.baseline.v4",
    "sheriff.bench_scale.baseline.v5",
)


def fail(msg: str) -> None:
    print(f"check_bench_scale: FAIL: {msg}")
    sys.exit(1)


def check_ratio(name, label, got, ref_value, ref_floor, tolerance, violations) -> None:
    required = max(float(ref_floor), float(ref_value) * (1.0 - tolerance))
    verdict = "ok" if got >= required else "REGRESSION"
    print(
        f"  {name}: {label} {got:.2f}x "
        f"(baseline {float(ref_value):.2f}x, required >= {required:.2f}x) {verdict}"
    )
    if got < required:
        violations.append(f"{name}: {label} {got:.2f}x below required {required:.2f}x")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_bench_scale.py CURRENT_JSON [BASELINE_JSON]")
    current_path = sys.argv[1]
    baseline_path = (
        sys.argv[2] if len(sys.argv) > 2 else "bench/baselines/BENCH_scale_baseline.json"
    )

    with open(current_path, encoding="utf-8") as f:
        current = json.load(f)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    if current.get("schema") not in BENCH_SCHEMAS:
        fail(f"unexpected bench schema: {current.get('schema')!r}")
    if baseline.get("schema") not in BASELINE_SCHEMAS:
        fail(f"unexpected baseline schema: {baseline.get('schema')!r}")

    tolerance = float(baseline.get("tolerance", 0.5))
    measured = {s["name"]: s for s in current.get("scenarios", [])}

    # Every gated scenario must be present: a bench run that silently drops
    # one (crashed leg, filtered build, stale binary) must not pass just
    # because the surviving ratios look fine.
    missing = sorted(set(baseline["scenarios"]) - set(measured))
    if missing:
        fail(
            f"scenarios missing from {current_path}: {', '.join(missing)} "
            f"(baseline gates {sorted(baseline['scenarios'])}, "
            f"bench produced {sorted(measured)})"
        )

    violations = []
    for name, ref in baseline["scenarios"].items():
        got = measured[name]
        check_ratio(
            name, "speedup", float(got["speedup"]), ref["speedup"], ref["min_speedup"],
            tolerance, violations,
        )
        for label, min_key, schema_hint in (
            ("manage_ratio", "min_manage_ratio", "v2"),
            ("net_ratio", "min_net_ratio", "v4"),
            ("decision_ratio", "min_decision_ratio", "v5"),
        ):
            if min_key not in ref:
                continue  # older baseline: this gate not recorded
            if label not in got:
                violations.append(
                    f"{name}: baseline gates {label} but {current_path} has none "
                    f"(bench output predates schema {schema_hint}?)"
                )
                continue
            check_ratio(
                name, label, float(got[label]), ref[label], ref[min_key],
                tolerance, violations,
            )

    for name in measured:
        if name not in baseline["scenarios"]:
            print(f"  {name}: speedup {measured[name]['speedup']:.2f}x (no baseline, informational)")

    if violations:
        fail("; ".join(violations))
    print("check_bench_scale: PASS")


if __name__ == "__main__":
    main()
