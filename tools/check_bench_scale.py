#!/usr/bin/env python3
"""Perf-regression gate for bench_scale.

Compares a freshly produced BENCH_scale.json against the committed baseline
(bench/baselines/BENCH_scale_baseline.json). Only the naive-vs-optimized
*speedup ratios* are compared — both runs execute on the same machine, so
the ratio cancels out hardware speed and transfers across CI runners, while
absolute rounds/sec would not.

A scenario passes when

    current_speedup >= max(min_speedup, baseline_speedup * (1 - tolerance))

where `min_speedup` is the per-scenario hard floor (3x on the k=16
Fat-Tree, per the optimization's acceptance bar) and `tolerance` absorbs
runner noise.

Usage: check_bench_scale.py CURRENT_JSON [BASELINE_JSON]
Exit status: 0 on pass, 1 on any violation or malformed input.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench_scale: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_bench_scale.py CURRENT_JSON [BASELINE_JSON]")
    current_path = sys.argv[1]
    baseline_path = (
        sys.argv[2] if len(sys.argv) > 2 else "bench/baselines/BENCH_scale_baseline.json"
    )

    with open(current_path, encoding="utf-8") as f:
        current = json.load(f)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    if current.get("schema") != "sheriff.bench_scale.v1":
        fail(f"unexpected bench schema: {current.get('schema')!r}")
    if baseline.get("schema") != "sheriff.bench_scale.baseline.v1":
        fail(f"unexpected baseline schema: {baseline.get('schema')!r}")

    tolerance = float(baseline.get("tolerance", 0.5))
    measured = {s["name"]: s for s in current.get("scenarios", [])}

    violations = []
    for name, ref in baseline["scenarios"].items():
        if name not in measured:
            violations.append(f"scenario {name!r} missing from {current_path}")
            continue
        got = float(measured[name]["speedup"])
        required = max(float(ref["min_speedup"]), float(ref["speedup"]) * (1.0 - tolerance))
        verdict = "ok" if got >= required else "REGRESSION"
        print(
            f"  {name}: speedup {got:.2f}x "
            f"(baseline {ref['speedup']:.2f}x, required >= {required:.2f}x) {verdict}"
        )
        if got < required:
            violations.append(
                f"{name}: speedup {got:.2f}x below required {required:.2f}x"
            )

    for name in measured:
        if name not in baseline["scenarios"]:
            print(f"  {name}: speedup {measured[name]['speedup']:.2f}x (no baseline, informational)")

    if violations:
        fail("; ".join(violations))
    print("check_bench_scale: PASS")


if __name__ == "__main__":
    main()
