// failure_drill: a guided tour of the fault-injection subsystem. One
// Fat-Tree run suffers, in order: random link flaps, a host failure, a
// shim crash (management process only), and a full ToR outage — all on a
// lossy control plane that drops 20 % of the migration protocol's
// REQUEST/ACK messages. Every fault is scheduled in a deterministic
// FaultPlan, so re-running the drill reproduces it byte for byte.
//
//   $ ./failure_drill [rounds] [metrics.csv]
//
// Checkpoint flags (see DESIGN.md §10): `--checkpoint-every N` drops a
// snapshot every N rounds, `--resume <path>` picks the drill back up from
// one — the resumed run finishes byte-identical to an uninterrupted one.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/checkpoint_cli.hpp"
#include "topology/fat_tree.hpp"

int main(int argc, char** argv) {
  using namespace sheriff;
  const snapshot::CheckpointCli checkpoints = snapshot::parse_checkpoint_cli(argc, argv);
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 24;

  topo::FatTreeOptions topo_options;
  topo_options.pods = 4;
  topo_options.hosts_per_rack = 3;
  const auto topology = topo::build_fat_tree(topo_options);

  wl::DeploymentOptions deploy_options;
  deploy_options.seed = 7;
  deploy_options.vms_per_host = 2.5;

  // The whole drill is one deterministic schedule: flaps are drawn from
  // the plan's seeded Pcg32, everything else is placed by hand.
  fault::FaultOptions fault_options;
  fault_options.seed = 7;
  fault_options.message_drop_probability = 0.2;
  auto plan = fault::FaultPlan::random_link_flaps(topology, fault_options, 3, 2, 8, 2);
  plan.fail_host(topology.rack(1).hosts[0], 6);      // server dies for good
  plan.fail_shim(2, 9, 15);                          // manager-only crash
  const auto outage = fault::FaultPlan::tor_outage(topology, 0, 12, 18);
  for (const auto& e : outage.events()) plan.add(e);
  plan.set_options(fault_options);

  std::cout << "failure drill on " << topology.name() << ": " << plan.size()
            << " scheduled fault events, 20% control-plane message loss\n\nschedule:\n";
  for (const auto& e : plan.events()) {
    std::cout << "  round " << e.round << ": " << fault::to_string(e.kind) << " #" << e.target
              << "\n";
  }
  std::cout << "\n";

  core::EngineConfig config;
  config.fault_plan = &plan;
  core::DistributedEngine engine(topology, deploy_options, config);

  if (!checkpoints.resume_path.empty()) {
    core::Checkpoint::load(engine, checkpoints.resume_path);
    std::cout << "resumed from " << checkpoints.resume_path << " at round "
              << engine.rounds_run() << "\n\n";
  }

  common::Table table({"round", "dead links", "dead switches", "orphans", "recovered",
                       "unroutable", "drops", "retries", "migrations", "stddev %"});
  std::vector<core::RoundMetrics> all_metrics;
  while (engine.rounds_run() < static_cast<std::size_t>(rounds)) {
    const auto m = engine.run_round();
    if (checkpoints.checkpoint_every != 0 &&
        engine.rounds_run() % checkpoints.checkpoint_every == 0 &&
        engine.rounds_run() < static_cast<std::size_t>(rounds)) {
      const std::string path = snapshot::checkpoint_path(checkpoints, engine.rounds_run());
      core::Checkpoint::save(engine, path);
      std::cout << "checkpoint saved to " << path << "\n";
    }
    all_metrics.push_back(m);
    table.begin_row()
        .add(m.round)
        .add(m.failed_links)
        .add(m.failed_switches)
        .add(m.orphaned_vms)
        .add(m.recovery_migrations)
        .add(m.unroutable_flows)
        .add(m.protocol_drops)
        .add(m.protocol_retries)
        .add(m.migrations)
        .add(m.workload_stddev_after, 2);
  }
  table.print(std::cout);

  const auto summary = core::summarize(all_metrics);
  std::cout << "\n" << summary.rounds_with_failures << " of " << summary.rounds
            << " rounds ran degraded; peak " << summary.peak_orphaned_vms
            << " orphaned VMs, " << summary.total_recovery_migrations
            << " recovery migrations, " << summary.total_protocol_drops
            << " protocol messages dropped (" << summary.total_protocol_retries
            << " retries).\n";
  std::cout << "rack 0 is managed by rack " << engine.managing_rack(0)
            << " at the end of the run (its own shim once the ToR rebooted).\n";

  if (argc > 2) {
    std::ofstream csv(argv[2]);
    core::write_metrics_csv(csv, all_metrics);
    std::cout << "wrote per-round metrics to " << argv[2] << "\n";
  }
  return 0;
}
