// fleet_sweep: the fleet runner as a command-line tool. Sweeps one
// scenario family across N seeds on a bounded worker pool, streams JSONL
// results, and — given a manifest — survives being killed halfway:
//
//   fleet_sweep --topo fat_tree --seeds 16 --rounds 20 --workers 8 \
//               --manifest sweep.manifest --jsonl sweep.jsonl
//   ... ^C anywhere ...
//   fleet_sweep ... same flags ... --resume     # finishes the missing runs
//
// Flags (all optional):
//   --topo fat_tree|bcube     fabric family                [fat_tree]
//   --mode sheriff|centralized|kmedian                     [sheriff]
//   --seeds N                 seeds 1..N                   [8]
//   --rounds N                rounds per run               [10]
//   --workers N               fleet worker pool size       [4]
//   --policy fleet|two-level  pool-ownership policy        [fleet]
//   --engine-threads N        inner pool size (two-level)  [2]
//   --limit N                 execute at most N runs (0 = all); with
//                             --manifest this is a resumable partial sweep
//   --manifest PATH           crash-resumable sweep manifest
//   --resume                  skip runs already in the manifest
//   --jsonl PATH              write the JSONL result stream here

#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>

#include "fleet/fleet.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"

using namespace sheriff;

int main(int argc, char** argv) {
  std::string topo_name = "fat_tree";
  std::string mode_name = "sheriff";
  std::string policy_name = "fleet";
  std::size_t seeds = 8;
  std::size_t rounds = 10;
  fleet::FleetOptions options;
  options.workers = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--topo") {
      topo_name = value();
    } else if (arg == "--mode") {
      mode_name = value();
    } else if (arg == "--policy") {
      policy_name = value();
    } else if (arg == "--seeds") {
      seeds = std::stoul(value());
    } else if (arg == "--rounds") {
      rounds = std::stoul(value());
    } else if (arg == "--workers") {
      options.workers = std::stoul(value());
    } else if (arg == "--engine-threads") {
      options.engine_threads = std::stoul(value());
    } else if (arg == "--limit") {
      options.max_runs = std::stoul(value());
    } else if (arg == "--manifest") {
      options.manifest_path = value();
    } else if (arg == "--jsonl") {
      options.jsonl_path = value();
    } else if (arg == "--resume") {
      options.resume = true;
    } else {
      std::cerr << "unknown flag: " << arg << " (see the header comment)\n";
      return 2;
    }
  }

  topo::Topology topology = [&] {
    if (topo_name == "bcube") {
      topo::BCubeOptions bc;
      bc.ports = 4;
      bc.levels = 2;
      return topo::build_bcube(bc);
    }
    topo::FatTreeOptions ft;
    ft.pods = 8;
    ft.hosts_per_rack = 4;
    ft.tor_agg_gbps = 1.0;
    return topo::build_fat_tree(ft);
  }();

  fleet::ScenarioSpec spec;
  spec.name = topo_name + "_" + mode_name;
  spec.topology = &topology;
  spec.rounds = rounds;
  spec.deployment.placement = wl::PlacementPolicy::kSkewed;
  if (mode_name == "centralized") {
    spec.config.mode = core::ManagerMode::kCentralized;
  } else if (mode_name == "kmedian") {
    spec.config.mode = core::ManagerMode::kKMedian;
  } else if (mode_name != "sheriff") {
    std::cerr << "unknown --mode: " << mode_name << "\n";
    return 2;
  }
  if (policy_name == "two-level") {
    options.pool_policy = fleet::PoolPolicy::kTwoLevel;
  } else if (policy_name != "fleet") {
    std::cerr << "unknown --policy: " << policy_name << " (fleet|two-level)\n";
    return 2;
  }

  fleet::SweepGrid grid;
  grid.scenarios.push_back(std::move(spec));
  for (std::size_t s = 1; s <= seeds; ++s) grid.seeds.push_back(s);

  std::cout << "sweep: " << grid.run_count() << " runs (" << topo_name << ", "
            << mode_name << ", " << rounds << " rounds) on " << options.workers
            << " worker(s), " << policy_name << " pool policy\n";
  const fleet::FleetReport report = fleet::run_sweep(grid, options);

  std::cout << std::fixed << std::setprecision(2) << "done in " << report.seconds
            << " s: " << report.executed << " executed, " << report.skipped
            << " from manifest, " << report.pending << " pending\n";
  const auto show = [&](const char* label, const std::string& metric) {
    if (report.aggregate.samples(metric).empty()) return;
    std::cout << "  " << label << ": p50 " << report.aggregate.quantile(metric, 0.50)
              << "  p95 " << report.aggregate.quantile(metric, 0.95) << "  p99 "
              << report.aggregate.quantile(metric, 0.99) << "\n";
  };
  std::cout << "cross-run quantiles over " << report.aggregate.runs() << " run(s):\n";
  show("migrations   ", "engine.migrations");
  show("reroutes     ", "engine.reroutes");
  show("host alerts  ", "engine.host_alerts");
  show("link peak    ", "engine.max_link_utilization");
  if (!options.jsonl_path.empty()) std::cout << "jsonl: " << options.jsonl_path << "\n";
  return 0;
}
