// topology_atlas: tour the topology substrate — build Fat-Tree and BCube
// fabrics at several sizes, print their shape tables, sanity-check them,
// show a shim's dominating region, and (optionally) write GraphViz DOT
// files for visualization.
//
//   $ ./topology_atlas [dot_output_dir]

#include <fstream>
#include <iostream>

#include "common/table.hpp"
#include "net/routing.hpp"
#include "topology/bcube.hpp"
#include "topology/dot_export.hpp"
#include "topology/fat_tree.hpp"
#include "topology/three_tier.hpp"

int main(int argc, char** argv) {
  using namespace sheriff;
  const std::string dot_dir = argc > 1 ? argv[1] : "";

  std::cout << "== Fat-Tree family ==\n";
  common::Table ft({"pods", "racks", "hosts", "ToR", "agg", "core", "links",
                    "ECMP paths (cross-pod)", "region racks"});
  for (int k : {4, 8, 16, 24}) {
    topo::FatTreeOptions options;
    options.pods = k;
    options.hosts_per_rack = 2;
    const auto t = topo::build_fat_tree(options);
    const net::Router router(t);
    const auto src = t.rack(0).hosts[0];
    const auto dst = t.rack(t.rack_count() - 1).hosts[0];
    ft.begin_row()
        .add(k)
        .add(t.rack_count())
        .add(t.count_kind(topo::NodeKind::kHost))
        .add(t.count_kind(topo::NodeKind::kTorSwitch))
        .add(t.count_kind(topo::NodeKind::kAggSwitch))
        .add(t.count_kind(topo::NodeKind::kCoreSwitch))
        .add(t.link_count())
        .add(router.shortest_path_count(src, dst))
        .add(t.neighbor_racks(0).size());
  }
  ft.print(std::cout);

  std::cout << "\n== BCube family ==\n";
  common::Table bc({"n", "levels", "racks", "servers", "switches", "links",
                    "server ports", "region racks"});
  for (const auto& [n, k] : {std::pair{4, 1}, std::pair{8, 1}, std::pair{4, 2},
                            std::pair{16, 1}}) {
    topo::BCubeOptions options;
    options.ports = n;
    options.levels = k;
    const auto t = topo::build_bcube(options);
    bc.begin_row()
        .add(n)
        .add(k + 1)
        .add(t.rack_count())
        .add(t.count_kind(topo::NodeKind::kHost))
        .add(t.count_kind(topo::NodeKind::kTorSwitch) +
             t.count_kind(topo::NodeKind::kBCubeSwitch))
        .add(t.link_count())
        .add(t.links_of(t.rack(0).hosts[0]).size())
        .add(t.neighbor_racks(0).size());
  }
  bc.print(std::cout);

  std::cout << "\n== Legacy three-tier family ==\n";
  common::Table tt({"racks", "racks/agg", "hosts", "agg", "core", "links", "region racks"});
  for (const auto& [racks, group] : {std::pair{8, 4}, std::pair{16, 4}, std::pair{32, 8}}) {
    topo::ThreeTierOptions options;
    options.racks = racks;
    options.racks_per_agg = group;
    const auto t = topo::build_three_tier(options);
    tt.begin_row()
        .add(t.rack_count())
        .add(group)
        .add(t.count_kind(topo::NodeKind::kHost))
        .add(t.count_kind(topo::NodeKind::kAggSwitch))
        .add(t.count_kind(topo::NodeKind::kCoreSwitch))
        .add(t.link_count())
        .add(t.neighbor_racks(0).size());
  }
  tt.print(std::cout);

  if (!dot_dir.empty()) {
    topo::FatTreeOptions small_ft;
    small_ft.pods = 4;
    small_ft.hosts_per_rack = 2;
    topo::BCubeOptions small_bc;
    small_bc.ports = 4;
    small_bc.levels = 1;
    const auto write = [&](const topo::Topology& t) {
      const std::string path = dot_dir + "/" + t.name() + ".dot";
      std::ofstream os(path);
      topo::write_dot(os, t);
      std::cout << "wrote " << path << "\n";
    };
    std::cout << '\n';
    write(topo::build_fat_tree(small_ft));
    write(topo::build_bcube(small_bc));
    std::cout << "render with: dot -Tsvg <file> -o out.svg (or neato)\n";
  } else {
    std::cout << "\n(pass an output directory to also write GraphViz DOT files)\n";
  }
  return 0;
}
