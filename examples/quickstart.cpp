// Quickstart: build a Fat-Tree data center, deploy VMs, run the Sheriff
// pre-alert management loop for a few rounds, and print what happened.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: topology builder
// → deployment → DistributedEngine → round metrics.

#include <iostream>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/fat_tree.hpp"

int main() {
  using namespace sheriff;

  // 1. A small Fat-Tree fabric: 4 pods, 8 racks, 3 hosts per rack.
  topo::FatTreeOptions topo_options;
  topo_options.pods = 4;
  topo_options.hosts_per_rack = 3;
  const topo::Topology topology = topo::build_fat_tree(topo_options);
  std::cout << "topology: " << topology.name() << " with " << topology.rack_count()
            << " racks, " << topology.host_count() << " hosts, " << topology.link_count()
            << " links\n";

  // 2. Deploy a skewed VM population (some hosts start hot).
  wl::DeploymentOptions deploy_options;
  deploy_options.seed = 2015;  // any seed: runs are deterministic
  deploy_options.vms_per_host = 3.0;

  // 3. Run Sheriff: each rack's shim predicts workloads, raises alerts,
  //    and migrates / reroutes locally.
  core::EngineConfig config;
  config.sheriff.vm_alert_threshold = 0.9;
  core::DistributedEngine engine(topology, deploy_options, config);

  common::Table table({"round", "stddev before", "stddev after", "alerts (host/tor/switch)",
                       "migrations", "reroutes", "cost"});
  for (int round = 0; round < 8; ++round) {
    const auto m = engine.run_round();
    table.begin_row()
        .add(static_cast<int>(m.round))
        .add(m.workload_stddev_before, 2)
        .add(m.workload_stddev_after, 2)
        .add(std::to_string(m.host_alerts) + "/" + std::to_string(m.tor_alerts) + "/" +
             std::to_string(m.switch_alerts))
        .add(m.migrations)
        .add(m.reroutes)
        .add(m.migration_cost, 1);
  }
  table.print(std::cout);

  std::cout << "\nfinal workload stddev: " << engine.deployment().workload_stddev()
            << "% (lower = better balanced)\n";
  return 0;
}
