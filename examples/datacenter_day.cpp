// datacenter_day: simulate a full "day" (288 five-minute management
// rounds) of a Fat-Tree data center under diurnal load, and report how
// Sheriff's pre-alert management kept hosts balanced, hour by hour.
//
//   $ ./datacenter_day [pods] [rounds] [metrics.csv]
//
// Passing a third argument writes every round's metrics as CSV (loads
// directly into pandas/gnuplot).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "topology/fat_tree.hpp"

int main(int argc, char** argv) {
  using namespace sheriff;
  const int pods = argc > 1 ? std::atoi(argv[1]) : 8;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 288;

  topo::FatTreeOptions topo_options;
  topo_options.pods = pods;
  topo_options.hosts_per_rack = 2;
  const auto topology = topo::build_fat_tree(topo_options);

  wl::DeploymentOptions deploy_options;
  deploy_options.seed = 24;
  deploy_options.vms_per_host = 3.0;
  deploy_options.hot_vm_fraction = 0.1;

  core::EngineConfig config;
  core::DistributedEngine engine(topology, deploy_options, config);

  std::cout << "simulating " << rounds << " rounds (5-minute periods) on " << topology.name()
            << " — " << engine.deployment().vm_count() << " VMs on " << topology.host_count()
            << " hosts\n\n";

  std::vector<double> stddev_series;
  std::vector<core::RoundMetrics> all_metrics;
  std::size_t migrations = 0;
  std::size_t reroutes = 0;
  std::size_t alerts = 0;
  common::Table hourly({"hour", "mean load %", "stddev %", "alerts", "migrations", "reroutes"});
  double hour_alerts = 0;
  double hour_migrations = 0;
  double hour_reroutes = 0;

  for (int r = 0; r < rounds; ++r) {
    const auto m = engine.run_round();
    all_metrics.push_back(m);
    stddev_series.push_back(m.workload_stddev_after);
    migrations += m.migrations;
    reroutes += m.reroutes;
    const std::size_t round_alerts = m.host_alerts + m.tor_alerts + m.switch_alerts;
    alerts += round_alerts;
    hour_alerts += static_cast<double>(round_alerts);
    hour_migrations += static_cast<double>(m.migrations);
    hour_reroutes += static_cast<double>(m.reroutes);
    if ((r + 1) % 12 == 0) {  // 12 rounds = one hour
      hourly.begin_row()
          .add((r + 1) / 12)
          .add(m.workload_mean, 1)
          .add(m.workload_stddev_after, 2)
          .add(static_cast<std::size_t>(hour_alerts))
          .add(static_cast<std::size_t>(hour_migrations))
          .add(static_cast<std::size_t>(hour_reroutes));
      hour_alerts = hour_migrations = hour_reroutes = 0;
    }
  }

  hourly.print(std::cout);
  common::PlotOptions plot;
  plot.title = "\nhost workload stddev (%) across the day";
  plot.series_names = {"stddev"};
  std::cout << common::render_plot(stddev_series, plot);
  const auto summary = core::summarize(all_metrics);
  std::cout << "\ntotals: " << alerts << " alerts, " << migrations << " migrations ("
            << common::format_fixed(summary.total_migration_seconds, 1) << " s copied, "
            << common::format_fixed(summary.total_downtime_seconds * 1e3, 1)
            << " ms total downtime), " << reroutes << " flow reroutes\n";

  if (argc > 3) {
    std::ofstream csv(argv[3]);
    core::write_metrics_csv(csv, all_metrics);
    std::cout << "wrote per-round metrics to " << argv[3] << "\n";
  }
  return 0;
}
