// bcube_hotspot: inject a hotspot into a BCube fabric and contrast two
// operating modes the paper argues between — contingency (react only when
// hosts are already overloaded, i.e. a high alert threshold) versus
// Sheriff's pre-alert (predict and act early, lower threshold) — measuring
// how long hosts stay overloaded under each.
//
//   $ ./bcube_hotspot [ports] [rounds]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/bcube.hpp"

namespace {

struct ModeResult {
  double overloaded_host_rounds = 0.0;  ///< Σ over rounds of overloaded hosts
  double final_stddev = 0.0;
  std::size_t migrations = 0;
  std::size_t alerts = 0;
};

ModeResult run_mode(const sheriff::topo::Topology& topology, bool prealert, int rounds) {
  using namespace sheriff;
  wl::DeploymentOptions deploy_options;
  deploy_options.seed = 99;
  deploy_options.hot_vm_fraction = 0.2;  // the hotspot population
  deploy_options.hot_host_bias = 4.0;
  deploy_options.skew_weight = 10.0;

  core::EngineConfig config;
  if (prealert) {
    // Sheriff proper: predict, and treat relative hotspots as alerts.
    config.predictor = core::PredictorKind::kHolt;
  } else {
    // Contingency: no forecasting, and react only to hosts that are
    // already effectively at the wall.
    config.predictor = core::PredictorKind::kNaive;
    config.sheriff.host_overload_percent = 95.0;
    config.sheriff.hotspot_factor = 3.5;       // only extreme hotspots
    config.sheriff.hotspot_floor_percent = 45.0;
  }
  core::DistributedEngine engine(topology, deploy_options, config);

  ModeResult result;
  for (int r = 0; r < rounds; ++r) {
    const auto m = engine.run_round();
    result.migrations += m.migrations;
    result.alerts += m.host_alerts + m.tor_alerts + m.switch_alerts;
    // Hotspot exposure: host-rounds spent far above the fleet mean.
    const double mean = engine.deployment().workload_mean();
    for (const auto& node : topology.nodes()) {
      if (node.kind != topo::NodeKind::kHost) continue;
      const double load = engine.deployment().host_load_percent(node.id);
      if (load > 40.0 && load > 2.0 * mean) result.overloaded_host_rounds += 1.0;
    }
  }
  result.final_stddev = engine.deployment().workload_stddev();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sheriff;
  const int ports = argc > 1 ? std::atoi(argv[1]) : 8;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 40;

  topo::BCubeOptions options;
  options.ports = ports;
  options.levels = 1;
  const auto topology = topo::build_bcube(options);
  std::cout << "hotspot drill on " << topology.name() << ": " << topology.host_count()
            << " servers, " << topology.rack_count() << " racks, " << rounds << " rounds\n\n";

  const auto contingency = run_mode(topology, /*prealert=*/false, rounds);
  const auto prealert = run_mode(topology, /*prealert=*/true, rounds);

  common::Table table(
      {"mode", "hotspot host-rounds", "final stddev %", "migrations", "alerts"});
  table.begin_row()
      .add("contingency (react late)")
      .add(contingency.overloaded_host_rounds, 0)
      .add(contingency.final_stddev, 2)
      .add(contingency.migrations)
      .add(contingency.alerts);
  table.begin_row()
      .add("sheriff pre-alert")
      .add(prealert.overloaded_host_rounds, 0)
      .add(prealert.final_stddev, 2)
      .add(prealert.migrations)
      .add(prealert.alerts);
  table.print(std::cout);

  std::cout << "\npre-alert cut hotspot host-rounds by "
            << (contingency.overloaded_host_rounds > 0
                    ? 100.0 * (1.0 - prealert.overloaded_host_rounds /
                                         contingency.overloaded_host_rounds)
                    : 0.0)
            << "%\n";
  return 0;
}
