// trace_explorer: a guided tour of the observability layer (src/obs/).
// Runs a faulted Fat-Tree scenario with the event trace, the metric
// registry, and the invariant auditor all enabled, then shows the three
// export surfaces:
//
//   1. the per-round event summary (events per type per round),
//   2. the JSON Lines dump of every retained trace record (optionally
//      written to a file), round-trip parsed back as a self-check,
//   3. the name-sorted metric registry snapshot.
//
//   $ ./trace_explorer [rounds] [trace.jsonl]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/engine.hpp"
#include "fault/fault_plan.hpp"
#include "obs/export.hpp"
#include "obs/hub.hpp"
#include "topology/fat_tree.hpp"

int main(int argc, char** argv) {
  using namespace sheriff;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 20;

  topo::FatTreeOptions topo_options;
  topo_options.pods = 4;
  topo_options.hosts_per_rack = 3;
  const auto topology = topo::build_fat_tree(topo_options);

  wl::DeploymentOptions deploy_options;
  deploy_options.seed = 11;
  deploy_options.vms_per_host = 2.5;

  // A small deterministic fault schedule so the trace has FaultInjected,
  // ShimTakeover, and protocol-loss events to show off.
  fault::FaultOptions fault_options;
  fault_options.seed = 11;
  fault_options.message_drop_probability = 0.1;
  auto plan = fault::FaultPlan::random_link_flaps(topology, fault_options, 2, 3, 10, 3);
  plan.fail_shim(1, 5, 12);
  plan.set_options(fault_options);

  core::EngineConfig config;
  config.fault_plan = &plan;
  config.observe = true;  // event trace + metric registry
  config.audit = true;    // invariant auditor at every round boundary
  core::DistributedEngine engine(topology, deploy_options, config);

  std::cout << "trace explorer on " << topology.name() << ", " << rounds
            << " rounds, observability + auditing on\n\n";
  engine.run(static_cast<std::size_t>(rounds));

  const obs::ObservationHub& hub = *engine.observation_hub();
  const auto records = hub.trace().snapshot();

  std::cout << "event summary (" << records.size() << " retained records, "
            << hub.trace().total_emitted() << " emitted, " << hub.trace().total_dropped()
            << " dropped to ring wrap):\n";
  obs::summarize_trace(records).print(std::cout);

  // JSONL round trip: what we write is exactly what we can read back.
  std::stringstream jsonl;
  obs::write_trace_jsonl(records, jsonl);
  const auto reparsed = obs::read_trace_jsonl(jsonl);
  std::cout << "\nJSONL round trip: " << records.size() << " records out, " << reparsed.size()
            << " parsed back, " << (reparsed == records ? "identical" : "MISMATCH") << "\n";
  if (argc > 2) {
    std::ofstream out(argv[2]);
    obs::write_trace_jsonl(records, out);
    std::cout << "trace written to " << argv[2] << "\n";
  }

  std::cout << "\nmetric registry (" << hub.registry().size() << " metrics):\n";
  obs::metrics_table(hub.registry()).print(std::cout);

  const obs::InvariantAuditor& auditor = *hub.auditor();
  std::cout << "\nauditor: " << auditor.rounds_audited() << " rounds audited, "
            << auditor.violation_count() << " violations\n";
  for (const auto& message : auditor.messages()) std::cout << "  " << message << "\n";
  return auditor.violation_count() == 0 ? 0 : 1;
}
