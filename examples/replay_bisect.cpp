// replay_bisect: find the first divergent round of a long run with
// O(log N) probes instead of N-round re-runs — the deterministic-replay
// payoff of the checkpoint subsystem (DESIGN.md §10).
//
// The setup mimics the real debugging situation: a "golden" digest log
// from a reference build, and a current build whose end state differs.
// Here the two builds are emulated by the engine's two fair-share
// implementations (incremental vs from-scratch waterfill — deterministic
// individually, not bit-identical to each other), so the divergence is
// genuine, not injected into the log by hand.
//
// The current run keeps only periodic in-memory checkpoints. To probe an
// arbitrary round r, the bisection loads the nearest checkpoint at or
// below r into a freshly constructed engine, replays forward to r, and
// compares digests. Each probe costs at most `checkpoint interval`
// rounds; the whole search is O(interval · log N).
//
//   $ ./replay_bisect [rounds] [checkpoint-interval]

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "core/engine.hpp"
#include "snapshot/checkpoint.hpp"
#include "topology/fat_tree.hpp"

namespace {

using namespace sheriff;

/// FNV-1a over the round's metrics and the resulting placement: any
/// difference in management decisions or outcomes changes the digest.
std::uint64_t digest_round(const core::RoundMetrics& m, const core::DistributedEngine& engine) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFU;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_f64 = [&mix](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  mix(m.round);
  mix(m.migrations);
  mix(m.reroutes);
  mix(m.host_alerts + m.tor_alerts + m.switch_alerts);
  mix_f64(m.workload_stddev_after);
  mix_f64(m.migration_cost);
  mix_f64(m.flow_satisfaction);
  const wl::Deployment& deployment = engine.deployment();
  for (wl::VmId vm = 0; vm < deployment.vm_count(); ++vm) mix(deployment.vm(vm).host);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
  const std::size_t interval = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  // Tight ToR–agg links plus a skewed placement: enough contention that
  // hot switches (and thus reroutes) actually occur mid-run.
  topo::FatTreeOptions topo_options;
  topo_options.pods = 4;
  topo_options.hosts_per_rack = 3;
  topo_options.tor_agg_gbps = 1.0;
  const auto topology = topo::build_fat_tree(topo_options);

  wl::DeploymentOptions deploy_options;
  deploy_options.seed = 11;
  deploy_options.vms_per_host = 3.0;
  deploy_options.placement = wl::PlacementPolicy::kSkewed;

  // "Reference build": the default reroute split. Only its digests survive.
  std::cout << "reference run (" << rounds << " rounds, reroute_fraction 0.5)...\n";
  std::vector<std::uint64_t> golden;
  {
    core::EngineConfig config;
    core::DistributedEngine engine(topology, deploy_options, config);
    for (std::size_t r = 0; r < rounds; ++r) {
      golden.push_back(digest_round(engine.run_round(), engine));
    }
  }

  // "Current build": a behavior change slipped in — a more aggressive
  // reroute split. The two builds agree until the first round where a shim
  // actually reroutes around a hot switch; bisection pinpoints that round.
  // Keep only periodic checkpoints — per-round digests are deliberately
  // discarded, as they would be for a run too long to log exhaustively.
  core::EngineConfig config;
  config.sheriff.reroute_fraction = 0.75;
  const auto make_engine = [&] {
    return core::DistributedEngine(topology, deploy_options, config);
  };
  std::cout << "current run (reroute_fraction 0.75), checkpoint every " << interval
            << " rounds...\n";
  std::map<std::size_t, std::vector<std::uint8_t>> checkpoints;
  std::uint64_t final_digest = 0;
  {
    core::DistributedEngine engine = make_engine();
    checkpoints[0] = core::Checkpoint::serialize(engine);
    for (std::size_t r = 0; r < rounds; ++r) {
      final_digest = digest_round(engine.run_round(), engine);
      if (engine.rounds_run() % interval == 0) {
        checkpoints[engine.rounds_run()] = core::Checkpoint::serialize(engine);
      }
    }
  }
  if (final_digest == golden.back()) {
    std::cout << "runs agree at round " << rounds << "; nothing to bisect.\n";
    return 0;
  }
  std::cout << "final round diverges; bisecting...\n";

  // Probe: digest of the current build at round r, reconstructed from the
  // nearest checkpoint at or below r.
  std::size_t probes = 0;
  std::size_t replayed_rounds = 0;
  const auto probe = [&](std::size_t r) {
    auto it = checkpoints.upper_bound(r - 1);  // first checkpoint > r-1
    --it;                                      // nearest at or below r-1
    core::DistributedEngine engine = make_engine();
    core::Checkpoint::deserialize(engine, it->second);
    std::uint64_t d = 0;
    while (engine.rounds_run() < r) {
      d = digest_round(engine.run_round(), engine);
      ++replayed_rounds;
    }
    ++probes;
    return d;
  };

  // Invariant: rounds 1..lo agree, round hi diverges.
  std::size_t lo = 0;
  std::size_t hi = rounds;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool agrees = probe(mid) == golden[mid - 1];
    std::cout << "  round " << mid << ": " << (agrees ? "agrees" : "diverges") << "\n";
    if (agrees) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  std::cout << "\nfirst divergent round: " << hi << " (" << probes << " probes, "
            << replayed_rounds << " rounds replayed vs " << rounds
            << " for one full re-run)\n";
  return 0;
}
