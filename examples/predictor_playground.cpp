// predictor_playground: train the paper's three predictors — ARIMA(1,1,1),
// NARNET(8,20), and the dynamic combined model — on a synthetic weekly
// traffic trace, and compare their rolling one-step test errors, exactly
// the comparison of the paper's Fig. 6–8.
//
//   $ ./predictor_playground [seed]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/ascii_plot.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/box_jenkins.hpp"
#include "timeseries/holt_winters.hpp"
#include "timeseries/model_selection.hpp"
#include "timeseries/narnet.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace sheriff;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  // Two weeks of 30-minute samples; train on week 1, test on week 2.
  auto gen = wl::make_weekly_traffic_trace(seed);
  const auto series = gen->generate(48 * 14);
  const std::size_t split = series.size() / 2;
  const std::vector<double> train(series.begin(),
                                  series.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> actual(series.begin() + static_cast<std::ptrdiff_t>(split),
                                   series.end());

  std::cout << "weekly traffic trace (" << series.size() << " samples):\n  "
            << common::sparkline(series) << "\n\n";

  // --- ARIMA(1,1,1), the paper's Fig. 6 choice.
  ts::ArimaModel arima(ts::ArimaOrder{1, 1, 1});
  arima.fit(train);
  const auto arima_preds = arima.one_step_predictions(series, split);

  // --- NARNET with 20 hidden units (Fig. 7).
  ts::NarNet::Options nopt;
  nopt.inputs = 12;
  nopt.hidden = 20;
  nopt.seed = seed;
  ts::NarNet narnet(nopt);
  narnet.fit(train);
  const auto narnet_preds = narnet.one_step_predictions(series, split);

  // --- Holt–Winters with a daily season (bonus comparator).
  ts::HoltWintersModel::Options hw_options;
  hw_options.period = 48;
  ts::HoltWintersModel holt_winters(hw_options);
  holt_winters.fit(train);
  std::vector<double> hw_preds;
  for (std::size_t t = split; t < series.size(); ++t) {
    hw_preds.push_back(holt_winters.predict_next(std::span<const double>(series.data(), t)));
  }

  // --- Combined dynamic selector (Fig. 8): four candidates, windowed MSE.
  ts::DynamicModelSelector selector(24);
  selector.add_model(ts::make_arima_forecaster(1, 1, 1));
  selector.add_model(ts::make_arima_forecaster(2, 0, 2));
  selector.add_model(ts::make_narnet_forecaster(12, 20, seed));
  selector.add_model(ts::make_narnet_forecaster(6, 10, seed + 1));
  selector.fit(train);
  std::vector<double> combined_preds;
  std::vector<double> history = train;
  for (std::size_t t = split; t < series.size(); ++t) {
    combined_preds.push_back(selector.predict_next(history));
    selector.observe(series[t]);
    history.push_back(series[t]);
  }

  common::Table table({"model", "test MSE", "test RMSE", "MAPE %"});
  const auto add_row = [&](const std::string& name, const std::vector<double>& preds) {
    table.begin_row()
        .add(name)
        .add(common::mean_squared_error(actual, preds), 3)
        .add(common::root_mean_squared_error(actual, preds), 3)
        .add(common::mean_absolute_percentage_error(actual, preds), 2);
  };
  add_row("ARIMA(1,1,1)", arima_preds);
  add_row("NARNET(12,20)", narnet_preds);
  add_row("HoltWinters(48)", hw_preds);
  add_row("combined (dynamic)", combined_preds);
  table.print(std::cout);

  std::cout << "\nselector usage:";
  for (std::size_t i = 0; i < selector.model_count(); ++i) {
    std::cout << " " << selector.model_name(i) << "=" << selector.selection_counts()[i];
  }
  std::cout << "\n\n";

  common::PlotOptions plot;
  plot.title = "test window: actual vs combined prediction";
  plot.series_names = {"actual", "combined"};
  const std::vector<std::vector<double>> curves{actual, combined_preds};
  std::cout << common::render_plot(curves, plot);

  // Bonus: what would Box–Jenkins pick automatically?
  const auto selection = ts::select_arima(train);
  std::cout << "\nBox-Jenkins automatic order: ARIMA(" << selection.model.order().p << ","
            << selection.model.order().d << "," << selection.model.order().q
            << ") over " << selection.candidates_tried << " candidates\n";
  return 0;
}
