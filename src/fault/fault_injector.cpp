#include "fault/fault_injector.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sheriff::fault {

FaultInjector::FaultInjector(const topo::Topology& topo, const FaultPlan& plan)
    : topo_(&topo), plan_(&plan), liveness_(topo), shim_crashed_(topo.rack_count(), false) {
  for (const FaultEvent& event : plan.events()) {
    switch (event.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        SHERIFF_REQUIRE(event.target < topo.link_count(), "fault plan: link out of range");
        break;
      case FaultKind::kSwitchDown:
      case FaultKind::kSwitchUp:
        SHERIFF_REQUIRE(event.target < topo.node_count() &&
                            topo::is_switch(topo.node(event.target).kind),
                        "fault plan: switch target is not a switch");
        break;
      case FaultKind::kHostDown:
      case FaultKind::kHostUp:
        SHERIFF_REQUIRE(event.target < topo.node_count() &&
                            topo.node(event.target).kind == topo::NodeKind::kHost,
                        "fault plan: host target is not a host");
        break;
      case FaultKind::kShimDown:
      case FaultKind::kShimUp:
        SHERIFF_REQUIRE(event.target < topo.rack_count(), "fault plan: rack out of range");
        break;
    }
  }
}

InjectionReport FaultInjector::advance(std::size_t round) {
  InjectionReport report;
  for (const FaultEvent& event : plan_->due(round)) {
    apply(event, report);
  }
  events_applied_ += report.applied.size();
  if (trace_ != nullptr) {
    for (const FaultEvent& event : report.applied) {
      trace_->emit(obs::EventTrace::kEngine, obs::EventType::kFaultInjected,
                   static_cast<std::uint32_t>(event.kind), event.target);
    }
  }
  return report;
}

void FaultInjector::publish_metrics(obs::MetricRegistry& registry) const {
  registry.gauge("fault.events_applied").set(static_cast<double>(events_applied_));
  registry.gauge("fault.failed_links").set(static_cast<double>(failed_link_count()));
  registry.gauge("fault.failed_switches").set(static_cast<double>(failed_switches_));
  registry.gauge("fault.failed_hosts").set(static_cast<double>(failed_hosts_.size()));
  registry.gauge("fault.failed_shims").set(static_cast<double>(failed_shim_count()));
}

void FaultInjector::apply(const FaultEvent& event, InjectionReport& report) {
  const bool up = is_recovery(event.kind);
  switch (event.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      if (liveness_.link_up(event.target) != up) {
        liveness_.set_link(event.target, up);
        report.fabric_changed = true;
        report.applied.push_back(event);
      }
      return;
    case FaultKind::kSwitchDown:
    case FaultKind::kSwitchUp: {
      if (liveness_.node_up(event.target) == up) return;
      liveness_.set_node(event.target, up);
      failed_switches_ += up ? -1 : 1;
      report.fabric_changed = true;
      report.applied.push_back(event);
      // A ToR carries its rack's shim: crashing/rebooting it changes shim
      // availability (shim_down() consults the ToR's liveness directly).
      if (topo_->node(event.target).rack != topo::kInvalidRack) report.shims_changed = true;
      return;
    }
    case FaultKind::kHostDown:
    case FaultKind::kHostUp: {
      if (liveness_.node_up(event.target) == up) return;
      liveness_.set_node(event.target, up);
      if (up) {
        std::erase(failed_hosts_, event.target);
      } else {
        failed_hosts_.push_back(event.target);
        std::sort(failed_hosts_.begin(), failed_hosts_.end());
      }
      report.fabric_changed = true;
      report.applied.push_back(event);
      return;
    }
    case FaultKind::kShimDown:
    case FaultKind::kShimUp:
      if (shim_crashed_[event.target] != !up) {
        shim_crashed_[event.target] = !up;
        report.shims_changed = true;
        report.applied.push_back(event);
      }
      return;
  }
}

bool FaultInjector::shim_down(topo::RackId rack) const {
  if (shim_crashed_[rack]) return true;
  const topo::NodeId tor = topo_->rack(rack).tor;
  return tor != topo::kInvalidNode && !liveness_.node_up(tor);
}

std::size_t FaultInjector::failed_shim_count() const {
  std::size_t count = 0;
  for (topo::RackId r = 0; r < topo_->rack_count(); ++r) {
    if (shim_down(r)) ++count;
  }
  return count;
}

}  // namespace sheriff::fault
