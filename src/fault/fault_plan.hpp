#pragma once
// FaultPlan: a deterministic, pre-computed schedule of fault events for a
// simulation run. Events are timed in management rounds and applied by the
// FaultInjector at the top of each round. The plan is data, not behavior:
// the same plan handed to two engines produces bit-identical runs, which
// is what makes failure experiments replayable (and diffable) the same
// way the pristine-fabric figures are.
//
// Event taxonomy (what the paper's fabric can lose):
//   link down/up        — a cable or port dies / is repaired
//   switch down/up      — a ToR/agg/core/BCube switch crashes / reboots.
//                         A dead ToR also takes its rack's shim down: the
//                         shim rides on the ToR (Sec. II-B).
//   host down/up        — a server dies; its VMs are orphaned and must be
//                         re-placed elsewhere (recovery migrations)
//   shim down/up        — the management process alone crashes; the rack
//                         keeps serving traffic but loses its manager
//                         until a neighbor-region shim takes over

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "topology/entities.hpp"

namespace sheriff::topo {
class Topology;
}

namespace sheriff::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
  kHostDown,
  kHostUp,
  kShimDown,
  kShimUp,
};

const char* to_string(FaultKind kind) noexcept;

/// True for the *Up events that undo a failure.
[[nodiscard]] constexpr bool is_recovery(FaultKind kind) noexcept {
  return kind == FaultKind::kLinkUp || kind == FaultKind::kSwitchUp ||
         kind == FaultKind::kHostUp || kind == FaultKind::kShimUp;
}

struct FaultEvent {
  std::size_t round = 0;  ///< applied before the round's first step
  FaultKind kind = FaultKind::kLinkDown;
  /// LinkId for link events, NodeId for switch/host events, RackId for
  /// shim events.
  std::uint32_t target = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Knobs for randomized plan generation and for the protocol's message
/// layer. All randomness is drawn from Pcg32(seed) — never rand() — so a
/// (seed, plan) pair replays exactly.
struct FaultOptions {
  std::uint64_t seed = 2015;
  /// Probability that any one REQUEST or ACK of the distributed migration
  /// protocol is lost in transit (0 = reliable messaging).
  double message_drop_probability = 0.0;
  /// Extra propose/decide/apply iterations the protocol may spend waiting
  /// out message loss (the retry/backoff budget on top of
  /// SheriffConfig::max_matching_rounds).
  std::size_t max_protocol_retries = 16;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultOptions options) : options_(options) {}

  /// Adds one event; duplicates (same round/kind/target) are dropped.
  FaultPlan& add(std::size_t round, FaultKind kind, std::uint32_t target);
  FaultPlan& add(const FaultEvent& event) { return add(event.round, event.kind, event.target); }

  /// Fails a component at `down_round` and recovers it at `up_round`
  /// (skipped when up_round <= down_round: a permanent failure).
  FaultPlan& fail_link(topo::LinkId link, std::size_t down_round, std::size_t up_round = 0);
  FaultPlan& fail_switch(topo::NodeId node, std::size_t down_round, std::size_t up_round = 0);
  FaultPlan& fail_host(topo::NodeId host, std::size_t down_round, std::size_t up_round = 0);
  FaultPlan& fail_shim(topo::RackId rack, std::size_t down_round, std::size_t up_round = 0);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// All events, sorted by (round, kind, target) — the deterministic
  /// application order.
  [[nodiscard]] std::span<const FaultEvent> events() const noexcept { return events_; }
  /// The events scheduled exactly at `round`.
  [[nodiscard]] std::span<const FaultEvent> due(std::size_t round) const;
  /// The last scheduled round (0 when empty).
  [[nodiscard]] std::size_t horizon() const noexcept;

  [[nodiscard]] const FaultOptions& options() const noexcept { return options_; }
  FaultPlan& set_options(FaultOptions options) {
    options_ = options;
    return *this;
  }

  // --- canned scenarios ----------------------------------------------------

  /// The bench scenario: rack `rack`'s ToR dies at `down_round` (orphaning
  /// its shim, severing its hosts) and reboots at `up_round`.
  static FaultPlan tor_outage(const topo::Topology& topo, topo::RackId rack,
                              std::size_t down_round, std::size_t up_round);

  /// `flaps` random link down events, each healing after `down_rounds`
  /// rounds, spread uniformly over [first_round, last_round). Seeded by
  /// options.seed; host-facing links are excluded (those are host faults).
  static FaultPlan random_link_flaps(const topo::Topology& topo, FaultOptions options,
                                     std::size_t flaps, std::size_t first_round,
                                     std::size_t last_round, std::size_t down_rounds = 2);

 private:
  std::vector<FaultEvent> events_;  ///< kept sorted + deduped
  FaultOptions options_;
};

}  // namespace sheriff::fault
