#pragma once
// FaultInjector: executes a FaultPlan against a live simulation. It owns
// the topology's LivenessMask plus the per-rack shim availability, applies
// every event due at a round, and reports what changed so the engine knows
// when to recompute routing state. Recovery semantics:
//
//   * a recovered link/switch/host simply rejoins the fabric — routing
//     state is recomputed, but VMs that were evacuated do NOT move back
//     (re-balancing them is the management scheme's job, not the fault
//     layer's);
//   * a ToR being down forces its rack's shim down too (the shim rides on
//     the ToR); an explicit kShimDown outlives a ToR recovery until the
//     matching kShimUp fires.

#include <cstddef>
#include <vector>

#include "fault/fault_plan.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::obs {
class EventTrace;
class MetricRegistry;
}  // namespace sheriff::obs

namespace sheriff::fault {

/// What one round's events did (drives the engine's recompute decisions).
struct InjectionReport {
  std::vector<FaultEvent> applied;
  bool fabric_changed = false;  ///< some node/link flipped: re-route needed
  bool shims_changed = false;   ///< shim availability changed: takeover map stale
};

class FaultInjector {
 public:
  /// The topology and plan must outlive the injector.
  FaultInjector(const topo::Topology& topo, const FaultPlan& plan);

  /// Applies every event scheduled at `round`.
  InjectionReport advance(std::size_t round);

  /// Attaches the event trace (nullptr detaches): every *applied* fault
  /// event — no-op events are filtered — is emitted as kFaultInjected with
  /// a = FaultKind, b = target. The trace must outlive the injector.
  void set_trace(obs::EventTrace* trace) noexcept { trace_ = trace; }

  /// Publishes the current failure tallies as `fault.*` gauges.
  void publish_metrics(obs::MetricRegistry& registry) const;

  [[nodiscard]] const topo::LivenessMask& liveness() const noexcept { return liveness_; }
  /// A shim is down when explicitly crashed or when its ToR is dead.
  [[nodiscard]] bool shim_down(topo::RackId rack) const;
  [[nodiscard]] bool host_down(topo::NodeId host) const { return !liveness_.node_up(host); }

  /// Hosts currently failed (their VMs are the orphans to re-place).
  [[nodiscard]] const std::vector<topo::NodeId>& failed_hosts() const noexcept {
    return failed_hosts_;
  }
  [[nodiscard]] std::size_t failed_switch_count() const noexcept { return failed_switches_; }
  /// Links unable to carry traffic (explicitly failed or endpoint-dead).
  [[nodiscard]] std::size_t failed_link_count() const {
    return liveness_.unusable_link_count(*topo_);
  }
  [[nodiscard]] std::size_t failed_shim_count() const;

 private:
  void apply(const FaultEvent& event, InjectionReport& report);

  const topo::Topology* topo_;
  const FaultPlan* plan_;
  topo::LivenessMask liveness_;
  std::vector<bool> shim_crashed_;  ///< explicit kShimDown, per rack
  std::vector<topo::NodeId> failed_hosts_;
  std::size_t failed_switches_ = 0;
  std::size_t events_applied_ = 0;
  obs::EventTrace* trace_ = nullptr;
};

}  // namespace sheriff::fault
