#pragma once
// LossyChannel: the unreliable transport under the distributed
// REQUEST/ACK protocol. Every deliver() is an independent Bernoulli trial
// from an explicitly seeded Pcg32 — deterministic per (seed, call
// sequence), so lossy runs replay exactly. The protocol calls it only
// from serial code (mailbox delivery, commit), which keeps the draw order
// stable regardless of thread count.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace sheriff::fault {

class LossyChannel {
 public:
  /// drop_probability in [0, 1]; 0 = reliable.
  explicit LossyChannel(double drop_probability = 0.0, std::uint64_t seed = 2015)
      : drop_probability_(drop_probability), rng_(seed, 0x5e1f0ffULL) {}

  /// True when the message arrives; false = lost (counted).
  bool deliver() {
    if (drop_probability_ <= 0.0) return true;
    if (rng_.bernoulli(drop_probability_)) {
      ++drops_;
      return false;
    }
    return true;
  }

  [[nodiscard]] bool lossless() const noexcept { return drop_probability_ <= 0.0; }
  [[nodiscard]] double drop_probability() const noexcept { return drop_probability_; }
  [[nodiscard]] std::size_t drops() const noexcept { return drops_; }

  /// Checkpointable state: the Bernoulli stream position + loss tally.
  /// (Plain accessors, not archive hooks, so this header stays free of the
  /// snapshot dependency.)
  struct State {
    common::Pcg32::State rng;
    std::uint64_t drops = 0;
  };
  [[nodiscard]] State state() const noexcept { return {rng_.state(), drops_}; }
  void restore(const State& s) noexcept {
    rng_.restore(s.rng);
    drops_ = static_cast<std::size_t>(s.drops);
  }

 private:
  double drop_probability_;
  common::Pcg32 rng_;
  std::size_t drops_ = 0;
};

}  // namespace sheriff::fault
