#include "fault/fault_plan.hpp"

#include <algorithm>
#include <tuple>

#include "common/require.hpp"
#include "topology/topology.hpp"

namespace sheriff::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kSwitchDown: return "switch-down";
    case FaultKind::kSwitchUp: return "switch-up";
    case FaultKind::kHostDown: return "host-down";
    case FaultKind::kHostUp: return "host-up";
    case FaultKind::kShimDown: return "shim-down";
    case FaultKind::kShimUp: return "shim-up";
  }
  return "unknown";
}

namespace {

[[nodiscard]] auto order_key(const FaultEvent& e) {
  return std::make_tuple(e.round, static_cast<std::uint8_t>(e.kind), e.target);
}

}  // namespace

FaultPlan& FaultPlan::add(std::size_t round, FaultKind kind, std::uint32_t target) {
  const FaultEvent event{round, kind, target};
  const auto pos = std::lower_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return order_key(a) < order_key(b); });
  if (pos != events_.end() && *pos == event) return *this;  // dedup
  events_.insert(pos, event);
  return *this;
}

FaultPlan& FaultPlan::fail_link(topo::LinkId link, std::size_t down_round,
                                std::size_t up_round) {
  add(down_round, FaultKind::kLinkDown, link);
  if (up_round > down_round) add(up_round, FaultKind::kLinkUp, link);
  return *this;
}

FaultPlan& FaultPlan::fail_switch(topo::NodeId node, std::size_t down_round,
                                  std::size_t up_round) {
  add(down_round, FaultKind::kSwitchDown, node);
  if (up_round > down_round) add(up_round, FaultKind::kSwitchUp, node);
  return *this;
}

FaultPlan& FaultPlan::fail_host(topo::NodeId host, std::size_t down_round,
                                std::size_t up_round) {
  add(down_round, FaultKind::kHostDown, host);
  if (up_round > down_round) add(up_round, FaultKind::kHostUp, host);
  return *this;
}

FaultPlan& FaultPlan::fail_shim(topo::RackId rack, std::size_t down_round,
                                std::size_t up_round) {
  add(down_round, FaultKind::kShimDown, rack);
  if (up_round > down_round) add(up_round, FaultKind::kShimUp, rack);
  return *this;
}

std::span<const FaultEvent> FaultPlan::due(std::size_t round) const {
  const auto lo = std::lower_bound(events_.begin(), events_.end(), round,
                                   [](const FaultEvent& e, std::size_t r) { return e.round < r; });
  auto hi = lo;
  while (hi != events_.end() && hi->round == round) ++hi;
  return {lo, hi};
}

std::size_t FaultPlan::horizon() const noexcept {
  return events_.empty() ? 0 : events_.back().round;
}

FaultPlan FaultPlan::tor_outage(const topo::Topology& topo, topo::RackId rack,
                                std::size_t down_round, std::size_t up_round) {
  const topo::NodeId tor = topo.rack(rack).tor;
  SHERIFF_REQUIRE(tor != topo::kInvalidNode, "rack has no ToR to fail");
  FaultPlan plan;
  plan.fail_switch(tor, down_round, up_round);
  return plan;
}

FaultPlan FaultPlan::random_link_flaps(const topo::Topology& topo, FaultOptions options,
                                       std::size_t flaps, std::size_t first_round,
                                       std::size_t last_round, std::size_t down_rounds) {
  SHERIFF_REQUIRE(last_round > first_round, "flap window must be non-empty");
  std::vector<topo::LinkId> fabric_links;
  for (const auto& link : topo.links()) {
    if (topo.node(link.a).kind != topo::NodeKind::kHost &&
        topo.node(link.b).kind != topo::NodeKind::kHost) {
      fabric_links.push_back(link.id);
    }
  }
  SHERIFF_REQUIRE(!fabric_links.empty(), "topology has no switch-to-switch links to flap");
  FaultPlan plan(options);
  common::Pcg32 rng(options.seed);
  for (std::size_t i = 0; i < flaps; ++i) {
    const topo::LinkId link = rng.pick(fabric_links);
    const std::size_t down =
        first_round + rng.next_below(static_cast<std::uint32_t>(last_round - first_round));
    plan.fail_link(link, down, down + down_rounds);
  }
  return plan;
}

}  // namespace sheriff::fault
