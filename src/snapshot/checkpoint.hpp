#pragma once
// Engine-level checkpoint/restore (DESIGN.md §10). A checkpoint captures
// every piece of mutable cross-round state of a DistributedEngine; loading
// one into a *freshly constructed* engine over the same (topology,
// deployment options, config) continues the run bit-identically to one
// that never stopped — metrics CSV, trace summaries, and placement
// included. Structural mismatches and corrupt files throw SnapshotError.

#include <cstdint>
#include <string>
#include <vector>

namespace sheriff::core {

class DistributedEngine;

/// Static façade over DistributedEngine::{save,load}_state plus the file
/// framing. The in-memory pair exists so tests (and replay_bisect) can
/// round-trip without touching the filesystem.
struct Checkpoint {
  /// Serializes `engine` into a self-contained archive buffer.
  [[nodiscard]] static std::vector<std::uint8_t> serialize(const DistributedEngine& engine);
  /// Restores `engine` (freshly constructed, same inputs) from a buffer.
  static void deserialize(DistributedEngine& engine, std::vector<std::uint8_t> bytes);

  /// serialize() + atomic-ish write to `path` (write then rename is not
  /// needed here; a failed write throws before any partial file is kept).
  static void save(const DistributedEngine& engine, const std::string& path);
  /// Reads `path` and deserializes into `engine`.
  static void load(DistributedEngine& engine, const std::string& path);
};

}  // namespace sheriff::core
