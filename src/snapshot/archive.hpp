#pragma once
// Versioned, endian-stable binary serialization for checkpoint/restore.
//
// A snapshot archive is a fixed preamble followed by a sequence of
// *sections*. Each section is framed as
//
//   u32 magic | 4-byte tag | u32 version | u64 payload bytes | u32 crc32 | payload
//
// so a reader can (a) verify it is looking at the section it expects,
// (b) reject version skew loudly, and (c) detect truncation or bit rot
// before interpreting a single payload byte. All integers are serialized
// little-endian byte by byte regardless of host order; doubles round-trip
// exactly via their IEEE-754 bit pattern (NaNs and signed zeros included),
// which is what makes save/resume runs bit-identical.
//
// Header-only on purpose: every library in the stack implements its own
// save_state()/load_state() hooks against Writer/Reader without linking a
// snapshot library (sheriff_snapshot, which sits at the top, only holds
// the engine-level Checkpoint wrapper).
//
// Failure policy: every malformed input throws SnapshotError with a
// diagnostic naming the section — never undefined behavior, never a
// silent partial load.

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sheriff::snapshot {

/// Raised on any malformed, truncated, corrupt, or version-skewed input.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over a byte range.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFU] ^ (crc >> 8U);
  }
  return crc ^ 0xFFFFFFFFU;
}

inline constexpr std::uint8_t kPreamble[8] = {'S', 'H', 'R', 'F', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSectionMagic = 0x53484353U;  // "SCHS" little-endian

}  // namespace detail

/// Serializes sectioned state into an in-memory byte buffer. Usage:
///
///   Writer w;
///   w.begin_section("DEPL", 1);
///   w.put_u64(...); ...
///   w.end_section();
///   ... more sections ...
///   const std::vector<std::uint8_t>& bytes = w.buffer();
class Writer {
 public:
  Writer() { buffer_.insert(buffer_.end(), std::begin(detail::kPreamble), std::end(detail::kPreamble)); }

  /// Opens a section. `tag` must be exactly 4 characters; sections may not
  /// nest. The version is the *section schema* version — bump it whenever
  /// the payload layout changes.
  void begin_section(std::string_view tag, std::uint32_t version) {
    if (tag.size() != 4) throw SnapshotError("section tag must be 4 characters: " + std::string(tag));
    if (open_) throw SnapshotError("begin_section inside an open section");
    open_ = true;
    raw_u32(detail::kSectionMagic);
    buffer_.insert(buffer_.end(), tag.begin(), tag.end());
    raw_u32(version);
    length_pos_ = buffer_.size();
    raw_u64(0);  // payload length, backpatched by end_section
    raw_u32(0);  // crc32, backpatched by end_section
    payload_pos_ = buffer_.size();
  }

  /// Closes the current section, backpatching payload length and CRC.
  void end_section() {
    if (!open_) throw SnapshotError("end_section without begin_section");
    open_ = false;
    const std::uint64_t length = buffer_.size() - payload_pos_;
    const std::uint32_t crc = detail::crc32(buffer_.data() + payload_pos_, length);
    patch_u64(length_pos_, length);
    patch_u32(length_pos_ + 8, crc);
  }

  // --- primitives (always inside a section) --------------------------------
  void put_u8(std::uint8_t v) { payload_byte(v); }
  void put_bool(bool v) { payload_byte(v ? 1 : 0); }
  void put_u32(std::uint32_t v) {
    require_open();
    raw_u32(v);
  }
  void put_u64(std::uint64_t v) {
    require_open();
    raw_u64(v);
  }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// Exact bit-pattern round-trip (std::bit_cast, not a decimal detour).
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  void put_str(std::string_view s) {
    put_u64(s.size());
    require_open();
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  // --- vector helpers (u64 count + elements) --------------------------------
  void put_f64v(std::span<const double> v) {
    put_u64(v.size());
    for (double x : v) put_f64(x);
  }
  void put_u64v(std::span<const std::uint64_t> v) {
    put_u64(v.size());
    for (std::uint64_t x : v) put_u64(x);
  }
  void put_u32v(std::span<const std::uint32_t> v) {
    put_u64(v.size());
    for (std::uint32_t x : v) put_u32(x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    if (open_) throw SnapshotError("buffer() with an open section");
    return buffer_;
  }

 private:
  void require_open() const {
    if (!open_) throw SnapshotError("write outside a section");
  }
  void payload_byte(std::uint8_t v) {
    require_open();
    buffer_.push_back(v);
  }
  void raw_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void raw_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  void patch_u64(std::size_t pos, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buffer_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  std::vector<std::uint8_t> buffer_;
  bool open_ = false;
  std::size_t length_pos_ = 0;
  std::size_t payload_pos_ = 0;
};

/// Deserializes an archive produced by Writer. Sections are consumed
/// strictly in order; enter_section verifies magic, tag, and payload CRC
/// up front and returns the stored section version so the caller can
/// reject skew with a precise diagnostic (or use expect_section, which
/// does the rejection for you).
class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {
    if (bytes_.size() < sizeof(detail::kPreamble) ||
        std::memcmp(bytes_.data(), detail::kPreamble, sizeof(detail::kPreamble)) != 0) {
      throw SnapshotError("not a sheriff snapshot (bad preamble)");
    }
    pos_ = sizeof(detail::kPreamble);
  }

  /// Opens the next section, which must carry `tag`; returns its version.
  /// Throws on truncation, tag mismatch, or CRC mismatch.
  std::uint32_t enter_section(std::string_view tag) {
    if (in_section_) throw SnapshotError("enter_section inside an open section");
    const std::uint32_t magic = raw_u32("section header of '" + std::string(tag) + "'");
    if (magic != detail::kSectionMagic) {
      throw SnapshotError("corrupt archive: bad section magic where section '" +
                          std::string(tag) + "' was expected");
    }
    char found[5] = {};
    for (char& c : std::span(found, 4)) c = static_cast<char>(raw_u8("section tag"));
    if (tag != std::string_view(found, 4)) {
      throw SnapshotError("section order mismatch: expected '" + std::string(tag) +
                          "', found '" + std::string(found, 4) + "'");
    }
    const std::uint32_t version = raw_u32("section version");
    const std::uint64_t length = raw_u64("section length");
    const std::uint32_t stored_crc = raw_u32("section crc");
    if (length > bytes_.size() - pos_) {
      throw SnapshotError("truncated archive: section '" + std::string(tag) + "' claims " +
                          std::to_string(length) + " payload bytes, only " +
                          std::to_string(bytes_.size() - pos_) + " remain");
    }
    const std::uint32_t crc = detail::crc32(bytes_.data() + pos_, length);
    if (crc != stored_crc) {
      throw SnapshotError("corrupt archive: CRC mismatch in section '" + std::string(tag) + "'");
    }
    in_section_ = true;
    section_tag_ = std::string(tag);
    section_end_ = pos_ + length;
    return version;
  }

  /// enter_section + hard version check: rejects any other version as
  /// forward/backward skew (payload layouts are not self-describing).
  void expect_section(std::string_view tag, std::uint32_t version) {
    const std::uint32_t found = enter_section(tag);
    if (found != version) {
      throw SnapshotError("version skew in section '" + std::string(tag) + "': archive has v" +
                          std::to_string(found) + ", this build reads v" +
                          std::to_string(version));
    }
  }

  /// Closes the current section; every payload byte must have been read.
  void leave_section() {
    if (!in_section_) throw SnapshotError("leave_section without enter_section");
    if (pos_ != section_end_) {
      throw SnapshotError("section '" + section_tag_ + "' has " +
                          std::to_string(section_end_ - pos_) + " unread payload bytes");
    }
    in_section_ = false;
  }

  /// True once every byte of the archive has been consumed.
  [[nodiscard]] bool at_end() const noexcept { return !in_section_ && pos_ == bytes_.size(); }

  // --- primitives -----------------------------------------------------------
  std::uint8_t get_u8() { return payload_u8(); }
  bool get_bool() { return payload_u8() != 0; }
  std::uint32_t get_u32() {
    bounds_check(4);
    return raw_u32("u32");
  }
  std::uint64_t get_u64() {
    bounds_check(8);
    return raw_u64("u64");
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string get_str() {
    const std::uint64_t n = get_u64();
    bounds_check(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Reads an element count and pre-validates count*size against the
  /// remaining payload so a corrupt count cannot trigger a huge allocation
  /// (overflow-safe: the division form cannot wrap).
  std::uint64_t counted(std::uint64_t element_size) {
    const std::uint64_t n = get_u64();
    if (!in_section_) throw SnapshotError("read outside a section");
    if (element_size > 0 && n > (section_end_ - pos_) / element_size) {
      throw SnapshotError("corrupt count in section '" + section_tag_ + "': " +
                          std::to_string(n) + " elements of " + std::to_string(element_size) +
                          " bytes exceed the payload");
    }
    return n;
  }

  // --- vector helpers -------------------------------------------------------
  std::vector<double> get_f64v() {
    const std::uint64_t n = counted(8);
    std::vector<double> v(n);
    for (double& x : v) x = get_f64();
    return v;
  }
  std::vector<std::uint64_t> get_u64v() {
    const std::uint64_t n = counted(8);
    std::vector<std::uint64_t> v(n);
    for (std::uint64_t& x : v) x = get_u64();
    return v;
  }
  std::vector<std::uint32_t> get_u32v() {
    const std::uint64_t n = counted(4);
    std::vector<std::uint32_t> v(n);
    for (std::uint32_t& x : v) x = get_u32();
    return v;
  }

 private:
  void bounds_check(std::uint64_t need) const {
    if (!in_section_) throw SnapshotError("read outside a section");
    if (need > section_end_ - pos_) {
      throw SnapshotError("truncated payload in section '" + section_tag_ + "': need " +
                          std::to_string(need) + " bytes, " +
                          std::to_string(section_end_ - pos_) + " remain");
    }
  }
  std::uint8_t payload_u8() {
    bounds_check(1);
    return bytes_[pos_++];
  }
  std::uint8_t raw_u8(const std::string& what) {
    if (pos_ >= bytes_.size()) throw SnapshotError("truncated archive: unexpected end in " + what);
    return bytes_[pos_++];
  }
  std::uint32_t raw_u32(const std::string& what) {
    if (bytes_.size() - pos_ < 4) {
      throw SnapshotError("truncated archive: unexpected end in " + what);
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t raw_u64(const std::string& what) {
    if (bytes_.size() - pos_ < 8) {
      throw SnapshotError("truncated archive: unexpected end in " + what);
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool in_section_ = false;
  std::string section_tag_;
  std::size_t section_end_ = 0;
};

}  // namespace sheriff::snapshot
