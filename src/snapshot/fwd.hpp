#pragma once
// Forward declarations of the snapshot archive types, so subsystem headers
// can declare save_state()/load_state() hooks without pulling the full
// archive implementation into every translation unit.

namespace sheriff::snapshot {
class Writer;
class Reader;
}  // namespace sheriff::snapshot
