#pragma once
// Shared --checkpoint-every / --resume plumbing for the examples and the
// benches: one flag parser plus a run loop that drops periodic checkpoints
// and can pick a run back up from one. Kept out of bench_support so the
// examples can use it without linking the benchmark harness.

#include <cstddef>
#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace sheriff::core {
class DistributedEngine;
}

namespace sheriff::snapshot {

/// Parsed checkpoint flags. Defaults mean "feature off": no periodic
/// saves, no resume — the run loop then degenerates to engine.run().
struct CheckpointCli {
  std::size_t checkpoint_every = 0;  ///< save every N rounds (0 = never)
  std::string checkpoint_prefix = "checkpoint";  ///< files: <prefix>.round<N>.snap
  std::string resume_path;  ///< load this checkpoint before round one
};

/// Consumes `--checkpoint-every N`, `--checkpoint-prefix P`, and
/// `--resume PATH` from argv (both `--flag value` and `--flag=value`),
/// compacting recognized flags out so the caller's own parsing sees only
/// what is left. Throws std::invalid_argument on a malformed value.
CheckpointCli parse_checkpoint_cli(int& argc, char** argv);

/// The path a periodic save for `round` lands at.
[[nodiscard]] std::string checkpoint_path(const CheckpointCli& cli, std::size_t round);

/// Runs `engine` until it has completed `total_rounds` rounds, honoring
/// the flags: resume first (if requested), then save every
/// `checkpoint_every` completed rounds. Returns the metrics of the rounds
/// actually executed *by this process* (a resumed run returns only the
/// post-resume tail, matching what the process computed).
std::vector<core::RoundMetrics> run_with_checkpoints(core::DistributedEngine& engine,
                                                     std::size_t total_rounds,
                                                     const CheckpointCli& cli);

}  // namespace sheriff::snapshot
