#include "snapshot/checkpoint.hpp"

#include <cstdio>
#include <fstream>

#include "core/engine.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::core {

std::vector<std::uint8_t> Checkpoint::serialize(const DistributedEngine& engine) {
  snapshot::Writer writer;
  engine.save_state(writer);
  return writer.buffer();
}

void Checkpoint::deserialize(DistributedEngine& engine, std::vector<std::uint8_t> bytes) {
  snapshot::Reader reader(std::move(bytes));
  engine.load_state(reader);
  if (!reader.at_end()) {
    throw snapshot::SnapshotError("trailing bytes after the last checkpoint section");
  }
}

void Checkpoint::save(const DistributedEngine& engine, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize(engine);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw snapshot::SnapshotError("cannot open checkpoint file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    out.close();
    std::remove(path.c_str());
    throw snapshot::SnapshotError("short write to checkpoint file: " + path);
  }
}

void Checkpoint::load(DistributedEngine& engine, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw snapshot::SnapshotError("cannot open checkpoint file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw snapshot::SnapshotError("short read from checkpoint file: " + path);
  deserialize(engine, std::move(bytes));
}

}  // namespace sheriff::core
