#include "snapshot/checkpoint_cli.hpp"

#include <cstdio>
#include <stdexcept>
#include <string_view>

#include "core/engine.hpp"
#include "snapshot/checkpoint.hpp"

namespace sheriff::snapshot {

namespace {

/// Matches `--flag value` / `--flag=value`; on a hit, fills `value` and
/// reports how many argv slots were consumed (0 = no match).
int match_flag(std::string_view flag, int argc, char** argv, int i, std::string& value) {
  const std::string_view arg = argv[i];
  if (arg == flag) {
    if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
    value = argv[i + 1];
    return 2;
  }
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    value = std::string(arg.substr(flag.size() + 1));
    return 1;
  }
  return 0;
}

std::size_t parse_count(std::string_view flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const unsigned long long n = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return static_cast<std::size_t>(n);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(flag) + ": not a round count: " + value);
  }
}

}  // namespace

CheckpointCli parse_checkpoint_cli(int& argc, char** argv) {
  CheckpointCli cli;
  int out = 1;
  for (int i = 1; i < argc;) {
    std::string value;
    int used = match_flag("--checkpoint-every", argc, argv, i, value);
    if (used != 0) {
      cli.checkpoint_every = parse_count("--checkpoint-every", value);
      i += used;
      continue;
    }
    used = match_flag("--checkpoint-prefix", argc, argv, i, value);
    if (used != 0) {
      cli.checkpoint_prefix = value;
      i += used;
      continue;
    }
    used = match_flag("--resume", argc, argv, i, value);
    if (used != 0) {
      cli.resume_path = value;
      i += used;
      continue;
    }
    argv[out++] = argv[i++];
  }
  argc = out;
  return cli;
}

std::string checkpoint_path(const CheckpointCli& cli, std::size_t round) {
  return cli.checkpoint_prefix + ".round" + std::to_string(round) + ".snap";
}

std::vector<core::RoundMetrics> run_with_checkpoints(core::DistributedEngine& engine,
                                                     std::size_t total_rounds,
                                                     const CheckpointCli& cli) {
  if (!cli.resume_path.empty()) {
    core::Checkpoint::load(engine, cli.resume_path);
    std::fprintf(stderr, "[checkpoint] resumed from %s at round %zu\n", cli.resume_path.c_str(),
                 engine.rounds_run());
  }
  std::vector<core::RoundMetrics> out;
  while (engine.rounds_run() < total_rounds) {
    out.push_back(engine.run_round());
    if (cli.checkpoint_every != 0 && engine.rounds_run() % cli.checkpoint_every == 0 &&
        engine.rounds_run() < total_rounds) {
      const std::string path = checkpoint_path(cli, engine.rounds_run());
      core::Checkpoint::save(engine, path);
      std::fprintf(stderr, "[checkpoint] saved %s\n", path.c_str());
    }
  }
  return out;
}

}  // namespace sheriff::snapshot
