#pragma once
// Archive helpers for common::Pcg32 state — every subsystem that owns a
// generator (trace dynamics, the lossy channel, ...) serializes it the
// same way: raw state + increment + the Box–Muller cache.

#include "common/rng.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::snapshot {

inline void put_rng(Writer& writer, const common::Pcg32& rng) {
  const common::Pcg32::State s = rng.state();
  writer.put_u64(s.state);
  writer.put_u64(s.inc);
  writer.put_bool(s.has_cached_normal);
  writer.put_f64(s.cached_normal);
}

inline void get_rng(Reader& reader, common::Pcg32& rng) {
  common::Pcg32::State s;
  s.state = reader.get_u64();
  s.inc = reader.get_u64();
  s.has_cached_normal = reader.get_bool();
  s.cached_normal = reader.get_f64();
  rng.restore(s);
}

}  // namespace sheriff::snapshot
