#include "topology/fat_tree.hpp"

#include <string>
#include <vector>

#include "common/require.hpp"

namespace sheriff::topo {

FatTreeShape fat_tree_shape(const FatTreeOptions& options) {
  const auto k = static_cast<std::size_t>(options.pods);
  const std::size_t half = k / 2;
  FatTreeShape shape{};
  shape.racks = k * half;
  shape.hosts = shape.racks * static_cast<std::size_t>(options.hosts_per_rack);
  shape.tor_switches = k * half;
  shape.agg_switches = k * half;
  shape.core_switches = half * half;
  // host links + ToR-agg links (full bipartite per pod) + agg-core links
  // (each core connects to one agg per pod).
  shape.links = shape.hosts + k * half * half + shape.core_switches * k;
  return shape;
}

Topology build_fat_tree(const FatTreeOptions& options) {
  SHERIFF_REQUIRE(options.pods >= 2 && options.pods % 2 == 0,
                  "fat-tree pod count must be even and >= 2");
  SHERIFF_REQUIRE(options.hosts_per_rack >= 1, "need at least one host per rack");
  const int k = options.pods;
  const int half = k / 2;

  Topology topo;
  topo.set_name("fat-tree-k" + std::to_string(k));

  // Racks and their geometry (pod-major ordering).
  const std::size_t total_racks = static_cast<std::size_t>(k) * static_cast<std::size_t>(half);
  std::vector<RackId> racks(total_racks);
  for (std::size_t i = 0; i < total_racks; ++i) {
    racks[i] = topo.add_rack();
    const auto [x, y] = rack_position(options.floor, i);
    topo.set_rack_position(racks[i], x, y);
  }

  // Per pod: ToRs (edge switches) with hosts, and aggregation switches.
  std::vector<std::vector<NodeId>> agg(k);   // [pod][i]
  std::vector<std::vector<NodeId>> tors(k);  // [pod][i]
  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < half; ++i) {
      const std::size_t rack_index =
          static_cast<std::size_t>(pod) * static_cast<std::size_t>(half) +
          static_cast<std::size_t>(i);
      const RackId rack = racks[rack_index];
      const auto [rx, ry] = rack_position(options.floor, rack_index);

      const NodeId tor = topo.add_node(NodeKind::kTorSwitch, kInvalidRack, pod);
      topo.assign_tor_to_rack(tor, rack);
      topo.set_node_position(tor, rx, ry);
      tors[pod].push_back(tor);

      for (int h = 0; h < options.hosts_per_rack; ++h) {
        const NodeId host = topo.add_node(NodeKind::kHost, kInvalidRack, pod);
        topo.assign_host_to_rack(host, rack);
        topo.set_node_position(host, rx, ry);
        // Intra-rack patch cable.
        topo.add_link(host, tor, options.host_link_gbps, 1.0);
      }
    }
    for (int i = 0; i < half; ++i) {
      const NodeId a = topo.add_node(NodeKind::kAggSwitch, kInvalidRack, pod);
      // Aggregation switches sit in the pod's first rack row position.
      const std::size_t anchor_index =
          static_cast<std::size_t>(pod) * static_cast<std::size_t>(half);
      const auto [ax, ay] = rack_position(options.floor, anchor_index);
      topo.set_node_position(a, ax, ay);
      agg[pod].push_back(a);
    }
    // Full bipartite ToR — aggregation inside the pod.
    for (int i = 0; i < half; ++i) {
      for (int j = 0; j < half; ++j) {
        const NodeId tor = tors[pod][static_cast<std::size_t>(i)];
        const NodeId a = agg[pod][static_cast<std::size_t>(j)];
        const Node& tn = topo.node(tor);
        const Node& an = topo.node(a);
        topo.add_link(tor, a, options.tor_agg_gbps,
                      cable_distance(tn.x, tn.y, an.x, an.y));
      }
    }
  }

  // Core layer: (k/2)^2 switches; core (i, j) connects to agg j of each pod.
  for (int i = 0; i < half; ++i) {
    for (int j = 0; j < half; ++j) {
      const NodeId core = topo.add_node(NodeKind::kCoreSwitch);
      // Cores live in a dedicated middle row of the hall.
      const auto [cx, cy] =
          rack_position(options.floor, static_cast<std::size_t>(i * half + j));
      topo.set_node_position(core, cx, cy + 2.0 * options.floor.row_spacing_m);
      for (int pod = 0; pod < k; ++pod) {
        const NodeId a = agg[pod][static_cast<std::size_t>(j)];
        const Node& an = topo.node(a);
        const Node& cn = topo.node(core);
        topo.add_link(a, core, options.agg_core_gbps,
                      cable_distance(an.x, an.y, cn.x, cn.y));
      }
    }
  }

  topo.validate();
  return topo;
}

}  // namespace sheriff::topo
