#include "topology/bcube.hpp"

#include <string>
#include <vector>

#include "common/require.hpp"

namespace sheriff::topo {

namespace {

std::size_t int_pow(std::size_t base, int exp) {
  std::size_t out = 1;
  for (int i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace

BCubeShape bcube_shape(const BCubeOptions& options) {
  const auto n = static_cast<std::size_t>(options.ports);
  const int k = options.levels;
  BCubeShape shape{};
  shape.servers = int_pow(n, k + 1);
  shape.switches_per_level = int_pow(n, k);
  shape.switch_levels = static_cast<std::size_t>(k) + 1;
  shape.links = shape.servers * shape.switch_levels;  // one port per level
  shape.racks = shape.switches_per_level;             // one rack per level-0 switch
  return shape;
}

Topology build_bcube(const BCubeOptions& options) {
  SHERIFF_REQUIRE(options.ports >= 2, "BCube needs at least 2 ports per switch");
  SHERIFF_REQUIRE(options.levels >= 1 && options.levels <= 3,
                  "BCube level out of supported range");
  const auto n = static_cast<std::size_t>(options.ports);
  const int k = options.levels;
  const std::size_t n_servers = int_pow(n, k + 1);
  const std::size_t switches_per_level = int_pow(n, k);

  Topology topo;
  topo.set_name("bcube-n" + std::to_string(options.ports) + "-k" + std::to_string(k));

  // Servers, addressed a_k ... a_1 a_0 in base n; server index is the
  // base-n number. Racks follow the level-0 grouping: digits a_k..a_1.
  std::vector<RackId> racks(switches_per_level);
  for (std::size_t r = 0; r < switches_per_level; ++r) {
    racks[r] = topo.add_rack();
    const auto [x, y] = rack_position(options.floor, r);
    topo.set_rack_position(racks[r], x, y);
  }

  std::vector<NodeId> servers(n_servers);
  for (std::size_t s = 0; s < n_servers; ++s) {
    const std::size_t rack_index = s / n;  // strip digit a_0
    servers[s] = topo.add_node(NodeKind::kHost);
    topo.assign_host_to_rack(servers[s], racks[rack_index]);
    const Rack& rk = topo.rack(racks[rack_index]);
    topo.set_node_position(servers[s], rk.x, rk.y);
  }

  // Switch levels. A level-i switch is identified by the server address
  // with digit i removed; it connects the n servers sharing those digits.
  for (int level = 0; level <= k; ++level) {
    const std::size_t digit_stride = int_pow(n, level);
    for (std::size_t sw = 0; sw < switches_per_level; ++sw) {
      // Rebuild the base address with digit `level` zeroed: split sw into
      // low (digits below `level`) and high (digits above).
      const std::size_t low = sw % digit_stride;
      const std::size_t high = sw / digit_stride;
      const std::size_t base_address = high * digit_stride * n + low;

      const NodeId sw_node = topo.add_node(
          level == 0 ? NodeKind::kTorSwitch : NodeKind::kBCubeSwitch, kInvalidRack,
          /*pod=*/-1, /*level=*/level);
      if (level == 0) {
        topo.assign_tor_to_rack(sw_node, racks[sw]);
        const Rack& rk = topo.rack(racks[sw]);
        topo.set_node_position(sw_node, rk.x, rk.y);
      } else {
        // Higher-level switches sit in extra rows behind the server racks.
        const auto [x, y] = rack_position(options.floor, sw);
        topo.set_node_position(sw_node, x,
                               y + static_cast<double>(level) *
                                       2.0 * options.floor.row_spacing_m);
      }

      for (std::size_t port = 0; port < n; ++port) {
        const std::size_t address = base_address + port * digit_stride;
        const NodeId server = servers[address];
        const Node& sn = topo.node(server);
        const Node& wn = topo.node(sw_node);
        const double dist = level == 0 ? 1.0 : cable_distance(sn.x, sn.y, wn.x, wn.y);
        topo.add_link(server, sw_node, options.link_gbps, dist);
      }
    }
  }

  topo.validate();
  return topo;
}

}  // namespace sheriff::topo
