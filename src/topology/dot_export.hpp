#pragma once
// GraphViz DOT export of a topology — handy for eyeballing the fabrics
// the builders produce (`dot -Tsvg fabric.dot > fabric.svg`).

#include <iosfwd>

#include "topology/topology.hpp"

namespace sheriff::topo {

struct DotOptions {
  bool include_hosts = true;        ///< drop hosts for a switches-only view
  bool label_capacities = true;     ///< edge labels "10G"
  bool cluster_racks = true;        ///< group each rack in a subgraph box
};

/// Writes the topology as an undirected DOT graph.
void write_dot(std::ostream& os, const Topology& topology, const DotOptions& options = {});

}  // namespace sheriff::topo
