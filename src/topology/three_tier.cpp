#include "topology/three_tier.hpp"

#include <string>

#include "common/require.hpp"

namespace sheriff::topo {

ThreeTierShape three_tier_shape(const ThreeTierOptions& options) {
  ThreeTierShape shape{};
  shape.racks = static_cast<std::size_t>(options.racks);
  shape.hosts = shape.racks * static_cast<std::size_t>(options.hosts_per_rack);
  shape.tor_switches = shape.racks;
  shape.agg_switches = static_cast<std::size_t>(
      (options.racks + options.racks_per_agg - 1) / options.racks_per_agg);
  shape.core_switches = static_cast<std::size_t>(options.core_switches);
  // host links + one uplink per ToR + full bipartite agg-core.
  shape.links = shape.hosts + shape.tor_switches + shape.agg_switches * shape.core_switches;
  return shape;
}

Topology build_three_tier(const ThreeTierOptions& options) {
  SHERIFF_REQUIRE(options.racks >= 1, "need at least one rack");
  SHERIFF_REQUIRE(options.hosts_per_rack >= 1, "need at least one host per rack");
  SHERIFF_REQUIRE(options.racks_per_agg >= 1, "racks_per_agg must be positive");
  SHERIFF_REQUIRE(options.core_switches >= 1, "need at least one core switch");

  Topology topo;
  topo.set_name("three-tier-r" + std::to_string(options.racks));

  const auto shape = three_tier_shape(options);

  // Aggregation switches first (positioned over their rack group).
  std::vector<NodeId> agg(shape.agg_switches);
  for (std::size_t a = 0; a < shape.agg_switches; ++a) {
    agg[a] = topo.add_node(NodeKind::kAggSwitch);
    const auto [x, y] =
        rack_position(options.floor, a * static_cast<std::size_t>(options.racks_per_agg));
    topo.set_node_position(agg[a], x, y + options.floor.row_spacing_m);
  }

  // Core layer in a back row.
  std::vector<NodeId> core(shape.core_switches);
  for (std::size_t c = 0; c < shape.core_switches; ++c) {
    core[c] = topo.add_node(NodeKind::kCoreSwitch);
    const auto [x, y] = rack_position(options.floor, c);
    topo.set_node_position(core[c], x, y + 3.0 * options.floor.row_spacing_m);
    for (std::size_t a = 0; a < shape.agg_switches; ++a) {
      const auto& an = topo.node(agg[a]);
      const auto& cn = topo.node(core[c]);
      topo.add_link(agg[a], core[c], options.agg_core_gbps,
                    cable_distance(an.x, an.y, cn.x, cn.y));
    }
  }

  // Racks: ToR + hosts; each ToR single-homed to its group's agg switch —
  // the legacy tree's defining (and fragile) property.
  for (int r = 0; r < options.racks; ++r) {
    const RackId rack = topo.add_rack();
    const auto [rx, ry] = rack_position(options.floor, static_cast<std::size_t>(r));
    topo.set_rack_position(rack, rx, ry);

    const NodeId tor = topo.add_node(NodeKind::kTorSwitch);
    topo.assign_tor_to_rack(tor, rack);
    topo.set_node_position(tor, rx, ry);

    for (int h = 0; h < options.hosts_per_rack; ++h) {
      const NodeId host = topo.add_node(NodeKind::kHost);
      topo.assign_host_to_rack(host, rack);
      topo.set_node_position(host, rx, ry);
      topo.add_link(host, tor, options.host_link_gbps, 1.0);
    }

    const std::size_t group = static_cast<std::size_t>(r / options.racks_per_agg);
    const auto& an = topo.node(agg[group]);
    topo.add_link(tor, agg[group], options.tor_agg_gbps,
                  cable_distance(rx, ry, an.x, an.y));
  }

  topo.validate();
  return topo;
}

}  // namespace sheriff::topo
