#pragma once
// Floor-plan geometry (Sec. II-A): standard racks 0.6 m wide, 1 m deep,
// 2 m tall, placed side by side in rows with ~2 m aisles. Link distances
// D(e) in the migration cost model derive from these positions.

#include <cstddef>
#include <utility>

namespace sheriff::topo {

struct FloorPlan {
  double rack_width_m = 0.6;
  double rack_depth_m = 1.0;
  double row_spacing_m = 2.0;      ///< aisle between rows
  std::size_t racks_per_row = 16;  ///< layout fold width
};

/// Position (x, y) of the rack with the given index under the plan.
std::pair<double, double> rack_position(const FloorPlan& plan, std::size_t rack_index);

/// Cable-run distance between two floor positions: Manhattan distance
/// (cables follow trays along rows and across aisles) plus a fixed 1 m of
/// intra-rack patching at each end.
double cable_distance(double ax, double ay, double bx, double by);

}  // namespace sheriff::topo
