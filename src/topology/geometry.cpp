#include "topology/geometry.hpp"

#include <cmath>

#include "common/require.hpp"

namespace sheriff::topo {

std::pair<double, double> rack_position(const FloorPlan& plan, std::size_t rack_index) {
  SHERIFF_REQUIRE(plan.racks_per_row > 0, "racks_per_row must be positive");
  const std::size_t row = rack_index / plan.racks_per_row;
  const std::size_t col = rack_index % plan.racks_per_row;
  const double x = (static_cast<double>(col) + 0.5) * plan.rack_width_m;
  const double y = static_cast<double>(row) * (plan.rack_depth_m + plan.row_spacing_m);
  return {x, y};
}

double cable_distance(double ax, double ay, double bx, double by) {
  constexpr double kPatchingAllowance = 2.0;  // 1 m at each end
  return std::fabs(ax - bx) + std::fabs(ay - by) + kPatchingAllowance;
}

}  // namespace sheriff::topo
