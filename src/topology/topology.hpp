#pragma once
// The wired network graph G_r = (V ∪ S, E_r) of Sec. II-C, with rack
// bookkeeping. Builders (fat_tree.hpp, bcube.hpp) populate an instance;
// the router, the migration cost model, and the shims all query it.

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "topology/entities.hpp"

namespace sheriff::topo {

class LivenessMask;

/// Edge-weight convention when exporting to a graph::Graph.
enum class EdgeWeight : std::uint8_t {
  kHops,             ///< every link counts 1 (shortest-hop routing)
  kDistance,         ///< physical distance D(e), meters
  kInverseCapacity,  ///< 1 / C(e), prefers fat links
};

class Topology {
 public:
  Topology() = default;

  // --- construction (used by the builders) -------------------------------
  NodeId add_node(NodeKind kind, RackId rack = kInvalidRack, std::int32_t pod = -1,
                  std::int32_t level = -1);
  LinkId add_link(NodeId a, NodeId b, double capacity_gbps, double distance_m);
  RackId add_rack();
  void set_node_position(NodeId node, double x, double y);
  void assign_host_to_rack(NodeId host, RackId rack);
  void assign_tor_to_rack(NodeId tor, RackId rack);
  void set_rack_position(RackId rack, double x, double y);
  void set_name(std::string name) { name_ = std::move(name); }

  // --- queries ------------------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] std::size_t rack_count() const noexcept { return racks_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const Rack& rack(RackId id) const;
  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }
  [[nodiscard]] std::span<const Rack> racks() const noexcept { return racks_; }

  /// Links incident to a node.
  [[nodiscard]] std::span<const LinkId> links_of(NodeId node) const;
  /// The other endpoint of `link` relative to `node`.
  [[nodiscard]] NodeId peer(LinkId link, NodeId node) const;
  /// The link joining a and b, or fails if absent.
  [[nodiscard]] LinkId link_between(NodeId a, NodeId b) const;
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  /// All node ids of a given kind.
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;
  [[nodiscard]] std::size_t count_kind(NodeKind kind) const;
  [[nodiscard]] std::size_t host_count() const { return count_kind(NodeKind::kHost); }

  /// Racks whose ToR is two hops away (ToR — switch — ToR'): the "one hop
  /// wired neighbors" forming a shim's dominating region for migration.
  [[nodiscard]] std::vector<RackId> neighbor_racks(RackId rack) const;

  /// Exports the wired graph with the chosen edge weights. Vertex ids
  /// coincide with NodeIds.
  [[nodiscard]] graph::Graph wired_graph(EdgeWeight weight) const;

  /// Same, restricted to the live fabric: links that are failed, or whose
  /// endpoint node is failed, are omitted (dead nodes stay as isolated
  /// vertices so NodeIds keep coinciding with vertex ids).
  [[nodiscard]] graph::Graph wired_graph(EdgeWeight weight, const LivenessMask& liveness) const;

  /// Structural sanity: connected, every host degree 1+ and in a rack,
  /// every rack has a ToR. Throws RequirementError with details if not.
  void validate() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<Rack> racks_;
  std::vector<std::vector<LinkId>> incident_;
};

}  // namespace sheriff::topo
