#include "topology/dot_export.hpp"

#include <ostream>

#include "common/table.hpp"

namespace sheriff::topo {

namespace {

const char* shape_of(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost: return "box";
    case NodeKind::kTorSwitch: return "ellipse";
    case NodeKind::kAggSwitch: return "hexagon";
    case NodeKind::kCoreSwitch: return "doubleoctagon";
    case NodeKind::kBCubeSwitch: return "hexagon";
  }
  return "ellipse";
}

}  // namespace

void write_dot(std::ostream& os, const Topology& topology, const DotOptions& options) {
  os << "graph \"" << topology.name() << "\" {\n"
     << "  layout=neato;\n  overlap=false;\n  node [fontsize=9];\n  edge [fontsize=8];\n";

  const auto emit_node = [&](const Node& node) {
    os << "    n" << node.id << " [label=\"" << to_string(node.kind) << node.id
       << "\", shape=" << shape_of(node.kind) << "];\n";
  };

  if (options.cluster_racks) {
    for (const Rack& rack : topology.racks()) {
      os << "  subgraph cluster_rack" << rack.id << " {\n    label=\"rack " << rack.id
         << "\";\n";
      if (rack.tor != kInvalidNode) emit_node(topology.node(rack.tor));
      if (options.include_hosts) {
        for (NodeId host : rack.hosts) emit_node(topology.node(host));
      }
      os << "  }\n";
    }
  }
  // Nodes outside any rack (aggregation/core/BCube levels), plus everything
  // when clustering is off.
  for (const Node& node : topology.nodes()) {
    if (!options.include_hosts && node.kind == NodeKind::kHost) continue;
    if (options.cluster_racks && node.rack != kInvalidRack) continue;
    os << "  ";
    emit_node(node);
  }

  for (const Link& link : topology.links()) {
    const auto a = topology.node(link.a);
    const auto b = topology.node(link.b);
    if (!options.include_hosts &&
        (a.kind == NodeKind::kHost || b.kind == NodeKind::kHost)) {
      continue;
    }
    os << "  n" << link.a << " -- n" << link.b;
    if (options.label_capacities) {
      os << " [label=\"" << common::format_fixed(link.capacity_gbps, 0) << "G\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace sheriff::topo
