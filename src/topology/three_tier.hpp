#pragma once
// Legacy three-tier tree builder: racks single-homed to an aggregation
// switch, aggregation fully meshed to a small core. The paper positions
// Sheriff as topology-agnostic ("can be easily implemented in other DCN
// topologies"); this is the classic oversubscribed enterprise fabric that
// claim is usually tested against — no ECMP redundancy below the core, so
// reroute options are scarce and pre-alert migration does the heavy
// lifting.

#include "topology/geometry.hpp"
#include "topology/topology.hpp"

namespace sheriff::topo {

struct ThreeTierOptions {
  int racks = 16;
  int hosts_per_rack = 4;
  int racks_per_agg = 4;        ///< racks sharing one aggregation switch
  int core_switches = 2;
  double host_link_gbps = 1.0;
  double tor_agg_gbps = 10.0;
  double agg_core_gbps = 10.0;
  FloorPlan floor;
};

Topology build_three_tier(const ThreeTierOptions& options);

struct ThreeTierShape {
  std::size_t racks;
  std::size_t hosts;
  std::size_t tor_switches;
  std::size_t agg_switches;
  std::size_t core_switches;
  std::size_t links;
};
ThreeTierShape three_tier_shape(const ThreeTierOptions& options);

}  // namespace sheriff::topo
