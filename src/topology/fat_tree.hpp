#pragma once
// Fat-Tree builder (Al-Fares et al., SIGCOMM 2008; the paper's Fig. 1 uses
// the 8-pod instance). A k-pod Fat-Tree has k pods of k/2 ToR and k/2
// aggregation switches each, (k/2)^2 core switches, and every ToR serves
// one rack of hosts.

#include "topology/geometry.hpp"
#include "topology/topology.hpp"

namespace sheriff::topo {

struct FatTreeOptions {
  int pods = 8;             ///< k; must be even and >= 2
  int hosts_per_rack = 4;   ///< servers under each ToR (classic value is k/2;
                            ///< the paper's facility description uses 40)
  double host_link_gbps = 1.0;    ///< host — ToR
  double tor_agg_gbps = 10.0;     ///< ToR — aggregation (Sec. II-A; the
                                  ///< evaluation of Sec. VI-B sets this to 1)
  double agg_core_gbps = 10.0;    ///< aggregation — core
  FloorPlan floor;
};

/// Builds and validates the topology. Racks are numbered pod-major.
Topology build_fat_tree(const FatTreeOptions& options);

/// Node/link count formulas, exposed so tests can check the builder.
struct FatTreeShape {
  std::size_t racks;
  std::size_t hosts;
  std::size_t tor_switches;
  std::size_t agg_switches;
  std::size_t core_switches;
  std::size_t links;
};
FatTreeShape fat_tree_shape(const FatTreeOptions& options);

}  // namespace sheriff::topo
