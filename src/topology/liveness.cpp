#include "topology/liveness.hpp"

#include "common/require.hpp"
#include "topology/topology.hpp"

namespace sheriff::topo {

LivenessMask::LivenessMask(const Topology& topo)
    : node_up_(topo.node_count(), true), link_up_(topo.link_count(), true) {}

bool LivenessMask::link_usable(const Topology& topo, LinkId link) const {
  if (!link_up_[link]) return false;
  const Link& l = topo.link(link);
  return node_up_[l.a] && node_up_[l.b];
}

bool LivenessMask::host_attached(const Topology& topo, NodeId host) const {
  if (!node_up_[host]) return false;
  if (all_up()) return true;
  for (LinkId l : topo.links_of(host)) {
    if (link_usable(topo, l)) return true;
  }
  return false;
}

void LivenessMask::set_node(NodeId node, bool up) {
  SHERIFF_REQUIRE(node < node_up_.size(), "liveness: node out of range");
  if (node_up_[node] == up) return;
  node_up_[node] = up;
  failed_nodes_ += up ? -1 : 1;
  ++version_;
}

void LivenessMask::set_link(LinkId link, bool up) {
  SHERIFF_REQUIRE(link < link_up_.size(), "liveness: link out of range");
  if (link_up_[link] == up) return;
  link_up_[link] = up;
  failed_links_ += up ? -1 : 1;
  ++version_;
}

std::size_t LivenessMask::unusable_link_count(const Topology& topo) const {
  std::size_t count = 0;
  for (LinkId l = 0; l < link_up_.size(); ++l) {
    if (!link_usable(topo, l)) ++count;
  }
  return count;
}

std::size_t LivenessMask::failed_count_of_kind(const Topology& topo, NodeKind kind) const {
  std::size_t count = 0;
  for (NodeId n = 0; n < node_up_.size(); ++n) {
    if (!node_up_[n] && topo.node(n).kind == kind) ++count;
  }
  return count;
}

}  // namespace sheriff::topo
