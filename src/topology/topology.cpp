#include "topology/topology.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "topology/liveness.hpp"

namespace sheriff::topo {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kTorSwitch: return "tor";
    case NodeKind::kAggSwitch: return "agg";
    case NodeKind::kCoreSwitch: return "core";
    case NodeKind::kBCubeSwitch: return "bcube-switch";
  }
  return "unknown";
}

NodeId Topology::add_node(NodeKind kind, RackId rack, std::int32_t pod, std::int32_t level) {
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = kind;
  node.rack = rack;
  node.pod = pod;
  node.level = level;
  nodes_.push_back(node);
  incident_.emplace_back();
  return node.id;
}

LinkId Topology::add_link(NodeId a, NodeId b, double capacity_gbps, double distance_m) {
  SHERIFF_REQUIRE(a < nodes_.size() && b < nodes_.size(), "link endpoint out of range");
  SHERIFF_REQUIRE(a != b, "link cannot be a self-loop");
  SHERIFF_REQUIRE(capacity_gbps > 0.0, "link capacity must be positive");
  SHERIFF_REQUIRE(distance_m >= 0.0, "link distance must be non-negative");
  Link link;
  link.id = static_cast<LinkId>(links_.size());
  link.a = a;
  link.b = b;
  link.capacity_gbps = capacity_gbps;
  link.distance_m = distance_m;
  links_.push_back(link);
  incident_[a].push_back(link.id);
  incident_[b].push_back(link.id);
  return link.id;
}

RackId Topology::add_rack() {
  Rack rack;
  rack.id = static_cast<RackId>(racks_.size());
  racks_.push_back(rack);
  return rack.id;
}

void Topology::set_node_position(NodeId node, double x, double y) {
  SHERIFF_REQUIRE(node < nodes_.size(), "node out of range");
  nodes_[node].x = x;
  nodes_[node].y = y;
}

void Topology::assign_host_to_rack(NodeId host, RackId rack) {
  SHERIFF_REQUIRE(host < nodes_.size(), "host out of range");
  SHERIFF_REQUIRE(rack < racks_.size(), "rack out of range");
  SHERIFF_REQUIRE(nodes_[host].kind == NodeKind::kHost, "only hosts join rack host lists");
  nodes_[host].rack = rack;
  racks_[rack].hosts.push_back(host);
}

void Topology::assign_tor_to_rack(NodeId tor, RackId rack) {
  SHERIFF_REQUIRE(tor < nodes_.size(), "tor out of range");
  SHERIFF_REQUIRE(rack < racks_.size(), "rack out of range");
  SHERIFF_REQUIRE(is_switch(nodes_[tor].kind), "rack ToR must be a switch");
  SHERIFF_REQUIRE(racks_[rack].tor == kInvalidNode, "rack already has a ToR");
  nodes_[tor].rack = rack;
  racks_[rack].tor = tor;
}

void Topology::set_rack_position(RackId rack, double x, double y) {
  SHERIFF_REQUIRE(rack < racks_.size(), "rack out of range");
  racks_[rack].x = x;
  racks_[rack].y = y;
}

const Node& Topology::node(NodeId id) const {
  SHERIFF_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Topology::link(LinkId id) const {
  SHERIFF_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

const Rack& Topology::rack(RackId id) const {
  SHERIFF_REQUIRE(id < racks_.size(), "rack id out of range");
  return racks_[id];
}

std::span<const LinkId> Topology::links_of(NodeId node) const {
  SHERIFF_REQUIRE(node < incident_.size(), "node id out of range");
  return incident_[node];
}

NodeId Topology::peer(LinkId link_id, NodeId node) const {
  const Link& l = link(link_id);
  SHERIFF_REQUIRE(l.a == node || l.b == node, "node is not an endpoint of link");
  return l.a == node ? l.b : l.a;
}

LinkId Topology::link_between(NodeId a, NodeId b) const {
  for (LinkId id : links_of(a)) {
    if (peer(id, a) == b) return id;
  }
  SHERIFF_REQUIRE(false, "no link between the given nodes");
  return 0;  // unreachable
}

bool Topology::adjacent(NodeId a, NodeId b) const {
  for (LinkId id : links_of(a)) {
    if (peer(id, a) == b) return true;
  }
  return false;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.kind == kind) out.push_back(n.id);
  }
  return out;
}

std::size_t Topology::count_kind(NodeKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [kind](const Node& n) { return n.kind == kind; }));
}

std::vector<RackId> Topology::neighbor_racks(RackId rack_id) const {
  const Rack& r = rack(rack_id);
  SHERIFF_REQUIRE(r.tor != kInvalidNode, "rack has no ToR");
  // Two-hop reach through one intermediate switch. We start from the ToR
  // *and* the rack's hosts: in switch-centric fabrics (Fat-Tree) racks meet
  // at aggregation switches above the ToRs, while in server-centric fabrics
  // (BCube) racks meet at higher-level switches the hosts attach to.
  std::vector<NodeId> sources = r.hosts;
  sources.push_back(r.tor);
  std::vector<bool> seen(racks_.size(), false);
  std::vector<RackId> out;
  for (NodeId src : sources) {
    for (LinkId up : links_of(src)) {
      const NodeId mid = peer(up, src);
      const Node& mid_node = nodes_[mid];
      if (!is_switch(mid_node.kind) || mid_node.rack == rack_id) continue;
      for (LinkId down : links_of(mid)) {
        const NodeId other = peer(down, mid);
        const Node& candidate = nodes_[other];
        if (candidate.rack == kInvalidRack || candidate.rack == rack_id) continue;
        if (!seen[candidate.rack]) {
          seen[candidate.rack] = true;
          out.push_back(candidate.rack);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

graph::Graph Topology::wired_graph(EdgeWeight weight) const {
  graph::Graph g(nodes_.size());
  for (const Link& l : links_) {
    double w = 1.0;
    switch (weight) {
      case EdgeWeight::kHops: w = 1.0; break;
      case EdgeWeight::kDistance: w = l.distance_m; break;
      case EdgeWeight::kInverseCapacity: w = 1.0 / l.capacity_gbps; break;
    }
    g.add_edge(l.a, l.b, w);
  }
  return g;
}

graph::Graph Topology::wired_graph(EdgeWeight weight, const LivenessMask& liveness) const {
  graph::Graph g(nodes_.size());
  for (const Link& l : links_) {
    if (!liveness.link_usable(*this, l.id)) continue;
    double w = 1.0;
    switch (weight) {
      case EdgeWeight::kHops: w = 1.0; break;
      case EdgeWeight::kDistance: w = l.distance_m; break;
      case EdgeWeight::kInverseCapacity: w = 1.0 / l.capacity_gbps; break;
    }
    g.add_edge(l.a, l.b, w);
  }
  return g;
}

void Topology::validate() const {
  SHERIFF_REQUIRE(!nodes_.empty(), "topology has no nodes");
  const graph::Graph g = wired_graph(EdgeWeight::kHops);
  SHERIFF_REQUIRE(g.component_count() == 1, "topology is disconnected");
  for (const Node& n : nodes_) {
    SHERIFF_REQUIRE(!incident_[n.id].empty(), "isolated node " + std::to_string(n.id));
    if (n.kind == NodeKind::kHost) {
      SHERIFF_REQUIRE(n.rack != kInvalidRack, "host outside any rack");
    }
  }
  for (const Rack& r : racks_) {
    SHERIFF_REQUIRE(r.tor != kInvalidNode, "rack without ToR");
    SHERIFF_REQUIRE(!r.hosts.empty(), "rack without hosts");
  }
}

}  // namespace sheriff::topo
