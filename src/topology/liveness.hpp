#pragma once
// LivenessMask: which nodes and links of a Topology are currently alive.
// The topology itself stays immutable (it is shared across engines); a
// mask layered on top carries the fault state. A link carries traffic only
// when the link itself and both endpoints are up, so failing a node
// implicitly severs its links. The mask bumps a version counter on every
// change, letting consumers (the router's reachability cache) detect when
// a recompute is due.

#include <cstdint>
#include <vector>

#include "topology/entities.hpp"

namespace sheriff::topo {

class Topology;

class LivenessMask {
 public:
  LivenessMask() = default;
  /// Everything starts alive.
  explicit LivenessMask(const Topology& topo);

  [[nodiscard]] bool node_up(NodeId node) const { return node_up_[node]; }
  [[nodiscard]] bool link_up(LinkId link) const { return link_up_[link]; }
  /// True when the link and both of its endpoints are up.
  [[nodiscard]] bool link_usable(const Topology& topo, LinkId link) const;
  /// True when the node is up and at least one incident link is usable. A
  /// live host behind a dead ToR is cut off: it can neither send traffic
  /// nor receive migrations, so consumers treat it like a failed host.
  [[nodiscard]] bool host_attached(const Topology& topo, NodeId host) const;

  void set_node(NodeId node, bool up);
  void set_link(LinkId link, bool up);

  /// True when no node or link is failed (the pristine-fabric fast path).
  [[nodiscard]] bool all_up() const noexcept {
    return failed_nodes_ == 0 && failed_links_ == 0;
  }
  [[nodiscard]] std::size_t failed_node_count() const noexcept { return failed_nodes_; }
  /// Links explicitly failed (excludes links severed by a dead endpoint).
  [[nodiscard]] std::size_t failed_link_count() const noexcept { return failed_links_; }
  /// Links unable to carry traffic: failed outright or severed by a dead
  /// endpoint.
  [[nodiscard]] std::size_t unusable_link_count(const Topology& topo) const;
  /// Failed nodes of a given kind (e.g. counting dead switches vs hosts).
  [[nodiscard]] std::size_t failed_count_of_kind(const Topology& topo, NodeKind kind) const;

  /// Monotonic change counter; bumped whenever any bit flips.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  std::vector<bool> node_up_;
  std::vector<bool> link_up_;
  std::size_t failed_nodes_ = 0;
  std::size_t failed_links_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace sheriff::topo
