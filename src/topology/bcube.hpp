#pragma once
// BCube builder (Guo et al., SIGCOMM 2009) — the paper's server-centric
// test topology. BCube(n, k) has n^(k+1) servers, each with k+1 ports,
// and k+1 levels of n^k switches. A level-i switch connects the n servers
// whose addresses agree on every digit except digit i.
//
// Rack mapping: each level-0 switch and its n servers form one rack (the
// shim rides on the level-0 switch), matching the paper's per-rack shim
// deployment; the evaluation's "number of switches each level" sweep
// (8..48) is BCube(n, 1) with n in that range.

#include "topology/geometry.hpp"
#include "topology/topology.hpp"

namespace sheriff::topo {

struct BCubeOptions {
  int ports = 4;   ///< n: switch port count = servers per level-0 switch
  int levels = 1;  ///< k: highest level (k+1 switch levels in total)
  double link_gbps = 1.0;  ///< all BCube links are uniform server—switch links
  FloorPlan floor;
};

Topology build_bcube(const BCubeOptions& options);

struct BCubeShape {
  std::size_t servers;
  std::size_t switches_per_level;
  std::size_t switch_levels;
  std::size_t links;
  std::size_t racks;
};
BCubeShape bcube_shape(const BCubeOptions& options);

}  // namespace sheriff::topo
