#pragma once
// Physical entities of a DCN (Sec. II-A/II-C): hosts, ToR / aggregation /
// core switches (plus BCube's level switches), links with capacity and
// physical distance, and racks — the paper's smallest management unit,
// each carrying one shim / delegation node v_i.

#include <cstdint>
#include <string>
#include <vector>

namespace sheriff::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using RackId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr RackId kInvalidRack = static_cast<RackId>(-1);

enum class NodeKind : std::uint8_t {
  kHost,         ///< physical server (h_ij), 1–2U in a rack
  kTorSwitch,    ///< top-of-rack switch; the shim v_i rides on it
  kAggSwitch,    ///< aggregation layer switch
  kCoreSwitch,   ///< core layer switch
  kBCubeSwitch,  ///< BCube level switch (level stored on the node)
};

[[nodiscard]] constexpr bool is_switch(NodeKind kind) noexcept {
  return kind != NodeKind::kHost;
}

const char* to_string(NodeKind kind) noexcept;

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  RackId rack = kInvalidRack;  ///< owning rack for hosts/ToRs; invalid otherwise
  std::int32_t pod = -1;       ///< Fat-Tree pod index, -1 if N/A
  std::int32_t level = -1;     ///< BCube switch level, -1 if N/A
  double x = 0.0;              ///< floor-plan position, meters
  double y = 0.0;
};

struct Link {
  LinkId id = 0;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double capacity_gbps = 1.0;  ///< C(e), maximum capacity
  double distance_m = 1.0;     ///< D(e), physical cable run
};

struct Rack {
  RackId id = kInvalidRack;
  NodeId tor = kInvalidNode;
  std::vector<NodeId> hosts;
  double x = 0.0;  ///< rack position on the floor plan, meters
  double y = 0.0;
};

}  // namespace sheriff::topo
