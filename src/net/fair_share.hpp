#pragma once
// Max–min fair bandwidth allocation (progressive filling / water-filling)
// over routed flows. This produces the per-link signals the management
// algorithms consume: available bandwidth B(e), utilization rate P(e), and
// per-flow achieved rate.
//
// Two implementations share the same semantics:
//
//   * max_min_fair_share — the from-scratch reference: resolves every
//     flow's path into link ids and runs progressive filling over the whole
//     fabric. Simple, allocation-heavy, O(rebuild) per call.
//   * FairShareSolver — the incremental solver the engine's per-round hot
//     path uses. It keeps the flow↔link incidence and the previous
//     allocation across calls, detects which flows changed (demand, path,
//     rate limit, link liveness), closes the dirty set over shared links,
//     and re-waterfills only the affected flows. Untouched components keep
//     their previous rates. See DESIGN.md §7 for the dirty-set algorithm
//     and the equivalence argument.

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.hpp"
#include "snapshot/fwd.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::obs {
class MetricRegistry;
}

namespace sheriff::net {

struct FairShareResult {
  std::vector<double> flow_rate;         ///< indexed by position in the input span
  std::vector<double> link_load_gbps;    ///< indexed by LinkId: sum of allocated rates
  std::vector<double> link_offered_gbps; ///< indexed by LinkId: sum of *demands*
  std::vector<double> link_utilization;  ///< load / capacity, in [0, 1]

  /// B(e): capacity minus allocated load.
  [[nodiscard]] double available_bandwidth(const topo::Topology& topo, topo::LinkId link) const;
};

/// Computes the max–min fair allocation; also writes each flow's
/// allocated_gbps. Unrouted flows get rate zero. With a liveness mask,
/// flows whose path crosses a dead link/node are also rated zero (the
/// engine re-routes them on fault events; this is the safety net for the
/// same round the fault hits).
FairShareResult max_min_fair_share(const topo::Topology& topo, std::span<Flow> flows,
                                   const topo::LivenessMask* liveness = nullptr);

/// Stateful incremental max–min solver. Call solve() once per round with
/// the same flow table (flows are matched positionally: index i must mean
/// the same flow across calls — append-only growth or a wholesale swap
/// both trigger a safe full rebuild).
///
/// The allocation it returns matches max_min_fair_share on the same inputs
/// to floating-point noise (the differential test bounds it at 1e-9): a
/// max–min allocation decomposes over connected components of the
/// flow–link sharing graph, so components untouched by this round's
/// changes provably keep their previous rates.
class FairShareSolver {
 public:
  struct Stats {
    std::size_t solves = 0;
    std::size_t full_rebuilds = 0;    ///< solves that refilled everything
    std::size_t dirty_flows = 0;      ///< cumulative directly-changed flows
    std::size_t affected_flows = 0;   ///< cumulative refilled flows (closure)
    std::size_t reused_flows = 0;     ///< cumulative flows that kept their rate
  };

  /// The topology must outlive the solver.
  explicit FairShareSolver(const topo::Topology& topo);

  /// Computes the allocation for `flows`, reusing the previous call's
  /// state. Also writes each flow's allocated_gbps. The returned reference
  /// stays valid (and is updated in place) until the next solve().
  const FairShareResult& solve(std::span<Flow> flows,
                               const topo::LivenessMask* liveness = nullptr);

  [[nodiscard]] const FairShareResult& result() const noexcept { return result_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Publishes the cumulative Stats as `fair_share.*` gauges.
  void publish_metrics(obs::MetricRegistry& registry) const;

  /// Drops all cached state; the next solve() rebuilds from scratch.
  void invalidate();

  /// Checkpoint hooks. The incremental state is serialized byte-exactly —
  /// in particular link_flows_ ordering, which is history-dependent
  /// (reindex_flow erases + appends) and drives the floating-point
  /// summation order of refill(). Epoch marks and refill scratch are NOT
  /// serialized: marks are only ever compared for equality against the
  /// current epoch, so restarting at epoch 0 with zeroed marks is
  /// behavior-identical. `mask` re-binds the liveness diffing pointer to
  /// the mask the solver will be driven with after resume (nullptr when
  /// the run has no fault plan).
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader, const topo::LivenessMask* mask);

 private:
  /// Re-resolves flow f's path into link ids and splices the raw
  /// incidence lists; returns true when the links changed.
  void reindex_flow(std::size_t f, const Flow& flow);
  /// Refreshes the cached link-usable bitmap; appends every link whose
  /// usability flipped to `changed_links_`.
  void refresh_liveness(const topo::LivenessMask* liveness);
  /// Progressive filling restricted to the affected flows (indices in
  /// `dirty_queue_`), writing rates into result_.flow_rate.
  void refill(std::span<Flow> flows);

  const topo::Topology* topo_;
  FairShareResult result_;
  Stats stats_;
  bool force_rebuild_ = true;

  // Cached per-flow state (indexed like the input span).
  std::vector<std::vector<topo::NodeId>> cached_path_;
  std::vector<std::vector<topo::LinkId>> flow_links_;  ///< raw path links (liveness-agnostic)
  std::vector<double> cached_demand_;                  ///< effective demand at last solve
  std::vector<char> participates_;      ///< counted in the last allocation
  std::vector<char> now_participates_;  ///< scratch: valid for closure flows only

  // Raw incidence: every flow whose routed path crosses the link,
  // regardless of demand or liveness (so status flips stay discoverable).
  std::vector<std::vector<std::uint32_t>> link_flows_;

  // Liveness snapshot for diffing.
  std::vector<char> link_usable_;
  const topo::LivenessMask* last_mask_ = nullptr;
  std::uint64_t liveness_version_ = 0;
  bool had_liveness_ = false;

  // Scratch (epoch-marked to avoid per-solve clears).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> flow_mark_;   ///< epoch when flow became affected
  std::vector<std::uint32_t> link_mark_;   ///< epoch when link became touched
  std::vector<std::uint32_t> dirty_queue_;  ///< affected-flow closure worklist
  std::vector<topo::LinkId> touched_links_;
  std::vector<topo::LinkId> changed_links_;
  std::vector<double> avail_;              ///< per-link remaining capacity (refill scratch)
  std::vector<std::uint32_t> active_on_link_;
  std::vector<std::uint32_t> active_;      ///< compact active-flow worklist
  std::vector<std::uint32_t> next_active_;
};

}  // namespace sheriff::net
