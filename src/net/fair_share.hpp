#pragma once
// Max–min fair bandwidth allocation (progressive filling / water-filling)
// over routed flows. This produces the per-link signals the management
// algorithms consume: available bandwidth B(e), utilization rate P(e), and
// per-flow achieved rate.
//
// Two implementations share the same semantics:
//
//   * max_min_fair_share — the from-scratch reference: resolves every
//     flow's path into link ids and runs level-by-level progressive
//     filling over the whole fabric. Simple, allocation-heavy,
//     O(levels × fabric) per call. This is the bench baseline and the
//     oracle every differential test compares against.
//   * FairShareSolver — the incremental solver the engine's per-round hot
//     path uses. It keeps a flat CSR flow↔link incidence and the previous
//     allocation across calls, detects which flows changed (demand, path,
//     rate limit, link liveness), maps the dirty set onto connected
//     components of the flow–link sharing graph, and re-waterfills only
//     the dirty components with an event-driven kernel that processes
//     links in saturation order (no per-level fabric re-scan). Untouched
//     components keep their previous rates. Components fill independently
//     into component-owned slices, so the optional thread-pool mode is
//     byte-identical to the serial fill for any pool size. See DESIGN.md
//     §7 for the equivalence argument and §13 for the flat layout.

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.hpp"
#include "snapshot/fwd.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::obs {
class MetricRegistry;
}

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::net {

struct FairShareResult {
  std::vector<double> flow_rate;         ///< indexed by position in the input span
  std::vector<double> link_load_gbps;    ///< indexed by LinkId: sum of allocated rates
  std::vector<double> link_offered_gbps; ///< indexed by LinkId: sum of *demands*
  std::vector<double> link_utilization;  ///< load / capacity, in [0, 1]

  /// B(e): capacity minus allocated load.
  [[nodiscard]] double available_bandwidth(const topo::Topology& topo, topo::LinkId link) const;
};

/// Computes the max–min fair allocation; also writes each flow's
/// allocated_gbps. Unrouted flows get rate zero. With a liveness mask,
/// flows whose path crosses a dead link/node are also rated zero (the
/// engine re-routes them on fault events; this is the safety net for the
/// same round the fault hits).
FairShareResult max_min_fair_share(const topo::Topology& topo, std::span<Flow> flows,
                                   const topo::LivenessMask* liveness = nullptr);

/// Stateful incremental max–min solver. Call solve() once per round with
/// the same flow table (flows are matched positionally: index i must mean
/// the same flow across calls — append-only growth or a wholesale swap
/// both trigger a safe full rebuild).
///
/// The allocation it returns matches max_min_fair_share on the same inputs
/// to floating-point noise (the differential test bounds it at 1e-9): a
/// max–min allocation decomposes over connected components of the
/// flow–link sharing graph, so components untouched by this round's
/// changes provably keep their previous rates, and a dirty component's
/// event-driven fill freezes flows at the same water levels the reference
/// reaches by progressive increments.
///
/// Every floating-point summation the solver performs runs in a canonical
/// order (ascending flow index within a component), so the allocation is a
/// pure function of the current flow table + liveness — independent of the
/// history of path edits, of the thread-pool size, and of whether the
/// state was just restored from a checkpoint.
class FairShareSolver {
 public:
  struct Stats {
    std::size_t solves = 0;
    std::size_t full_rebuilds = 0;    ///< solves that refilled everything
    std::size_t dirty_flows = 0;      ///< cumulative directly-changed flows
    std::size_t affected_flows = 0;   ///< cumulative refilled flows (closure)
    std::size_t reused_flows = 0;     ///< cumulative flows that kept their rate
  };

  /// Cumulative wall time split of solve(): `build` covers liveness
  /// diffing, dirty detection, CSR patching and component labelling;
  /// `fill` covers the water-filling kernel proper. Not serialized — a
  /// resumed run restarts the clocks, like core::PhaseProfile.
  struct Timings {
    std::uint64_t build_ns = 0;
    std::uint64_t fill_ns = 0;
  };

  /// The topology must outlive the solver.
  explicit FairShareSolver(const topo::Topology& topo);

  /// Attaches (or detaches, with nullptr) a worker pool: dirty components
  /// then water-fill in parallel. Results are byte-identical for any pool
  /// size — each component writes only its own slice of the result arrays
  /// and every summation order is canonical — so this is a pure throughput
  /// knob, deliberately excluded from the checkpoint fingerprint.
  void set_thread_pool(common::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Computes the allocation for `flows`, reusing the previous call's
  /// state. Also writes each flow's allocated_gbps. The returned reference
  /// stays valid (and is updated in place) until the next solve().
  const FairShareResult& solve(std::span<Flow> flows,
                               const topo::LivenessMask* liveness = nullptr);

  [[nodiscard]] const FairShareResult& result() const noexcept { return result_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Timings& timings() const noexcept { return timings_; }

  /// Connected components of the flow–link sharing graph as of the last
  /// structural rebuild (0 before the first solve).
  [[nodiscard]] std::size_t component_count() const noexcept { return comp_count_; }

  /// Logical bytes of the persistent arena: live CSR entries, component
  /// tables and SoA scratch — sized from live element counts, not vector
  /// capacities, so the value is a pure function of the current state
  /// (deterministic across pool sizes and checkpoint resume).
  [[nodiscard]] std::size_t arena_bytes() const noexcept;

  /// Publishes the cumulative Stats plus the component / arena gauges as
  /// `fair_share.*`.
  void publish_metrics(obs::MetricRegistry& registry) const;

  /// Drops all cached state; the next solve() rebuilds from scratch.
  void invalidate();

  /// Checkpoint hooks. Serialized: stats, per-flow cached inputs (path,
  /// effective demand, participation), the liveness snapshot, and the
  /// previous allocation. Derived flat state — the CSR incidence, the
  /// reverse link→flow CSR, component labels, and all water-fill scratch —
  /// resumes cold and is rebuilt at the next solve(); since every
  /// summation order is canonical, the rebuild cannot perturb a single
  /// output byte (DESIGN.md §10 cold/warm table, §13). `mask` re-binds the
  /// liveness diffing pointer to the mask the solver will be driven with
  /// after resume (nullptr when the run has no fault plan).
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader, const topo::LivenessMask* mask);

 private:
  static constexpr std::uint32_t kNoComp = 0xffffffffU;

  /// Re-resolves flow f's path (from cached_path_[f]) into the CSR slot:
  /// in place when the new link list fits the old slot, appended to the
  /// pool tail otherwise. Marks the reverse CSR + components stale.
  void reindex_flow(std::size_t f);
  /// Rewrites the incidence pool densely in ascending flow order once the
  /// dead gaps left by reindex_flow dominate.
  void compact_incidence();
  /// Rebuilds the canonical (ascending flow id) link→flow CSR by counting
  /// sort over the live incidence entries.
  void rebuild_reverse_csr();
  /// Labels connected components over *participating* flows (BFS in
  /// ascending flow order — canonical ids) and rebuilds the component→
  /// flow / component→link CSRs.
  void rebuild_components();
  /// Refreshes the cached link-usable bitmap; appends every link whose
  /// usability flipped to `changed_links_`.
  void refresh_liveness(const topo::LivenessMask* liveness);
  /// Event-driven water-fill of dirty component `dirty_comps_[di]`,
  /// writing only that component's slices of result_ and the SoA scratch.
  void fill_component(std::size_t di);

  [[nodiscard]] std::span<const std::int32_t> links_of(std::size_t f) const noexcept {
    return {flow_links_.data() + flow_link_start_[f], flow_link_count_[f]};
  }

  const topo::Topology* topo_;
  common::ThreadPool* pool_ = nullptr;
  FairShareResult result_;
  Stats stats_;
  Timings timings_;
  bool force_rebuild_ = true;

  // Cached per-flow inputs (indexed like the input span) — the serialized
  // warm state everything else is derived from.
  std::vector<std::vector<topo::NodeId>> cached_path_;
  std::vector<double> cached_demand_;   ///< effective demand at last solve
  std::vector<char> participates_;      ///< counted in the last allocation

  // CSR flow→link incidence (raw: every routed flow, regardless of demand
  // or liveness, so status flips stay discoverable). One int32 pool plus
  // per-flow (start, count); reindex_flow patches slots in place.
  std::vector<std::uint32_t> flow_link_start_;
  std::vector<std::uint32_t> flow_link_count_;
  std::vector<std::int32_t> flow_links_;
  std::size_t live_link_refs_ = 0;  ///< Σ flow_link_count_ (pool minus dead gaps)

  // Canonical reverse CSR link→flows + sharing-graph components; rebuilt
  // lazily when stale.
  bool reverse_stale_ = true;
  bool comps_stale_ = true;
  std::vector<std::uint32_t> link_flow_offset_;  ///< link_count + 1
  std::vector<std::uint32_t> link_flows_;        ///< ascending flow id per link
  std::uint32_t comp_count_ = 0;
  std::vector<std::uint32_t> flow_comp_;  ///< kNoComp for non-participating flows
  std::vector<std::uint32_t> link_comp_;  ///< kNoComp when no participating flow crosses
  std::vector<std::uint32_t> comp_flow_offset_;
  std::vector<std::uint32_t> comp_flows_;  ///< ascending flow id within a component
  std::vector<std::uint32_t> comp_link_offset_;
  std::vector<std::uint32_t> comp_links_;
  std::vector<std::uint32_t> comp_edge_count_;  ///< Σ member path lengths

  // Liveness snapshot for diffing.
  std::vector<char> link_usable_;
  const topo::LivenessMask* last_mask_ = nullptr;
  std::uint64_t liveness_version_ = 0;
  bool had_liveness_ = false;

  // Solve scratch (epoch-marked to avoid per-solve clears).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> flow_mark_;  ///< epoch when flow became dirty
  std::vector<std::uint32_t> link_mark_;  ///< epoch when link became touched
  std::vector<std::uint32_t> comp_mark_;  ///< epoch when component became dirty
  std::vector<std::uint32_t> dirty_flows_;
  std::vector<topo::LinkId> touched_links_;
  std::vector<topo::LinkId> changed_links_;
  std::vector<std::uint32_t> dirty_comps_;
  std::vector<topo::LinkId> orphan_links_;  ///< touched, no participating flow left
  std::vector<std::uint32_t> bfs_queue_;

  // Water-fill SoA scratch: per-link / per-flow entries owned by the
  // component being filled (components are link- and flow-disjoint, so the
  // parallel fill writes disjoint entries).
  std::vector<double> frozen_load_;          ///< Σ rates of frozen flows on the link
  std::vector<double> link_level_;           ///< latest pushed saturation level
  std::vector<std::uint32_t> active_on_link_;
  std::vector<std::uint32_t> flow_frozen_;   ///< epoch when the flow froze

  // Per-dirty-component slices (prefix-summed each solve): the demand-
  // sorted flow order and the link-event heap storage.
  struct LinkEvent {
    double level;
    std::uint32_t link;
  };
  std::vector<std::uint32_t> fill_order_;
  std::vector<LinkEvent> heap_pool_;
  std::vector<std::size_t> comp_sort_base_;
  std::vector<std::size_t> comp_heap_base_;
};

}  // namespace sheriff::net
