#pragma once
// Max–min fair bandwidth allocation (progressive filling / water-filling)
// over routed flows. This produces the per-link signals the management
// algorithms consume: available bandwidth B(e), utilization rate P(e), and
// per-flow achieved rate.

#include <span>
#include <vector>

#include "net/flow.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::net {

struct FairShareResult {
  std::vector<double> flow_rate;         ///< indexed by position in the input span
  std::vector<double> link_load_gbps;    ///< indexed by LinkId: sum of allocated rates
  std::vector<double> link_offered_gbps; ///< indexed by LinkId: sum of *demands*
  std::vector<double> link_utilization;  ///< load / capacity, in [0, 1]

  /// B(e): capacity minus allocated load.
  [[nodiscard]] double available_bandwidth(const topo::Topology& topo, topo::LinkId link) const;
};

/// Computes the max–min fair allocation; also writes each flow's
/// allocated_gbps. Unrouted flows get rate zero. With a liveness mask,
/// flows whose path crosses a dead link/node are also rated zero (the
/// engine re-routes them on fault events; this is the safety net for the
/// same round the fault hits).
FairShareResult max_min_fair_share(const topo::Topology& topo, std::span<Flow> flows,
                                   const topo::LivenessMask* liveness = nullptr);

}  // namespace sheriff::net
