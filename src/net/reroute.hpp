#pragma once
// FLOWREROUTE (Sec. III-B "Alert from Outer Switches"): when a shim
// detects congestion at an outer switch, it moves a portion of the
// conflicting flows from its local VMs onto paths that avoid the hot
// switch. Rerouting is cheaper than migration, so shims try it first.

#include <span>
#include <vector>

#include "net/flow.hpp"
#include "net/routing.hpp"

namespace sheriff::net {

struct RerouteReport {
  std::size_t candidates = 0;  ///< conflicting, non-delay-sensitive flows
  std::size_t rerouted = 0;    ///< successfully moved off the hot switch
};

class FlowRerouter {
 public:
  explicit FlowRerouter(const Router& router) : router_(&router) {}

  /// Reroutes up to ceil(fraction * candidates) flows that transit
  /// `hot_switch`, preferring the largest-demand flows (moving elephants
  /// relieves the most load). Delay-sensitive flows are left alone.
  RerouteReport reroute_around(std::span<Flow> flows, topo::NodeId hot_switch,
                               double fraction = 0.5) const;

 private:
  const Router* router_;
};

}  // namespace sheriff::net
