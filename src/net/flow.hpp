#pragma once
// Flow abstraction for the flow-level network simulator. A flow is an
// aggregate host-to-host transfer with a demand; the fair-share allocator
// assigns it a rate, and switches along its path see its load.

#include <cstdint>
#include <limits>
#include <vector>

#include "topology/entities.hpp"

namespace sheriff::net {

using FlowId = std::uint32_t;

/// DSCP congestion signal carried in the IP header DS field (Sec. III-B):
/// switches mark flows that traverse a congested point.
enum class DscpMark : std::uint8_t { kNone = 0, kCongested = 1 };

struct Flow {
  FlowId id = 0;
  topo::NodeId src_host = topo::kInvalidNode;
  topo::NodeId dst_host = topo::kInvalidNode;
  double demand_gbps = 0.0;
  bool delay_sensitive = false;
  DscpMark dscp = DscpMark::kNone;
  std::vector<topo::NodeId> path;  ///< node sequence src ... dst (may be empty = unrouted)
  double allocated_gbps = 0.0;     ///< set by the fair-share allocator
  /// QCN reaction-point limit (infinity = unlimited); the allocator caps
  /// the flow at min(demand, rate_limit).
  double rate_limit_gbps = std::numeric_limits<double>::infinity();

  /// Demand after QCN rate limiting.
  [[nodiscard]] double effective_demand() const noexcept {
    return demand_gbps < rate_limit_gbps ? demand_gbps : rate_limit_gbps;
  }

  [[nodiscard]] bool routed() const noexcept { return path.size() >= 2; }
  /// True when `node` lies strictly inside the path (a transit switch).
  [[nodiscard]] bool transits(topo::NodeId node) const noexcept;
};

}  // namespace sheriff::net
