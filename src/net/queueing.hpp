#pragma once
// Switch queue model with QCN-style congestion feedback (Sec. III-A/B).
// Each switch's backlog integrates (offered load − serviced load) over its
// most loaded incident link; QCN computes Fb = −(q_off + w·q_delta) and a
// negative Fb signals congestion, which the shim treats as a switch alert.

#include <span>
#include <vector>

#include "net/fair_share.hpp"
#include "net/flow.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::net {

struct QcnConfig {
  double equilibrium_queue = 4.0;   ///< q_eq, in Gbit of backlog
  double weight = 2.0;              ///< w, the rate-of-change weight
  double drain_factor = 0.25;       ///< share of backlog drained per tick when idle
  double congestion_feedback = -1.0;  ///< Fb below this marks the switch congested
};

class SwitchQueues {
 public:
  SwitchQueues(const topo::Topology& topo, QcnConfig config = {});

  /// Attaches a liveness mask (nullptr detaches): a dead switch neither
  /// accumulates backlog nor signals congestion, and its queue is flushed
  /// (a crashed switch loses its buffered frames).
  void set_liveness(const topo::LivenessMask* liveness) { liveness_ = liveness; }

  /// Advances the backlog of every switch by `dt` given the current
  /// allocation, and applies DSCP marks to flows through congested
  /// switches. With a pool, the per-switch integration and per-flow
  /// marking sweeps fan out over it — every index writes only its own
  /// slot, so the result is bit-identical to the serial sweep.
  void update(const FairShareResult& shares, std::span<Flow> flows, double dt = 1.0,
              common::ThreadPool* pool = nullptr);

  [[nodiscard]] double queue_length(topo::NodeId sw) const;
  /// QCN feedback Fb = −(q − q_eq + w·(q − q_prev)); negative = congested.
  [[nodiscard]] double feedback(topo::NodeId sw) const;
  /// Switches currently signalling congestion.
  [[nodiscard]] std::vector<topo::NodeId> congested_switches() const;
  [[nodiscard]] const QcnConfig& config() const noexcept { return config_; }

  /// Publishes the current backlog state as `queueing.*` gauges and feeds
  /// every switch's queue length into a fixed-bucket depth histogram.
  void publish_metrics(obs::MetricRegistry& registry) const;

  /// Checkpoint hooks: the two backlog vectors (current + previous tick).
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  const topo::Topology* topo_;
  const topo::LivenessMask* liveness_ = nullptr;
  QcnConfig config_;
  std::vector<double> queue_;       ///< indexed by NodeId (hosts stay zero)
  std::vector<double> prev_queue_;
};

}  // namespace sheriff::net
