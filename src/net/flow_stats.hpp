#pragma once
// QoS statistics over a fair-share allocation: how satisfied flows are,
// how fairly the bandwidth is split (Jain's index), and aggregate
// throughput. The paper's motivation is exactly these quantities — shims
// act so that "QoS may be guaranteed".

#include <span>

#include "net/fair_share.hpp"
#include "net/flow.hpp"

namespace sheriff::net {

struct FlowQosStats {
  std::size_t offered_flows = 0;     ///< routed flows with positive demand
  std::size_t satisfied_flows = 0;   ///< allocated >= demand (after rate limits)
  double total_demand_gbps = 0.0;
  double total_allocated_gbps = 0.0;
  double mean_satisfaction = 0.0;    ///< mean of allocated/demand over offered flows
  double jain_fairness = 0.0;        ///< Jain's index over allocated rates, in (0, 1]

  [[nodiscard]] double satisfied_fraction() const noexcept {
    return offered_flows == 0
               ? 1.0
               : static_cast<double>(satisfied_flows) / static_cast<double>(offered_flows);
  }
};

/// Jain's fairness index: (Σx)^2 / (n Σx^2); 1 = perfectly equal shares.
/// Zero-rate entries count; returns 1 for empty input.
double jain_fairness_index(std::span<const double> rates);

/// Computes QoS statistics for an allocation (flows carry allocated_gbps
/// after max_min_fair_share()).
FlowQosStats compute_qos_stats(std::span<const Flow> flows);

}  // namespace sheriff::net
