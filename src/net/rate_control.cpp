#include "net/rate_control.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::net {

QcnRateController::QcnRateController(QcnRateConfig config) : config_(config) {
  SHERIFF_REQUIRE(config.decrease_gain > 0.0 && config.decrease_gain < 1.0,
                  "decrease gain must be in (0,1)");
  SHERIFF_REQUIRE(config.min_rate_gbps > 0.0, "minimum rate must be positive");
}

void QcnRateController::update(std::span<Flow> flows, const SwitchQueues& queues) {
  const auto congested = queues.congested_switches();
  for (Flow& flow : flows) {
    if (!flow.routed()) continue;

    // Worst (most negative) feedback among congested switches on the path.
    double worst_fb = 0.0;
    for (topo::NodeId sw : congested) {
      if (flow.transits(sw)) worst_fb = std::min(worst_fb, queues.feedback(sw));
    }

    if (worst_fb < 0.0) {
      auto& st = state_[flow.id];
      const double current =
          st.limit_gbps > 0.0 ? std::min(st.limit_gbps, flow.demand_gbps) : flow.demand_gbps;
      st.target_gbps = current;
      const double severity =
          std::min(1.0, std::fabs(worst_fb) / config_.feedback_scale);
      st.limit_gbps =
          std::max(config_.min_rate_gbps, current * (1.0 - config_.decrease_gain * severity));
    } else if (auto it = state_.find(flow.id); it != state_.end()) {
      auto& st = it->second;
      if (st.limit_gbps < st.target_gbps) {
        // Fast recovery: halve the gap to the pre-congestion rate.
        st.limit_gbps = 0.5 * (st.limit_gbps + st.target_gbps);
      } else {
        // Active probing above the old target.
        st.limit_gbps += config_.probe_step_gbps;
        st.target_gbps = st.limit_gbps;
      }
      if (st.limit_gbps >= flow.demand_gbps) {
        state_.erase(it);  // fully recovered: stop limiting
      }
    }
  }

  for (Flow& flow : flows) {
    const auto it = state_.find(flow.id);
    flow.rate_limit_gbps =
        it != state_.end() ? it->second.limit_gbps : std::numeric_limits<double>::infinity();
  }
}

double QcnRateController::limit(FlowId flow) const {
  const auto it = state_.find(flow);
  return it != state_.end() ? it->second.limit_gbps : std::numeric_limits<double>::infinity();
}

void QcnRateController::save_state(snapshot::Writer& writer) const {
  std::vector<FlowId> ids;
  ids.reserve(state_.size());
  for (const auto& [id, st] : state_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  writer.put_u64(ids.size());
  for (FlowId id : ids) {
    const FlowState& st = state_.at(id);
    writer.put_u32(id);
    writer.put_f64(st.limit_gbps);
    writer.put_f64(st.target_gbps);
  }
}

void QcnRateController::load_state(snapshot::Reader& reader) {
  state_.clear();
  const std::uint64_t entries = reader.counted(20);
  for (std::uint64_t i = 0; i < entries; ++i) {
    const FlowId id = reader.get_u32();
    FlowState st;
    st.limit_gbps = reader.get_f64();
    st.target_gbps = reader.get_f64();
    state_.emplace(id, st);
  }
}

}  // namespace sheriff::net
