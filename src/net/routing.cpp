#include "net/routing.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/dijkstra.hpp"

namespace sheriff::net {

namespace {

/// Cheap integer mix for deterministic ECMP choices.
std::uint32_t mix(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

}  // namespace

bool Flow::transits(topo::NodeId node) const noexcept {
  if (path.size() < 3) return false;
  return std::find(path.begin() + 1, path.end() - 1, node) != path.end() - 1;
}

Router::Router(const topo::Topology& topo)
    : topo_(&topo), hop_graph_(topo.wired_graph(topo::EdgeWeight::kHops)) {}

bool Router::route(Flow& flow, std::span<const topo::NodeId> blocked) const {
  SHERIFF_REQUIRE(flow.src_host < topo_->node_count() && flow.dst_host < topo_->node_count(),
                  "flow endpoints out of range");
  flow.path.clear();
  if (flow.src_host == flow.dst_host) return false;

  std::vector<bool> blocked_mask;
  if (!blocked.empty()) {
    blocked_mask.assign(topo_->node_count(), false);
    for (topo::NodeId b : blocked) {
      SHERIFF_REQUIRE(b != flow.src_host && b != flow.dst_host,
                      "cannot block a flow endpoint");
      blocked_mask[b] = true;
    }
  }

  const auto tree = graph::dijkstra(hop_graph_, flow.src_host, blocked_mask);
  if (tree.distance[flow.dst_host] == graph::kInfiniteDistance) return false;

  // Walk back from dst, hashing over tight parents: ECMP. Hash depends on
  // flow id and depth so consecutive flows take different spines.
  std::vector<topo::NodeId> reverse_path{flow.dst_host};
  topo::NodeId cur = flow.dst_host;
  std::uint32_t salt = mix(flow.id * 0x9e3779b9U + 1U);
  while (cur != flow.src_host) {
    const auto& parents = tree.parents[cur];
    SHERIFF_REQUIRE(!parents.empty(), "broken shortest path tree");
    salt = mix(salt + static_cast<std::uint32_t>(reverse_path.size()));
    cur = parents[salt % parents.size()];
    reverse_path.push_back(cur);
    SHERIFF_REQUIRE(reverse_path.size() <= topo_->node_count(), "routing loop detected");
  }
  flow.path.assign(reverse_path.rbegin(), reverse_path.rend());
  return true;
}

std::size_t Router::route_all(std::span<Flow> flows) const {
  std::size_t routed = 0;
  for (Flow& f : flows) {
    if (route(f)) ++routed;
  }
  return routed;
}

std::size_t Router::shortest_path_count(topo::NodeId src, topo::NodeId dst) const {
  const auto tree = graph::dijkstra(hop_graph_, src);
  return tree.path_count(dst);
}

}  // namespace sheriff::net
