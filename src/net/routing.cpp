#include "net/routing.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/dijkstra.hpp"

namespace sheriff::net {

namespace {

/// Cheap integer mix for deterministic ECMP choices.
std::uint32_t mix(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

}  // namespace

bool Flow::transits(topo::NodeId node) const noexcept {
  if (path.size() < 3) return false;
  return std::find(path.begin() + 1, path.end() - 1, node) != path.end() - 1;
}

Router::Router(const topo::Topology& topo)
    : topo_(&topo), hop_graph_(topo.wired_graph(topo::EdgeWeight::kHops)) {}

void Router::apply_liveness(const topo::LivenessMask* liveness) {
  liveness_ = liveness;
  rebuild();
}

bool Router::refresh_liveness() {
  if (liveness_ == nullptr || liveness_->version() == liveness_version_) return false;
  rebuild();
  return true;
}

void Router::rebuild() {
  if (liveness_ == nullptr || liveness_->all_up()) {
    hop_graph_ = topo_->wired_graph(topo::EdgeWeight::kHops);
    component_.clear();
    liveness_version_ = liveness_ != nullptr ? liveness_->version() : 0;
    return;
  }
  hop_graph_ = topo_->wired_graph(topo::EdgeWeight::kHops, *liveness_);
  liveness_version_ = liveness_->version();
  // Label live components by BFS so reachable() is an O(1) compare.
  component_.assign(topo_->node_count(), 0);
  std::uint32_t next_label = 0;
  std::vector<topo::NodeId> frontier;
  for (topo::NodeId start = 0; start < topo_->node_count(); ++start) {
    if (component_[start] != 0 || !liveness_->node_up(start)) continue;
    ++next_label;
    component_[start] = next_label;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const topo::NodeId cur = frontier.back();
      frontier.pop_back();
      for (const auto& edge : hop_graph_.neighbors(cur)) {
        if (component_[edge.to] == 0) {
          component_[edge.to] = next_label;
          frontier.push_back(edge.to);
        }
      }
    }
  }
}

bool Router::node_live(topo::NodeId node) const {
  return liveness_ == nullptr || liveness_->node_up(node);
}

bool Router::reachable(topo::NodeId a, topo::NodeId b) const {
  if (!node_live(a) || !node_live(b)) return false;
  if (component_.empty()) return true;  // pristine fabric: connected by validate()
  return component_[a] == component_[b];
}

bool Router::route(Flow& flow, std::span<const topo::NodeId> blocked) const {
  SHERIFF_REQUIRE(flow.src_host < topo_->node_count() && flow.dst_host < topo_->node_count(),
                  "flow endpoints out of range");
  flow.path.clear();
  if (flow.src_host == flow.dst_host) return false;
  if (!reachable(flow.src_host, flow.dst_host)) return false;

  std::vector<bool> blocked_mask;
  if (!blocked.empty()) {
    blocked_mask.assign(topo_->node_count(), false);
    for (topo::NodeId b : blocked) {
      SHERIFF_REQUIRE(b != flow.src_host && b != flow.dst_host,
                      "cannot block a flow endpoint");
      blocked_mask[b] = true;
    }
  }

  const auto tree = graph::dijkstra(hop_graph_, flow.src_host, blocked_mask);
  if (tree.distance[flow.dst_host] == graph::kInfiniteDistance) return false;

  // Walk back from dst, hashing over tight parents: ECMP. Hash depends on
  // flow id and depth so consecutive flows take different spines.
  std::vector<topo::NodeId> reverse_path{flow.dst_host};
  topo::NodeId cur = flow.dst_host;
  std::uint32_t salt = mix(flow.id * 0x9e3779b9U + 1U);
  while (cur != flow.src_host) {
    const auto& parents = tree.parents[cur];
    SHERIFF_REQUIRE(!parents.empty(), "broken shortest path tree");
    salt = mix(salt + static_cast<std::uint32_t>(reverse_path.size()));
    cur = parents[salt % parents.size()];
    reverse_path.push_back(cur);
    SHERIFF_REQUIRE(reverse_path.size() <= topo_->node_count(), "routing loop detected");
  }
  flow.path.assign(reverse_path.rbegin(), reverse_path.rend());
  return true;
}

std::size_t Router::route_all(std::span<Flow> flows) const {
  std::size_t routed = 0;
  for (Flow& f : flows) {
    if (route(f)) ++routed;
  }
  return routed;
}

std::size_t Router::shortest_path_count(topo::NodeId src, topo::NodeId dst) const {
  const auto tree = graph::dijkstra(hop_graph_, src);
  return tree.path_count(dst);
}

}  // namespace sheriff::net
