#include "net/routing.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/dijkstra.hpp"
#include "obs/registry.hpp"

namespace sheriff::net {

namespace {

/// Cheap integer mix for deterministic ECMP choices.
std::uint32_t mix(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

/// Bound on cached shortest-path trees before a wholesale clear: enough
/// for every host of the biggest bench fabrics plus reroute variants,
/// small enough to bound memory on degenerate query streams.
constexpr std::size_t kMaxCachedTrees = 4096;
/// Flow ids above this skip the path cache (keeps the id-indexed table
/// dense; engine flow tables are far below it).
constexpr std::size_t kMaxPathCacheFlows = 1u << 20;
/// Blocked-query results retained per flow (FIFO): reroute probes cycle
/// through at most a handful of hot switches per flow.
constexpr std::size_t kMaxBlockedEntriesPerFlow = 4;

/// Walk back from dst, hashing over tight parents: ECMP. Hash depends on
/// flow id and depth so consecutive flows take different spines. Returns
/// false (path untouched) when dst is unreachable in the tree.
bool walk_ecmp(const graph::ShortestPathTree& tree, Flow& flow, std::size_t node_count) {
  if (tree.distance[flow.dst_host] == graph::kInfiniteDistance) return false;
  std::vector<topo::NodeId> reverse_path{flow.dst_host};
  topo::NodeId cur = flow.dst_host;
  std::uint32_t salt = mix(flow.id * 0x9e3779b9U + 1U);
  while (cur != flow.src_host) {
    const auto& parents = tree.parents[cur];
    SHERIFF_REQUIRE(!parents.empty(), "broken shortest path tree");
    salt = mix(salt + static_cast<std::uint32_t>(reverse_path.size()));
    cur = parents[salt % parents.size()];
    reverse_path.push_back(cur);
    SHERIFF_REQUIRE(reverse_path.size() <= node_count, "routing loop detected");
  }
  flow.path.assign(reverse_path.rbegin(), reverse_path.rend());
  return true;
}

/// walk_ecmp on a tree rooted at a single-homed source's sole neighbor
/// `via` instead of the source itself. With unit hop weights every vertex
/// v != src satisfies d_src(v) = 1 + d_via(v) *exactly* (integers in FP),
/// so the tight-predecessor sets, the parent-list build order (the heap
/// ties on (distance, vertex)), and the salt sequence along the shared
/// segment are identical to the src-rooted tree's; the src-rooted walk's
/// final via→src step draws a salt but has exactly one parent, so the
/// deterministic append below reproduces it bit for bit.
bool walk_ecmp_via(const graph::ShortestPathTree& tree, Flow& flow, topo::NodeId via,
                   std::size_t node_count) {
  if (tree.distance[flow.dst_host] == graph::kInfiniteDistance) return false;
  std::vector<topo::NodeId> reverse_path{flow.dst_host};
  topo::NodeId cur = flow.dst_host;
  std::uint32_t salt = mix(flow.id * 0x9e3779b9U + 1U);
  while (cur != via) {
    const auto& parents = tree.parents[cur];
    SHERIFF_REQUIRE(!parents.empty(), "broken shortest path tree");
    salt = mix(salt + static_cast<std::uint32_t>(reverse_path.size()));
    cur = parents[salt % parents.size()];
    reverse_path.push_back(cur);
    SHERIFF_REQUIRE(reverse_path.size() <= node_count, "routing loop detected");
  }
  reverse_path.push_back(flow.src_host);
  flow.path.assign(reverse_path.rbegin(), reverse_path.rend());
  return true;
}

}  // namespace

bool Flow::transits(topo::NodeId node) const noexcept {
  if (path.size() < 3) return false;
  return std::find(path.begin() + 1, path.end() - 1, node) != path.end() - 1;
}

Router::Router(const topo::Topology& topo)
    : topo_(&topo), hop_graph_(topo.wired_graph(topo::EdgeWeight::kHops)) {}

void Router::apply_liveness(const topo::LivenessMask* liveness) {
  liveness_ = liveness;
  rebuild();
}

bool Router::refresh_liveness() {
  if (liveness_ == nullptr || liveness_->version() == liveness_version_) return false;
  rebuild();
  return true;
}

void Router::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  clear_caches();
}

void Router::clear_caches() const {
  std::scoped_lock lock(cache_mutex_);
  if (tree_cache_entries_ > 0 || !path_cache_.empty()) ++cache_stats_.evictions;
  tree_cache_.clear();
  tree_cache_entries_ = 0;
  path_cache_.clear();
}

void Router::rebuild() {
  clear_caches();
  if (liveness_ == nullptr || liveness_->all_up()) {
    hop_graph_ = topo_->wired_graph(topo::EdgeWeight::kHops);
    component_.clear();
    liveness_version_ = liveness_ != nullptr ? liveness_->version() : 0;
    return;
  }
  hop_graph_ = topo_->wired_graph(topo::EdgeWeight::kHops, *liveness_);
  liveness_version_ = liveness_->version();
  // Label live components by BFS so reachable() is an O(1) compare.
  component_.assign(topo_->node_count(), 0);
  std::uint32_t next_label = 0;
  std::vector<topo::NodeId> frontier;
  for (topo::NodeId start = 0; start < topo_->node_count(); ++start) {
    if (component_[start] != 0 || !liveness_->node_up(start)) continue;
    ++next_label;
    component_[start] = next_label;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const topo::NodeId cur = frontier.back();
      frontier.pop_back();
      for (const auto& edge : hop_graph_.neighbors(cur)) {
        if (component_[edge.to] == 0) {
          component_[edge.to] = next_label;
          frontier.push_back(edge.to);
        }
      }
    }
  }
}

bool Router::node_live(topo::NodeId node) const {
  return liveness_ == nullptr || liveness_->node_up(node);
}

bool Router::reachable(topo::NodeId a, topo::NodeId b) const {
  if (!node_live(a) || !node_live(b)) return false;
  if (component_.empty()) return true;  // pristine fabric: connected by validate()
  return component_[a] == component_[b];
}

const graph::ShortestPathTree& Router::tree_for(topo::NodeId src,
                                                std::span<const topo::NodeId> blocked) const {
  std::vector<topo::NodeId> key(blocked.begin(), blocked.end());
  std::sort(key.begin(), key.end());
  {
    std::scoped_lock lock(cache_mutex_);
    const auto it = tree_cache_.find(src);
    if (it != tree_cache_.end()) {
      for (const TreeSlot& slot : it->second) {
        if (slot.blocked == key) {
          ++cache_stats_.tree_hits;
          return *slot.tree;
        }
      }
    }
    ++cache_stats_.tree_misses;
  }

  // Compute outside the lock (two threads may race on the same key; the
  // loser's duplicate is kept too — harmless, both trees are identical).
  std::vector<bool> blocked_mask;
  if (!blocked.empty()) {
    blocked_mask.assign(topo_->node_count(), false);
    for (topo::NodeId b : blocked) blocked_mask[b] = true;
  }
  auto tree = std::make_unique<graph::ShortestPathTree>();
  graph::dijkstra_into(hop_graph_, src, blocked_mask, *tree);

  std::scoped_lock lock(cache_mutex_);
  if (tree_cache_entries_ >= kMaxCachedTrees) {
    ++cache_stats_.evictions;
    tree_cache_.clear();
    tree_cache_entries_ = 0;
  }
  auto& slots = tree_cache_[src];
  slots.push_back(TreeSlot{std::move(key), std::move(tree)});
  ++tree_cache_entries_;
  return *slots.back().tree;
}

bool Router::route(Flow& flow, std::span<const topo::NodeId> blocked) const {
  SHERIFF_REQUIRE(flow.src_host < topo_->node_count() && flow.dst_host < topo_->node_count(),
                  "flow endpoints out of range");
  flow.path.clear();
  if (flow.src_host == flow.dst_host) return false;
  if (!reachable(flow.src_host, flow.dst_host)) return false;
  for (topo::NodeId b : blocked) {
    SHERIFF_REQUIRE(b != flow.src_host && b != flow.dst_host, "cannot block a flow endpoint");
  }

  // Resolved-path cache: the ECMP walk is a pure function of (flow id,
  // src, dst, blocked set) on a fixed live fabric, so a repeat query —
  // including the blocked probes FLOWREROUTE re-issues round over round,
  // and probes that found no path under the blocks — can return the
  // stored outcome outright. A hit is indistinguishable from a recompute.
  const bool path_cacheable = cache_enabled_ && flow.id < kMaxPathCacheFlows;
  std::vector<topo::NodeId> blocked_key(blocked.begin(), blocked.end());
  std::sort(blocked_key.begin(), blocked_key.end());
  if (path_cacheable) {
    std::scoped_lock lock(cache_mutex_);
    if (flow.id < path_cache_.size()) {
      const FlowPathSlot& slot = path_cache_[flow.id];
      const PathEntry* found = nullptr;
      if (blocked_key.empty()) {
        if (slot.plain.src == flow.src_host && slot.plain.dst == flow.dst_host) {
          found = &slot.plain;
        }
      } else {
        for (const PathEntry& entry : slot.blocked) {
          if (entry.src == flow.src_host && entry.dst == flow.dst_host &&
              entry.blocked == blocked_key) {
            found = &entry;
            break;
          }
        }
      }
      if (found != nullptr) {
        ++cache_stats_.path_hits;
        flow.path = found->path;
        return found->ok;
      }
    }
    ++cache_stats_.path_misses;
  }

  bool ok;
  if (cache_enabled_) {
    // Single-homed sources (every fat-tree host) share their neighbor
    // ToR's tree: the walk is bit-identical (see walk_ecmp_via) and the
    // tree cache shrinks from one tree per querying host to one per ToR —
    // the dominant Dijkstra load of the routing phase.
    const auto leaf = hop_graph_.neighbors(flow.src_host);
    if (leaf.size() == 1) {
      const topo::NodeId via = leaf[0].to;
      if (std::find(blocked.begin(), blocked.end(), via) != blocked.end()) {
        ok = false;  // the source's only egress is blocked: no path exists
      } else if (flow.dst_host == via) {
        flow.path.assign({flow.src_host, via});
        ok = true;
      } else {
        ok = walk_ecmp_via(tree_for(via, blocked), flow, via, topo_->node_count());
      }
    } else {
      ok = walk_ecmp(tree_for(flow.src_host, blocked), flow, topo_->node_count());
    }
  } else {
    std::vector<bool> blocked_mask;
    if (!blocked.empty()) {
      blocked_mask.assign(topo_->node_count(), false);
      for (topo::NodeId b : blocked) blocked_mask[b] = true;
    }
    const auto tree = graph::dijkstra(hop_graph_, flow.src_host, blocked_mask);
    ok = walk_ecmp(tree, flow, topo_->node_count());
  }

  if (path_cacheable) {
    std::scoped_lock lock(cache_mutex_);
    if (path_cache_.size() <= flow.id) path_cache_.resize(flow.id + 1);
    FlowPathSlot& slot = path_cache_[flow.id];
    PathEntry* entry;
    if (blocked_key.empty()) {
      entry = &slot.plain;
    } else {
      // Small FIFO per flow: reroutes probe at most a few hot switches.
      if (slot.blocked.size() >= kMaxBlockedEntriesPerFlow) {
        slot.blocked.erase(slot.blocked.begin());
      }
      entry = &slot.blocked.emplace_back();
      entry->blocked = std::move(blocked_key);
    }
    entry->src = flow.src_host;
    entry->dst = flow.dst_host;
    entry->ok = ok;
    entry->path = flow.path;
  }
  return ok;
}

std::size_t Router::route_all(std::span<Flow> flows) const {
  std::size_t routed = 0;
  for (Flow& f : flows) {
    if (route(f)) ++routed;
  }
  return routed;
}

std::size_t Router::shortest_path_count(topo::NodeId src, topo::NodeId dst) const {
  if (cache_enabled_) return tree_for(src, {}).path_count(dst);
  const auto tree = graph::dijkstra(hop_graph_, src);
  return tree.path_count(dst);
}

void Router::publish_metrics(obs::MetricRegistry& registry) const {
  registry.gauge("router.tree_hits").set(static_cast<double>(cache_stats_.tree_hits));
  registry.gauge("router.tree_misses").set(static_cast<double>(cache_stats_.tree_misses));
  registry.gauge("router.path_hits").set(static_cast<double>(cache_stats_.path_hits));
  registry.gauge("router.path_misses").set(static_cast<double>(cache_stats_.path_misses));
  registry.gauge("router.evictions").set(static_cast<double>(cache_stats_.evictions));
}

}  // namespace sheriff::net
