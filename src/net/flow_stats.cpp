#include "net/flow_stats.hpp"

namespace sheriff::net {

double jain_fairness_index(std::span<const double> rates) {
  if (rates.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double r : rates) {
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;  // everyone equally starved
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

FlowQosStats compute_qos_stats(std::span<const Flow> flows) {
  FlowQosStats stats;
  std::vector<double> rates;
  double satisfaction_acc = 0.0;
  for (const Flow& f : flows) {
    const double demand = f.effective_demand();
    if (!f.routed() || demand <= 0.0) continue;
    ++stats.offered_flows;
    stats.total_demand_gbps += demand;
    stats.total_allocated_gbps += f.allocated_gbps;
    rates.push_back(f.allocated_gbps);
    const double satisfaction = f.allocated_gbps / demand;
    satisfaction_acc += satisfaction;
    if (satisfaction >= 1.0 - 1e-9) ++stats.satisfied_flows;
  }
  if (stats.offered_flows > 0) {
    stats.mean_satisfaction = satisfaction_acc / static_cast<double>(stats.offered_flows);
  } else {
    stats.mean_satisfaction = 1.0;
  }
  stats.jain_fairness = jain_fairness_index(rates);
  return stats;
}

}  // namespace sheriff::net
