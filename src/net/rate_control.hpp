#pragma once
// QCN reaction-point rate control (Sec. III-A.2 of the paper: on
// congestion feedback "modify the rate at end host to reach the goal of
// easing the congestion"). Senders keep a per-flow rate limit:
//
//   * on congestion feedback Fb < 0 from a switch the flow transits, the
//     limit drops multiplicatively (target remembers the pre-drop rate);
//   * otherwise the limit recovers toward the target in binary-search
//     style (QCN "fast recovery"), and past the target it probes upward.
//
// The fair-share allocator honors the limit via Flow::rate_limit_gbps.

#include <unordered_map>

#include "net/flow.hpp"
#include "net/queueing.hpp"

namespace sheriff::net {

struct QcnRateConfig {
  double decrease_gain = 0.5;     ///< Gd: fraction of |Fb|-scaled cut per event
  double min_rate_gbps = 0.05;    ///< floor so flows never fully starve
  double probe_step_gbps = 0.05;  ///< additive probe once recovered
  double feedback_scale = 4.0;    ///< |Fb| normalization (queue units)
};

class QcnRateController {
 public:
  explicit QcnRateController(QcnRateConfig config = {});

  /// One control period: adjusts every flow's rate limit from the current
  /// switch feedback. Call after SwitchQueues::update().
  void update(std::span<Flow> flows, const SwitchQueues& queues);

  /// Current limit of a flow (infinity when the flow was never cut).
  [[nodiscard]] double limit(FlowId flow) const;
  [[nodiscard]] std::size_t tracked_flows() const noexcept { return state_.size(); }

  /// Checkpoint hooks. Entries are written sorted by FlowId so the archive
  /// is independent of unordered_map iteration order; lookups only ever go
  /// through find(), so rebuilt bucket order cannot change behavior.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct FlowState {
    double limit_gbps = 0.0;
    double target_gbps = 0.0;
  };

  QcnRateConfig config_;
  std::unordered_map<FlowId, FlowState> state_;
};

}  // namespace sheriff::net
