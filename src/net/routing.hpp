#pragma once
// Shortest-path routing with ECMP spreading. Paths are computed on the
// hop-weighted wired graph; among equal-cost parents the router picks
// deterministically by a per-flow hash, which spreads flows over the
// fabric the way ECMP hashing does.
//
// The router optionally carries a topo::LivenessMask: dead links/nodes are
// dropped from the hop graph and a per-node component labelling is
// recomputed (only when the mask's version changes — fault events are
// rare, routing queries are not), giving O(1) reachability checks while
// the fabric is degraded.
//
// Caching: routing queries repeat heavily — route_all shares sources
// across flows, FLOWREROUTE blocks the same hot switch for many flows, and
// migrations re-route a handful of flows per round on an unchanged fabric.
// The router therefore keeps (a) a shortest-path-tree cache keyed on
// (source, blocked set) and (b) a resolved-path cache keyed on the flow
// id, its endpoints, AND the sorted blocked set (the ECMP walk is a pure
// function of those on a fixed live fabric) — blocked reroute probes are
// the queries that actually repeat round over round, and failed probes
// (no path under the blocks) are cached too. Both caches are dropped
// whenever the liveness version moves, so every entry is implicitly keyed
// on the liveness epoch. Disable via set_cache_enabled to get the naive
// one-Dijkstra-per-query behavior (the bench baseline).

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/dijkstra.hpp"
#include "net/flow.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::obs {
class MetricRegistry;
}

namespace sheriff::net {

struct RouterCacheStats {
  std::size_t tree_hits = 0;
  std::size_t tree_misses = 0;
  std::size_t path_hits = 0;
  std::size_t path_misses = 0;
  std::size_t evictions = 0;  ///< wholesale cache clears (liveness or overflow)
};

class Router {
 public:
  /// The topology must outlive the router.
  explicit Router(const topo::Topology& topo);

  /// Attaches (or detaches, with nullptr) a liveness mask; the mask must
  /// outlive the router. Triggers a hop-graph + reachability recompute.
  void apply_liveness(const topo::LivenessMask* liveness);

  /// Re-checks the attached mask's version and recomputes the hop graph
  /// and component labels if fault events happened since the last call.
  /// Returns true when a recompute ran.
  bool refresh_liveness();

  /// True when both nodes are up and connected through live links.
  [[nodiscard]] bool reachable(topo::NodeId a, topo::NodeId b) const;
  [[nodiscard]] bool node_live(topo::NodeId node) const;

  /// Routes `flow` (fills flow.path). `blocked` nodes are excluded — pass
  /// the hot switches when rerouting (FLOWREROUTE). Returns false when no
  /// path exists under the blocks (path left empty).
  bool route(Flow& flow, std::span<const topo::NodeId> blocked = {}) const;

  /// Routes every flow in place; returns the number successfully routed.
  std::size_t route_all(std::span<Flow> flows) const;

  /// Number of distinct shortest paths between two hosts (diagnostics).
  [[nodiscard]] std::size_t shortest_path_count(topo::NodeId src, topo::NodeId dst) const;

  /// Toggles the tree/path caches (enabled by default); disabling clears
  /// them, giving the naive recompute-every-query behavior.
  void set_cache_enabled(bool enabled);
  [[nodiscard]] bool cache_enabled() const noexcept { return cache_enabled_; }
  [[nodiscard]] const RouterCacheStats& cache_stats() const noexcept { return cache_stats_; }

  /// Publishes the cumulative cache stats as `router.*` gauges.
  void publish_metrics(obs::MetricRegistry& registry) const;

 private:
  void rebuild();
  void clear_caches() const;
  /// The shortest-path tree out of `src` under `blocked`, cached. The
  /// reference stays valid until the next liveness change (values are
  /// stable unique_ptrs, so concurrent readers survive rehashes).
  const graph::ShortestPathTree& tree_for(topo::NodeId src,
                                          std::span<const topo::NodeId> blocked) const;

  const topo::Topology* topo_;
  const topo::LivenessMask* liveness_ = nullptr;
  std::uint64_t liveness_version_ = 0;
  graph::Graph hop_graph_;
  std::vector<std::uint32_t> component_;  ///< live-graph component label per node

  // --- caches (logically const; guarded for concurrent route() calls) ------
  struct TreeSlot {
    std::vector<topo::NodeId> blocked;  ///< sorted blocked set this tree was built under
    std::unique_ptr<graph::ShortestPathTree> tree;
  };
  struct PathEntry {
    topo::NodeId src = topo::kInvalidNode;
    topo::NodeId dst = topo::kInvalidNode;
    bool ok = false;
    std::vector<topo::NodeId> blocked;  ///< sorted blocked set of the query
    std::vector<topo::NodeId> path;
  };
  /// Per-flow path-cache slot: the unblocked walk plus a small FIFO of
  /// blocked-query results (reroute probes repeat the same few hot
  /// switches; failed probes are cached as ok=false entries).
  struct FlowPathSlot {
    PathEntry plain;
    std::vector<PathEntry> blocked;
  };
  bool cache_enabled_ = true;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<topo::NodeId, std::vector<TreeSlot>> tree_cache_;
  mutable std::size_t tree_cache_entries_ = 0;
  mutable std::vector<FlowPathSlot> path_cache_;  ///< indexed by FlowId
  mutable RouterCacheStats cache_stats_;
};

}  // namespace sheriff::net
