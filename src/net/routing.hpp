#pragma once
// Shortest-path routing with ECMP spreading. Paths are computed on the
// hop-weighted wired graph; among equal-cost parents the router picks
// deterministically by a per-flow hash, which spreads flows over the
// fabric the way ECMP hashing does.
//
// The router optionally carries a topo::LivenessMask: dead links/nodes are
// dropped from the hop graph and a per-node component labelling is
// recomputed (only when the mask's version changes — fault events are
// rare, routing queries are not), giving O(1) reachability checks while
// the fabric is degraded.

#include <span>
#include <vector>

#include "net/flow.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::net {

class Router {
 public:
  /// The topology must outlive the router.
  explicit Router(const topo::Topology& topo);

  /// Attaches (or detaches, with nullptr) a liveness mask; the mask must
  /// outlive the router. Triggers a hop-graph + reachability recompute.
  void apply_liveness(const topo::LivenessMask* liveness);

  /// Re-checks the attached mask's version and recomputes the hop graph
  /// and component labels if fault events happened since the last call.
  /// Returns true when a recompute ran.
  bool refresh_liveness();

  /// True when both nodes are up and connected through live links.
  [[nodiscard]] bool reachable(topo::NodeId a, topo::NodeId b) const;
  [[nodiscard]] bool node_live(topo::NodeId node) const;

  /// Routes `flow` (fills flow.path). `blocked` nodes are excluded — pass
  /// the hot switches when rerouting (FLOWREROUTE). Returns false when no
  /// path exists under the blocks (path left empty).
  bool route(Flow& flow, std::span<const topo::NodeId> blocked = {}) const;

  /// Routes every flow in place; returns the number successfully routed.
  std::size_t route_all(std::span<Flow> flows) const;

  /// Number of distinct shortest paths between two hosts (diagnostics).
  [[nodiscard]] std::size_t shortest_path_count(topo::NodeId src, topo::NodeId dst) const;

 private:
  void rebuild();

  const topo::Topology* topo_;
  const topo::LivenessMask* liveness_ = nullptr;
  std::uint64_t liveness_version_ = 0;
  graph::Graph hop_graph_;
  std::vector<std::uint32_t> component_;  ///< live-graph component label per node
};

}  // namespace sheriff::net
