#pragma once
// Shortest-path routing with ECMP spreading. Paths are computed on the
// hop-weighted wired graph; among equal-cost parents the router picks
// deterministically by a per-flow hash, which spreads flows over the
// fabric the way ECMP hashing does.

#include <span>
#include <vector>

#include "net/flow.hpp"
#include "topology/topology.hpp"

namespace sheriff::net {

class Router {
 public:
  /// The topology must outlive the router.
  explicit Router(const topo::Topology& topo);

  /// Routes `flow` (fills flow.path). `blocked` nodes are excluded — pass
  /// the hot switches when rerouting (FLOWREROUTE). Returns false when no
  /// path exists under the blocks (path left empty).
  bool route(Flow& flow, std::span<const topo::NodeId> blocked = {}) const;

  /// Routes every flow in place; returns the number successfully routed.
  std::size_t route_all(std::span<Flow> flows) const;

  /// Number of distinct shortest paths between two hosts (diagnostics).
  [[nodiscard]] std::size_t shortest_path_count(topo::NodeId src, topo::NodeId dst) const;

 private:
  const topo::Topology* topo_;
  graph::Graph hop_graph_;
};

}  // namespace sheriff::net
