#include "net/reroute.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace sheriff::net {

RerouteReport FlowRerouter::reroute_around(std::span<Flow> flows, topo::NodeId hot_switch,
                                           double fraction) const {
  SHERIFF_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
  RerouteReport report;

  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].delay_sensitive) continue;
    if (flows[i].transits(hot_switch)) candidates.push_back(i);
  }
  report.candidates = candidates.size();
  if (candidates.empty()) return report;

  // Elephants first: rerouting the biggest flows sheds the most load.
  // Ties break on flow index — equal-demand flows under std::sort alone
  // land in an unspecified order, and the engine's byte-identity guarantee
  // (same results for any manage_shards count, any platform) needs every
  // reroute decision to be a pure function of the flow set.
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    if (flows[a].demand_gbps != flows[b].demand_gbps) {
      return flows[a].demand_gbps > flows[b].demand_gbps;
    }
    return a < b;
  });
  const auto quota = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(candidates.size())));

  const topo::NodeId blocked[] = {hot_switch};
  for (std::size_t i = 0; i < candidates.size() && report.rerouted < quota; ++i) {
    Flow& flow = flows[candidates[i]];
    const std::vector<topo::NodeId> saved_path = flow.path;
    if (router_->route(flow, blocked)) {
      ++report.rerouted;
    } else {
      flow.path = saved_path;  // no alternative: keep the old path
    }
  }
  return report;
}

}  // namespace sheriff::net
