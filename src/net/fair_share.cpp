#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"

namespace sheriff::net {

double FairShareResult::available_bandwidth(const topo::Topology& topo,
                                            topo::LinkId link) const {
  return std::max(0.0, topo.link(link).capacity_gbps - link_load_gbps.at(link));
}

FairShareResult max_min_fair_share(const topo::Topology& topo, std::span<Flow> flows,
                                   const topo::LivenessMask* liveness) {
  if (liveness != nullptr && liveness->all_up()) liveness = nullptr;
  FairShareResult result;
  result.flow_rate.assign(flows.size(), 0.0);
  result.link_load_gbps.assign(topo.link_count(), 0.0);
  result.link_offered_gbps.assign(topo.link_count(), 0.0);
  result.link_utilization.assign(topo.link_count(), 0.0);

  // Resolve each flow's path into link ids once.
  std::vector<std::vector<topo::LinkId>> flow_links(flows.size());
  std::vector<std::vector<std::size_t>> link_flows(topo.link_count());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!flows[f].routed() || flows[f].effective_demand() <= 0.0) continue;
    const auto& path = flows[f].path;
    bool path_live = true;
    for (std::size_t i = 0; path_live && i + 1 < path.size(); ++i) {
      const topo::LinkId l = topo.link_between(path[i], path[i + 1]);
      path_live = liveness == nullptr || liveness->link_usable(topo, l);
      flow_links[f].push_back(l);
    }
    if (!path_live) {
      flow_links[f].clear();
      continue;
    }
    for (topo::LinkId l : flow_links[f]) {
      link_flows[l].push_back(f);
      result.link_offered_gbps[l] += flows[f].effective_demand();
    }
  }

  std::vector<double> available(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    available[l] = topo.link(l).capacity_gbps;
  }
  std::vector<std::size_t> active_on_link(topo.link_count(), 0);
  std::vector<bool> active(flows.size(), false);
  std::size_t n_active = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!flow_links[f].empty()) {
      active[f] = true;
      ++n_active;
      for (topo::LinkId l : flow_links[f]) ++active_on_link[l];
    }
  }

  constexpr double kEps = 1e-12;
  // Progressive filling: raise all active rates together until either some
  // link saturates or some flow reaches its demand, freeze, repeat.
  while (n_active > 0) {
    double increment = std::numeric_limits<double>::infinity();
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
      if (active_on_link[l] > 0) {
        increment = std::min(increment, available[l] / static_cast<double>(active_on_link[l]));
      }
    }
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (active[f]) {
        increment = std::min(increment, flows[f].effective_demand() - result.flow_rate[f]);
      }
    }
    increment = std::max(increment, 0.0);

    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      result.flow_rate[f] += increment;
      for (topo::LinkId l : flow_links[f]) available[l] -= increment;
    }

    // Freeze demand-satisfied flows and flows crossing saturated links.
    std::size_t frozen = 0;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      bool freeze = result.flow_rate[f] >= flows[f].effective_demand() - kEps;
      if (!freeze) {
        for (topo::LinkId l : flow_links[f]) {
          if (available[l] <= kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        active[f] = false;
        ++frozen;
        --n_active;
        for (topo::LinkId l : flow_links[f]) --active_on_link[l];
      }
    }
    SHERIFF_REQUIRE(frozen > 0, "progressive filling failed to make progress");
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    flows[f].allocated_gbps = result.flow_rate[f];
    for (topo::LinkId l : flow_links[f]) result.link_load_gbps[l] += result.flow_rate[f];
  }
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    result.link_utilization[l] = result.link_load_gbps[l] / topo.link(l).capacity_gbps;
  }
  return result;
}

}  // namespace sheriff::net
