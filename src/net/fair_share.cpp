#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/timing.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::net {

namespace {
constexpr double kEps = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dirty components below this many affected flows fill serially even with
/// a pool attached: the parallel_for dispatch costs more than the fill.
constexpr std::size_t kParallelFillMinFlows = 256;
}  // namespace

double FairShareResult::available_bandwidth(const topo::Topology& topo,
                                            topo::LinkId link) const {
  SHERIFF_REQUIRE(link < link_load_gbps.size(), "link id out of range for fair-share result");
  return std::max(0.0, topo.link(link).capacity_gbps - link_load_gbps[link]);
}

FairShareResult max_min_fair_share(const topo::Topology& topo, std::span<Flow> flows,
                                   const topo::LivenessMask* liveness) {
  if (liveness != nullptr && liveness->all_up()) liveness = nullptr;
  FairShareResult result;
  result.flow_rate.assign(flows.size(), 0.0);
  result.link_load_gbps.assign(topo.link_count(), 0.0);
  result.link_offered_gbps.assign(topo.link_count(), 0.0);
  result.link_utilization.assign(topo.link_count(), 0.0);

  // Resolve each flow's path into link ids once.
  std::vector<std::vector<topo::LinkId>> flow_links(flows.size());
  std::vector<std::vector<std::size_t>> link_flows(topo.link_count());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!flows[f].routed() || flows[f].effective_demand() <= 0.0) continue;
    const auto& path = flows[f].path;
    bool path_live = true;
    for (std::size_t i = 0; path_live && i + 1 < path.size(); ++i) {
      const topo::LinkId l = topo.link_between(path[i], path[i + 1]);
      path_live = liveness == nullptr || liveness->link_usable(topo, l);
      flow_links[f].push_back(l);
    }
    if (!path_live) {
      flow_links[f].clear();
      continue;
    }
    for (topo::LinkId l : flow_links[f]) {
      link_flows[l].push_back(f);
      result.link_offered_gbps[l] += flows[f].effective_demand();
    }
  }

  std::vector<double> available(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    available[l] = topo.link(l).capacity_gbps;
  }
  std::vector<std::size_t> active_on_link(topo.link_count(), 0);
  std::vector<bool> active(flows.size(), false);
  std::size_t n_active = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!flow_links[f].empty()) {
      active[f] = true;
      ++n_active;
      for (topo::LinkId l : flow_links[f]) ++active_on_link[l];
    }
  }

  // Progressive filling: raise all active rates together until either some
  // link saturates or some flow reaches its demand, freeze, repeat.
  while (n_active > 0) {
    double increment = std::numeric_limits<double>::infinity();
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
      if (active_on_link[l] > 0) {
        increment = std::min(increment, available[l] / static_cast<double>(active_on_link[l]));
      }
    }
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (active[f]) {
        increment = std::min(increment, flows[f].effective_demand() - result.flow_rate[f]);
      }
    }
    increment = std::max(increment, 0.0);

    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      result.flow_rate[f] += increment;
      for (topo::LinkId l : flow_links[f]) available[l] -= increment;
    }

    // Freeze demand-satisfied flows and flows crossing saturated links.
    std::size_t frozen = 0;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      bool freeze = result.flow_rate[f] >= flows[f].effective_demand() - kEps;
      if (!freeze) {
        for (topo::LinkId l : flow_links[f]) {
          if (available[l] <= kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        active[f] = false;
        ++frozen;
        --n_active;
        for (topo::LinkId l : flow_links[f]) --active_on_link[l];
      }
    }
    SHERIFF_REQUIRE(frozen > 0, "progressive filling failed to make progress");
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    flows[f].allocated_gbps = result.flow_rate[f];
    for (topo::LinkId l : flow_links[f]) result.link_load_gbps[l] += result.flow_rate[f];
  }
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    result.link_utilization[l] = result.link_load_gbps[l] / topo.link(l).capacity_gbps;
  }
  return result;
}

// --- FairShareSolver --------------------------------------------------------

FairShareSolver::FairShareSolver(const topo::Topology& topo) : topo_(&topo) {}

void FairShareSolver::invalidate() { force_rebuild_ = true; }

void FairShareSolver::reindex_flow(std::size_t f) {
  const std::uint32_t old_count = flow_link_count_[f];
  const auto& path = cached_path_[f];
  const std::uint32_t new_count =
      path.size() >= 2 ? static_cast<std::uint32_t>(path.size() - 1) : 0;
  std::uint32_t start = flow_link_start_[f];
  if (new_count > old_count) {
    start = static_cast<std::uint32_t>(flow_links_.size());
    flow_links_.resize(flow_links_.size() + new_count);
    flow_link_start_[f] = start;
  }
  for (std::uint32_t i = 0; i < new_count; ++i) {
    flow_links_[start + i] =
        static_cast<std::int32_t>(topo_->link_between(path[i], path[i + 1]));
  }
  flow_link_count_[f] = new_count;
  live_link_refs_ += new_count;
  live_link_refs_ -= old_count;
  reverse_stale_ = true;
  comps_stale_ = true;
}

void FairShareSolver::compact_incidence() {
  // Rewrite the pool densely in ascending flow order (canonical layout —
  // the same one load_state rebuilds, so compaction points never influence
  // anything observable).
  std::vector<std::int32_t> packed;
  packed.reserve(live_link_refs_);
  for (std::size_t f = 0; f < flow_link_start_.size(); ++f) {
    const std::uint32_t start = static_cast<std::uint32_t>(packed.size());
    const auto links = links_of(f);
    packed.insert(packed.end(), links.begin(), links.end());
    flow_link_start_[f] = start;
  }
  flow_links_ = std::move(packed);
}

void FairShareSolver::rebuild_reverse_csr() {
  const std::size_t link_count = topo_->link_count();
  link_flow_offset_.assign(link_count + 1, 0);
  const std::size_t n = flow_link_count_.size();
  for (std::size_t f = 0; f < n; ++f) {
    for (std::int32_t l : links_of(f)) ++link_flow_offset_[static_cast<std::size_t>(l) + 1];
  }
  for (std::size_t l = 0; l < link_count; ++l) {
    link_flow_offset_[l + 1] += link_flow_offset_[l];
  }
  link_flows_.resize(live_link_refs_);
  std::vector<std::uint32_t> cursor(link_flow_offset_.begin(), link_flow_offset_.end() - 1);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::int32_t l : links_of(f)) {
      link_flows_[cursor[static_cast<std::size_t>(l)]++] = static_cast<std::uint32_t>(f);
    }
  }
  reverse_stale_ = false;
}

void FairShareSolver::rebuild_components() {
  const std::size_t n = flow_link_count_.size();
  const std::size_t link_count = topo_->link_count();
  flow_comp_.assign(n, kNoComp);
  link_comp_.assign(link_count, kNoComp);
  comp_count_ = 0;
  std::vector<std::uint32_t> flow_counts;
  std::vector<std::uint32_t> link_counts;
  comp_edge_count_.clear();
  // BFS from each unlabelled participating flow, in ascending flow order:
  // component ids are a canonical function of (incidence, participation).
  for (std::size_t f0 = 0; f0 < n; ++f0) {
    if (!participates_[f0] || flow_comp_[f0] != kNoComp) continue;
    const std::uint32_t c = comp_count_++;
    std::uint32_t flows_in = 0;
    std::uint32_t links_in = 0;
    std::uint32_t edges_in = 0;
    bfs_queue_.clear();
    bfs_queue_.push_back(static_cast<std::uint32_t>(f0));
    flow_comp_[f0] = c;
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
      const std::uint32_t g = bfs_queue_[head];
      ++flows_in;
      edges_in += flow_link_count_[g];
      for (std::int32_t sl : links_of(g)) {
        const auto l = static_cast<std::size_t>(sl);
        if (link_comp_[l] == c) continue;
        link_comp_[l] = c;
        ++links_in;
        for (std::uint32_t h = link_flow_offset_[l]; h < link_flow_offset_[l + 1]; ++h) {
          const std::uint32_t other = link_flows_[h];
          if (participates_[other] && flow_comp_[other] == kNoComp) {
            flow_comp_[other] = c;
            bfs_queue_.push_back(other);
          }
        }
      }
    }
    flow_counts.push_back(flows_in);
    link_counts.push_back(links_in);
    comp_edge_count_.push_back(edges_in);
  }
  // Links only non-participating flows cross got labelled too; strip them
  // back to kNoComp? No — a link labelled c carries at least one
  // participating flow of c by construction (labels spread only through
  // links_of(participating member)), so every labelled link is real.
  comp_flow_offset_.assign(comp_count_ + 1, 0);
  comp_link_offset_.assign(comp_count_ + 1, 0);
  for (std::uint32_t c = 0; c < comp_count_; ++c) {
    comp_flow_offset_[c + 1] = comp_flow_offset_[c] + flow_counts[c];
    comp_link_offset_[c + 1] = comp_link_offset_[c] + link_counts[c];
  }
  comp_flows_.resize(comp_flow_offset_[comp_count_]);
  comp_links_.resize(comp_link_offset_[comp_count_]);
  {
    std::vector<std::uint32_t> cursor(comp_flow_offset_.begin(), comp_flow_offset_.end() - 1);
    for (std::size_t f = 0; f < n; ++f) {
      if (flow_comp_[f] != kNoComp) comp_flows_[cursor[flow_comp_[f]]++] = static_cast<std::uint32_t>(f);
    }
  }
  {
    std::vector<std::uint32_t> cursor(comp_link_offset_.begin(), comp_link_offset_.end() - 1);
    for (std::size_t l = 0; l < link_count; ++l) {
      if (link_comp_[l] != kNoComp) comp_links_[cursor[link_comp_[l]]++] = static_cast<topo::LinkId>(l);
    }
  }
  comp_mark_.assign(comp_count_, 0);
  comps_stale_ = false;
}

void FairShareSolver::refresh_liveness(const topo::LivenessMask* liveness) {
  if (liveness == nullptr) {
    if (!had_liveness_) return;  // bitmap is already all-usable
    for (topo::LinkId l = 0; l < topo_->link_count(); ++l) {
      if (!link_usable_[l]) {
        link_usable_[l] = 1;
        changed_links_.push_back(l);
      }
    }
    had_liveness_ = false;
    last_mask_ = nullptr;
    return;
  }
  if (had_liveness_ && last_mask_ == liveness && liveness->version() == liveness_version_) {
    return;
  }
  for (topo::LinkId l = 0; l < topo_->link_count(); ++l) {
    const char usable = liveness->link_usable(*topo_, l) ? 1 : 0;
    if (usable != link_usable_[l]) {
      link_usable_[l] = usable;
      changed_links_.push_back(l);
    }
  }
  had_liveness_ = true;
  last_mask_ = liveness;
  liveness_version_ = liveness->version();
}

const FairShareResult& FairShareSolver::solve(std::span<Flow> flows,
                                              const topo::LivenessMask* liveness) {
  if (liveness != nullptr && liveness->all_up()) liveness = nullptr;
  obs::Stopwatch phase_watch;
  ++stats_.solves;
  const std::size_t n = flows.size();
  const std::size_t link_count = topo_->link_count();

  const bool full = force_rebuild_ || n != cached_demand_.size();
  if (full) {
    ++stats_.full_rebuilds;
    force_rebuild_ = false;
    cached_path_.assign(n, {});
    cached_demand_.assign(n, 0.0);
    participates_.assign(n, 0);
    flow_link_start_.assign(n, 0);
    flow_link_count_.assign(n, 0);
    flow_links_.clear();
    live_link_refs_ = 0;
    result_.flow_rate.assign(n, 0.0);
    result_.link_load_gbps.assign(link_count, 0.0);
    result_.link_offered_gbps.assign(link_count, 0.0);
    result_.link_utilization.assign(link_count, 0.0);
    flow_mark_.assign(n, 0);
    flow_frozen_.assign(n, 0);
    link_mark_.assign(link_count, 0);
    frozen_load_.assign(link_count, 0.0);
    link_level_.assign(link_count, 0.0);
    active_on_link_.assign(link_count, 0);
    link_usable_.assign(link_count, 1);
    had_liveness_ = false;
    last_mask_ = nullptr;
    comp_count_ = 0;
    reverse_stale_ = true;
    comps_stale_ = true;
    epoch_ = 0;
  }

  ++epoch_;
  dirty_flows_.clear();
  touched_links_.clear();
  changed_links_.clear();
  dirty_comps_.clear();
  orphan_links_.clear();

  const auto mark_flow = [&](std::uint32_t f) {
    if (flow_mark_[f] != epoch_) {
      flow_mark_[f] = epoch_;
      dirty_flows_.push_back(f);
    }
  };
  const auto touch_link = [&](topo::LinkId l) {
    if (link_mark_[l] != epoch_) {
      link_mark_[l] = epoch_;
      touched_links_.push_back(l);
    }
  };

  refresh_liveness(liveness);
  if (!full && !changed_links_.empty()) {
    // Flows crossing a flipped link re-check participation; the reverse
    // CSR still describes the pre-patch incidence here, which is exactly
    // the incidence those flows had when the links went down/up. (It can
    // only be stale right after load_state — rebuild before indexing it.)
    if (reverse_stale_) rebuild_reverse_csr();
    for (topo::LinkId l : changed_links_) {
      touch_link(l);
      for (std::uint32_t i = link_flow_offset_[l]; i < link_flow_offset_[l + 1]; ++i) {
        mark_flow(link_flows_[i]);
      }
    }
  }

  // --- dirty detection: demand, rate-limit, and path edits ------------------
  for (std::size_t f = 0; f < n; ++f) {
    const Flow& flow = flows[f];
    if (full) {
      cached_path_[f] = flow.path;
      flow_link_start_[f] = 0;
      flow_link_count_[f] = 0;
      reindex_flow(f);
      cached_demand_[f] = flow.effective_demand();
      mark_flow(static_cast<std::uint32_t>(f));
      continue;
    }
    const bool path_changed = flow.path.size() != cached_path_[f].size() ||
                              !std::equal(flow.path.begin(), flow.path.end(),
                                          cached_path_[f].begin());
    if (path_changed) {
      mark_flow(static_cast<std::uint32_t>(f));
      // The links the flow leaves lose its contribution: their components
      // must refill too (only if the flow was actually counted on them).
      if (participates_[f]) {
        for (std::int32_t l : links_of(f)) touch_link(static_cast<topo::LinkId>(l));
      }
      cached_path_[f] = flow.path;
      reindex_flow(f);
    }
    const double eff = flow.effective_demand();
    if (eff != cached_demand_[f]) {
      cached_demand_[f] = eff;
      mark_flow(static_cast<std::uint32_t>(f));
    }
  }
  stats_.dirty_flows += dirty_flows_.size();
  if (flow_links_.size() > 2 * live_link_refs_ + 1024) compact_incidence();

  // --- participation refresh (dirty flows only) -----------------------------
  for (const std::uint32_t f : dirty_flows_) {
    bool now = flows[f].routed() && cached_demand_[f] > 0.0;
    if (now && had_liveness_) {
      for (std::int32_t l : links_of(f)) {
        if (!link_usable_[static_cast<std::size_t>(l)]) {
          now = false;
          break;
        }
      }
    }
    if (static_cast<bool>(participates_[f]) != now) comps_stale_ = true;
    if (now || participates_[f]) {
      for (std::int32_t l : links_of(f)) touch_link(static_cast<topo::LinkId>(l));
    }
    participates_[f] = now ? 1 : 0;
  }

  if (reverse_stale_) rebuild_reverse_csr();
  if (comps_stale_) rebuild_components();

  // --- closure: a dirty flow or touched link dirties its whole component ----
  // (the transitive closure over shared links IS the connected component,
  // so this is the exact closure, not an over-approximation).
  const auto mark_comp = [&](std::uint32_t c) {
    if (comp_mark_[c] != epoch_) {
      comp_mark_[c] = epoch_;
      dirty_comps_.push_back(c);
    }
  };
  std::size_t affected = 0;
  for (const std::uint32_t f : dirty_flows_) {
    if (flow_comp_[f] != kNoComp) {
      mark_comp(flow_comp_[f]);
    } else {
      ++affected;  // dirty non-participating flow: reset serially below
    }
  }
  for (const topo::LinkId l : touched_links_) {
    if (link_comp_[l] != kNoComp) {
      mark_comp(link_comp_[l]);
    } else {
      orphan_links_.push_back(l);
    }
  }
  for (const std::uint32_t c : dirty_comps_) {
    affected += comp_flow_offset_[c + 1] - comp_flow_offset_[c];
  }
  stats_.affected_flows += affected;
  stats_.reused_flows += n - affected;
  timings_.build_ns += phase_watch.elapsed_ns();

  // --- fill: reset orphans serially, water-fill dirty components ------------
  phase_watch.restart();
  for (const std::uint32_t f : dirty_flows_) {
    if (flow_comp_[f] == kNoComp) result_.flow_rate[f] = 0.0;
  }
  for (const topo::LinkId l : orphan_links_) {
    result_.link_load_gbps[l] = 0.0;
    result_.link_offered_gbps[l] = 0.0;
    result_.link_utilization[l] = 0.0;
  }
  comp_sort_base_.resize(dirty_comps_.size());
  comp_heap_base_.resize(dirty_comps_.size());
  std::size_t sort_total = 0;
  std::size_t heap_total = 0;
  for (std::size_t di = 0; di < dirty_comps_.size(); ++di) {
    const std::uint32_t c = dirty_comps_[di];
    comp_sort_base_[di] = sort_total;
    comp_heap_base_[di] = heap_total;
    sort_total += comp_flow_offset_[c + 1] - comp_flow_offset_[c];
    heap_total += (comp_link_offset_[c + 1] - comp_link_offset_[c]) + comp_edge_count_[c];
  }
  fill_order_.resize(sort_total);
  heap_pool_.resize(heap_total);
  const std::size_t refilled = sort_total;
  if (pool_ != nullptr && dirty_comps_.size() > 1 && refilled >= kParallelFillMinFlows) {
    common::parallel_for(*pool_, dirty_comps_.size(),
                         [this](std::size_t di) { fill_component(di); });
  } else {
    for (std::size_t di = 0; di < dirty_comps_.size(); ++di) fill_component(di);
  }
  timings_.fill_ns += phase_watch.elapsed_ns();

  for (std::size_t f = 0; f < n; ++f) flows[f].allocated_gbps = result_.flow_rate[f];
  return result_;
}

void FairShareSolver::fill_component(std::size_t di) {
  const std::uint32_t c = dirty_comps_[di];
  const std::span<const std::uint32_t> comp_flows{
      comp_flows_.data() + comp_flow_offset_[c],
      static_cast<std::size_t>(comp_flow_offset_[c + 1] - comp_flow_offset_[c])};
  const std::span<const std::uint32_t> comp_links{
      comp_links_.data() + comp_link_offset_[c],
      static_cast<std::size_t>(comp_link_offset_[c + 1] - comp_link_offset_[c])};

  // Reset the component's links and count active flows per link. Only this
  // component's participating flows can contribute to these links, so a
  // from-zero re-accumulation is exact.
  for (const std::uint32_t l : comp_links) {
    frozen_load_[l] = 0.0;
    active_on_link_[l] = 0;
    result_.link_offered_gbps[l] = 0.0;
  }
  for (const std::uint32_t f : comp_flows) {
    result_.flow_rate[f] = 0.0;
    for (std::int32_t sl : links_of(f)) {
      const auto l = static_cast<std::size_t>(sl);
      ++active_on_link_[l];
      result_.link_offered_gbps[l] += cached_demand_[f];
    }
  }

  // Demand order: the component's flows sorted by (effective demand, flow
  // id) — the sequence of demand events the rising water level crosses.
  std::uint32_t* order = fill_order_.data() + comp_sort_base_[di];
  std::copy(comp_flows.begin(), comp_flows.end(), order);
  std::sort(order, order + comp_flows.size(), [this](std::uint32_t a, std::uint32_t b) {
    if (cached_demand_[a] != cached_demand_[b]) return cached_demand_[a] < cached_demand_[b];
    return a < b;
  });

  // Link-event min-heap with lazy invalidation: an entry is stale when the
  // link re-pushed at a newer level (link_level_ mismatch) or drained of
  // active flows. Capacity |links| + |edges|: one initial push per link,
  // one re-push per (frozen flow × its links).
  LinkEvent* heap = heap_pool_.data() + comp_heap_base_[di];
  std::size_t heap_len = 0;
  const auto heap_push = [&](double level, std::uint32_t link) {
    std::size_t i = heap_len++;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap[parent].level <= level) break;
      heap[i] = heap[parent];
      i = parent;
    }
    heap[i] = LinkEvent{level, link};
  };
  const auto heap_pop = [&] {
    const LinkEvent last = heap[--heap_len];
    std::size_t i = 0;
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= heap_len) break;
      const std::size_t child =
          (left + 1 < heap_len && heap[left + 1].level < heap[left].level) ? left + 1 : left;
      if (heap[child].level >= last.level) break;
      heap[i] = heap[child];
      i = child;
    }
    if (heap_len > 0) heap[i] = last;
  };

  double water = 0.0;
  for (const std::uint32_t l : comp_links) {
    const double level =
        topo_->link(l).capacity_gbps / static_cast<double>(active_on_link_[l]);
    link_level_[l] = level;
    heap_push(level, l);
  }

  const auto freeze_flow = [&](std::uint32_t f, double rate) {
    flow_frozen_[f] = epoch_;
    result_.flow_rate[f] = rate;
    for (std::int32_t sl : links_of(f)) {
      const auto l = static_cast<std::size_t>(sl);
      frozen_load_[l] += rate;
      if (--active_on_link_[l] > 0) {
        double level = (topo_->link(static_cast<topo::LinkId>(l)).capacity_gbps -
                        frozen_load_[l]) /
                       static_cast<double>(active_on_link_[l]);
        if (level < water) level = water;  // mirrors the reference's max(inc, 0)
        link_level_[l] = level;
        heap_push(level, static_cast<std::uint32_t>(l));
      }
    }
  };

  std::size_t remaining = comp_flows.size();
  std::size_t si = 0;
  while (remaining > 0) {
    while (si < comp_flows.size() && flow_frozen_[order[si]] == epoch_) ++si;
    const double demand_event = si < comp_flows.size() ? cached_demand_[order[si]] : kInf;
    while (heap_len > 0 && (active_on_link_[heap[0].link] == 0 ||
                            heap[0].level != link_level_[heap[0].link])) {
      heap_pop();
    }
    const double link_event = heap_len > 0 ? heap[0].level : kInf;
    SHERIFF_REQUIRE(demand_event < kInf || link_event < kInf,
                    "water-filling failed to make progress");
    if (demand_event <= link_event) {
      // Demand events freeze first on a tie — either order yields the same
      // rate, the reference freezes both kinds in the same pass.
      const std::uint32_t f = order[si++];
      freeze_flow(f, demand_event);
      --remaining;
      water = demand_event;
    } else {
      const std::uint32_t l = heap[0].link;
      heap_pop();
      // Freeze every still-active flow crossing the saturated link at its
      // saturation level, in canonical (ascending flow id) order.
      for (std::uint32_t i = link_flow_offset_[l]; i < link_flow_offset_[l + 1]; ++i) {
        const std::uint32_t g = link_flows_[i];
        if (flow_comp_[g] == c && flow_frozen_[g] != epoch_) {
          freeze_flow(g, link_event);
          --remaining;
        }
      }
      water = link_event;
    }
  }

  // Final accumulation in canonical ascending-flow order: link loads are a
  // pure function of the component's current membership, never of the
  // order flows were frozen (or of any historical path edits).
  for (const std::uint32_t l : comp_links) result_.link_load_gbps[l] = 0.0;
  for (const std::uint32_t f : comp_flows) {
    for (std::int32_t sl : links_of(f)) {
      result_.link_load_gbps[static_cast<std::size_t>(sl)] += result_.flow_rate[f];
    }
  }
  for (const std::uint32_t l : comp_links) {
    result_.link_utilization[l] = result_.link_load_gbps[l] / topo_->link(l).capacity_gbps;
  }
}

std::size_t FairShareSolver::arena_bytes() const noexcept {
  // Logical sizes only (live element counts, not vector capacities): the
  // value must be a pure function of the solver's current state so the
  // gauge is identical across pool sizes and across a checkpoint resume.
  const std::size_t n = cached_demand_.size();
  const std::size_t links = link_usable_.size();
  std::size_t bytes = 0;
  bytes += live_link_refs_ * sizeof(std::int32_t);      // flow→link CSR pool
  bytes += live_link_refs_ * sizeof(std::uint32_t);     // link→flow reverse CSR
  bytes += n * (2 * sizeof(std::uint32_t));             // CSR start + count
  bytes += n * (sizeof(std::uint32_t) * 3);             // comp label, dirty/frozen marks
  bytes += n * (sizeof(double) + 2 * sizeof(char));     // demand + participation
  bytes += links * (sizeof(std::uint32_t) * 3 + 1);     // offsets, comp, mark, usable
  bytes += links * (2 * sizeof(double) + sizeof(std::uint32_t));  // fill SoA
  bytes += static_cast<std::size_t>(comp_count_) * (5 * sizeof(std::uint32_t));
  bytes += comp_flows_.size() * sizeof(std::uint32_t);
  bytes += comp_links_.size() * sizeof(std::uint32_t);
  return bytes;
}

void FairShareSolver::save_state(snapshot::Writer& writer) const {
  writer.put_u64(stats_.solves);
  writer.put_u64(stats_.full_rebuilds);
  writer.put_u64(stats_.dirty_flows);
  writer.put_u64(stats_.affected_flows);
  writer.put_u64(stats_.reused_flows);
  writer.put_bool(force_rebuild_);
  const std::size_t n = cached_demand_.size();
  writer.put_u64(n);
  for (std::size_t f = 0; f < n; ++f) {
    writer.put_u32v(cached_path_[f]);
    writer.put_f64(cached_demand_[f]);
    writer.put_u8(static_cast<std::uint8_t>(participates_[f]));
  }
  writer.put_u64(link_usable_.size());
  for (char usable : link_usable_) writer.put_u8(static_cast<std::uint8_t>(usable));
  writer.put_bool(had_liveness_);
  writer.put_u64(liveness_version_);
  writer.put_f64v(result_.flow_rate);
  writer.put_f64v(result_.link_load_gbps);
  writer.put_f64v(result_.link_offered_gbps);
  writer.put_f64v(result_.link_utilization);
}

void FairShareSolver::load_state(snapshot::Reader& reader, const topo::LivenessMask* mask) {
  stats_.solves = reader.get_u64();
  stats_.full_rebuilds = reader.get_u64();
  stats_.dirty_flows = reader.get_u64();
  stats_.affected_flows = reader.get_u64();
  stats_.reused_flows = reader.get_u64();
  force_rebuild_ = reader.get_bool();
  const std::uint64_t n = reader.get_u64();
  cached_path_.assign(n, {});
  cached_demand_.assign(n, 0.0);
  participates_.assign(n, 0);
  flow_link_start_.assign(n, 0);
  flow_link_count_.assign(n, 0);
  flow_links_.clear();
  live_link_refs_ = 0;
  for (std::uint64_t f = 0; f < n; ++f) {
    cached_path_[f] = reader.get_u32v();
    cached_demand_[f] = reader.get_f64();
    participates_[f] = static_cast<char>(reader.get_u8());
  }
  const std::uint64_t links = reader.get_u64();
  SHERIFF_REQUIRE(links == topo_->link_count(),
                  "checkpoint fair-share state does not match this topology");
  link_usable_.assign(links, 1);
  for (char& usable : link_usable_) usable = static_cast<char>(reader.get_u8());
  had_liveness_ = reader.get_bool();
  liveness_version_ = reader.get_u64();
  last_mask_ = had_liveness_ ? mask : nullptr;
  result_.flow_rate = reader.get_f64v();
  result_.link_load_gbps = reader.get_f64v();
  result_.link_offered_gbps = reader.get_f64v();
  result_.link_utilization = reader.get_f64v();
  // Rebuild the flow→link CSR from the serialized paths (dense, ascending
  // flow order — the canonical layout). The reverse CSR, component labels
  // and fill scratch resume cold: the next solve() rebuilds them, and
  // because every summation order is canonical the rebuilt structures
  // reproduce the uninterrupted run's outputs bit for bit.
  for (std::uint64_t f = 0; f < n; ++f) reindex_flow(f);
  reverse_stale_ = true;
  comps_stale_ = true;
  comp_count_ = 0;
  // Epoch marks restart at zero: marks are only compared for equality with
  // the current epoch, which solve() pre-increments, so no stale-mark hit
  // is possible.
  epoch_ = 0;
  flow_mark_.assign(n, 0);
  flow_frozen_.assign(n, 0);
  link_mark_.assign(links, 0);
  frozen_load_.assign(links, 0.0);
  link_level_.assign(links, 0.0);
  active_on_link_.assign(links, 0);
  dirty_flows_.clear();
  touched_links_.clear();
  changed_links_.clear();
  dirty_comps_.clear();
  orphan_links_.clear();
}

void FairShareSolver::publish_metrics(obs::MetricRegistry& registry) const {
  registry.gauge("fair_share.solves").set(static_cast<double>(stats_.solves));
  registry.gauge("fair_share.full_rebuilds").set(static_cast<double>(stats_.full_rebuilds));
  registry.gauge("fair_share.dirty_flows").set(static_cast<double>(stats_.dirty_flows));
  registry.gauge("fair_share.affected_flows").set(static_cast<double>(stats_.affected_flows));
  registry.gauge("fair_share.reused_flows").set(static_cast<double>(stats_.reused_flows));
  registry.gauge("fair_share.components").set(static_cast<double>(comp_count_));
  registry.gauge("fair_share.arena_bytes").set(static_cast<double>(arena_bytes()));
}

}  // namespace sheriff::net
