#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "obs/registry.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::net {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

double FairShareResult::available_bandwidth(const topo::Topology& topo,
                                            topo::LinkId link) const {
  SHERIFF_REQUIRE(link < link_load_gbps.size(), "link id out of range for fair-share result");
  return std::max(0.0, topo.link(link).capacity_gbps - link_load_gbps[link]);
}

FairShareResult max_min_fair_share(const topo::Topology& topo, std::span<Flow> flows,
                                   const topo::LivenessMask* liveness) {
  if (liveness != nullptr && liveness->all_up()) liveness = nullptr;
  FairShareResult result;
  result.flow_rate.assign(flows.size(), 0.0);
  result.link_load_gbps.assign(topo.link_count(), 0.0);
  result.link_offered_gbps.assign(topo.link_count(), 0.0);
  result.link_utilization.assign(topo.link_count(), 0.0);

  // Resolve each flow's path into link ids once.
  std::vector<std::vector<topo::LinkId>> flow_links(flows.size());
  std::vector<std::vector<std::size_t>> link_flows(topo.link_count());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!flows[f].routed() || flows[f].effective_demand() <= 0.0) continue;
    const auto& path = flows[f].path;
    bool path_live = true;
    for (std::size_t i = 0; path_live && i + 1 < path.size(); ++i) {
      const topo::LinkId l = topo.link_between(path[i], path[i + 1]);
      path_live = liveness == nullptr || liveness->link_usable(topo, l);
      flow_links[f].push_back(l);
    }
    if (!path_live) {
      flow_links[f].clear();
      continue;
    }
    for (topo::LinkId l : flow_links[f]) {
      link_flows[l].push_back(f);
      result.link_offered_gbps[l] += flows[f].effective_demand();
    }
  }

  std::vector<double> available(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    available[l] = topo.link(l).capacity_gbps;
  }
  std::vector<std::size_t> active_on_link(topo.link_count(), 0);
  std::vector<bool> active(flows.size(), false);
  std::size_t n_active = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!flow_links[f].empty()) {
      active[f] = true;
      ++n_active;
      for (topo::LinkId l : flow_links[f]) ++active_on_link[l];
    }
  }

  // Progressive filling: raise all active rates together until either some
  // link saturates or some flow reaches its demand, freeze, repeat.
  while (n_active > 0) {
    double increment = std::numeric_limits<double>::infinity();
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
      if (active_on_link[l] > 0) {
        increment = std::min(increment, available[l] / static_cast<double>(active_on_link[l]));
      }
    }
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (active[f]) {
        increment = std::min(increment, flows[f].effective_demand() - result.flow_rate[f]);
      }
    }
    increment = std::max(increment, 0.0);

    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      result.flow_rate[f] += increment;
      for (topo::LinkId l : flow_links[f]) available[l] -= increment;
    }

    // Freeze demand-satisfied flows and flows crossing saturated links.
    std::size_t frozen = 0;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      bool freeze = result.flow_rate[f] >= flows[f].effective_demand() - kEps;
      if (!freeze) {
        for (topo::LinkId l : flow_links[f]) {
          if (available[l] <= kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        active[f] = false;
        ++frozen;
        --n_active;
        for (topo::LinkId l : flow_links[f]) --active_on_link[l];
      }
    }
    SHERIFF_REQUIRE(frozen > 0, "progressive filling failed to make progress");
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    flows[f].allocated_gbps = result.flow_rate[f];
    for (topo::LinkId l : flow_links[f]) result.link_load_gbps[l] += result.flow_rate[f];
  }
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    result.link_utilization[l] = result.link_load_gbps[l] / topo.link(l).capacity_gbps;
  }
  return result;
}

// --- FairShareSolver --------------------------------------------------------

FairShareSolver::FairShareSolver(const topo::Topology& topo) : topo_(&topo) {}

void FairShareSolver::invalidate() { force_rebuild_ = true; }

void FairShareSolver::reindex_flow(std::size_t f, const Flow& flow) {
  for (topo::LinkId l : flow_links_[f]) {
    auto& list = link_flows_[l];
    list.erase(std::find(list.begin(), list.end(), static_cast<std::uint32_t>(f)));
  }
  flow_links_[f].clear();
  cached_path_[f] = flow.path;
  if (flow.path.size() >= 2) {
    flow_links_[f].reserve(flow.path.size() - 1);
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
      flow_links_[f].push_back(topo_->link_between(flow.path[i], flow.path[i + 1]));
    }
    for (topo::LinkId l : flow_links_[f]) {
      link_flows_[l].push_back(static_cast<std::uint32_t>(f));
    }
  }
}

void FairShareSolver::refresh_liveness(const topo::LivenessMask* liveness) {
  if (liveness == nullptr) {
    if (!had_liveness_) return;  // bitmap is already all-usable
    for (topo::LinkId l = 0; l < topo_->link_count(); ++l) {
      if (!link_usable_[l]) {
        link_usable_[l] = 1;
        changed_links_.push_back(l);
      }
    }
    had_liveness_ = false;
    last_mask_ = nullptr;
    return;
  }
  if (had_liveness_ && last_mask_ == liveness && liveness->version() == liveness_version_) {
    return;
  }
  for (topo::LinkId l = 0; l < topo_->link_count(); ++l) {
    const char usable = liveness->link_usable(*topo_, l) ? 1 : 0;
    if (usable != link_usable_[l]) {
      link_usable_[l] = usable;
      changed_links_.push_back(l);
    }
  }
  had_liveness_ = true;
  last_mask_ = liveness;
  liveness_version_ = liveness->version();
}

const FairShareResult& FairShareSolver::solve(std::span<Flow> flows,
                                              const topo::LivenessMask* liveness) {
  if (liveness != nullptr && liveness->all_up()) liveness = nullptr;
  ++stats_.solves;
  const std::size_t n = flows.size();
  const std::size_t link_count = topo_->link_count();

  const bool full = force_rebuild_ || n != cached_demand_.size();
  if (full) {
    ++stats_.full_rebuilds;
    force_rebuild_ = false;
    cached_path_.assign(n, {});
    flow_links_.assign(n, {});
    cached_demand_.assign(n, 0.0);
    participates_.assign(n, 0);
    now_participates_.assign(n, 0);
    link_flows_.assign(link_count, {});
    result_.flow_rate.assign(n, 0.0);
    result_.link_load_gbps.assign(link_count, 0.0);
    result_.link_offered_gbps.assign(link_count, 0.0);
    result_.link_utilization.assign(link_count, 0.0);
    flow_mark_.assign(n, 0);
    link_mark_.assign(link_count, 0);
    avail_.assign(link_count, 0.0);
    active_on_link_.assign(link_count, 0);
    link_usable_.assign(link_count, 1);
    had_liveness_ = false;
    last_mask_ = nullptr;
    epoch_ = 0;
  }

  ++epoch_;
  dirty_queue_.clear();
  touched_links_.clear();
  changed_links_.clear();

  const auto mark_flow = [&](std::uint32_t f) {
    if (flow_mark_[f] != epoch_) {
      flow_mark_[f] = epoch_;
      dirty_queue_.push_back(f);
    }
  };
  // Touching a link pulls every flow whose routed path crosses it into the
  // dirty closure; the link itself is re-accumulated by refill().
  const auto touch_link = [&](topo::LinkId l) {
    if (link_mark_[l] != epoch_) {
      link_mark_[l] = epoch_;
      touched_links_.push_back(l);
      for (std::uint32_t g : link_flows_[l]) mark_flow(g);
    }
  };

  refresh_liveness(liveness);
  for (topo::LinkId l : changed_links_) {
    for (std::uint32_t g : link_flows_[l]) mark_flow(g);
  }

  // --- dirty detection: demand, rate-limit, and path edits ------------------
  for (std::size_t f = 0; f < n; ++f) {
    const Flow& flow = flows[f];
    const bool path_changed = flow.path.size() != cached_path_[f].size() ||
                              !std::equal(flow.path.begin(), flow.path.end(),
                                          cached_path_[f].begin());
    if (path_changed) {
      mark_flow(static_cast<std::uint32_t>(f));
      // The links the flow leaves lose its contribution: their co-flows
      // must refill too (only if the flow was actually counted on them).
      if (participates_[f]) {
        for (topo::LinkId l : flow_links_[f]) touch_link(l);
      }
      reindex_flow(f, flow);
    }
    const double eff = flow.effective_demand();
    if (eff != cached_demand_[f]) {
      cached_demand_[f] = eff;
      mark_flow(static_cast<std::uint32_t>(f));
    }
  }
  stats_.dirty_flows += dirty_queue_.size();

  // --- closure: expand over shared links ------------------------------------
  // Flows that carry (or carried) bandwidth propagate: every link they
  // touch is refilled, and every flow on such a link joins the closure.
  for (std::size_t i = 0; i < dirty_queue_.size(); ++i) {
    const std::uint32_t f = dirty_queue_[i];
    bool now = flows[f].routed() && cached_demand_[f] > 0.0;
    if (now && had_liveness_) {
      for (topo::LinkId l : flow_links_[f]) {
        if (!link_usable_[l]) {
          now = false;
          break;
        }
      }
    }
    now_participates_[f] = now ? 1 : 0;
    if (now || participates_[f]) {
      for (topo::LinkId l : flow_links_[f]) touch_link(l);
    }
  }
  stats_.affected_flows += dirty_queue_.size();
  stats_.reused_flows += n - dirty_queue_.size();

  refill(flows);

  for (std::size_t f = 0; f < n; ++f) flows[f].allocated_gbps = result_.flow_rate[f];
  return result_;
}

void FairShareSolver::refill(std::span<Flow> flows) {
  (void)flows;
  // Reset the touched links; only closure flows contribute to them (no
  // unaffected flow can sit on a touched link, by construction).
  for (topo::LinkId l : touched_links_) {
    avail_[l] = topo_->link(l).capacity_gbps;
    active_on_link_[l] = 0;
    result_.link_load_gbps[l] = 0.0;
    result_.link_offered_gbps[l] = 0.0;
  }

  active_.clear();
  for (const std::uint32_t f : dirty_queue_) {
    participates_[f] = now_participates_[f];
    result_.flow_rate[f] = 0.0;
    if (!now_participates_[f]) continue;
    active_.push_back(f);
    for (topo::LinkId l : flow_links_[f]) {
      ++active_on_link_[l];
      result_.link_offered_gbps[l] += cached_demand_[f];
    }
  }

  // Progressive filling restricted to the closure (same event rules as the
  // reference implementation; see max_min_fair_share above).
  while (!active_.empty()) {
    double increment = std::numeric_limits<double>::infinity();
    for (topo::LinkId l : touched_links_) {
      if (active_on_link_[l] > 0) {
        increment =
            std::min(increment, avail_[l] / static_cast<double>(active_on_link_[l]));
      }
    }
    for (std::uint32_t f : active_) {
      increment = std::min(increment, cached_demand_[f] - result_.flow_rate[f]);
    }
    increment = std::max(increment, 0.0);

    for (std::uint32_t f : active_) {
      result_.flow_rate[f] += increment;
      for (topo::LinkId l : flow_links_[f]) avail_[l] -= increment;
    }

    next_active_.clear();
    std::size_t frozen = 0;
    for (std::uint32_t f : active_) {
      bool freeze = result_.flow_rate[f] >= cached_demand_[f] - kEps;
      if (!freeze) {
        for (topo::LinkId l : flow_links_[f]) {
          if (avail_[l] <= kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        ++frozen;
        for (topo::LinkId l : flow_links_[f]) --active_on_link_[l];
      } else {
        next_active_.push_back(f);
      }
    }
    SHERIFF_REQUIRE(frozen > 0, "incremental progressive filling failed to make progress");
    std::swap(active_, next_active_);
  }

  for (const std::uint32_t f : dirty_queue_) {
    if (!participates_[f]) continue;
    for (topo::LinkId l : flow_links_[f]) result_.link_load_gbps[l] += result_.flow_rate[f];
  }
  for (topo::LinkId l : touched_links_) {
    result_.link_utilization[l] = result_.link_load_gbps[l] / topo_->link(l).capacity_gbps;
  }
}

void FairShareSolver::save_state(snapshot::Writer& writer) const {
  writer.put_u64(stats_.solves);
  writer.put_u64(stats_.full_rebuilds);
  writer.put_u64(stats_.dirty_flows);
  writer.put_u64(stats_.affected_flows);
  writer.put_u64(stats_.reused_flows);
  writer.put_bool(force_rebuild_);
  const std::size_t n = cached_demand_.size();
  writer.put_u64(n);
  for (std::size_t f = 0; f < n; ++f) {
    writer.put_u32v(cached_path_[f]);
    writer.put_u32v(flow_links_[f]);
    writer.put_f64(cached_demand_[f]);
    writer.put_u8(static_cast<std::uint8_t>(participates_[f]));
  }
  writer.put_u64(link_flows_.size());
  for (const auto& list : link_flows_) writer.put_u32v(list);
  writer.put_u64(link_usable_.size());
  for (char usable : link_usable_) writer.put_u8(static_cast<std::uint8_t>(usable));
  writer.put_bool(had_liveness_);
  writer.put_u64(liveness_version_);
  writer.put_f64v(result_.flow_rate);
  writer.put_f64v(result_.link_load_gbps);
  writer.put_f64v(result_.link_offered_gbps);
  writer.put_f64v(result_.link_utilization);
}

void FairShareSolver::load_state(snapshot::Reader& reader, const topo::LivenessMask* mask) {
  stats_.solves = reader.get_u64();
  stats_.full_rebuilds = reader.get_u64();
  stats_.dirty_flows = reader.get_u64();
  stats_.affected_flows = reader.get_u64();
  stats_.reused_flows = reader.get_u64();
  force_rebuild_ = reader.get_bool();
  const std::uint64_t n = reader.get_u64();
  cached_path_.assign(n, {});
  flow_links_.assign(n, {});
  cached_demand_.assign(n, 0.0);
  participates_.assign(n, 0);
  now_participates_.assign(n, 0);
  for (std::uint64_t f = 0; f < n; ++f) {
    cached_path_[f] = reader.get_u32v();
    flow_links_[f] = reader.get_u32v();
    cached_demand_[f] = reader.get_f64();
    participates_[f] = static_cast<char>(reader.get_u8());
  }
  const std::uint64_t links = reader.get_u64();
  SHERIFF_REQUIRE(links == topo_->link_count(),
                  "checkpoint fair-share state does not match this topology");
  link_flows_.assign(links, {});
  for (auto& list : link_flows_) list = reader.get_u32v();
  const std::uint64_t usable_entries = reader.get_u64();
  SHERIFF_REQUIRE(usable_entries == links, "corrupt fair-share liveness bitmap");
  link_usable_.assign(links, 1);
  for (char& usable : link_usable_) usable = static_cast<char>(reader.get_u8());
  had_liveness_ = reader.get_bool();
  liveness_version_ = reader.get_u64();
  last_mask_ = had_liveness_ ? mask : nullptr;
  result_.flow_rate = reader.get_f64v();
  result_.link_load_gbps = reader.get_f64v();
  result_.link_offered_gbps = reader.get_f64v();
  result_.link_utilization = reader.get_f64v();
  // Epoch marks restart at zero: marks are only compared for equality with
  // the current epoch, which solve() pre-increments, so no stale-mark hit
  // is possible. Refill scratch is re-initialized per touched link.
  epoch_ = 0;
  flow_mark_.assign(n, 0);
  link_mark_.assign(links, 0);
  dirty_queue_.clear();
  touched_links_.clear();
  changed_links_.clear();
  avail_.assign(links, 0.0);
  active_on_link_.assign(links, 0);
  active_.clear();
  next_active_.clear();
}

void FairShareSolver::publish_metrics(obs::MetricRegistry& registry) const {
  registry.gauge("fair_share.solves").set(static_cast<double>(stats_.solves));
  registry.gauge("fair_share.full_rebuilds").set(static_cast<double>(stats_.full_rebuilds));
  registry.gauge("fair_share.dirty_flows").set(static_cast<double>(stats_.dirty_flows));
  registry.gauge("fair_share.affected_flows").set(static_cast<double>(stats_.affected_flows));
  registry.gauge("fair_share.reused_flows").set(static_cast<double>(stats_.reused_flows));
}

}  // namespace sheriff::net
