#include "net/queueing.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "obs/registry.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::net {

namespace {
/// Fan-out floor: below this many items the task-dispatch overhead beats
/// the work itself and the sweep runs inline.
constexpr std::size_t kParallelGrain = 256;
}  // namespace

SwitchQueues::SwitchQueues(const topo::Topology& topo, QcnConfig config)
    : topo_(&topo), config_(config) {
  queue_.assign(topo.node_count(), 0.0);
  prev_queue_.assign(topo.node_count(), 0.0);
}

void SwitchQueues::update(const FairShareResult& shares, std::span<Flow> flows, double dt,
                          common::ThreadPool* pool) {
  SHERIFF_REQUIRE(shares.link_load_gbps.size() == topo_->link_count(),
                  "fair-share result does not match topology");
  prev_queue_ = queue_;

  // Per-switch backlog integration: each index touches only queue_[node],
  // so the sweep parallelizes without changing any result.
  const auto integrate = [&](std::size_t id) {
    const auto& node = topo_->node(static_cast<topo::NodeId>(id));
    if (!topo::is_switch(node.kind)) return;
    if (liveness_ != nullptr && !liveness_->node_up(node.id)) {
      queue_[node.id] = 0.0;
      return;
    }
    // Excess = worst (offered − serviced) over incident links: demand the
    // switch was asked to carry but could not.
    double excess = 0.0;
    for (topo::LinkId l : topo_->links_of(node.id)) {
      excess = std::max(excess, shares.link_offered_gbps[l] - shares.link_load_gbps[l]);
    }
    if (excess > 0.0) {
      queue_[node.id] += excess * dt;
    } else {
      queue_[node.id] *= std::max(0.0, 1.0 - config_.drain_factor * dt);
      if (queue_[node.id] < 1e-9) queue_[node.id] = 0.0;
    }
  };
  if (pool != nullptr && topo_->node_count() >= kParallelGrain) {
    common::parallel_for(*pool, topo_->node_count(), integrate);
  } else {
    for (std::size_t id = 0; id < topo_->node_count(); ++id) integrate(id);
  }

  // DSCP marking: flows transiting a congested switch get marked, others
  // get cleared (the mark reflects the current state, not history). Each
  // index writes only its own flow's mark.
  const auto hot = congested_switches();
  const auto mark = [&](std::size_t i) {
    Flow& f = flows[i];
    bool marked = false;
    for (topo::NodeId sw : hot) {
      if (f.transits(sw)) {
        marked = true;
        break;
      }
    }
    f.dscp = marked ? DscpMark::kCongested : DscpMark::kNone;
  };
  if (pool != nullptr && !hot.empty() && flows.size() >= kParallelGrain) {
    common::parallel_for(*pool, flows.size(), mark);
  } else {
    for (std::size_t i = 0; i < flows.size(); ++i) mark(i);
  }
}

double SwitchQueues::queue_length(topo::NodeId sw) const {
  SHERIFF_REQUIRE(sw < queue_.size(), "switch id out of range");
  return queue_[sw];
}

double SwitchQueues::feedback(topo::NodeId sw) const {
  SHERIFF_REQUIRE(sw < queue_.size(), "switch id out of range");
  const double q_off = queue_[sw] - config_.equilibrium_queue;
  const double q_delta = queue_[sw] - prev_queue_[sw];
  return -(q_off + config_.weight * q_delta);
}

std::vector<topo::NodeId> SwitchQueues::congested_switches() const {
  std::vector<topo::NodeId> out;
  for (const auto& node : topo_->nodes()) {
    if (!topo::is_switch(node.kind)) continue;
    if (liveness_ != nullptr && !liveness_->node_up(node.id)) continue;
    if (queue_[node.id] > 0.0 && feedback(node.id) < config_.congestion_feedback) {
      out.push_back(node.id);
    }
  }
  return out;
}

void SwitchQueues::publish_metrics(obs::MetricRegistry& registry) const {
  double max_queue = 0.0;
  double total_queue = 0.0;
  std::size_t congested = 0;
  obs::Histogram& depth =
      registry.histogram("queueing.queue_depth", {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  for (topo::NodeId id = 0; id < topo_->node_count(); ++id) {
    if (!topo::is_switch(topo_->node(id).kind)) continue;
    const double q = queue_[id];
    depth.observe(q);
    max_queue = std::max(max_queue, q);
    total_queue += q;
    if (q > 0.0 && feedback(id) < config_.congestion_feedback) ++congested;
  }
  registry.gauge("queueing.max_queue").set(max_queue);
  registry.gauge("queueing.total_queue").set(total_queue);
  registry.gauge("queueing.congested_switches").set(static_cast<double>(congested));
}

void SwitchQueues::save_state(snapshot::Writer& writer) const {
  writer.put_f64v(queue_);
  writer.put_f64v(prev_queue_);
}

void SwitchQueues::load_state(snapshot::Reader& reader) {
  queue_ = reader.get_f64v();
  prev_queue_ = reader.get_f64v();
  SHERIFF_REQUIRE(queue_.size() == topo_->node_count() && prev_queue_.size() == topo_->node_count(),
                  "checkpoint queue state does not match this topology");
}

}  // namespace sheriff::net
