#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Pcg32 instance, which keeps simulations and regenerated figures
// bit-reproducible. PCG32 (O'Neill 2014) is small, fast, and has far better
// statistical quality than std::minstd / rand().

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace sheriff::common {

/// PCG-XSH-RR 64/32 generator. Value type: copyable, 16 bytes of state.
class Pcg32 {
 public:
  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0U;
    inc_ = (seq << 1U) | 1U;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit integer.
  std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform integer in [0, bound). Unbiased (rejection sampling).
  std::uint32_t next_below(std::uint32_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept { return mean + sigma * normal(); }

  /// Exponential with the given rate (lambda > 0).
  double exponential(double lambda);

  /// Bernoulli trial with success probability `prob` (clamped to [0,1]).
  bool bernoulli(double prob) noexcept { return next_double() < prob; }

  /// Poisson-distributed count (Knuth's method; fine for small means).
  int poisson(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(static_cast<std::uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    SHERIFF_REQUIRE(!items.empty(), "pick() from empty vector");
    return items[next_below(static_cast<std::uint32_t>(items.size()))];
  }

  /// Derives an independent child stream; use to give each component
  /// (e.g. each VM's trace) its own generator from one master seed.
  Pcg32 split() noexcept { return Pcg32(next_u32() | (std::uint64_t{next_u32()} << 32U), inc_ + 2U); }

  /// Complete generator state for checkpoint/restore. Includes the
  /// Box–Muller cache: normal() banks its second deviate, so a generator
  /// that produced an odd number of normals is NOT reproducible from
  /// (state, inc) alone.
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  [[nodiscard]] State state() const noexcept {
    return {state_, inc_, has_cached_normal_, cached_normal_};
  }

  /// Restores a state captured by state(): the restored generator's draw
  /// sequence continues exactly where the captured one would have.
  void restore(const State& s) noexcept {
    state_ = s.state;
    inc_ = s.inc;
    has_cached_normal_ = s.has_cached_normal;
    cached_normal_ = s.cached_normal;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sheriff::common
