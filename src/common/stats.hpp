#pragma once
// Descriptive statistics used throughout the evaluation harness:
// Welford running moments, span-based summaries, quantiles, histograms.

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace sheriff::common {

/// Numerically stable running mean/variance (Welford). Value type.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divides by n-1). Zero for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of a span; 0 for empty input.
double mean(std::span<const double> xs) noexcept;
/// Population variance of a span; 0 for fewer than two samples.
double variance(std::span<const double> xs) noexcept;
/// Population standard deviation of a span.
double stddev(std::span<const double> xs) noexcept;
/// Pearson correlation; 0 when either side is constant. Sizes must match.
double correlation(std::span<const double> xs, std::span<const double> ys);
/// Linear-interpolated quantile, q in [0,1]. Input need not be sorted.
/// Degenerate inputs are well-defined instead of tripping the index math:
/// an empty span yields 0.0 (the same convention as mean()), a single
/// sample is every quantile of itself.
double quantile(std::span<const double> xs, double q);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// edge bins. Used by benches to summarize trace distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// One-line unicode bar rendering ("▁▂▃…"), for bench output.
  [[nodiscard]] std::string render() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sheriff::common
