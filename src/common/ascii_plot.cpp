#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/require.hpp"
#include "common/table.hpp"

namespace sheriff::common {

namespace {

constexpr const char* kGlyphs = "*o+x#@%&";

/// Averages `values` into exactly `buckets` columns.
std::vector<double> resample(const std::vector<double>& values, std::size_t buckets) {
  std::vector<double> out(buckets, std::numeric_limits<double>::quiet_NaN());
  if (values.empty()) return out;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * values.size() / buckets;
    std::size_t hi = (b + 1) * values.size() / buckets;
    hi = std::max(hi, lo + 1);
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = lo; i < hi && i < values.size(); ++i) {
      sum += values[i];
      ++n;
    }
    if (n > 0) out[b] = sum / static_cast<double>(n);
  }
  return out;
}

}  // namespace

std::string render_plot(std::span<const std::vector<double>> series, const PlotOptions& options) {
  SHERIFF_REQUIRE(!series.empty(), "render_plot needs at least one series");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    lo = 0.0;
    hi = 1.0;
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  const std::size_t w = options.width;
  const std::size_t h = options.height;
  std::vector<std::string> canvas(h, std::string(w, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % 8];
    const auto cols = resample(series[si], w);
    for (std::size_t c = 0; c < w; ++c) {
      if (std::isnan(cols[c])) continue;
      const double t = (cols[c] - lo) / (hi - lo);
      auto row = static_cast<std::ptrdiff_t>(std::lround(t * static_cast<double>(h - 1)));
      row = std::clamp<std::ptrdiff_t>(row, 0, static_cast<std::ptrdiff_t>(h) - 1);
      canvas[h - 1 - static_cast<std::size_t>(row)][c] = glyph;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  for (std::size_t r = 0; r < h; ++r) {
    if (r == 0) {
      out << format_fixed(hi, 1) << '\t';
    } else if (r == h - 1) {
      out << format_fixed(lo, 1) << '\t';
    } else {
      out << '\t';
    }
    out << '|' << canvas[r] << '\n';
  }
  out << '\t' << '+' << std::string(w, '-') << '\n';
  if (!options.series_names.empty()) {
    out << "\tlegend:";
    for (std::size_t si = 0; si < options.series_names.size() && si < series.size(); ++si) {
      out << ' ' << kGlyphs[si % 8] << '=' << options.series_names[si];
    }
    out << '\n';
  }
  return out.str();
}

std::string render_plot(const std::vector<double>& series, const PlotOptions& options) {
  const std::vector<std::vector<double>> wrapped{series};
  return render_plot(std::span<const std::vector<double>>(wrapped), options);
}

std::string sparkline(std::span<const double> values, std::size_t width) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return {};
  std::vector<double> vec(values.begin(), values.end());
  const auto cols = resample(vec, std::min(width, vec.size()));
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : cols) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;
  std::string out;
  for (double v : cols) {
    if (std::isnan(v)) {
      out += ' ';
      continue;
    }
    const double t = (v - lo) / (hi - lo);
    const auto idx = std::clamp<int>(static_cast<int>(t * 7.999), 0, 7);
    out += kBars[idx];
  }
  return out;
}

}  // namespace sheriff::common
