#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace sheriff::common {

double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }

double lerp(double a, double b, double t) noexcept { return a + (b - a) * t; }

bool approx_equal(double a, double b, double tol) noexcept {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double mean_squared_error(std::span<const double> actual, std::span<const double> predicted) {
  SHERIFF_REQUIRE(actual.size() == predicted.size(), "MSE requires equal sizes");
  if (actual.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double e = actual[i] - predicted[i];
    acc += e * e;
  }
  return acc / static_cast<double>(actual.size());
}

double root_mean_squared_error(std::span<const double> actual, std::span<const double> predicted) {
  return std::sqrt(mean_squared_error(actual, predicted));
}

double mean_absolute_error(std::span<const double> actual, std::span<const double> predicted) {
  SHERIFF_REQUIRE(actual.size() == predicted.size(), "MAE requires equal sizes");
  if (actual.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) acc += std::fabs(actual[i] - predicted[i]);
  return acc / static_cast<double>(actual.size());
}

double mean_absolute_percentage_error(std::span<const double> actual,
                                      std::span<const double> predicted, double eps) {
  SHERIFF_REQUIRE(actual.size() == predicted.size(), "MAPE requires equal sizes");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::fabs(actual[i]) < eps) continue;
    acc += std::fabs((actual[i] - predicted[i]) / actual[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  SHERIFF_REQUIRE(n >= 2, "linspace needs at least two points");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lerp(lo, hi, static_cast<double>(i) / static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace sheriff::common
