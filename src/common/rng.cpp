#include "common/rng.hpp"

#include <cmath>

namespace sheriff::common {

std::uint32_t Pcg32::next_below(std::uint32_t bound) noexcept {
  if (bound <= 1U) return 0U;
  // Rejection sampling to remove modulo bias.
  const std::uint32_t threshold = (0U - bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

int Pcg32::uniform_int(int lo, int hi) {
  SHERIFF_REQUIRE(lo <= hi, "uniform_int with lo > hi");
  const auto span = static_cast<std::uint32_t>(hi - lo) + 1U;
  return lo + static_cast<int>(next_below(span));
}

double Pcg32::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller in polar form (avoids trig, never degenerate).
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Pcg32::exponential(double lambda) {
  SHERIFF_REQUIRE(lambda > 0.0, "exponential rate must be positive");
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log(1.0 - next_double()) / lambda;
}

int Pcg32::poisson(double mean) {
  SHERIFF_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  const double limit = std::exp(-mean);
  int count = 0;
  double product = next_double();
  while (product > limit) {
    ++count;
    product *= next_double();
  }
  return count;
}

}  // namespace sheriff::common
