#pragma once
// Monotonic stopwatch for timing bench phases.

#include <chrono>

namespace sheriff::common {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_millis() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sheriff::common
