#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace sheriff::common {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formula.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  mean_ += delta * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double correlation(std::span<const double> xs, std::span<const double> ys) {
  SHERIFF_REQUIRE(xs.size() == ys.size(), "correlation requires equal sizes");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double quantile(std::span<const double> xs, double q) {
  SHERIFF_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  // 0- and 1-sample inputs short-circuit before the interpolation: the
  // size-1 arithmetic below would otherwise index past the end on an empty
  // span (size()-1 wraps), and a sweep where a metric appears in a single
  // run is a perfectly ordinary aggregation input, not an error.
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs.front();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  SHERIFF_REQUIRE(hi > lo, "histogram range must be non-empty");
  SHERIFF_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::render() const {
  static const char* kBars[] = {" ", "▁", "▂", "▃",
                                "▄", "▅", "▆", "▇", "█"};
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t c : counts_) {
    const std::size_t level = peak == 0 ? 0 : (c * 8 + peak - 1) / peak;
    out += kBars[std::min<std::size_t>(level, 8)];
  }
  return out;
}

}  // namespace sheriff::common
