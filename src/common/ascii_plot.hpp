#pragma once
// Tiny ASCII line-chart renderer so bench binaries can show the *shape* of
// each reproduced figure directly in the terminal (and in bench_output.txt).

#include <span>
#include <string>
#include <vector>

namespace sheriff::common {

struct PlotOptions {
  std::size_t width = 72;   ///< plot area columns
  std::size_t height = 16;  ///< plot area rows
  std::string title;        ///< optional heading line
  std::vector<std::string> series_names;  ///< legend entries, one per series
};

/// Renders one or more equally-important series on a shared y-axis. Each
/// series is resampled onto `width` columns; distinct glyphs per series.
/// Returns the multi-line chart (with axis labels) as a string.
std::string render_plot(std::span<const std::vector<double>> series, const PlotOptions& options);

/// Convenience overload for a single series.
std::string render_plot(const std::vector<double>& series, const PlotOptions& options);

/// One-line sparkline of a series using block glyphs.
std::string sparkline(std::span<const double> values, std::size_t width = 64);

}  // namespace sheriff::common
