#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace sheriff::common {

namespace {
/// The pool whose worker_loop owns the calling thread (nullptr on any
/// thread that is not a pool worker). One marker suffices even with many
/// pools alive: a thread belongs to at most one pool.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept { return t_worker_pool == this; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Reentrancy guard: a nested parallel_for on the pool the caller already
  // works for would enqueue tasks that can only run once the caller (and
  // every sibling blocked the same way) returns — a deadlock at full
  // occupancy. Run inline instead; pool size is a pure throughput knob
  // everywhere in this codebase, so "size 1, this thread" is sound.
  if (pool.on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunk to at most 4 tasks per worker to bound scheduling overhead.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sheriff::common
