#pragma once
// Work-queue thread pool plus a parallel_for helper.
//
// The distributed engine runs one ShimController task per rack per round on
// this pool (shims only interact through message mailboxes, so tasks are
// data-race free), and the benches use parallel_for to sweep topology sizes.
//
// Reentrancy (DESIGN.md §12): a parallel_for issued *from a worker thread
// of the same pool* runs its iterations inline on that worker instead of
// enqueueing. Without the guard, two-level parallelism — e.g. a fleet
// worker running an engine whose sweeps target the fleet's own pool —
// deadlocks as soon as every worker blocks on futures only the (fully
// occupied) pool could drain. Inline execution is the deterministic
// degradation: iteration order becomes 0..n-1 serially, which is
// indistinguishable from a pool of size one, and pool size never changes
// results anywhere in this codebase.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sheriff::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True iff the calling thread is one of this pool's workers. The
  /// parallel_for reentrancy guard keys off this to run nested sweeps
  /// inline rather than deadlocking on a saturated queue.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Enqueues a task; the future resolves when it finishes (exceptions
  /// propagate through the future).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool, blocking until all complete.
/// Exceptions from any iteration are rethrown (first one wins).
///
/// Reentrancy guard: when called from one of `pool`'s own worker threads,
/// the iterations run inline (serially, in index order) on the caller —
/// never enqueued — so nested parallelism over one pool cannot deadlock.
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

/// Process-wide default pool (lazily constructed, sized to the hardware).
ThreadPool& default_pool();

}  // namespace sheriff::common
