#pragma once
// Lightweight precondition / invariant checking used across the library.
//
// SHERIFF_REQUIRE(cond, msg) throws sheriff::common::RequirementError with
// the failing expression, message and source location. We prefer throwing
// over assert() so that tests can exercise error paths and so that release
// builds keep their guard rails (the checks are cheap relative to the
// simulation work they protect).

#include <stdexcept>
#include <string>

namespace sheriff::common {

/// Raised when a SHERIFF_REQUIRE precondition fails.
class RequirementError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void fail_requirement(const char* expr, const std::string& msg,
                                          const char* file, int line) {
  throw RequirementError(std::string(file) + ":" + std::to_string(line) +
                         ": requirement `" + expr + "` failed: " + msg);
}

}  // namespace sheriff::common

#define SHERIFF_REQUIRE(cond, msg)                                              \
  do {                                                                          \
    if (!(cond)) ::sheriff::common::fail_requirement(#cond, (msg), __FILE__, __LINE__); \
  } while (false)
