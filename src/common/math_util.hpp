#pragma once
// Small numeric helpers shared across modules.

#include <cstddef>
#include <span>
#include <vector>

namespace sheriff::common {

/// Clamps x into [0, 1].
double clamp01(double x) noexcept;

/// Linear interpolation between a and b.
double lerp(double a, double b, double t) noexcept;

/// |a - b| <= tol, with tol scaled by max(1,|a|,|b|) for large magnitudes.
bool approx_equal(double a, double b, double tol = 1e-9) noexcept;

/// Mean squared error between two equal-length spans. This is Eq. (14)'s
/// fitness metric when applied over a sliding window.
double mean_squared_error(std::span<const double> actual, std::span<const double> predicted);

/// Root of mean_squared_error.
double root_mean_squared_error(std::span<const double> actual, std::span<const double> predicted);

/// Mean absolute error.
double mean_absolute_error(std::span<const double> actual, std::span<const double> predicted);

/// Mean absolute percentage error in percent; entries with |actual| < eps
/// are skipped to avoid division blow-ups.
double mean_absolute_percentage_error(std::span<const double> actual,
                                      std::span<const double> predicted, double eps = 1e-9);

/// Evenly spaced values from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace sheriff::common
