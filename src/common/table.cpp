#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace sheriff::common {

std::string format_fixed(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SHERIFF_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::begin_row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  SHERIFF_REQUIRE(!cells_.empty(), "begin_row() before add()");
  SHERIFF_REQUIRE(cells_.back().size() < headers_.size(), "row has too many cells");
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) { return add(format_fixed(value, precision)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  SHERIFF_REQUIRE(r < cells_.size() && c < cells_.at(r).size(), "table cell out of range");
  return cells_[r][c];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos && s.find('"') == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : cells_) print_row(row);
}

}  // namespace sheriff::common
