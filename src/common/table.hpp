#pragma once
// Column-aligned text tables and CSV output. Every bench prints the series
// a paper figure plots as one of these tables, so the harness output can be
// diffed, grepped, and re-plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace sheriff::common {

/// A simple row/column table. Cells are stored as strings; numeric helpers
/// format with fixed precision so columns line up.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& begin_row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(int value);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;

  /// Renders with aligned columns and a header rule.
  void print(std::ostream& os) const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_fixed(double value, int precision);

}  // namespace sheriff::common
