#include "timeseries/simulate.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace sheriff::ts {

std::vector<double> simulate_arma(const std::vector<double>& phi, const std::vector<double>& theta,
                                  double intercept, double sigma, std::size_t length,
                                  common::Pcg32& rng, std::size_t burn_in) {
  SHERIFF_REQUIRE(sigma >= 0.0, "noise sigma must be non-negative");
  const std::size_t total = length + burn_in;
  std::vector<double> x(total, 0.0);
  std::vector<double> z(total, 0.0);
  for (std::size_t t = 0; t < total; ++t) {
    z[t] = rng.normal(0.0, sigma);
    double value = intercept + z[t];
    for (std::size_t i = 0; i < phi.size(); ++i) {
      if (t > i) value += phi[i] * x[t - 1 - i];
    }
    for (std::size_t j = 0; j < theta.size(); ++j) {
      if (t > j) value += theta[j] * z[t - 1 - j];
    }
    x[t] = value;
  }
  return {x.begin() + static_cast<std::ptrdiff_t>(burn_in), x.end()};
}

std::vector<double> simulate_random_walk(double start, double drift, double sigma,
                                         std::size_t length, common::Pcg32& rng) {
  std::vector<double> out;
  out.reserve(length);
  double value = start;
  for (std::size_t t = 0; t < length; ++t) {
    value += drift + rng.normal(0.0, sigma);
    out.push_back(value);
  }
  return out;
}

std::vector<double> simulate_sine(double amplitude, double period, double noise_sigma,
                                  std::size_t length, common::Pcg32& rng) {
  SHERIFF_REQUIRE(period > 0.0, "period must be positive");
  std::vector<double> out;
  out.reserve(length);
  for (std::size_t t = 0; t < length; ++t) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(t) / period;
    out.push_back(amplitude * std::sin(phase) + rng.normal(0.0, noise_sigma));
  }
  return out;
}

}  // namespace sheriff::ts
