#include "timeseries/model_selection.hpp"

#include <limits>

#include "common/require.hpp"
#include "snapshot/archive.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/holt_winters.hpp"
#include "timeseries/narnet.hpp"

namespace sheriff::ts {

namespace {

class ArimaForecaster final : public Forecaster {
 public:
  ArimaForecaster(int p, int d, int q) : model_(ArimaOrder{p, d, q}) {}

  void fit(std::span<const double> series) override { model_.fit(series); }

  double predict_next(std::span<const double> history) const override {
    return model_.forecast(history, 1).front();
  }

  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const override {
    return model_.forecast(history, horizon);
  }

  std::size_t min_history() const override {
    const auto& o = model_.order();
    return static_cast<std::size_t>(o.d + std::max(o.p, o.q)) + 2;
  }

  std::string name() const override {
    const auto& o = model_.order();
    return "ARIMA(" + std::to_string(o.p) + "," + std::to_string(o.d) + "," +
           std::to_string(o.q) + ")";
  }

  void save_state(snapshot::Writer& writer) const override { model_.save_state(writer); }
  void load_state(snapshot::Reader& reader) override { model_.load_state(reader); }

 private:
  ArimaModel model_;
};

class NarnetForecaster final : public Forecaster {
 public:
  NarnetForecaster(int inputs, int hidden, std::uint64_t seed)
      : model_([&] {
          NarNet::Options options;
          options.inputs = inputs;
          options.hidden = hidden;
          options.seed = seed;
          return options;
        }()) {}

  void fit(std::span<const double> series) override { model_.fit(series); }

  double predict_next(std::span<const double> history) const override {
    return model_.predict_next(history);
  }

  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const override {
    return model_.forecast(history, horizon);
  }

  std::size_t min_history() const override {
    return static_cast<std::size_t>(model_.options().inputs);
  }

  std::string name() const override {
    return "NARNET(" + std::to_string(model_.options().inputs) + "," +
           std::to_string(model_.options().hidden) + ")";
  }

  void save_state(snapshot::Writer& writer) const override { model_.save_state(writer); }
  void load_state(snapshot::Reader& reader) override { model_.load_state(reader); }

 private:
  NarNet model_;
};

class HoltWintersForecaster final : public Forecaster {
 public:
  explicit HoltWintersForecaster(std::size_t period)
      : model_([&] {
          HoltWintersModel::Options options;
          options.period = period;
          return options;
        }()) {}

  void fit(std::span<const double> series) override { model_.fit(series); }

  double predict_next(std::span<const double> history) const override {
    return model_.predict_next(history);
  }

  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const override {
    return model_.forecast(history, horizon);
  }

  std::size_t min_history() const override { return 2 * model_.options().period; }

  std::string name() const override {
    return "HoltWinters(" + std::to_string(model_.options().period) + ")";
  }

  void save_state(snapshot::Writer& writer) const override { model_.save_state(writer); }
  void load_state(snapshot::Reader& reader) override { model_.load_state(reader); }

 private:
  HoltWintersModel model_;
};

class NaiveForecaster final : public Forecaster {
 public:
  void fit(std::span<const double>) override {}

  double predict_next(std::span<const double> history) const override {
    SHERIFF_REQUIRE(!history.empty(), "naive forecaster needs at least one value");
    return history.back();
  }

  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const override {
    return std::vector<double>(horizon, predict_next(history));
  }

  std::size_t min_history() const override { return 1; }
  std::string name() const override { return "naive"; }

  void save_state(snapshot::Writer&) const override {}  // stateless
  void load_state(snapshot::Reader&) override {}
};

}  // namespace

std::unique_ptr<Forecaster> make_arima_forecaster(int p, int d, int q) {
  return std::make_unique<ArimaForecaster>(p, d, q);
}

std::unique_ptr<Forecaster> make_narnet_forecaster(int inputs, int hidden, std::uint64_t seed) {
  return std::make_unique<NarnetForecaster>(inputs, hidden, seed);
}

std::unique_ptr<Forecaster> make_holt_winters_forecaster(std::size_t period) {
  return std::make_unique<HoltWintersForecaster>(period);
}

std::unique_ptr<Forecaster> make_naive_forecaster() { return std::make_unique<NaiveForecaster>(); }

DynamicModelSelector::DynamicModelSelector(std::size_t window) : window_(window) {
  SHERIFF_REQUIRE(window >= 1, "selector window must be positive");
}

void DynamicModelSelector::add_model(std::unique_ptr<Forecaster> model) {
  SHERIFF_REQUIRE(!fitted_, "add_model() after fit()");
  SHERIFF_REQUIRE(model != nullptr, "null model");
  models_.push_back({std::move(model), {}, 0.0});
  selection_counts_.push_back(0);
}

void DynamicModelSelector::fit(std::span<const double> series) {
  SHERIFF_REQUIRE(!models_.empty(), "selector has no candidate models");
  for (auto& candidate : models_) candidate.model->fit(series);
  fitted_ = true;
}

std::string DynamicModelSelector::model_name(std::size_t i) const {
  SHERIFF_REQUIRE(i < models_.size(), "model index out of range");
  return models_[i].model->name();
}

double DynamicModelSelector::fitness(std::size_t i) const {
  SHERIFF_REQUIRE(i < models_.size(), "model index out of range");
  const auto& errors = models_[i].recent_sq_errors;
  if (errors.empty()) return 0.0;  // no evidence yet: all models tie
  double acc = 0.0;
  for (double e : errors) acc += e;
  return acc / static_cast<double>(errors.size());
}

std::size_t DynamicModelSelector::best_model() const {
  SHERIFF_REQUIRE(fitted_, "best_model() before fit()");
  std::size_t best = 0;
  double best_fit = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const double f = fitness(i);
    if (f < best_fit) {
      best_fit = f;
      best = i;
    }
  }
  return best;
}

double DynamicModelSelector::predict_next(std::span<const double> history) {
  SHERIFF_REQUIRE(fitted_, "predict_next() before fit()");
  for (auto& candidate : models_) {
    SHERIFF_REQUIRE(history.size() >= candidate.model->min_history(),
                    "history too short for candidate " + candidate.model->name());
    candidate.pending_prediction = candidate.model->predict_next(history);
  }
  const std::size_t chosen = best_model();
  ++selection_counts_[chosen];
  has_pending_ = true;
  return models_[chosen].pending_prediction;
}

std::vector<double> DynamicModelSelector::forecast(std::span<const double> history,
                                                   std::size_t horizon) const {
  SHERIFF_REQUIRE(fitted_, "forecast() before fit()");
  return models_[best_model()].model->forecast(history, horizon);
}

void DynamicModelSelector::observe(double actual) {
  SHERIFF_REQUIRE(has_pending_, "observe() without a pending prediction");
  for (auto& candidate : models_) {
    const double err = actual - candidate.pending_prediction;
    candidate.recent_sq_errors.push_back(err * err);
    if (candidate.recent_sq_errors.size() > window_) {
      candidate.recent_sq_errors.erase(candidate.recent_sq_errors.begin());
    }
  }
  has_pending_ = false;
}


void DynamicModelSelector::save_state(snapshot::Writer& writer) const {
  writer.put_u64(models_.size());
  for (const Candidate& candidate : models_) {
    candidate.model->save_state(writer);
    writer.put_f64v(candidate.recent_sq_errors);
    writer.put_f64(candidate.pending_prediction);
  }
  writer.put_u64(selection_counts_.size());
  for (std::size_t c : selection_counts_) writer.put_u64(c);
  writer.put_bool(fitted_);
  writer.put_bool(has_pending_);
}

void DynamicModelSelector::load_state(snapshot::Reader& reader) {
  const std::uint64_t model_count = reader.get_u64();
  SHERIFF_REQUIRE(model_count == models_.size(),
                  "checkpoint selector does not match this candidate set");
  for (Candidate& candidate : models_) {
    candidate.model->load_state(reader);
    candidate.recent_sq_errors = reader.get_f64v();
    candidate.pending_prediction = reader.get_f64();
  }
  const std::uint64_t count_entries = reader.get_u64();
  SHERIFF_REQUIRE(count_entries == selection_counts_.size(),
                  "corrupt selector selection counts");
  for (std::size_t& c : selection_counts_) c = reader.get_u64();
  fitted_ = reader.get_bool();
  has_pending_ = reader.get_bool();
}

}  // namespace sheriff::ts
