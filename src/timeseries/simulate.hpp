#pragma once
// Sampling known processes — ARMA paths, random walks, deterministic
// seasonal signals — used by tests to verify that the estimators recover
// planted parameters, and by benches to build controlled inputs.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sheriff::ts {

/// Simulates an ARMA(p,q) path: X_t = c + sum phi_i X_{t-i} +
/// Z_t + sum theta_j Z_{t-j}, Z ~ N(0, sigma^2). A burn-in prefix is
/// generated and discarded so the returned path is (near-)stationary.
std::vector<double> simulate_arma(const std::vector<double>& phi, const std::vector<double>& theta,
                                  double intercept, double sigma, std::size_t length,
                                  common::Pcg32& rng, std::size_t burn_in = 200);

/// Random walk with drift: Y_t = Y_{t-1} + drift + N(0, sigma^2).
std::vector<double> simulate_random_walk(double start, double drift, double sigma,
                                         std::size_t length, common::Pcg32& rng);

/// Deterministic sinusoid plus optional noise, for NARNET sanity checks.
std::vector<double> simulate_sine(double amplitude, double period, double noise_sigma,
                                  std::size_t length, common::Pcg32& rng);

}  // namespace sheriff::ts
