#pragma once
// NARNET(ni, nh) — nonlinear autoregressive neural network (Sec. IV-B):
//   Y_t = F(Y_{t-1}, ..., Y_{t-ni}) + eps_t
// realized as a single-hidden-layer tanh MLP with a linear output, trained
// by RMSProp backpropagation on sliding windows with early stopping. This
// is the nonlinear complement to ARIMA in the dynamic model selector.

#include <cstdint>
#include <span>
#include <vector>

#include "snapshot/fwd.hpp"

namespace sheriff::ts {

class NarNet {
 public:
  struct Options {
    int inputs = 8;          ///< ni: autoregressive window length
    int hidden = 20;         ///< nh: hidden units (paper uses 20)
    int max_epochs = 400;
    int batch_size = 16;
    double learning_rate = 5e-3;
    double l2_penalty = 1e-6;
    double validation_fraction = 0.2;  ///< trailing share held out for early stopping
    int patience = 40;                 ///< epochs without val improvement before stop
    std::uint64_t seed = 7;            ///< weight init + batch shuffling
  };

  explicit NarNet(Options options);

  /// Trains on `series` (original scale; the net normalizes internally).
  /// Requires series.size() >= inputs + 8.
  void fit(std::span<const double> series);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Validation MSE (original scale) reached by the kept weights.
  [[nodiscard]] double validation_mse() const noexcept { return validation_mse_; }

  /// Predicts Y_{t+1} from the last `inputs` values of `history`.
  [[nodiscard]] double predict_next(std::span<const double> history) const;

  /// Recursive multi-step forecast (feeds predictions back as inputs).
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t horizon) const;

  /// One-step-ahead predictions for every t in [start, series.size()).
  [[nodiscard]] std::vector<double> one_step_predictions(std::span<const double> series,
                                                         std::size_t start) const;

  /// Checkpoint hooks: trained weights + input normalization (options stay
  /// with the constructor). Inference is pure, so restores are exact.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct Weights {
    std::vector<double> w1;  ///< hidden x inputs
    std::vector<double> b1;  ///< hidden
    std::vector<double> w2;  ///< hidden
    double b2 = 0.0;
  };

  /// Forward pass on a normalized window (most-recent-last ordering).
  [[nodiscard]] double forward(const Weights& w, std::span<const double> window,
                               std::vector<double>* hidden_out) const;
  [[nodiscard]] double normalize(double y) const noexcept { return (y - mean_) / scale_; }
  [[nodiscard]] double denormalize(double z) const noexcept { return z * scale_ + mean_; }

  Options options_;
  Weights weights_;
  double mean_ = 0.0;
  double scale_ = 1.0;
  double validation_mse_ = 0.0;
  bool fitted_ = false;
};

}  // namespace sheriff::ts
