#include "timeseries/narnet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/require.hpp"
#include "snapshot/archive.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace sheriff::ts {

NarNet::NarNet(Options options) : options_(options) {
  SHERIFF_REQUIRE(options.inputs >= 1, "NARNET needs at least one input lag");
  SHERIFF_REQUIRE(options.hidden >= 1, "NARNET needs at least one hidden unit");
  SHERIFF_REQUIRE(options.validation_fraction > 0.0 && options.validation_fraction < 0.9,
                  "validation fraction out of range");
}

double NarNet::forward(const Weights& w, std::span<const double> window,
                       std::vector<double>* hidden_out) const {
  const auto ni = static_cast<std::size_t>(options_.inputs);
  const auto nh = static_cast<std::size_t>(options_.hidden);
  double out = w.b2;
  if (hidden_out != nullptr) hidden_out->resize(nh);
  for (std::size_t h = 0; h < nh; ++h) {
    double a = w.b1[h];
    for (std::size_t i = 0; i < ni; ++i) a += w.w1[h * ni + i] * window[i];
    const double act = std::tanh(a);
    if (hidden_out != nullptr) (*hidden_out)[h] = act;
    out += w.w2[h] * act;
  }
  return out;
}

void NarNet::fit(std::span<const double> series) {
  const auto ni = static_cast<std::size_t>(options_.inputs);
  const auto nh = static_cast<std::size_t>(options_.hidden);
  SHERIFF_REQUIRE(series.size() >= ni + 8, "series too short for NARNET window");

  // Normalize to zero mean / unit scale for stable training.
  mean_ = common::mean(series);
  scale_ = std::max(common::stddev(series), 1e-9);

  // Sliding-window supervised pairs; window ordering is oldest-first.
  const std::size_t n_pairs = series.size() - ni;
  std::vector<std::vector<double>> inputs(n_pairs, std::vector<double>(ni));
  std::vector<double> targets(n_pairs);
  for (std::size_t t = 0; t < n_pairs; ++t) {
    for (std::size_t i = 0; i < ni; ++i) inputs[t][i] = normalize(series[t + i]);
    targets[t] = normalize(series[t + ni]);
  }

  // Trailing validation split (time-ordered, no leakage).
  const auto n_val = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n_pairs) * options_.validation_fraction));
  const std::size_t n_train = n_pairs - n_val;
  SHERIFF_REQUIRE(n_train >= 4, "too few training windows");

  common::Pcg32 rng(options_.seed);
  Weights w;
  w.w1.resize(nh * ni);
  w.b1.assign(nh, 0.0);
  w.w2.resize(nh);
  const double init_scale1 = 1.0 / std::sqrt(static_cast<double>(ni));
  const double init_scale2 = 1.0 / std::sqrt(static_cast<double>(nh));
  for (double& x : w.w1) x = rng.normal(0.0, init_scale1);
  for (double& x : w.w2) x = rng.normal(0.0, init_scale2);

  // RMSProp accumulators.
  Weights grad = w;
  Weights cache = w;
  const auto zero_out = [](Weights& target) {
    std::fill(target.w1.begin(), target.w1.end(), 0.0);
    std::fill(target.b1.begin(), target.b1.end(), 0.0);
    std::fill(target.w2.begin(), target.w2.end(), 0.0);
    target.b2 = 0.0;
  };
  zero_out(cache);

  const auto validation_loss = [&](const Weights& candidate) {
    double acc = 0.0;
    for (std::size_t t = n_train; t < n_pairs; ++t) {
      const double err = forward(candidate, inputs[t], nullptr) - targets[t];
      acc += err * err;
    }
    return acc / static_cast<double>(n_val);
  };

  Weights best = w;
  double best_val = validation_loss(w);
  int stale_epochs = 0;
  std::vector<std::size_t> order(n_train);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden(nh);

  constexpr double kDecay = 0.9;
  constexpr double kEps = 1e-8;
  const auto batch = static_cast<std::size_t>(std::max(1, options_.batch_size));

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t begin = 0; begin < n_train; begin += batch) {
      const std::size_t end = std::min(begin + batch, n_train);
      zero_out(grad);
      for (std::size_t bi = begin; bi < end; ++bi) {
        const std::size_t t = order[bi];
        const double pred = forward(w, inputs[t], &hidden);
        const double dl = 2.0 * (pred - targets[t]) / static_cast<double>(end - begin);
        grad.b2 += dl;
        for (std::size_t h = 0; h < nh; ++h) {
          grad.w2[h] += dl * hidden[h];
          const double dh = dl * w.w2[h] * (1.0 - hidden[h] * hidden[h]);
          grad.b1[h] += dh;
          for (std::size_t i = 0; i < ni; ++i) grad.w1[h * ni + i] += dh * inputs[t][i];
        }
      }
      const auto rmsprop_step = [&](double& param, double& cache_cell, double g) {
        g += options_.l2_penalty * param;
        cache_cell = kDecay * cache_cell + (1.0 - kDecay) * g * g;
        param -= options_.learning_rate * g / (std::sqrt(cache_cell) + kEps);
      };
      for (std::size_t k = 0; k < w.w1.size(); ++k) rmsprop_step(w.w1[k], cache.w1[k], grad.w1[k]);
      for (std::size_t k = 0; k < nh; ++k) {
        rmsprop_step(w.b1[k], cache.b1[k], grad.b1[k]);
        rmsprop_step(w.w2[k], cache.w2[k], grad.w2[k]);
      }
      rmsprop_step(w.b2, cache.b2, grad.b2);
    }

    const double val = validation_loss(w);
    if (val < best_val - 1e-12) {
      best_val = val;
      best = w;
      stale_epochs = 0;
    } else if (++stale_epochs > options_.patience) {
      break;
    }
  }

  weights_ = std::move(best);
  validation_mse_ = best_val * scale_ * scale_;  // back to original units
  fitted_ = true;
}

double NarNet::predict_next(std::span<const double> history) const {
  SHERIFF_REQUIRE(fitted_, "predict_next() before fit()");
  const auto ni = static_cast<std::size_t>(options_.inputs);
  SHERIFF_REQUIRE(history.size() >= ni, "history shorter than the input window");
  std::vector<double> window(ni);
  for (std::size_t i = 0; i < ni; ++i) window[i] = normalize(history[history.size() - ni + i]);
  return denormalize(forward(weights_, window, nullptr));
}

std::vector<double> NarNet::forecast(std::span<const double> history, std::size_t horizon) const {
  std::vector<double> extended(history.begin(), history.end());
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double next = predict_next(extended);
    extended.push_back(next);
    out.push_back(next);
  }
  return out;
}

std::vector<double> NarNet::one_step_predictions(std::span<const double> series,
                                                 std::size_t start) const {
  const auto ni = static_cast<std::size_t>(options_.inputs);
  SHERIFF_REQUIRE(start >= ni, "start leaves no input window");
  SHERIFF_REQUIRE(start <= series.size(), "start beyond series end");
  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = start; t < series.size(); ++t) {
    out.push_back(predict_next(series.subspan(0, t)));
  }
  return out;
}


void NarNet::save_state(snapshot::Writer& writer) const {
  writer.put_f64v(weights_.w1);
  writer.put_f64v(weights_.b1);
  writer.put_f64v(weights_.w2);
  writer.put_f64(weights_.b2);
  writer.put_f64(mean_);
  writer.put_f64(scale_);
  writer.put_f64(validation_mse_);
  writer.put_bool(fitted_);
}

void NarNet::load_state(snapshot::Reader& reader) {
  weights_.w1 = reader.get_f64v();
  weights_.b1 = reader.get_f64v();
  weights_.w2 = reader.get_f64v();
  weights_.b2 = reader.get_f64();
  mean_ = reader.get_f64();
  scale_ = reader.get_f64();
  validation_mse_ = reader.get_f64();
  fitted_ = reader.get_bool();
}

}  // namespace sheriff::ts
