#pragma once
// ARIMA(p,d,q) modeling (Sec. IV-B):
//   phi(L) (1-L)^d Y_t = c + theta(L) Z_t,   Z_t ~ WN(0, sigma^2)
//
// Fitting: difference d times, Hannan–Rissanen two-stage least squares for
// a starting point, then Nelder–Mead polish of the conditional sum of
// squares (CSS) under stationarity/invertibility constraints. Forecasting:
// recursive MMSE k-step-ahead (Eq. 12) with future innovations at their
// conditional mean of zero, integrated back to the original scale.

#include <span>
#include <vector>

#include "snapshot/fwd.hpp"

namespace sheriff::ts {

struct ArimaOrder {
  int p = 1;  ///< autoregressive order
  int d = 1;  ///< differencing order
  int q = 1;  ///< moving-average order
};

class ArimaModel {
 public:
  explicit ArimaModel(ArimaOrder order);

  /// Estimates parameters from `series` (original scale). Requires
  /// series.size() > d + 3*max(p,q) + 4 observations.
  void fit(std::span<const double> series);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] ArimaOrder order() const noexcept { return order_; }
  [[nodiscard]] const std::vector<double>& ar_coefficients() const noexcept { return phi_; }
  [[nodiscard]] const std::vector<double>& ma_coefficients() const noexcept { return theta_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] double innovation_variance() const noexcept { return sigma2_; }

  /// Corrected Akaike information criterion of the fit (lower is better);
  /// used by Box–Jenkins order selection.
  [[nodiscard]] double aicc() const;

  /// MMSE forecasts of the next `horizon` values given `history` (original
  /// scale; may extend the training series). history.size() must exceed
  /// d + max(p,q).
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t horizon) const;

  /// Forecast with MMSE prediction intervals (the paper's "forecast
  /// range"): the h-step variance is sigma^2 * sum_{j<h} psi_j^2 with
  /// psi the MA(infinity) weights of the ARIMA process (d-integrated).
  struct Interval {
    double mean = 0.0;
    double lower = 0.0;  ///< mean - z * stderr
    double upper = 0.0;  ///< mean + z * stderr
    double stderr_ = 0.0;
  };
  [[nodiscard]] std::vector<Interval> forecast_with_intervals(std::span<const double> history,
                                                              std::size_t horizon,
                                                              double z = 1.96) const;

  /// First `count` psi (MA-infinity) weights of the *differenced* ARMA
  /// process, psi_0 = 1. Exposed for tests.
  [[nodiscard]] std::vector<double> psi_weights(std::size_t count) const;

  /// One-step-ahead predictions Ŷ_t|t-1 for every t in [start,
  /// series.size()): what the fitted model would have predicted for each
  /// point given only earlier data. Used for rolling test evaluation.
  [[nodiscard]] std::vector<double> one_step_predictions(std::span<const double> series,
                                                         std::size_t start) const;

  /// Checkpoint hooks: the fitted coefficients (order_ stays with the
  /// constructor). Forecasting is a pure function of these + the history,
  /// so a restored model forecasts bit-identically.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  /// CSS of params = [c, phi..., theta...] on differenced series `w`.
  /// Fills `residuals` (same length as w; zero-padded warm-up) if non-null.
  [[nodiscard]] double conditional_sum_of_squares(std::span<const double> w,
                                                  std::span<const double> params,
                                                  std::vector<double>* residuals) const;

  ArimaOrder order_;
  std::vector<double> phi_;
  std::vector<double> theta_;
  double intercept_ = 0.0;
  double sigma2_ = 0.0;
  double css_ = 0.0;
  std::size_t effective_n_ = 0;
  bool fitted_ = false;
};

/// True when the lag polynomial 1 - c1 L - ... - cp L^p has all roots
/// outside the unit circle (AR stationarity; applied to -theta for MA
/// invertibility). Exposed for tests.
bool lag_polynomial_is_stable(std::span<const double> coefficients);

}  // namespace sheriff::ts
