#include "timeseries/acf.hpp"

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "timeseries/series_ops.hpp"

namespace sheriff::ts {

std::vector<double> autocorrelation(std::span<const double> series, int max_lag) {
  SHERIFF_REQUIRE(max_lag >= 1, "max_lag must be positive");
  SHERIFF_REQUIRE(series.size() > static_cast<std::size_t>(max_lag),
                  "series too short for requested lags");
  const auto centered = demean(series);
  const auto n = static_cast<double>(centered.size());
  double c0 = 0.0;
  for (double x : centered) c0 += x * x;
  c0 /= n;

  std::vector<double> r(max_lag, 0.0);
  if (c0 <= 0.0) return r;  // constant series: all autocorrelations zero
  for (int k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t t = static_cast<std::size_t>(k); t < centered.size(); ++t) {
      ck += centered[t] * centered[t - k];
    }
    r[k - 1] = (ck / n) / c0;
  }
  return r;
}

std::vector<double> partial_autocorrelation(std::span<const double> series, int max_lag) {
  const auto r = autocorrelation(series, max_lag);
  // Durbin–Levinson recursion: phi_{k,k} is the k-th PACF value.
  std::vector<double> pacf(max_lag, 0.0);
  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi_cur(max_lag + 1, 0.0);
  double v = 1.0;  // prediction error variance (normalized)

  for (int k = 1; k <= max_lag; ++k) {
    double num = r[k - 1];
    for (int j = 1; j < k; ++j) num -= phi_prev[j] * r[k - 1 - j];
    const double phi_kk = v > 1e-14 ? num / v : 0.0;
    phi_cur[k] = phi_kk;
    for (int j = 1; j < k; ++j) phi_cur[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
    v *= (1.0 - phi_kk * phi_kk);
    pacf[k - 1] = phi_kk;
    phi_prev = phi_cur;
  }
  return pacf;
}

double ljung_box(std::span<const double> series, int lags) {
  const auto r = autocorrelation(series, lags);
  const auto n = static_cast<double>(series.size());
  double q = 0.0;
  for (int k = 1; k <= lags; ++k) {
    q += r[k - 1] * r[k - 1] / (n - static_cast<double>(k));
  }
  return n * (n + 2.0) * q;
}

bool looks_stationary(std::span<const double> series, double threshold) {
  if (series.size() < 8) return true;
  const auto r = autocorrelation(series, 1);
  return std::fabs(r[0]) < threshold;
}

}  // namespace sheriff::ts
