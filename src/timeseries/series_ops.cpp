#include "timeseries/series_ops.hpp"

#include "common/require.hpp"
#include "common/stats.hpp"

namespace sheriff::ts {

std::vector<double> difference(std::span<const double> series, int d) {
  SHERIFF_REQUIRE(d >= 0, "difference order must be non-negative");
  SHERIFF_REQUIRE(static_cast<int>(series.size()) > d, "series too short to difference");
  std::vector<double> out(series.begin(), series.end());
  for (int round = 0; round < d; ++round) {
    for (std::size_t t = out.size() - 1; t > 0; --t) out[t] -= out[t - 1];
    out.erase(out.begin());
  }
  return out;
}

std::vector<double> integrate(std::span<const double> increments, std::span<const double> tail,
                              int d) {
  SHERIFF_REQUIRE(d >= 0, "integration order must be non-negative");
  SHERIFF_REQUIRE(static_cast<int>(tail.size()) == d, "integrate needs exactly d tail values");
  if (d == 0) return {increments.begin(), increments.end()};

  // Build the d "last difference levels" from the tail: level[0] is the
  // last original value, level[j] the last j-th difference.
  std::vector<double> level(d);
  {
    std::vector<double> work(tail.begin(), tail.end());
    for (int j = 0; j < d; ++j) {
      level[j] = work.back();
      for (std::size_t t = work.size() - 1; t > 0; --t) work[t] -= work[t - 1];
      work.erase(work.begin());
    }
  }

  std::vector<double> out;
  out.reserve(increments.size());
  for (double inc : increments) {
    // Cascade the new d-th difference down to the original scale.
    double value = inc;
    for (int j = d - 1; j >= 0; --j) {
      value += level[j];
      level[j] = value;
    }
    out.push_back(value);
  }
  return out;
}

std::vector<double> lagged(std::span<const double> series, int lag) {
  SHERIFF_REQUIRE(lag >= 0, "lag must be non-negative");
  SHERIFF_REQUIRE(series.size() >= static_cast<std::size_t>(lag), "lag exceeds series length");
  return {series.begin(), series.end() - lag};
}

std::vector<double> demean(std::span<const double> series, double* mean_out) {
  const double m = common::mean(series);
  if (mean_out != nullptr) *mean_out = m;
  std::vector<double> out(series.begin(), series.end());
  for (double& x : out) x -= m;
  return out;
}

}  // namespace sheriff::ts
