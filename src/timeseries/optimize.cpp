#include "timeseries/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"

namespace sheriff::ts {

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& fn,
                             std::vector<double> x0, const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  SHERIFF_REQUIRE(n >= 1, "nelder_mead needs at least one dimension");

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double kAlpha = 1.0;
  constexpr double kGamma = 2.0;
  constexpr double kRho = 0.5;
  constexpr double kSigma = 0.5;

  std::vector<std::vector<double>> simplex;
  simplex.reserve(n + 1);
  simplex.push_back(x0);
  for (std::size_t i = 0; i < n; ++i) {
    auto vertex = x0;
    vertex[i] += options.initial_step * (std::fabs(vertex[i]) > 1.0 ? std::fabs(vertex[i]) : 1.0);
    simplex.push_back(std::move(vertex));
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = fn(simplex[i]);

  NelderMeadResult result;
  std::vector<std::size_t> order(n + 1);
  for (result.iterations = 0; result.iterations < options.max_iterations; ++result.iterations) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    if (std::isfinite(values[best]) &&
        std::fabs(values[worst] - values[best]) <= options.tolerance *
            (std::fabs(values[best]) + options.tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const auto blend = [&](double coeff) {
      std::vector<double> point(n);
      for (std::size_t d = 0; d < n; ++d) {
        point[d] = centroid[d] + coeff * (simplex[worst][d] - centroid[d]);
      }
      return point;
    };

    const auto reflected = blend(-kAlpha);
    const double f_reflected = fn(reflected);
    if (f_reflected < values[best]) {
      const auto expanded = blend(-kAlpha * kGamma);
      const double f_expanded = fn(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
      continue;
    }
    const auto contracted = blend(kRho);
    const double f_contracted = fn(contracted);
    if (f_contracted < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = f_contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d) {
        simplex[i][d] = simplex[best][d] + kSigma * (simplex[i][d] - simplex[best][d]);
      }
      values[i] = fn(simplex[i]);
    }
  }

  const std::size_t best =
      static_cast<std::size_t>(std::min_element(values.begin(), values.end()) - values.begin());
  result.x = simplex[best];
  result.value = values[best];
  return result;
}

}  // namespace sheriff::ts
