#pragma once
// Sample autocorrelation / partial autocorrelation and the Ljung–Box
// portmanteau statistic — the Box–Jenkins identification toolkit the paper
// uses to pick ARIMA orders.

#include <span>
#include <vector>

namespace sheriff::ts {

/// Sample autocorrelations r_1..r_max_lag (r_0 = 1 is omitted).
std::vector<double> autocorrelation(std::span<const double> series, int max_lag);

/// Partial autocorrelations via Durbin–Levinson, lags 1..max_lag.
std::vector<double> partial_autocorrelation(std::span<const double> series, int max_lag);

/// Ljung–Box Q statistic over the first `lags` autocorrelations. Under the
/// white-noise null, Q ~ chi^2(lags); large Q rejects whiteness.
double ljung_box(std::span<const double> series, int lags);

/// Crude stationarity check used by automatic differencing: true when the
/// series' variance is not obviously dominated by a trend/random walk
/// (lag-1 autocorrelation below `threshold`).
bool looks_stationary(std::span<const double> series, double threshold = 0.95);

}  // namespace sheriff::ts
