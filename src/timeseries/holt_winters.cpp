#include "timeseries/holt_winters.hpp"

#include <limits>

#include "common/require.hpp"
#include "snapshot/archive.hpp"
#include "common/stats.hpp"

namespace sheriff::ts {

HoltWintersModel::HoltWintersModel(Options options) : options_(options) {
  SHERIFF_REQUIRE(options.period >= 2, "seasonal period must be at least 2");
  for (double gain : {options.level_gain, options.trend_gain, options.season_gain}) {
    SHERIFF_REQUIRE(gain >= 0.0 && gain <= 1.0, "smoothing gains must be in [0,1]");
  }
}

HoltWintersModel::State HoltWintersModel::run(std::span<const double> series,
                                              double* sse) const {
  const std::size_t m = options_.period;
  State state;
  state.season.assign(m, 0.0);

  // Classical initialization from the first two seasons: level = mean of
  // season one, trend = average per-step growth between the seasons,
  // seasonal components = first-season deviations from its mean.
  const double mean1 = common::mean(series.subspan(0, m));
  const double mean2 = common::mean(series.subspan(m, m));
  state.level = mean1;
  state.trend = (mean2 - mean1) / static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) state.season[i] = series[i] - mean1;

  double error_acc = 0.0;
  std::size_t error_n = 0;
  for (std::size_t t = m; t < series.size(); ++t) {
    const std::size_t s = t % m;
    const double predicted = state.level + state.trend + state.season[s];
    const double err = series[t] - predicted;
    error_acc += err * err;
    ++error_n;

    const double prev_level = state.level;
    state.level = options_.level_gain * (series[t] - state.season[s]) +
                  (1.0 - options_.level_gain) * (state.level + state.trend);
    state.trend = options_.trend_gain * (state.level - prev_level) +
                  (1.0 - options_.trend_gain) * state.trend;
    state.season[s] = options_.season_gain * (series[t] - state.level) +
                      (1.0 - options_.season_gain) * state.season[s];
  }
  state.t = series.size();
  if (sse != nullptr) *sse = error_n > 0 ? error_acc / static_cast<double>(error_n) : 0.0;
  return state;
}

void HoltWintersModel::fit(std::span<const double> series) {
  SHERIFF_REQUIRE(series.size() >= 2 * options_.period,
                  "Holt-Winters needs at least two full seasons");
  if (options_.tune_gains) {
    double best = std::numeric_limits<double>::infinity();
    Options best_options = options_;
    for (double a : {0.2, 0.4, 0.6}) {
      for (double b : {0.01, 0.05, 0.15}) {
        for (double g : {0.1, 0.3, 0.5}) {
          Options candidate = options_;
          candidate.level_gain = a;
          candidate.trend_gain = b;
          candidate.season_gain = g;
          HoltWintersModel probe(candidate);
          double sse = 0.0;
          (void)probe.run(series, &sse);
          if (sse < best) {
            best = sse;
            best_options = candidate;
          }
        }
      }
    }
    options_ = best_options;
  }
  (void)run(series, &training_mse_);
  fitted_ = true;
}

std::vector<double> HoltWintersModel::forecast(std::span<const double> history,
                                               std::size_t horizon) const {
  SHERIFF_REQUIRE(fitted_, "forecast() before fit()");
  SHERIFF_REQUIRE(history.size() >= 2 * options_.period,
                  "history shorter than two seasons");
  const State state = run(history, nullptr);
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 1; h <= horizon; ++h) {
    const std::size_t s = (state.t + h - 1) % options_.period;
    out.push_back(state.level + static_cast<double>(h) * state.trend + state.season[s]);
  }
  return out;
}

double HoltWintersModel::predict_next(std::span<const double> history) const {
  return forecast(history, 1).front();
}


void HoltWintersModel::save_state(snapshot::Writer& writer) const {
  writer.put_f64(options_.level_gain);
  writer.put_f64(options_.trend_gain);
  writer.put_f64(options_.season_gain);
  writer.put_f64(training_mse_);
  writer.put_bool(fitted_);
}

void HoltWintersModel::load_state(snapshot::Reader& reader) {
  options_.level_gain = reader.get_f64();
  options_.trend_gain = reader.get_f64();
  options_.season_gain = reader.get_f64();
  training_mse_ = reader.get_f64();
  fitted_ = reader.get_bool();
}

}  // namespace sheriff::ts
