#pragma once
// Lag and difference operators (Sec. IV-B of the paper): L^j Y_t = Y_{t-j},
// ∇Y_t = Y_t - Y_{t-1}, with ∇^d applied recursively, plus the inverse
// integration used to map ARMA forecasts of the differenced series back to
// the original scale.

#include <span>
#include <vector>

namespace sheriff::ts {

/// First difference applied `d` times; output is `d` elements shorter.
std::vector<double> difference(std::span<const double> series, int d = 1);

/// Inverse of difference(). `tail` holds the last `d` *original-scale*
/// running values needed to integrate (for d=1: {Y_T}; for d=2:
/// {Y_{T-1}, Y_T}), and `increments` is the d-times-differenced
/// continuation. Returns the original-scale continuation.
std::vector<double> integrate(std::span<const double> increments, std::span<const double> tail,
                              int d = 1);

/// Series shifted by `lag` (drops the first `lag` entries' partners):
/// out[t] = series[t - lag] aligned so out.size() == series.size() - lag.
std::vector<double> lagged(std::span<const double> series, int lag);

/// Subtracts the mean; returns the centered series and outputs the mean.
std::vector<double> demean(std::span<const double> series, double* mean_out = nullptr);

}  // namespace sheriff::ts
