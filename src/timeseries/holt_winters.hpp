#pragma once
// Additive Holt–Winters (triple exponential smoothing): level + trend +
// additive seasonality. DCN traffic has strong daily/weekly seasonality
// (Fig. 5), and Holt–Winters is the classical cheap seasonal forecaster —
// a natural extra candidate next to ARIMA and NARNET in the dynamic
// selector.

#include <span>
#include <vector>

#include "snapshot/fwd.hpp"

namespace sheriff::ts {

class HoltWintersModel {
 public:
  struct Options {
    std::size_t period = 48;     ///< samples per season (e.g. one day)
    double level_gain = 0.3;     ///< alpha
    double trend_gain = 0.05;    ///< beta
    double season_gain = 0.2;    ///< gamma
    bool tune_gains = true;      ///< grid-search the gains on the training SSE
  };

  explicit HoltWintersModel(Options options);

  /// Requires at least two full seasons of data.
  void fit(std::span<const double> series);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Mean squared one-step error on the training pass.
  [[nodiscard]] double training_mse() const noexcept { return training_mse_; }

  /// Forecasts `horizon` values after `history` (the smoothing recursion
  /// is re-run over the given history with the fitted gains).
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t horizon) const;
  [[nodiscard]] double predict_next(std::span<const double> history) const;

  /// Checkpoint hooks: the (possibly grid-tuned) gains + fit flag. The
  /// forecast recursion re-runs over the caller's history, so no smoothing
  /// state needs to survive.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct State {
    double level = 0.0;
    double trend = 0.0;
    std::vector<double> season;
    std::size_t t = 0;  ///< samples consumed
  };

  /// Runs the smoothing pass; returns the final state and optionally the
  /// accumulated one-step squared error.
  [[nodiscard]] State run(std::span<const double> series, double* sse) const;

  Options options_;
  double training_mse_ = 0.0;
  bool fitted_ = false;
};

}  // namespace sheriff::ts
