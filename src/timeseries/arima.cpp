#include "timeseries/arima.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "snapshot/archive.hpp"
#include "timeseries/optimize.hpp"
#include "timeseries/series_ops.hpp"

namespace sheriff::ts {

namespace {

/// Solves A x = b by Gaussian elimination with partial pivoting. A is
/// n x n row-major and clobbered. Returns false if (near-)singular.
bool solve_linear_system(std::vector<double>& a, std::vector<double>& b, std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t row = n; row > 0; --row) {
    const std::size_t r = row - 1;
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * b[c];
    b[r] = acc / a[r * n + r];
  }
  return true;
}

/// Ordinary least squares of y on the rows of X (n_obs x n_vars).
/// Returns empty on singular normal equations.
std::vector<double> ols(const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  const std::size_t n_obs = x.size();
  if (n_obs == 0) return {};
  const std::size_t n_vars = x.front().size();
  std::vector<double> xtx(n_vars * n_vars, 0.0);
  std::vector<double> xty(n_vars, 0.0);
  for (std::size_t i = 0; i < n_obs; ++i) {
    for (std::size_t a = 0; a < n_vars; ++a) {
      xty[a] += x[i][a] * y[i];
      for (std::size_t b = a; b < n_vars; ++b) xtx[a * n_vars + b] += x[i][a] * x[i][b];
    }
  }
  for (std::size_t a = 0; a < n_vars; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx[a * n_vars + b] = xtx[b * n_vars + a];
  }
  // Ridge epsilon keeps near-collinear regressors from exploding.
  for (std::size_t a = 0; a < n_vars; ++a) xtx[a * n_vars + a] += 1e-8;
  if (!solve_linear_system(xtx, xty, n_vars)) return {};
  return xty;
}

}  // namespace

bool lag_polynomial_is_stable(std::span<const double> coefficients) {
  const std::size_t p = coefficients.size();
  if (p == 0) return true;
  // Exact conditions for the common small orders.
  if (p == 1) return std::fabs(coefficients[0]) < 1.0;
  if (p == 2) {
    const double c1 = coefficients[0];
    const double c2 = coefficients[1];
    return std::fabs(c2) < 1.0 && c2 + c1 < 1.0 && c2 - c1 < 1.0;
  }
  // General case: spectral radius of the companion matrix of the recursion
  // x_t = c1 x_{t-1} + ... + cp x_{t-p}, estimated by iterated powers.
  std::vector<double> state(p, 0.0);
  state[0] = 1.0;
  double growth = 0.0;
  constexpr int kIterations = 200;
  for (int it = 0; it < kIterations; ++it) {
    double next = 0.0;
    for (std::size_t j = 0; j < p; ++j) next += coefficients[j] * state[j];
    for (std::size_t j = p - 1; j > 0; --j) state[j] = state[j - 1];
    state[0] = next;
    double norm = 0.0;
    for (double s : state) norm = std::max(norm, std::fabs(s));
    if (norm > 1e100) return false;  // clearly explosive
    if (norm < 1e-100) return true;  // clearly contracting
    growth = norm;
  }
  return std::pow(growth, 1.0 / kIterations) < 1.0;
}

ArimaModel::ArimaModel(ArimaOrder order) : order_(order) {
  SHERIFF_REQUIRE(order.p >= 0 && order.d >= 0 && order.q >= 0, "negative ARIMA order");
  SHERIFF_REQUIRE(order.p + order.q >= 0 && order.p <= 12 && order.q <= 12 && order.d <= 3,
                  "ARIMA order out of supported range");
}

double ArimaModel::conditional_sum_of_squares(std::span<const double> w,
                                              std::span<const double> params,
                                              std::vector<double>* residuals) const {
  const auto p = static_cast<std::size_t>(order_.p);
  const auto q = static_cast<std::size_t>(order_.q);
  const double c = params[0];
  const std::span<const double> phi = params.subspan(1, p);
  const std::span<const double> theta = params.subspan(1 + p, q);

  if (!lag_polynomial_is_stable(phi)) return std::numeric_limits<double>::infinity();
  if (!lag_polynomial_is_stable(theta)) return std::numeric_limits<double>::infinity();

  std::vector<double> e(w.size(), 0.0);
  const std::size_t start = std::max(p, q);
  double css = 0.0;
  for (std::size_t t = start; t < w.size(); ++t) {
    double pred = c;
    for (std::size_t i = 0; i < p; ++i) pred += phi[i] * w[t - 1 - i];
    for (std::size_t j = 0; j < q; ++j) pred += theta[j] * e[t - 1 - j];
    e[t] = w[t] - pred;
    css += e[t] * e[t];
  }
  if (residuals != nullptr) *residuals = std::move(e);
  return css;
}

void ArimaModel::fit(std::span<const double> series) {
  const auto p = static_cast<std::size_t>(order_.p);
  const auto q = static_cast<std::size_t>(order_.q);
  const auto d = order_.d;
  const std::size_t min_len = static_cast<std::size_t>(d) + 3 * std::max(p, q) + 5;
  SHERIFF_REQUIRE(series.size() >= min_len, "series too short for this ARIMA order");

  const std::vector<double> w = difference(series, d);

  // --- Stage 1 (Hannan–Rissanen): long-AR residuals as innovation proxies.
  const std::size_t long_ar = std::min<std::size_t>(
      std::max<std::size_t>(p + q + 2, 4), w.size() / 3);
  std::vector<double> proxy_resid(w.size(), 0.0);
  {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (std::size_t t = long_ar; t < w.size(); ++t) {
      std::vector<double> row(long_ar + 1, 1.0);
      for (std::size_t i = 0; i < long_ar; ++i) row[i + 1] = w[t - 1 - i];
      x.push_back(std::move(row));
      y.push_back(w[t]);
    }
    const auto beta = ols(x, y);
    if (!beta.empty()) {
      for (std::size_t t = long_ar; t < w.size(); ++t) {
        double pred = beta[0];
        for (std::size_t i = 0; i < long_ar; ++i) pred += beta[i + 1] * w[t - 1 - i];
        proxy_resid[t] = w[t] - pred;
      }
    }
  }

  // --- Stage 2: regress w_t on its own lags and lagged proxy residuals.
  std::vector<double> params(1 + p + q, 0.0);
  {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    const std::size_t start = std::max({p, q, long_ar});
    for (std::size_t t = start; t < w.size(); ++t) {
      std::vector<double> row(1 + p + q);
      row[0] = 1.0;
      for (std::size_t i = 0; i < p; ++i) row[1 + i] = w[t - 1 - i];
      for (std::size_t j = 0; j < q; ++j) row[1 + p + j] = proxy_resid[t - 1 - j];
      x.push_back(std::move(row));
      y.push_back(w[t]);
    }
    auto beta = ols(x, y);
    if (beta.size() == params.size()) params = std::move(beta);
    // Fall back inside the feasible region if the start point is unstable.
    if (!std::isfinite(conditional_sum_of_squares(w, params, nullptr))) {
      std::fill(params.begin(), params.end(), 0.0);
      params[0] = common::mean(w);
      if (p > 0) params[1] = 0.3;
      if (q > 0) params[1 + p] = 0.3;
    }
  }

  // --- Stage 3: polish on the CSS surface.
  if (p + q > 0) {
    NelderMeadOptions options;
    options.max_iterations = 600;
    options.initial_step = 0.05;
    const auto objective = [&](const std::vector<double>& candidate) {
      return conditional_sum_of_squares(w, candidate, nullptr);
    };
    const auto polished = nelder_mead(objective, params, options);
    if (std::isfinite(polished.value)) params = polished.x;
  } else {
    params[0] = common::mean(w);
  }

  std::vector<double> residuals;
  css_ = conditional_sum_of_squares(w, params, &residuals);
  SHERIFF_REQUIRE(std::isfinite(css_), "ARIMA fit failed to find a stable model");

  intercept_ = params[0];
  phi_.assign(params.begin() + 1, params.begin() + 1 + static_cast<std::ptrdiff_t>(p));
  theta_.assign(params.begin() + 1 + static_cast<std::ptrdiff_t>(p), params.end());
  effective_n_ = w.size() - std::max(p, q);
  sigma2_ = effective_n_ > 0 ? css_ / static_cast<double>(effective_n_) : 0.0;
  fitted_ = true;
}

double ArimaModel::aicc() const {
  SHERIFF_REQUIRE(fitted_, "aicc() before fit()");
  const auto n = static_cast<double>(effective_n_);
  const auto k = static_cast<double>(order_.p + order_.q + 2);  // + intercept + sigma
  const double sigma2 = std::max(sigma2_, 1e-300);
  double aic = n * std::log(sigma2) + 2.0 * k;
  if (n - k - 1.0 > 0.0) aic += 2.0 * k * (k + 1.0) / (n - k - 1.0);
  return aic;
}

std::vector<double> ArimaModel::forecast(std::span<const double> history,
                                         std::size_t horizon) const {
  SHERIFF_REQUIRE(fitted_, "forecast() before fit()");
  const auto p = static_cast<std::size_t>(order_.p);
  const auto q = static_cast<std::size_t>(order_.q);
  const auto d = order_.d;
  SHERIFF_REQUIRE(history.size() > static_cast<std::size_t>(d) + std::max(p, q),
                  "history too short to forecast from");
  if (horizon == 0) return {};

  std::vector<double> w = difference(history, d);

  // Innovations over the provided history.
  std::vector<double> params;
  params.reserve(1 + p + q);
  params.push_back(intercept_);
  params.insert(params.end(), phi_.begin(), phi_.end());
  params.insert(params.end(), theta_.begin(), theta_.end());
  std::vector<double> e;
  (void)conditional_sum_of_squares(w, params, &e);

  // Recursive conditional-mean forecasts in differenced space; future
  // innovations enter at their mean (zero).
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t t = w.size();
    double pred = intercept_;
    for (std::size_t i = 0; i < p; ++i) pred += phi_[i] * w[t - 1 - i];
    for (std::size_t j = 0; j < q; ++j) {
      const std::size_t idx = t - 1 - j;
      pred += theta_[j] * (idx < e.size() ? e[idx] : 0.0);
    }
    w.push_back(pred);
  }

  const std::vector<double> increments(w.end() - static_cast<std::ptrdiff_t>(horizon), w.end());
  const std::span<const double> tail =
      history.subspan(history.size() - static_cast<std::size_t>(d));
  return integrate(increments, tail, d);
}

std::vector<double> ArimaModel::psi_weights(std::size_t count) const {
  SHERIFF_REQUIRE(fitted_, "psi_weights() before fit()");
  const std::size_t p = phi_.size();
  const std::size_t q = theta_.size();
  // psi_j = theta_j + sum_{i<=min(j,p)} phi_i psi_{j-i}, theta_0 = 1.
  std::vector<double> psi(count, 0.0);
  if (count == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t j = 1; j < count; ++j) {
    double value = j <= q ? theta_[j - 1] : 0.0;
    for (std::size_t i = 1; i <= std::min(j, p); ++i) value += phi_[i - 1] * psi[j - i];
    psi[j] = value;
  }
  return psi;
}

std::vector<ArimaModel::Interval> ArimaModel::forecast_with_intervals(
    std::span<const double> history, std::size_t horizon, double z) const {
  const auto means = forecast(history, horizon);
  const auto psi = psi_weights(horizon);

  // The forecast-error process of the d-integrated series has MA weights
  // equal to the cumulative sums of psi, applied d times.
  std::vector<double> weights = psi;
  for (int round = 0; round < order_.d; ++round) {
    for (std::size_t j = 1; j < weights.size(); ++j) weights[j] += weights[j - 1];
  }

  std::vector<Interval> out(horizon);
  double var = 0.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    var += weights[h] * weights[h] * sigma2_;
    const double se = std::sqrt(var);
    out[h].mean = means[h];
    out[h].stderr_ = se;
    out[h].lower = means[h] - z * se;
    out[h].upper = means[h] + z * se;
  }
  return out;
}

std::vector<double> ArimaModel::one_step_predictions(std::span<const double> series,
                                                     std::size_t start) const {
  SHERIFF_REQUIRE(fitted_, "one_step_predictions() before fit()");
  const auto p = static_cast<std::size_t>(order_.p);
  const auto q = static_cast<std::size_t>(order_.q);
  const auto d = static_cast<std::size_t>(order_.d);
  SHERIFF_REQUIRE(start > d + std::max(p, q), "start leaves no warm-up room");
  SHERIFF_REQUIRE(start <= series.size(), "start beyond series end");

  const std::vector<double> w = difference(series, order_.d);
  std::vector<double> params;
  params.reserve(1 + p + q);
  params.push_back(intercept_);
  params.insert(params.end(), phi_.begin(), phi_.end());
  params.insert(params.end(), theta_.begin(), theta_.end());
  std::vector<double> e;
  (void)conditional_sum_of_squares(w, params, &e);

  // Differencing is linear, so the only unknown in Y_t given the past is
  // the innovation: Ŷ_t|t-1 = Y_t - e_{t-d} (w index is offset by d).
  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = start; t < series.size(); ++t) out.push_back(series[t] - e[t - d]);
  return out;
}


void ArimaModel::save_state(snapshot::Writer& writer) const {
  writer.put_f64v(phi_);
  writer.put_f64v(theta_);
  writer.put_f64(intercept_);
  writer.put_f64(sigma2_);
  writer.put_f64(css_);
  writer.put_u64(effective_n_);
  writer.put_bool(fitted_);
}

void ArimaModel::load_state(snapshot::Reader& reader) {
  phi_ = reader.get_f64v();
  theta_ = reader.get_f64v();
  intercept_ = reader.get_f64();
  sigma2_ = reader.get_f64();
  css_ = reader.get_f64();
  effective_n_ = reader.get_u64();
  fitted_ = reader.get_bool();
}

}  // namespace sheriff::ts
