#pragma once
// Derivative-free minimization (Nelder–Mead). The ARIMA fitter polishes its
// Hannan–Rissanen starting point on the conditional-sum-of-squares surface
// with this; it is also handy for small calibration problems in benches.

#include <functional>
#include <vector>

namespace sheriff::ts {

struct NelderMeadOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;       ///< stop when simplex f-spread is below this
  double initial_step = 0.1;      ///< simplex edge length around the start
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimizes `fn` starting from `x0`. fn may return +inf to reject a point
/// (used to enforce stationarity / invertibility constraints).
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& fn,
                             std::vector<double> x0, const NelderMeadOptions& options = {});

}  // namespace sheriff::ts
