#pragma once
// Box–Jenkins automatic order selection (the paper specifies "use
// Box-Jenkins method to specify the parameters of ARIMA"): pick the
// differencing order d that makes the series look stationary, then grid
// over (p, q) and keep the fit with the lowest corrected AIC.

#include <span>

#include "timeseries/arima.hpp"

namespace sheriff::ts {

struct BoxJenkinsOptions {
  int max_p = 3;
  int max_d = 2;
  int max_q = 3;
};

struct BoxJenkinsSelection {
  ArimaModel model{ArimaOrder{}};  ///< the winning fitted model
  double aicc = 0.0;
  int candidates_tried = 0;
};

/// Fits the grid and returns the AICc-best model (already fitted).
BoxJenkinsSelection select_arima(std::span<const double> series,
                                 const BoxJenkinsOptions& options = {});

/// The differencing order selection step alone: smallest d in [0, max_d]
/// whose d-th difference looks stationary (lag-1 autocorrelation test).
int select_differencing_order(std::span<const double> series, int max_d = 2);

}  // namespace sheriff::ts
