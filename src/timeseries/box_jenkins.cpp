#include "timeseries/box_jenkins.hpp"

#include <limits>

#include "common/require.hpp"
#include "timeseries/acf.hpp"
#include "timeseries/series_ops.hpp"

namespace sheriff::ts {

int select_differencing_order(std::span<const double> series, int max_d) {
  SHERIFF_REQUIRE(max_d >= 0, "max_d must be non-negative");
  std::vector<double> work(series.begin(), series.end());
  for (int d = 0; d < max_d; ++d) {
    if (looks_stationary(work)) return d;
    work = difference(work, 1);
  }
  return max_d;
}

BoxJenkinsSelection select_arima(std::span<const double> series,
                                 const BoxJenkinsOptions& options) {
  SHERIFF_REQUIRE(series.size() >= 32, "Box-Jenkins selection needs at least 32 points");
  const int d = select_differencing_order(series, options.max_d);

  BoxJenkinsSelection best;
  double best_aicc = std::numeric_limits<double>::infinity();
  for (int p = 0; p <= options.max_p; ++p) {
    for (int q = 0; q <= options.max_q; ++q) {
      if (p == 0 && q == 0) continue;  // a bare random walk predicts nothing
      ArimaModel candidate(ArimaOrder{p, d, q});
      try {
        candidate.fit(series);
      } catch (const common::RequirementError&) {
        continue;  // fit infeasible (too short / no stable optimum)
      }
      ++best.candidates_tried;
      const double aicc = candidate.aicc();
      if (aicc < best_aicc) {
        best_aicc = aicc;
        best.model = std::move(candidate);
        best.aicc = aicc;
      }
    }
  }
  SHERIFF_REQUIRE(best.candidates_tried > 0, "no ARIMA candidate could be fitted");
  return best;
}

}  // namespace sheriff::ts
