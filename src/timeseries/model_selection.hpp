#pragma once
// Dynamic model selection (Sec. IV-B): hold several fitted predictors
// (e.g. two ARIMA orders and two NARNET shapes), score each by its mean
// squared one-step prediction error over a sliding window T_p (Eq. 14),
// and answer every query with the currently-best model's prediction.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "snapshot/fwd.hpp"

namespace sheriff::ts {

/// Common interface over ARIMA and NARNET so the selector can treat them
/// uniformly. Implementations are fitted once on training data and then
/// queried with growing histories.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Fits model parameters on the given training series.
  virtual void fit(std::span<const double> series) = 0;
  /// One-step-ahead prediction of the value following `history`.
  [[nodiscard]] virtual double predict_next(std::span<const double> history) const = 0;
  /// Recursive k-step-ahead forecast.
  [[nodiscard]] virtual std::vector<double> forecast(std::span<const double> history,
                                                     std::size_t horizon) const = 0;
  /// Shortest history length predict_next() accepts.
  [[nodiscard]] virtual std::size_t min_history() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Checkpoint hooks: fitted parameters only. load_state assumes the
  /// target was constructed with the same shape (order, layer sizes,
  /// period); the selector round-trips candidates positionally.
  virtual void save_state(snapshot::Writer& writer) const = 0;
  virtual void load_state(snapshot::Reader& reader) = 0;
};

/// Adapters over the concrete models.
std::unique_ptr<Forecaster> make_arima_forecaster(int p, int d, int q);
std::unique_ptr<Forecaster> make_narnet_forecaster(int inputs, int hidden,
                                                   std::uint64_t seed = 7);
std::unique_ptr<Forecaster> make_holt_winters_forecaster(std::size_t period);
/// Persistence baseline (predicts the last observed value); useful floor.
std::unique_ptr<Forecaster> make_naive_forecaster();

class DynamicModelSelector {
 public:
  /// `window` is T_p of Eq. (14): how many recent one-step errors enter
  /// each model's fitness.
  explicit DynamicModelSelector(std::size_t window = 32);

  /// Adds a candidate (unfitted) model. Call before fit().
  void add_model(std::unique_ptr<Forecaster> model);

  /// Fits all candidates on the training series.
  void fit(std::span<const double> series);

  [[nodiscard]] std::size_t model_count() const noexcept { return models_.size(); }
  [[nodiscard]] std::string model_name(std::size_t i) const;

  /// MSE_f(t, T_p) of model i over the last min(window, observed) errors.
  [[nodiscard]] double fitness(std::size_t i) const;

  /// Index of the model with minimal windowed MSE (ties: first added).
  [[nodiscard]] std::size_t best_model() const;

  /// Predicts the next value with the currently-best model, *then* records
  /// every model's prediction so fitness can be updated when the truth
  /// arrives via observe().
  double predict_next(std::span<const double> history);

  /// Reports the realized value for the most recent predict_next() call.
  void observe(double actual);

  /// Multi-step forecast with the currently-best model; does not record a
  /// pending prediction (read-only with respect to the fitness state).
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t horizon) const;

  /// How many times each model was selected so far (diagnostics).
  [[nodiscard]] const std::vector<std::size_t>& selection_counts() const noexcept {
    return selection_counts_;
  }

  /// Checkpoint hooks: per-candidate fitted parameters + the sliding error
  /// windows and pending predictions that drive best_model(). Candidates
  /// are matched positionally — the target selector must have been built
  /// with the same add_model() sequence.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct Candidate {
    std::unique_ptr<Forecaster> model;
    std::vector<double> recent_sq_errors;  // ring, newest at back
    double pending_prediction = 0.0;
  };

  std::size_t window_;
  std::vector<Candidate> models_;
  std::vector<std::size_t> selection_counts_;
  bool fitted_ = false;
  bool has_pending_ = false;
};

}  // namespace sheriff::ts
