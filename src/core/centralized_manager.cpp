#include "core/centralized_manager.hpp"

namespace sheriff::core {

CentralizedManager::CentralizedManager(wl::Deployment& deployment,
                                       mig::MigrationCostModel& cost_model,
                                       SheriffConfig config)
    : deployment_(&deployment), cost_model_(&cost_model), config_(config),
      all_hosts_(deployment.topology().nodes_of_kind(topo::NodeKind::kHost)) {}

MigrationPlan CentralizedManager::migrate(std::vector<wl::VmId> alerted) {
  // The centralized manager owns every destination, so the REQUEST
  // handshake always addresses the correct delegate (itself); reuse the
  // broker machinery for the capacity bookkeeping.
  mig::AdmissionBroker broker(*deployment_);
  VmMigrationScheduler scheduler(*deployment_, *cost_model_, broker,
                                 config_.max_matching_rounds);
  if (liveness_ != nullptr && !liveness_->all_up()) {
    std::vector<topo::NodeId> live_hosts;
    live_hosts.reserve(all_hosts_.size());
    for (topo::NodeId h : all_hosts_) {
      if (liveness_->host_attached(deployment_->topology(), h)) live_hosts.push_back(h);
    }
    return scheduler.migrate(std::move(alerted), live_hosts);
  }
  return scheduler.migrate(std::move(alerted), all_hosts_);
}

}  // namespace sheriff::core
