#pragma once
// ShimController: the per-rack delegated manager (Sec. II-B). Each round it
// runs in two phases:
//
//   collect() — read-only and thread-safe: inspect the predicted profiles
//   of the rack's VMs, the rack's ToR uplink state, and the congestion
//   feedback from outer switches, producing the round's Alert set (the
//   input of Alg. 1).
//
//   act() — Alg. 1 proper: partition alerts by type, build the candidate
//   sets F, select VMs with PRIORITY (Alg. 2), reroute flows around hot
//   outer switches (FLOWREROUTE first — it is cheaper than migration), and
//   drive VMMIGRATION (Alg. 3) against the one-hop neighbor region. act()
//   mutates the shared deployment via the admission broker, so the engine
//   serializes it across shims (FCFS) while collect() runs in parallel.

#include <span>
#include <vector>

#include "core/alert.hpp"
#include "core/config.hpp"
#include "core/vm_migration.hpp"
#include "net/queueing.hpp"
#include "net/reroute.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"
#include "workload/deployment.hpp"

namespace sheriff::core {

struct ShimCollectResult {
  std::vector<Alert> alerts;
  /// ALERT value of every VM in this rack (parallel to `rack_vms`).
  std::vector<wl::VmId> rack_vms;
  std::vector<double> vm_alert_values;
};

/// The outcome of Alg. 1's alert dispatch before any migration is
/// scheduled: which VMs to move (M_v), what was rerouted, and the alert
/// tallies. Feeds either the serialized scheduler (act()) or the
/// message-passing protocol (DistributedMigrationProtocol).
struct ShimSelection {
  std::vector<wl::VmId> migration_set;
  net::RerouteReport reroutes;
  std::size_t host_alerts = 0;
  std::size_t tor_alerts = 0;
  std::size_t switch_alerts = 0;
};

struct ShimActResult {
  MigrationPlan plan;
  net::RerouteReport reroutes;
  std::size_t host_alerts = 0;
  std::size_t tor_alerts = 0;
  std::size_t switch_alerts = 0;
};

/// Alg. 1's alert dispatch *without* side effects: the migration set M_v
/// plus the reroute claims (hot outer switches whose conflicting flows
/// should move) recorded instead of applied. Produced by propose() in the
/// engine's parallel shard sweep; the engine commits the claims serially,
/// ordered by shim id, deduplicating cross-shard claims on the same
/// switch (DESIGN.md §11).
struct ShimProposal {
  std::vector<wl::VmId> migration_set;
  std::vector<topo::NodeId> reroute_claims;  ///< hot switches, in alert order
  std::size_t host_alerts = 0;
  std::size_t tor_alerts = 0;
  std::size_t switch_alerts = 0;
};

class ShimController {
 public:
  ShimController(topo::RackId rack, const topo::Topology& topo, SheriffConfig config);

  [[nodiscard]] topo::RackId rack() const noexcept { return rack_; }

  /// Attaches the fabric's liveness mask (nullptr = pristine fabric). Dead
  /// hosts raise no alerts and are never offered as migration receivers.
  /// The mask must outlive the controller.
  void set_liveness(const topo::LivenessMask* liveness) { liveness_ = liveness; }

  /// Attaches the event trace (nullptr detaches). Emission is safe from
  /// the parallel collect sweep: this shim only ever writes its own ring.
  /// The trace must outlive the controller.
  void set_trace(obs::EventTrace* trace) noexcept { trace_ = trace; }

  /// Adds the alerts/reroutes recorded since the last call to the shared
  /// `shim.*` counters and resets the pending tallies. Called serially by
  /// the engine at the round boundary.
  void publish_metrics(obs::MetricRegistry& registry) const;

  /// Destination hosts of the shim's dominating region: the rack's own
  /// hosts plus every host in a one-hop neighbor rack.
  [[nodiscard]] std::vector<topo::NodeId> region_target_hosts() const;

  /// Everything a shim observes about the network in one round (filled by
  /// the engine before the collect phase).
  struct Observation {
    const net::FairShareResult* shares = nullptr;
    /// Congested outer switches some flow of this rack transits (the
    /// engine pre-filters per rack so the scan over all flows happens
    /// once, not once per rack).
    std::span<const topo::NodeId> hot_switches;
    double fleet_mean_load_percent = 0.0;  ///< for the relative hotspot detector
    /// T-ahead prediction of the worst ToR uplink utilization (Sec. IV-A:
    /// the shim forecasts its ToR's state); negative = not available, use
    /// the current shares instead.
    double predicted_tor_utilization = -1.0;
    /// T-ahead prediction of the ToR queue backlog (Gbit); triggers a ToR
    /// alert when it exceeds the QCN equilibrium. Negative = unavailable.
    double predicted_tor_queue = -1.0;
    double tor_queue_equilibrium = 4.0;
  };

  /// Phase 1 (see file comment). `predicted` is indexed by VmId.
  [[nodiscard]] ShimCollectResult collect(const wl::Deployment& deployment,
                                          std::span<const wl::WorkloadProfile> predicted,
                                          const Observation& observation) const;

  /// Alg. 1's alert dispatch: builds the candidate sets F, runs PRIORITY
  /// (Alg. 2), reroutes around hot outer switches (FLOWREROUTE first), and
  /// returns the migration set M_v — without scheduling it. `predicted`
  /// ranks VMs for the host-alert single-VM selection when no VM crossed
  /// the ALERT threshold outright. Mutates `flows` (reroutes).
  ShimSelection select(const ShimCollectResult& collected, const wl::Deployment& deployment,
                       std::span<const wl::WorkloadProfile> predicted,
                       const net::FlowRerouter& rerouter, std::span<net::Flow> flows,
                       std::span<const wl::VmId> flow_owner) const;

  /// The pure half of select(): the same alert dispatch evaluated against
  /// an immutable view of the round state. Reroutes become claims instead
  /// of flow mutations, nothing is traced, and no tallies move — safe to
  /// run concurrently with other shims' propose() over the same flow
  /// table. `rack_flow_index` lists the indices of the flows owned by this
  /// rack's VMs, ascending (the engine builds it once per round so the
  /// switch-alert F-set scan is O(own flows), not O(all flows)); pass an
  /// empty span to fall back to the full-table scan.
  [[nodiscard]] ShimProposal propose(const ShimCollectResult& collected,
                                     const wl::Deployment& deployment,
                                     std::span<const wl::WorkloadProfile> predicted,
                                     std::span<const net::Flow> flows,
                                     std::span<const wl::VmId> flow_owner,
                                     std::span<const std::size_t> rack_flow_index) const;

  /// Commits one reroute claim from propose(): moves conflicting flows off
  /// `hot_switch`, traces the decision, and tallies it. Serial phase only
  /// (mutates the shared flow table) — the engine orders these by shim id.
  net::RerouteReport apply_reroute(topo::NodeId hot_switch, const net::FlowRerouter& rerouter,
                                   std::span<net::Flow> flows) const;

  /// select() + the serialized Alg. 3 scheduler against this shim's region
  /// (the one-shot convenience used by tests and the sweep benches; the
  /// engine's default path is the message-passing protocol).
  ShimActResult act(const ShimCollectResult& collected, wl::Deployment& deployment,
                    std::span<const wl::WorkloadProfile> predicted,
                    mig::MigrationCostModel& cost_model, mig::AdmissionBroker& broker,
                    const net::FlowRerouter& rerouter, std::span<net::Flow> flows,
                    std::span<const wl::VmId> flow_owner) const;

  /// Migration receivers within the region: underloaded hosts first, the
  /// whole region as fallback.
  [[nodiscard]] std::vector<topo::NodeId> migration_targets(
      const wl::Deployment& deployment) const;

  /// Checkpoint hooks: the pending metric tallies (everything else a shim
  /// holds is constructor state or engine-attached pointers).
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  /// Predicted load percent of a host from the predicted VM profiles.
  [[nodiscard]] double predicted_host_load_percent(
      const wl::Deployment& deployment, topo::NodeId host,
      std::span<const wl::WorkloadProfile> predicted) const;

  [[nodiscard]] bool host_live(topo::NodeId host) const {
    return liveness_ == nullptr || liveness_->host_attached(*topo_, host);
  }

  topo::RackId rack_;
  const topo::Topology* topo_;
  const topo::LivenessMask* liveness_ = nullptr;
  SheriffConfig config_;
  obs::EventTrace* trace_ = nullptr;
  // Round tallies for publish_metrics. Mutable because collect()/select()
  // are logically const; safe because at most one thread works on a shim.
  mutable std::size_t pending_alerts_ = 0;
  mutable std::size_t pending_reroutes_ = 0;
};

}  // namespace sheriff::core
