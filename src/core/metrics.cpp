#include "core/metrics.hpp"

#include <ostream>

namespace sheriff::core {

common::Table metrics_table(std::span<const RoundMetrics> rounds) {
  common::Table table({"round", "stddev_before", "stddev_after", "mean_load", "host_alerts",
                       "tor_alerts", "switch_alerts", "migrations", "requests", "rejects",
                       "reroutes", "migration_cost", "search_space", "max_link_util",
                       "congested_switches", "rate_limited_flows", "flow_satisfaction",
                       "flow_fairness", "migration_s", "downtime_s", "failed_links",
                       "failed_switches", "orphaned_vms", "unroutable_flows", "protocol_drops",
                       "protocol_retries", "recovery_migrations", "shard_conflicts"});
  for (const auto& m : rounds) {
    table.begin_row()
        .add(m.round)
        .add(m.workload_stddev_before, 3)
        .add(m.workload_stddev_after, 3)
        .add(m.workload_mean, 3)
        .add(m.host_alerts)
        .add(m.tor_alerts)
        .add(m.switch_alerts)
        .add(m.migrations)
        .add(m.migration_requests)
        .add(m.migration_rejects)
        .add(m.reroutes)
        .add(m.migration_cost, 2)
        .add(m.search_space)
        .add(m.max_link_utilization, 3)
        .add(m.congested_switches)
        .add(m.rate_limited_flows)
        .add(m.flow_satisfaction, 3)
        .add(m.flow_fairness, 3)
        .add(m.migration_seconds, 2)
        .add(m.migration_downtime_seconds, 4)
        .add(m.failed_links)
        .add(m.failed_switches)
        .add(m.orphaned_vms)
        .add(m.unroutable_flows)
        .add(m.protocol_drops)
        .add(m.protocol_retries)
        .add(m.recovery_migrations)
        .add(m.shard_conflicts);
  }
  return table;
}

void write_metrics_csv(std::ostream& os, std::span<const RoundMetrics> rounds) {
  metrics_table(rounds).print_csv(os);
}

RunSummary summarize(std::span<const RoundMetrics> rounds) {
  RunSummary summary;
  summary.rounds = rounds.size();
  if (rounds.empty()) return summary;
  summary.first_stddev = rounds.front().workload_stddev_before;
  summary.last_stddev = rounds.back().workload_stddev_after;
  double peak_acc = 0.0;
  for (const auto& m : rounds) {
    summary.total_alerts += m.host_alerts + m.tor_alerts + m.switch_alerts;
    summary.total_migrations += m.migrations;
    summary.total_reroutes += m.reroutes;
    summary.total_migration_cost += m.migration_cost;
    summary.total_migration_seconds += m.migration_seconds;
    summary.total_downtime_seconds += m.migration_downtime_seconds;
    summary.total_search_space += m.search_space;
    peak_acc += m.max_link_utilization;
    if (m.failed_links > 0 || m.failed_switches > 0) ++summary.rounds_with_failures;
    if (m.orphaned_vms > summary.peak_orphaned_vms) summary.peak_orphaned_vms = m.orphaned_vms;
    summary.total_recovery_migrations += m.recovery_migrations;
    summary.total_protocol_drops += m.protocol_drops;
    summary.total_protocol_retries += m.protocol_retries;
  }
  summary.mean_link_peak = peak_acc / static_cast<double>(rounds.size());
  return summary;
}

}  // namespace sheriff::core
