#include "core/alert.hpp"

#include "common/require.hpp"

namespace sheriff::core {

const char* to_string(AlertSource source) noexcept {
  switch (source) {
    case AlertSource::kHost: return "host";
    case AlertSource::kLocalTor: return "local-tor";
    case AlertSource::kOuterSwitch: return "outer-switch";
  }
  return "unknown";
}

AlertScheme::AlertScheme(double threshold) : threshold_(threshold) {
  SHERIFF_REQUIRE(threshold > 0.0 && threshold <= 1.0, "threshold must be in (0, 1]");
}

double AlertScheme::vm_alert(const wl::WorkloadProfile& predicted) const noexcept {
  return predicted.any_exceeds(threshold_) ? predicted.max_component() : 0.0;
}

}  // namespace sheriff::core
