#include "core/kmedian_planner.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/dijkstra.hpp"
#include "graph/floyd_warshall.hpp"
#include "migration/request.hpp"

namespace sheriff::core {

KMedianPlanner::KMedianPlanner(const topo::Topology& topo, bool use_floyd_warshall)
    : topo_(&topo), distances_(topo.rack_count()) {
  SHERIFF_REQUIRE(topo.rack_count() >= 1, "topology has no racks");
  // Rack-to-rack costs are wired shortest-path distances between the
  // racks' ToRs over the full network graph (hosts included — in BCube the
  // inter-rack paths run through server NICs). The paper builds the rack
  // multigraph T and collapses it with Floyd–Warshall; running APSP /
  // per-ToR Dijkstra on the node graph and restricting to ToR rows yields
  // the same complete metric T'.
  const graph::Graph g = topo.wired_graph(topo::EdgeWeight::kDistance);
  if (use_floyd_warshall) {
    // The paper's original pipeline; O(|V|^3), test/small-scale only.
    const auto apsp = graph::floyd_warshall(g);
    for (topo::RackId r = 0; r < topo.rack_count(); ++r) {
      for (topo::RackId c = 0; c < topo.rack_count(); ++c) {
        distances_.set(r, c, apsp.distance.at(topo.rack(r).tor, topo.rack(c).tor));
      }
    }
  } else {
    for (topo::RackId r = 0; r < topo.rack_count(); ++r) {
      const auto tree = graph::dijkstra(g, topo.rack(r).tor);
      for (topo::RackId c = 0; c < topo.rack_count(); ++c) {
        distances_.set(r, c, tree.distance[topo.rack(c).tor]);
      }
    }
  }
  SHERIFF_REQUIRE(distances_.all_finite(), "rack graph is disconnected");
}

graph::KMedianInstance KMedianPlanner::make_instance(
    const std::vector<topo::RackId>& source_racks, std::size_t k) const {
  graph::KMedianInstance instance;
  instance.distance = &distances_;
  instance.k = k;
  instance.clients.assign(source_racks.begin(), source_racks.end());
  instance.facilities.resize(topo_->rack_count());
  for (std::size_t r = 0; r < topo_->rack_count(); ++r) instance.facilities[r] = r;
  return instance;
}

KMedianPlan KMedianPlanner::plan(const std::vector<topo::RackId>& source_racks, std::size_t k,
                                 std::size_t p) const {
  const auto instance = make_instance(source_racks, k);
  const auto solution = graph::local_search_kmedian(instance, p);
  KMedianPlan out;
  out.destinations.assign(solution.medians.begin(), solution.medians.end());
  out.connection_cost = solution.cost;
  out.evaluations = solution.evaluations;
  return out;
}

KMedianPlan KMedianPlanner::plan_exact(const std::vector<topo::RackId>& source_racks,
                                       std::size_t k) const {
  const auto instance = make_instance(source_racks, k);
  const auto solution = graph::exhaustive_kmedian(instance);
  KMedianPlan out;
  out.destinations.assign(solution.medians.begin(), solution.medians.end());
  out.connection_cost = solution.cost;
  out.evaluations = solution.evaluations;
  return out;
}

KMedianMigrationManager::KMedianMigrationManager(wl::Deployment& deployment,
                                                 mig::MigrationCostModel& cost_model,
                                                 const KMedianPlanner& planner)
    : KMedianMigrationManager(deployment, cost_model, planner, Options{}) {}

KMedianMigrationManager::KMedianMigrationManager(wl::Deployment& deployment,
                                                 mig::MigrationCostModel& cost_model,
                                                 const KMedianPlanner& planner,
                                                 Options options)
    : deployment_(&deployment), cost_model_(&cost_model), planner_(&planner),
      options_(options) {
  SHERIFF_REQUIRE(options.destination_racks >= 1, "need at least one destination rack");
  SHERIFF_REQUIRE(options.local_search_p >= 1, "swap size must be at least 1");
}

MigrationPlan KMedianMigrationManager::migrate(std::vector<wl::VmId> alerted) {
  MigrationPlan plan;
  last_destinations_.clear();
  if (alerted.empty()) return plan;
  const topo::Topology& topo = deployment_->topology();

  // Source ToRs: the racks the alerted VMs live in.
  std::vector<topo::RackId> sources;
  for (wl::VmId id : alerted) {
    const topo::RackId r = topo.node(deployment_->vm(id).host).rack;
    if (std::find(sources.begin(), sources.end(), r) == sources.end()) sources.push_back(r);
  }

  const std::size_t k = std::min(options_.destination_racks, topo.rack_count());
  const auto selection = planner_->plan(sources, k, options_.local_search_p);
  last_destinations_ = selection.destinations;
  plan.search_space += selection.evaluations;

  std::vector<topo::NodeId> targets;
  for (topo::RackId r : selection.destinations) {
    const auto& hosts = topo.rack(r).hosts;
    targets.insert(targets.end(), hosts.begin(), hosts.end());
  }

  mig::AdmissionBroker broker(*deployment_);
  VmMigrationScheduler scheduler(*deployment_, *cost_model_, broker);
  plan.merge(scheduler.migrate(std::move(alerted), targets));
  return plan;
}

}  // namespace sheriff::core
