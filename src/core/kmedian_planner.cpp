#include "core/kmedian_planner.hpp"

#include <algorithm>
#include <cassert>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "graph/dijkstra.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/kmedian_fast.hpp"
#include "migration/cost_model.hpp"
#include "migration/request.hpp"
#include "obs/timing.hpp"

namespace sheriff::core {

KMedianPlanner::KMedianPlanner(const topo::Topology& topo, bool use_floyd_warshall)
    : KMedianPlanner(topo, KMedianPlannerOptions{use_floyd_warshall, nullptr, nullptr}) {}

KMedianPlanner::KMedianPlanner(const topo::Topology& topo, KMedianPlannerOptions options)
    : topo_(&topo), options_(options), distances_(topo.rack_count()) {
  SHERIFF_REQUIRE(topo.rack_count() >= 1, "topology has no racks");
  rebuild();
}

void KMedianPlanner::rebuild() {
  // Rack-to-rack costs are wired shortest-path distances between the
  // racks' ToRs over the full network graph (hosts included — in BCube the
  // inter-rack paths run through server NICs). The paper builds the rack
  // multigraph T and collapses it with Floyd–Warshall; running APSP /
  // per-ToR Dijkstra on the node graph and restricting to ToR rows yields
  // the same complete metric T'.
  const topo::LivenessMask* mask = options_.liveness;
  const graph::Graph g = mask == nullptr
                             ? topo_->wired_graph(topo::EdgeWeight::kDistance)
                             : topo_->wired_graph(topo::EdgeWeight::kDistance, *mask);
  const std::size_t racks = topo_->rack_count();
  if (options_.use_floyd_warshall) {
    // The paper's original pipeline; O(|V|^3), test/small-scale only.
    const auto apsp = graph::floyd_warshall(g);
    for (topo::RackId r = 0; r < racks; ++r) {
      for (topo::RackId c = 0; c < racks; ++c) {
        distances_.set(r, c, apsp.distance.at(topo_->rack(r).tor, topo_->rack(c).tor));
      }
    }
  } else if (mask == nullptr && options_.shared_rows != nullptr) {
    // Shared rows: the cost model's distance cache holds the same per-ToR
    // Dijkstra trees on the same unmasked distance graph — read them
    // instead of sweeping again, so ToR distances have one source of
    // truth. Masked rebuilds keep their own sweep (the shared rows are
    // pristine by construction).
    for (topo::RackId r = 0; r < racks; ++r) {
      const auto& tree = options_.shared_rows->distance_tree(topo_->rack(r).tor);
      for (topo::RackId c = 0; c < racks; ++c) {
        distances_.set(r, c, tree.distance[topo_->rack(c).tor]);
      }
    }
  } else {
    // One Dijkstra per ToR row, sharded over contiguous rack blocks; each
    // shard owns its rows, so the matrix is identical for any pool size.
    constexpr std::size_t kShardRacks = 8;
    const std::size_t shards = (racks + kShardRacks - 1) / kShardRacks;
    const auto run_shard = [&](std::size_t s) {
      graph::ShortestPathTree tree;
      const topo::RackId lo = static_cast<topo::RackId>(s * kShardRacks);
      const topo::RackId hi =
          static_cast<topo::RackId>(std::min<std::size_t>(racks, (s + 1) * kShardRacks));
      for (topo::RackId r = lo; r < hi; ++r) {
        graph::dijkstra_into(g, topo_->rack(r).tor, {}, tree);
        for (topo::RackId c = 0; c < racks; ++c) {
          distances_.set(r, c, tree.distance[topo_->rack(c).tor]);
        }
      }
    };
    if (options_.pool != nullptr && shards > 1) {
      common::parallel_for(*options_.pool, shards, run_shard);
    } else {
      for (std::size_t s = 0; s < shards; ++s) run_shard(s);
    }
  }

  facilities_.clear();
  facilities_.reserve(racks);
  for (topo::RackId r = 0; r < racks; ++r) {
    // A rack whose ToR is down cannot receive (or source) traffic; keep it
    // out of the facility set so the solvers never open it.
    if (mask == nullptr || mask->node_up(topo_->rack(r).tor)) facilities_.push_back(r);
  }
  SHERIFF_REQUIRE(!facilities_.empty(), "no live racks to plan over");
  if (mask == nullptr) {
    SHERIFF_REQUIRE(distances_.all_finite(), "rack graph is disconnected");
  }
  // Faulted fabrics may legitimately have unreachable rack pairs; the
  // solvers handle ∞ distances (the fast path defers to the reference).
  built_version_ = mask == nullptr ? 0 : mask->version();
  ++rebuilds_;
}

bool KMedianPlanner::refresh() {
  if (options_.liveness == nullptr) return false;
  if (options_.liveness->version() == built_version_) return false;
  rebuild();
  return true;
}

graph::KMedianInstance KMedianPlanner::make_instance(
    const std::vector<topo::RackId>& source_racks, std::size_t k) const {
  graph::KMedianInstance instance;
  instance.distance = &distances_;
  instance.k = k;
  instance.clients.assign(source_racks.begin(), source_racks.end());
  instance.facilities.assign(facilities_.begin(), facilities_.end());
  return instance;
}

KMedianPlan KMedianPlanner::plan(const std::vector<topo::RackId>& source_racks,
                                 const PlanOptions& options) const {
  auto instance = make_instance(source_racks, options.k);
  instance.max_evaluations = options.max_evaluations;
  graph::KMedianSolution solution;
  if (options.fast) {
    graph::FastKMedianOptions fast;
    fast.p = options.p;
    fast.pool = options.pool;
    solution = graph::fast_kmedian(instance, fast);
  } else {
    solution = graph::local_search_kmedian(instance, options.p);
  }
  KMedianPlan out;
  out.destinations.assign(solution.medians.begin(), solution.medians.end());
  out.connection_cost = solution.cost;
  out.evaluations = solution.evaluations;
  out.hit_evaluation_cap = solution.hit_evaluation_cap;
  return out;
}

KMedianPlan KMedianPlanner::plan(const std::vector<topo::RackId>& source_racks, std::size_t k,
                                 std::size_t p) const {
  PlanOptions options;
  options.k = k;
  options.p = p;
  options.fast = false;
  return plan(source_racks, options);
}

KMedianPlan KMedianPlanner::plan_exact(const std::vector<topo::RackId>& source_racks,
                                       std::size_t k) const {
  const auto instance = make_instance(source_racks, k);
  const auto solution = graph::exhaustive_kmedian(instance);
  KMedianPlan out;
  out.destinations.assign(solution.medians.begin(), solution.medians.end());
  out.connection_cost = solution.cost;
  out.evaluations = solution.evaluations;
  return out;
}

KMedianMigrationManager::KMedianMigrationManager(wl::Deployment& deployment,
                                                 mig::MigrationCostModel& cost_model,
                                                 const KMedianPlanner& planner)
    : KMedianMigrationManager(deployment, cost_model, planner, Options{}) {}

KMedianMigrationManager::KMedianMigrationManager(wl::Deployment& deployment,
                                                 mig::MigrationCostModel& cost_model,
                                                 const KMedianPlanner& planner,
                                                 Options options)
    : deployment_(&deployment), cost_model_(&cost_model), planner_(&planner),
      options_(options) {
  SHERIFF_REQUIRE(options.destination_racks >= 1, "need at least one destination rack");
  SHERIFF_REQUIRE(options.local_search_p >= 1, "swap size must be at least 1");
}

MigrationPlan KMedianMigrationManager::migrate(std::vector<wl::VmId> alerted) {
  MigrationPlan plan;
  last_destinations_.clear();
  if (alerted.empty()) return plan;
  const topo::Topology& topo = deployment_->topology();

  // Source ToRs: the racks the alerted VMs live in, deduplicated in first-
  // appearance order with O(racks) seen-flags.
  std::vector<topo::RackId> sources;
  std::vector<char> seen(topo.rack_count(), 0);
  for (wl::VmId id : alerted) {
    const topo::RackId r = topo.node(deployment_->vm(id).host).rack;
    if (!seen[r]) {
      seen[r] = 1;
      sources.push_back(r);
    }
  }
#ifndef NDEBUG
  // Determinism micro-assert: the flag-based dedup must keep exactly the
  // first-appearance order the original linear-scan dedup produced.
  {
    std::vector<topo::RackId> reference;
    for (wl::VmId id : alerted) {
      const topo::RackId r = topo.node(deployment_->vm(id).host).rack;
      if (std::find(reference.begin(), reference.end(), r) == reference.end()) {
        reference.push_back(r);
      }
    }
    assert(sources == reference && "source-rack dedup changed order");
  }
#endif

  KMedianPlanner::PlanOptions plan_options;
  plan_options.k = std::min(options_.destination_racks, planner_->facility_racks().size());
  plan_options.p = options_.local_search_p;
  plan_options.fast = options_.fast_local_search;
  plan_options.pool = options_.pool;
  plan_options.max_evaluations = options_.max_evaluations;
  KMedianPlan selection;
  {
    obs::ScopedTimer timer(stats_.kmedian_ns);
    selection = planner_->plan(sources, plan_options);
  }
  last_destinations_ = selection.destinations;
  plan.search_space += selection.evaluations;
  ++stats_.plans;
  stats_.evaluations += selection.evaluations;
  if (selection.hit_evaluation_cap) ++stats_.cap_hits;

  std::vector<topo::NodeId> targets;
  for (topo::RackId r : selection.destinations) {
    for (topo::NodeId h : topo.rack(r).hosts) {
      if (options_.liveness != nullptr && !options_.liveness->host_attached(topo, h)) continue;
      targets.push_back(h);
    }
  }

  obs::ScopedTimer timer(stats_.schedule_ns);
  mig::AdmissionBroker broker(*deployment_);
  VmMigrationScheduler scheduler(*deployment_, *cost_model_, broker);
  plan.merge(scheduler.migrate(std::move(alerted), targets));
  return plan;
}

}  // namespace sheriff::core
