#include "core/shim_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "core/priority.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::core {

ShimController::ShimController(topo::RackId rack, const topo::Topology& topo,
                               SheriffConfig config)
    : rack_(rack), topo_(&topo), config_(config) {
  SHERIFF_REQUIRE(rack < topo.rack_count(), "rack out of range");
}

std::vector<topo::NodeId> ShimController::region_target_hosts() const {
  std::vector<topo::NodeId> targets;
  const auto& own = topo_->rack(rack_);
  for (topo::NodeId h : own.hosts) {
    if (host_live(h)) targets.push_back(h);
  }

  // One-hop neighbor racks, nearest first on the floor plan, capped at
  // max_region_racks — the shim's dominating region stays a locality even
  // on fabrics (BCube) where everything is one hop away.
  auto neighbors = topo_->neighbor_racks(rack_);
  std::sort(neighbors.begin(), neighbors.end(), [&](topo::RackId a, topo::RackId b) {
    const auto& ra = topo_->rack(a);
    const auto& rb = topo_->rack(b);
    const double da = std::hypot(ra.x - own.x, ra.y - own.y);
    const double db = std::hypot(rb.x - own.x, rb.y - own.y);
    if (da != db) return da < db;
    return a < b;
  });
  if (neighbors.size() > config_.max_region_racks) {
    neighbors.resize(config_.max_region_racks);
  }
  for (topo::RackId nr : neighbors) {
    for (topo::NodeId h : topo_->rack(nr).hosts) {
      if (host_live(h)) targets.push_back(h);
    }
  }
  return targets;
}

double ShimController::predicted_host_load_percent(
    const wl::Deployment& deployment, topo::NodeId host,
    std::span<const wl::WorkloadProfile> predicted) const {
  double load = 0.0;
  for (wl::VmId id : deployment.vms_on_host(host)) {
    load += static_cast<double>(deployment.vm(id).capacity) *
            predicted[id][wl::Feature::kCpu];
  }
  return 100.0 * load / static_cast<double>(deployment.host_capacity());
}

ShimCollectResult ShimController::collect(const wl::Deployment& deployment,
                                          std::span<const wl::WorkloadProfile> predicted,
                                          const Observation& observation) const {
  SHERIFF_REQUIRE(predicted.size() == deployment.vm_count(),
                  "predicted profiles must cover every VM");
  ShimCollectResult out;
  const AlertScheme scheme(config_.vm_alert_threshold);
  const topo::Rack& rack = topo_->rack(rack_);

  // Per-VM ALERT values (Sec. IV-C) over the rack's population. A dead
  // host reports nothing: its VMs are orphans handled by the engine's
  // recovery path, not by the alert pipeline.
  for (topo::NodeId host : rack.hosts) {
    if (!host_live(host)) continue;
    for (wl::VmId id : deployment.vms_on_host(host)) {
      out.rack_vms.push_back(id);
      out.vm_alert_values.push_back(scheme.vm_alert(predicted[id]));
    }
  }

  // Host overload alerts: predicted load above the absolute overload line,
  // or a relative hotspot (well above the fleet mean).
  for (topo::NodeId host : rack.hosts) {
    if (!host_live(host)) continue;
    const double load = predicted_host_load_percent(deployment, host, predicted);
    const bool absolute = load > config_.host_overload_percent;
    const bool hotspot = load > config_.hotspot_floor_percent &&
                         load > config_.hotspot_factor * observation.fleet_mean_load_percent;
    if (absolute || hotspot) {
      out.alerts.push_back({AlertSource::kHost, rack_, host, load});
    }
  }

  // Local ToR congestion. Preferred signal: the T-ahead predictions of the
  // uplink utilization and the ToR queue (Sec. IV-A); fallback: current
  // utilization from the fair-share state.
  {
    double utilization = observation.predicted_tor_utilization;
    if (utilization < 0.0 && observation.shares != nullptr) {
      utilization = 0.0;
      for (topo::LinkId l : topo_->links_of(rack.tor)) {
        const topo::NodeId other = topo_->peer(l, rack.tor);
        if (!topo::is_switch(topo_->node(other).kind)) continue;  // host-side link
        utilization = std::max(utilization, observation.shares->link_utilization[l]);
      }
    }
    const bool uplink_hot = utilization > config_.tor_utilization_threshold;
    const bool queue_hot = observation.predicted_tor_queue >= 0.0 &&
                           observation.predicted_tor_queue > observation.tor_queue_equilibrium;
    if (uplink_hot || queue_hot) {
      out.alerts.push_back({AlertSource::kLocalTor, rack_, rack.tor,
                            uplink_hot ? utilization : observation.predicted_tor_queue});
    }
  }

  // Outer-switch congestion feedback, pre-filtered to this rack's flows.
  for (topo::NodeId sw : observation.hot_switches) {
    if (sw == rack.tor) continue;
    out.alerts.push_back({AlertSource::kOuterSwitch, rack_, sw, 1.0});
  }

  if (trace_ != nullptr) {
    for (const Alert& alert : out.alerts) {
      trace_->emit(rack_, obs::EventType::kAlertRaised, alert.node,
                   static_cast<std::uint32_t>(alert.source), alert.value);
    }
  }
  pending_alerts_ += out.alerts.size();
  return out;
}

ShimSelection ShimController::select(const ShimCollectResult& collected,
                                     const wl::Deployment& deployment,
                                     std::span<const wl::WorkloadProfile> predicted,
                                     const net::FlowRerouter& rerouter,
                                     std::span<net::Flow> flows,
                                     std::span<const wl::VmId> flow_owner) const {
  ShimSelection result;
  std::vector<wl::VmId>& migration_set = result.migration_set;  // M_v of Alg. 1
  bool tor_alerted = false;             // ALERT_TOR accumulator
  const auto alert_of = [&](wl::VmId id) {
    const auto it = std::find(collected.rack_vms.begin(), collected.rack_vms.end(), id);
    return it == collected.rack_vms.end()
               ? 0.0
               : collected.vm_alert_values[static_cast<std::size_t>(
                     it - collected.rack_vms.begin())];
  };

  for (const Alert& alert : collected.alerts) {
    switch (alert.source) {
      case AlertSource::kOuterSwitch: {
        ++result.switch_alerts;
        // F: local VMs with flows through the hot switch s_j.
        std::vector<wl::VmId> f_set;
        for (std::size_t f = 0; f < flows.size(); ++f) {
          const wl::VmId owner = flow_owner[f];
          if (topo_->node(deployment.vm(owner).host).rack != rack_) continue;
          if (!flows[f].transits(alert.node)) continue;
          if (std::find(f_set.begin(), f_set.end(), owner) == f_set.end()) {
            f_set.push_back(owner);
          }
        }
        std::vector<double> values;
        values.reserve(f_set.size());
        for (wl::VmId id : f_set) values.push_back(alert_of(id));
        const int budget = static_cast<int>(
            std::floor(config_.alpha * config_.switch_capacity_units));
        const auto picked =
            priority_select(deployment, f_set, values, PriorityMode::kAlpha, budget);
        // The selected VMs form M'_i: their conflicting flows are rerouted
        // around the hot switch (cheaper than migrating them).
        if (config_.reroute_first && !picked.selected.empty()) {
          const auto report =
              rerouter.reroute_around(flows, alert.node, config_.reroute_fraction);
          result.reroutes.candidates += report.candidates;
          result.reroutes.rerouted += report.rerouted;
          if (trace_ != nullptr && report.rerouted > 0) {
            trace_->emit(rack_, obs::EventType::kRerouteChosen, alert.node, 0,
                         static_cast<double>(report.rerouted));
          }
          pending_reroutes_ += report.rerouted;
        } else {
          migration_set.insert(migration_set.end(), picked.selected.begin(),
                               picked.selected.end());
        }
        break;
      }
      case AlertSource::kLocalTor: {
        ++result.tor_alerts;
        tor_alerted = true;  // handled once after the loop, like Alg. 1
        break;
      }
      case AlertSource::kHost: {
        ++result.host_alerts;
        std::vector<wl::VmId> f_set(deployment.vms_on_host(alert.node).begin(),
                                    deployment.vms_on_host(alert.node).end());
        // Rank by ALERT when one fired; otherwise (relative hotspot with no
        // single VM past THRESHOLD) by predicted CPU pressure, so the
        // heaviest tenant leaves first. True ALERTs (>= 0.9) dominate.
        std::vector<double> values;
        values.reserve(f_set.size());
        for (wl::VmId id : f_set) {
          const double alert_value = alert_of(id);
          values.push_back(alert_value > 0.0
                               ? alert_value
                               : 0.5 * predicted[id][wl::Feature::kCpu]);
        }
        const auto picked =
            priority_select(deployment, f_set, values, PriorityMode::kSingle, 0);
        migration_set.insert(migration_set.end(), picked.selected.begin(),
                             picked.selected.end());
        break;
      }
    }
  }

  if (tor_alerted) {
    // F: every VM in the rack; budget β · ToR capacity.
    std::vector<double> values;
    values.reserve(collected.rack_vms.size());
    for (wl::VmId id : collected.rack_vms) values.push_back(alert_of(id));
    const int budget =
        static_cast<int>(std::floor(config_.beta * config_.tor_capacity_units));
    const auto picked = priority_select(deployment, collected.rack_vms, values,
                                        PriorityMode::kBeta, budget);
    migration_set.insert(migration_set.end(), picked.selected.begin(), picked.selected.end());
  }

  return result;
}

ShimProposal ShimController::propose(const ShimCollectResult& collected,
                                     const wl::Deployment& deployment,
                                     std::span<const wl::WorkloadProfile> predicted,
                                     std::span<const net::Flow> flows,
                                     std::span<const wl::VmId> flow_owner,
                                     std::span<const std::size_t> rack_flow_index) const {
  // The same Alg. 1 dispatch as select(), evaluated against an immutable
  // round snapshot: every F-set sees the flow table as it stood when the
  // manage phase began (select() interleaves reroutes between alerts, so
  // later F-sets see earlier path changes — the one semantic difference
  // between the legacy sweep and the sharded two-phase commit).
  ShimProposal result;
  bool tor_alerted = false;
  const auto alert_of = [&](wl::VmId id) {
    const auto it = std::find(collected.rack_vms.begin(), collected.rack_vms.end(), id);
    return it == collected.rack_vms.end()
               ? 0.0
               : collected.vm_alert_values[static_cast<std::size_t>(
                     it - collected.rack_vms.begin())];
  };
  // F for a switch alert: local VMs with flows through the hot switch. The
  // per-rack index (when provided) visits the same flows in the same
  // ascending order as the full-table scan, so the F-set is identical.
  const auto flows_through = [&](topo::NodeId hot) {
    std::vector<wl::VmId> f_set;
    const auto consider = [&](std::size_t f) {
      const wl::VmId owner = flow_owner[f];
      if (topo_->node(deployment.vm(owner).host).rack != rack_) return;
      if (!flows[f].transits(hot)) return;
      if (std::find(f_set.begin(), f_set.end(), owner) == f_set.end()) {
        f_set.push_back(owner);
      }
    };
    if (rack_flow_index.empty()) {
      for (std::size_t f = 0; f < flows.size(); ++f) consider(f);
    } else {
      for (std::size_t f : rack_flow_index) consider(f);
    }
    return f_set;
  };

  for (const Alert& alert : collected.alerts) {
    switch (alert.source) {
      case AlertSource::kOuterSwitch: {
        ++result.switch_alerts;
        const std::vector<wl::VmId> f_set = flows_through(alert.node);
        std::vector<double> values;
        values.reserve(f_set.size());
        for (wl::VmId id : f_set) values.push_back(alert_of(id));
        const int budget = static_cast<int>(
            std::floor(config_.alpha * config_.switch_capacity_units));
        const auto picked =
            priority_select(deployment, f_set, values, PriorityMode::kAlpha, budget);
        if (config_.reroute_first && !picked.selected.empty()) {
          result.reroute_claims.push_back(alert.node);
        } else {
          result.migration_set.insert(result.migration_set.end(), picked.selected.begin(),
                                      picked.selected.end());
        }
        break;
      }
      case AlertSource::kLocalTor: {
        ++result.tor_alerts;
        tor_alerted = true;
        break;
      }
      case AlertSource::kHost: {
        ++result.host_alerts;
        std::vector<wl::VmId> f_set(deployment.vms_on_host(alert.node).begin(),
                                    deployment.vms_on_host(alert.node).end());
        std::vector<double> values;
        values.reserve(f_set.size());
        for (wl::VmId id : f_set) {
          const double alert_value = alert_of(id);
          values.push_back(alert_value > 0.0
                               ? alert_value
                               : 0.5 * predicted[id][wl::Feature::kCpu]);
        }
        const auto picked =
            priority_select(deployment, f_set, values, PriorityMode::kSingle, 0);
        result.migration_set.insert(result.migration_set.end(), picked.selected.begin(),
                                    picked.selected.end());
        break;
      }
    }
  }

  if (tor_alerted) {
    std::vector<double> values;
    values.reserve(collected.rack_vms.size());
    for (wl::VmId id : collected.rack_vms) values.push_back(alert_of(id));
    const int budget =
        static_cast<int>(std::floor(config_.beta * config_.tor_capacity_units));
    const auto picked = priority_select(deployment, collected.rack_vms, values,
                                        PriorityMode::kBeta, budget);
    result.migration_set.insert(result.migration_set.end(), picked.selected.begin(),
                                picked.selected.end());
  }

  return result;
}

net::RerouteReport ShimController::apply_reroute(topo::NodeId hot_switch,
                                                 const net::FlowRerouter& rerouter,
                                                 std::span<net::Flow> flows) const {
  const auto report = rerouter.reroute_around(flows, hot_switch, config_.reroute_fraction);
  if (trace_ != nullptr && report.rerouted > 0) {
    trace_->emit(rack_, obs::EventType::kRerouteChosen, hot_switch, 0,
                 static_cast<double>(report.rerouted));
  }
  pending_reroutes_ += report.rerouted;
  return report;
}

void ShimController::publish_metrics(obs::MetricRegistry& registry) const {
  registry.counter("shim.alerts_raised").add(pending_alerts_);
  registry.counter("shim.reroutes_chosen").add(pending_reroutes_);
  pending_alerts_ = 0;
  pending_reroutes_ = 0;
}

std::vector<topo::NodeId> ShimController::migration_targets(
    const wl::Deployment& deployment) const {
  // Receivers: underloaded hosts of the one-hop region; migrating onto an
  // already-hot neighbor would just move the hotspot. Fall back to the
  // whole region when everything is busy.
  const auto region = region_target_hosts();
  std::vector<topo::NodeId> targets;
  for (topo::NodeId h : region) {
    if (deployment.host_load_percent(h) < config_.receiver_max_load_percent) {
      targets.push_back(h);
    }
  }
  if (targets.empty()) targets = region;
  return targets;
}

ShimActResult ShimController::act(const ShimCollectResult& collected,
                                  wl::Deployment& deployment,
                                  std::span<const wl::WorkloadProfile> predicted,
                                  mig::MigrationCostModel& cost_model,
                                  mig::AdmissionBroker& broker,
                                  const net::FlowRerouter& rerouter, std::span<net::Flow> flows,
                                  std::span<const wl::VmId> flow_owner) const {
  auto selection = select(collected, deployment, predicted, rerouter, flows, flow_owner);
  ShimActResult result;
  result.reroutes = selection.reroutes;
  result.host_alerts = selection.host_alerts;
  result.tor_alerts = selection.tor_alerts;
  result.switch_alerts = selection.switch_alerts;
  if (!selection.migration_set.empty()) {
    VmMigrationScheduler scheduler(deployment, cost_model, broker,
                                   config_.max_matching_rounds);
    result.plan = scheduler.migrate(std::move(selection.migration_set),
                                    migration_targets(deployment));
  }
  return result;
}


void ShimController::save_state(snapshot::Writer& writer) const {
  writer.put_u64(pending_alerts_);
  writer.put_u64(pending_reroutes_);
}

void ShimController::load_state(snapshot::Reader& reader) {
  pending_alerts_ = reader.get_u64();
  pending_reroutes_ = reader.get_u64();
}

}  // namespace sheriff::core
