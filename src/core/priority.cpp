#include "core/priority.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/knapsack.hpp"

namespace sheriff::core {

PrioritySelection priority_select(const wl::Deployment& deployment,
                                  const std::vector<wl::VmId>& candidates,
                                  const std::vector<double>& alert_values, PriorityMode mode,
                                  int capacity_budget) {
  SHERIFF_REQUIRE(alert_values.empty() || alert_values.size() == candidates.size(),
                  "alert values must parallel candidates");
  PrioritySelection selection;
  if (candidates.empty()) return selection;

  if (mode == PriorityMode::kSingle) {
    // ω = 1: pick the VM with maximum ALERT (delay-sensitive VMs are still
    // excluded — they are never migrated).
    SHERIFF_REQUIRE(!alert_values.empty(), "kSingle needs alert values");
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (deployment.vm(candidates[i]).delay_sensitive) {
        ++selection.eliminated_delay_sensitive;
        continue;
      }
      if (best == candidates.size() || alert_values[i] > alert_values[best]) best = i;
    }
    if (best < candidates.size()) {
      const auto& vm = deployment.vm(candidates[best]);
      selection.selected.push_back(candidates[best]);
      selection.offloaded_capacity = vm.capacity;
      selection.sacrificed_value = vm.value;
    }
    return selection;
  }

  SHERIFF_REQUIRE(capacity_budget >= 0, "capacity budget must be non-negative");

  // Eliminate delay-sensitive VMs (Alg. 2 line 1), then knapsack the rest.
  std::vector<wl::VmId> movable;
  for (wl::VmId id : candidates) {
    if (deployment.vm(id).delay_sensitive) {
      ++selection.eliminated_delay_sensitive;
    } else {
      movable.push_back(id);
    }
  }
  if (movable.empty() || capacity_budget == 0) return selection;

  std::vector<graph::KnapsackItem> items;
  items.reserve(movable.size());
  for (wl::VmId id : movable) {
    const auto& vm = deployment.vm(id);
    items.push_back({static_cast<std::size_t>(vm.capacity), vm.value});
  }
  const auto knapsack =
      graph::min_value_knapsack(items, static_cast<std::size_t>(capacity_budget));
  for (std::size_t idx : knapsack.chosen) selection.selected.push_back(movable[idx]);
  selection.offloaded_capacity = static_cast<int>(knapsack.total_capacity);
  selection.sacrificed_value = knapsack.total_value;
  std::sort(selection.selected.begin(), selection.selected.end());
  return selection;
}

}  // namespace sheriff::core
