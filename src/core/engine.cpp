#include "core/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "obs/timing.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/rng_io.hpp"

namespace sheriff::core {

using PhaseTimer = obs::ScopedTimer;

DistributedEngine::DistributedEngine(const topo::Topology& topo,
                                     const wl::DeploymentOptions& deployment_options,
                                     EngineConfig config)
    : DistributedEngine(topo, deployment_options, config, EngineSubstrate{}) {}

DistributedEngine::DistributedEngine(const topo::Topology& topo,
                                     const wl::DeploymentOptions& deployment_options,
                                     EngineConfig config, const EngineSubstrate& substrate)
    : topo_(&topo),
      config_(config),
      deployment_(topo, deployment_options),
      router_(topo),
      rerouter_(router_),
      queues_(topo),
      solver_(topo),
      cost_model_(topo, deployment_, config.sheriff.cost) {
  router_.set_cache_enabled(config_.route_cache);
  if (config_.parallel_fair_share) solver_.set_thread_pool(&worker_pool());
  cost_model_.set_tree_cache_retained(config_.retain_cost_trees);
  cost_model_.set_partner_rooted(config_.partner_rooted_costs);
  cost_model_.set_shared_leaf_trees(config_.shared_leaf_cost_trees);
  cost_model_.set_surface_enabled(config_.cost_surface);
  cost_model_.set_pruning_enabled(config_.cost_pruning);
  if (config_.retain_cost_trees && config_.prewarm_cost_rows) {
    // Startup, not round, time: the ToR-rooted distance rows (and their
    // rack-prefix link memos) derive from the immutable pristine topology
    // only, so build them all here — the first manage round's decision
    // sweep then runs entirely against warm rows. Bit-identical to lazy
    // construction; profiling showed the cold builds were ~75% of the
    // first-round decision time on the k=24 fabric.
    for (topo::RackId r = 0; r < topo.rack_count(); ++r) {
      const topo::NodeId tor = topo.rack(r).tor;
      if (tor != topo::kInvalidNode) (void)cost_model_.distance_tree(tor);
    }
  }
  // SHERIFF_FORCE_AUDIT=1 (the CI sanitizer job sets it) turns the
  // invariant auditor on in fail-fast mode for every engine, so the whole
  // tier-1 suite hard-fails on any conservation-law breach.
  if (const char* force = std::getenv("SHERIFF_FORCE_AUDIT");
      force != nullptr && force[0] == '1') {
    config_.audit = true;
    config_.audit_fail_fast = true;
  }
  if (config_.observe || config_.audit) {
    obs::ObservationConfig observation;
    observation.trace_capacity_per_shim = config_.trace_capacity_per_shim;
    observation.audit = config_.audit;
    observation.audit_options.fail_fast = config_.audit_fail_fast;
    observation.audit_options.deep_fair_share = config_.deep_fair_share_audit;
    hub_ = std::make_unique<obs::ObservationHub>(topo.rack_count(), observation);
  }
  shims_.reserve(topo.rack_count());
  for (topo::RackId r = 0; r < topo.rack_count(); ++r) {
    shims_.emplace_back(r, topo, config.sheriff);
    if (hub_ != nullptr) shims_.back().set_trace(&hub_->trace());
  }
  predictors_.reserve(deployment_.vm_count());
  for (std::size_t i = 0; i < deployment_.vm_count(); ++i) {
    predictors_.push_back(make_predictor());
  }
  predicted_.resize(deployment_.vm_count());
  tor_utilization_predictors_.resize(topo.rack_count());
  tor_queue_predictors_.resize(topo.rack_count());
  if (config_.fault_plan != nullptr) {
    injector_ = std::make_unique<fault::FaultInjector>(topo, *config_.fault_plan);
    if (hub_ != nullptr) injector_->set_trace(&hub_->trace());
    const fault::FaultOptions& fault_options = config_.fault_plan->options();
    if (fault_options.message_drop_probability > 0.0) {
      channel_ = std::make_unique<fault::LossyChannel>(fault_options.message_drop_probability,
                                                       fault_options.seed);
    }
    router_.apply_liveness(&injector_->liveness());
    queues_.set_liveness(&injector_->liveness());
    for (ShimController& shim : shims_) shim.set_liveness(&injector_->liveness());
    takeover_.resize(topo.rack_count());
    recompute_takeovers();
  }
  // Shard plan: a pure function of (rack_count, shard_count). 0 = auto
  // (min(8, racks)). The shard count only partitions the propose sweep —
  // results are byte-identical for every value (DESIGN.md §11) — so it is
  // excluded from the checkpoint fingerprint, like the pool size.
  {
    const std::size_t requested = config_.manage_shards != 0
                                      ? config_.manage_shards
                                      : std::min<std::size_t>(8, topo.rack_count());
    shard_plan_ = ManageShardPlan(topo.rack_count(), config_.sharded_manage ? requested : 1);
    profile_.manage_shard_propose_ns.assign(shard_plan_.shard_count(), 0);
    shard_stats_.demands_by_rack.assign(topo.rack_count(), 0);
  }
  if (config_.mode == ManagerMode::kKMedian) {
    // The planner's ToR rows are computed once here and shared across
    // rounds; fast_kmedian=false reproduces the naive per-round rebuild in
    // run_round (and solves with the reference scan, serially). A fleet
    // substrate can lend its pre-built maskless planner instead, but only
    // inside the envelope where this engine would never mutate one: the
    // fast path (no per-round rebuild()) on a pristine fabric (no
    // liveness-driven refresh()). The borrowed rows are identical to the
    // ones an owned build would produce — the row sweep is pool-size
    // invariant and the mask-free graph is the same — so borrowed and
    // owned engines are byte-identical (tests/test_fleet.cpp pins it).
    const bool borrow = substrate.kmedian_planner != nullptr && config_.fast_kmedian &&
                        config_.fault_plan == nullptr;
    if (borrow) {
      SHERIFF_REQUIRE(
          substrate.kmedian_planner->rack_distances().size() == topo.rack_count(),
          "substrate k-median planner was built over a different topology");
      kmedian_planner_view_ = substrate.kmedian_planner;
    } else {
      KMedianPlannerOptions planner_options;
      planner_options.pool = config_.fast_kmedian ? &worker_pool() : nullptr;
      planner_options.liveness = injector_ != nullptr ? &injector_->liveness() : nullptr;
      // Pristine fabrics share the cost model's distance rows (identical
      // values, one source of truth); faulted ones need masked sweeps.
      planner_options.shared_rows = injector_ == nullptr ? &cost_model_ : nullptr;
      kmedian_planner_ = std::make_unique<KMedianPlanner>(topo, planner_options);
      kmedian_planner_view_ = kmedian_planner_.get();
    }
    KMedianMigrationManager::Options manager_options;
    manager_options.destination_racks = config_.kmedian_destination_racks;
    manager_options.local_search_p = config_.kmedian_swap_p;
    manager_options.fast_local_search = config_.fast_kmedian;
    manager_options.max_evaluations = config_.kmedian_max_evaluations;
    manager_options.pool = config_.fast_kmedian ? &worker_pool() : nullptr;
    manager_options.liveness = injector_ != nullptr ? &injector_->liveness() : nullptr;
    kmedian_manager_ = std::make_unique<KMedianMigrationManager>(
        deployment_, cost_model_, *kmedian_planner_view_, manager_options);
  }
  build_flows();
}

topo::RackId DistributedEngine::managing_rack(topo::RackId rack) const {
  SHERIFF_REQUIRE(rack < topo_->rack_count(), "rack out of range");
  return injector_ == nullptr ? rack : takeover_[rack];
}

void DistributedEngine::recompute_takeovers() {
  for (topo::RackId r = 0; r < topo_->rack_count(); ++r) {
    if (!injector_->shim_down(r)) {
      takeover_[r] = r;
      continue;
    }
    // Neighbor-region takeover: the lowest-numbered one-hop neighbor with a
    // live shim adopts the rack. No live neighbor means the rack runs
    // unmanaged until a shim recovers.
    takeover_[r] = topo::kInvalidRack;
    auto neighbors = topo_->neighbor_racks(r);
    std::sort(neighbors.begin(), neighbors.end());
    for (topo::RackId n : neighbors) {
      if (!injector_->shim_down(n)) {
        takeover_[r] = n;
        break;
      }
    }
    if (hub_ != nullptr) {
      hub_->trace().emit(obs::EventTrace::kEngine, obs::EventType::kShimTakeover, r,
                         takeover_[r]);
    }
  }
}

bool DistributedEngine::host_attached(topo::NodeId host) const {
  return injector_ == nullptr || injector_->liveness().host_attached(*topo_, host);
}

std::vector<wl::VmId> DistributedEngine::collect_orphans() const {
  std::vector<wl::VmId> orphans;
  if (injector_ == nullptr || injector_->liveness().all_up()) return orphans;
  for (topo::NodeId h : topo_->nodes_of_kind(topo::NodeKind::kHost)) {
    if (host_attached(h)) continue;
    const auto& stranded = deployment_.vms_on_host(h);
    orphans.insert(orphans.end(), stranded.begin(), stranded.end());
  }
  return orphans;
}

void DistributedEngine::apply_fault_events(RoundMetrics& metrics) {
  const fault::InjectionReport report = injector_->advance(metrics.round);
  if (report.fabric_changed) {
    router_.refresh_liveness();
    // Tear down routes crossing a changed element; step 1 re-routes them
    // over the surviving fabric (or counts them as unroutable).
    const topo::LivenessMask& mask = injector_->liveness();
    for (net::Flow& flow : flows_) {
      if (!flow.routed()) continue;
      bool live = true;
      for (std::size_t i = 0; live && i + 1 < flow.path.size(); ++i) {
        const topo::LinkId l = topo_->link_between(flow.path[i], flow.path[i + 1]);
        live = mask.link_usable(*topo_, l);
      }
      if (!live) flow.path.clear();
    }
  }
  if (report.fabric_changed || report.shims_changed) recompute_takeovers();
  metrics.failed_links = injector_->failed_link_count();
  metrics.failed_switches = injector_->failed_switch_count();
}

std::unique_ptr<ProfilePredictor> DistributedEngine::make_predictor() const {
  switch (config_.predictor) {
    case PredictorKind::kHolt: return std::make_unique<HoltProfilePredictor>();
    case PredictorKind::kEnsemble: return std::make_unique<EnsembleProfilePredictor>();
    case PredictorKind::kNaive: return std::make_unique<NaiveProfilePredictor>();
  }
  SHERIFF_REQUIRE(false, "unknown predictor kind");
  return nullptr;
}

void DistributedEngine::build_flows() {
  // One flow per dependency edge (a < b to avoid duplicates): dependent
  // VMs communicate, and their traffic feature drives the demand.
  const auto& deps = deployment_.dependencies();
  for (wl::VmId a = 0; a < deployment_.vm_count(); ++a) {
    for (wl::VmId b : deps.neighbors(a)) {
      if (a >= b) continue;
      net::Flow flow;
      flow.id = static_cast<net::FlowId>(flows_.size());
      flow.src_host = deployment_.vm(a).host;
      flow.dst_host = deployment_.vm(b).host;
      flow.delay_sensitive =
          deployment_.vm(a).delay_sensitive || deployment_.vm(b).delay_sensitive;
      flows_.push_back(std::move(flow));
      flow_owner_.push_back(a);
      flow_peer_.push_back(b);
    }
  }
  router_.route_all(flows_);
}

void DistributedEngine::update_flow_demands() {
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const double trf = deployment_.vm(flow_owner_[f]).profile[wl::Feature::kTraffic];
    const double demand = config_.flow_demand_scale_gbps * trf;
    // Skip-write unchanged demands: the incremental fair-share solver's
    // dirty detection is value-based, so an equal store would be re-marked
    // clean anyway — but leaving the field untouched keeps this loop
    // honest about churn and lets the solver report reused_flows.
    if (flows_[f].demand_gbps != demand) flows_[f].demand_gbps = demand;
  }
}

common::ThreadPool& DistributedEngine::worker_pool() const {
  return config_.pool != nullptr ? *config_.pool : common::default_pool();
}

void DistributedEngine::observe_and_predict() {
  auto& pool = worker_pool();
  const auto work = [&](std::size_t i) {
    predictors_[i]->observe(deployment_.vm(static_cast<wl::VmId>(i)).profile);
    predicted_[i] = predictors_[i]->ready()
                        ? predictors_[i]->predict(config_.sheriff.prediction_horizon)
                        : deployment_.vm(static_cast<wl::VmId>(i)).profile;
  };
  if (config_.parallel_collect && deployment_.vm_count() > 256) {
    common::parallel_for(pool, deployment_.vm_count(), work);
  } else {
    for (std::size_t i = 0; i < deployment_.vm_count(); ++i) work(i);
  }
}

std::vector<wl::VmId> DistributedEngine::alerted_vms() const {
  const AlertScheme scheme(config_.sheriff.vm_alert_threshold);
  std::vector<wl::VmId> out;
  for (std::size_t i = 0; i < predicted_.size(); ++i) {
    if (scheme.fires(predicted_[i])) out.push_back(static_cast<wl::VmId>(i));
  }
  return out;
}

RoundMetrics DistributedEngine::run_round() {
  RoundMetrics metrics;
  metrics.round = round_++;
  if (hub_ != nullptr) hub_->trace().set_round(static_cast<std::uint32_t>(metrics.round));

  // 0. Fault schedule: apply this round's due events, propagate the new
  //    liveness to the router, and tear down routes over dead elements.
  if (injector_ != nullptr) {
    PhaseTimer timer(profile_.fault_ns);
    apply_fault_events(metrics);
  }

  // 1. Workloads evolve; flows track the new traffic levels and any
  //    migrated endpoints.
  {
    PhaseTimer timer(profile_.workload_ns);
    deployment_.advance(config_.parallel_workload ? &worker_pool() : nullptr);
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      net::Flow& flow = flows_[f];
      const topo::NodeId src = deployment_.vm(flow_owner_[f]).host;
      const topo::NodeId dst = deployment_.vm(flow_peer_[f]).host;
      if (flow.src_host != src || flow.dst_host != dst) {
        flow.src_host = src;
        flow.dst_host = dst;
        flow.path.clear();
      }
    }
    update_flow_demands();
    for (net::Flow& flow : flows_) {
      if (!flow.routed()) router_.route(flow);
    }
    if (injector_ != nullptr) {
      for (const net::Flow& flow : flows_) {
        if (flow.src_host != flow.dst_host && !flow.routed()) ++metrics.unroutable_flows;
      }
    }
  }

  // 2. Network state: fair share + queue/QCN update, then the end-host
  //    reaction point adjusts rate limits for the next period. The
  //    incremental solver re-waterfills only the components touched since
  //    last round; the from-scratch call is the bench baseline.
  const topo::LivenessMask* liveness =
      injector_ != nullptr ? &injector_->liveness() : nullptr;
  const net::FairShareResult* shares_ptr;
  {
    PhaseTimer timer(profile_.fair_share_ns);
    if (config_.incremental_fair_share) {
      shares_ptr = &solver_.solve(flows_, liveness);
      profile_.fair_share_build_ns = solver_.timings().build_ns;
      profile_.fair_share_fill_ns = solver_.timings().fill_ns;
    } else {
      naive_shares_ = net::max_min_fair_share(*topo_, flows_, liveness);
      shares_ptr = &naive_shares_;
    }
  }
  const net::FairShareResult& shares = *shares_ptr;
  // Network-state invariants are checked here, while flows' paths and rate
  // limits are exactly what the allocation saw: the QCN update below moves
  // rate limits, and management reroutes change paths mid-round.
  if (hub_ != nullptr && hub_->auditor() != nullptr) {
    obs::InvariantAuditor::RoundInputs inputs;
    inputs.round = static_cast<std::uint32_t>(metrics.round);
    inputs.deployment = &deployment_;
    inputs.flows = flows_;
    inputs.shares = shares_ptr;
    inputs.solver = config_.incremental_fair_share ? &solver_ : nullptr;
    inputs.liveness = liveness;
    hub_->auditor()->audit_network(inputs);
  }
  std::vector<topo::NodeId> congested;
  {
    PhaseTimer timer(profile_.queue_ns);
    queues_.update(shares, flows_, 1.0, config_.parallel_collect ? &worker_pool() : nullptr);
    // QoS is measured against the demands the allocator actually saw: the
    // QCN reaction point below tightens rate limits for the *next* period,
    // and a freshly lowered limit would read as allocated/demand > 1.
    const auto qos = net::compute_qos_stats(flows_);
    metrics.flow_satisfaction = qos.mean_satisfaction;
    metrics.flow_fairness = qos.jain_fairness;
    if (config_.qcn_rate_control) {
      rate_controller_.update(flows_, queues_);
      metrics.rate_limited_flows = rate_controller_.tracked_flows();
    }
    congested = queues_.congested_switches();
    metrics.congested_switches = congested.size();
    for (double u : shares.link_utilization) {
      metrics.max_link_utilization = std::max(metrics.max_link_utilization, u);
    }
  }

  // 3. Prediction + alert collection (parallel across racks).
  std::optional<PhaseTimer> predict_timer(std::in_place, profile_.predict_ns);
  observe_and_predict();
  metrics.workload_stddev_before = deployment_.workload_stddev();
  metrics.workload_mean = deployment_.workload_mean();

  // Pre-filter congestion feedback per rack: scan flows once, not per shim.
  std::vector<std::vector<topo::NodeId>> rack_hot(topo_->rack_count());
  if (!congested.empty()) {
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (!flows_[f].routed()) continue;
      const topo::RackId owner_rack = topo_->node(flows_[f].src_host).rack;
      for (topo::NodeId sw : congested) {
        if (!flows_[f].transits(sw)) continue;
        auto& list = rack_hot[owner_rack];
        if (std::find(list.begin(), list.end(), sw) == list.end()) list.push_back(sw);
      }
    }
  }

  // Per-rack ToR signal prediction (Sec. IV-A): feed this round's uplink
  // utilization and queue length into the scalar predictors, then hand the
  // shims their T-ahead extrapolations.
  const double fleet_mean = deployment_.workload_mean();
  std::vector<ShimController::Observation> observations(shims_.size());
  for (topo::RackId r = 0; r < topo_->rack_count(); ++r) {
    const topo::NodeId tor = topo_->rack(r).tor;
    double utilization = 0.0;
    for (topo::LinkId l : topo_->links_of(tor)) {
      const topo::NodeId other = topo_->peer(l, tor);
      if (!topo::is_switch(topo_->node(other).kind)) continue;
      utilization = std::max(utilization, shares.link_utilization[l]);
    }
    tor_utilization_predictors_[r].observe(utilization);
    tor_queue_predictors_[r].observe(queues_.queue_length(tor));

    auto& obs = observations[r];
    obs.shares = &shares;
    obs.hot_switches = rack_hot[r];
    obs.fleet_mean_load_percent = fleet_mean;
    obs.tor_queue_equilibrium = queues_.config().equilibrium_queue;
    if (tor_utilization_predictors_[r].ready()) {
      obs.predicted_tor_utilization = std::max(
          0.0, tor_utilization_predictors_[r].predict(config_.sheriff.prediction_horizon));
      obs.predicted_tor_queue = std::max(
          0.0, tor_queue_predictors_[r].predict(config_.sheriff.prediction_horizon));
    }
  }

  std::vector<ShimCollectResult> collected(shims_.size());
  {
    const auto work = [&](std::size_t s) {
      collected[s] = shims_[s].collect(deployment_, predicted_, observations[s]);
    };
    if (config_.parallel_collect && shims_.size() > 8) {
      common::parallel_for(worker_pool(), shims_.size(), work);
    } else {
      for (std::size_t s = 0; s < shims_.size(); ++s) work(s);
    }
  }
  predict_timer.reset();
  std::optional<PhaseTimer> manage_timer(std::in_place, profile_.manage_ns);

  // 4. Management actions. VMs stranded on dead or cut-off hosts are
  //    re-placed through the same machinery as alert-driven migrations (a
  //    control-plane restart from shared storage, so a severed source does
  //    not block it); `orphans` stays sorted for the recovery accounting.
  std::vector<wl::VmId> orphans = collect_orphans();
  std::sort(orphans.begin(), orphans.end());
  metrics.orphaned_vms = orphans.size();
  const auto count_recoveries = [&](const MigrationPlan& plan) {
    if (orphans.empty()) return;
    for (const MigrationMove& move : plan.moves) {
      if (std::binary_search(orphans.begin(), orphans.end(), move.vm)) {
        ++metrics.recovery_migrations;
      }
    }
  };
  // Orphans grouped by the rack of their stranded host; each group becomes
  // a recovery demand issued by the rack's managing shim.
  std::vector<std::vector<wl::VmId>> orphans_by_rack;
  if (!orphans.empty()) {
    orphans_by_rack.resize(topo_->rack_count());
    for (wl::VmId vm : orphans) {
      orphans_by_rack[topo_->node(deployment_.vm(vm).host).rack].push_back(vm);
    }
  }

  // Committed moves become MigrationCompleted trace events, and (with the
  // auditor on) the round's move list for the management-side checks.
  std::vector<obs::AuditedMove> audited_moves;
  const auto observe_plan = [&](const MigrationPlan& plan) {
    if (hub_ == nullptr) return;
    for (const MigrationMove& move : plan.moves) {
      hub_->trace().emit(obs::EventTrace::kEngine, obs::EventType::kMigrationCompleted,
                         move.vm, move.to, move.cost);
      if (hub_->auditor() != nullptr) {
        audited_moves.push_back({move.vm, move.from, move.to, move.cost,
                                 move.duration_seconds, move.downtime_seconds});
      }
    }
  };

  cost_model_.set_bandwidth_state(&shares);
  if (config_.mode == ManagerMode::kSheriff) {
    const auto account_plan = [&](const MigrationPlan& plan) {
      metrics.migrations += plan.moves.size();
      metrics.migration_requests += plan.requests;
      metrics.migration_rejects += plan.rejects;
      metrics.migration_cost += plan.total_cost;
      metrics.search_space += plan.search_space;
      metrics.migration_seconds += plan.total_duration_seconds;
      metrics.migration_downtime_seconds += plan.total_downtime_seconds;
      observe_plan(plan);
    };
    if (config_.protocol == MigrationProtocol::kMessagePassing) {
      // Alert dispatch per shim, then one distributed propose/decide/apply
      // run. A rack whose shim is down is handled by its takeover neighbor:
      // the demand is attributed to the neighbor and placed in *its* region.
      std::vector<MigrationDemand> demands;
      if (config_.sharded_manage) {
        // Sharded two-phase sweep (DESIGN.md §11): parallel pure propose
        // per shard, serial commit ordered by shim id.
        std::vector<ShimProposal> proposals = propose_shards(collected);
        PhaseTimer commit_timer(profile_.manage_commit_ns);
        commit_proposals(proposals, metrics, [&](topo::RackId mgr, std::vector<wl::VmId> set) {
          demands.push_back(
              {shims_[mgr].rack(), std::move(set), shims_[mgr].migration_targets(deployment_)});
        });
      } else {
        // Legacy interleaved sweep (serial: reroutes touch the shared flow
        // table between alert dispatches) — the bench baseline leg.
        for (std::size_t s = 0; s < shims_.size(); ++s) {
          const topo::RackId mgr = managing_rack(static_cast<topo::RackId>(s));
          if (mgr == topo::kInvalidRack) continue;  // unmanaged until a shim recovers
          auto selection = shims_[s].select(collected[s], deployment_, predicted_, rerouter_,
                                            flows_, flow_owner_);
          metrics.host_alerts += selection.host_alerts;
          metrics.tor_alerts += selection.tor_alerts;
          metrics.switch_alerts += selection.switch_alerts;
          metrics.reroutes += selection.reroutes.rerouted;
          if (!selection.migration_set.empty()) {
            demands.push_back({shims_[mgr].rack(), std::move(selection.migration_set),
                               shims_[mgr].migration_targets(deployment_)});
          }
        }
      }
      for (std::size_t r = 0; r < orphans_by_rack.size(); ++r) {
        if (orphans_by_rack[r].empty()) continue;
        const topo::RackId mgr = managing_rack(static_cast<topo::RackId>(r));
        if (mgr == topo::kInvalidRack) continue;
        demands.push_back({shims_[mgr].rack(), std::move(orphans_by_rack[r]),
                           shims_[mgr].migration_targets(deployment_)});
      }
      DistributedMigrationProtocol protocol(
          deployment_, cost_model_, config_.sheriff,
          config_.parallel_collect ? &worker_pool() : nullptr, channel_.get(),
          config_.fault_plan != nullptr ? config_.fault_plan->options().max_protocol_retries
                                        : 0,
          hub_ != nullptr ? &hub_->trace() : nullptr);
      ProtocolResult outcome;
      {
        PhaseTimer decision_timer(profile_.manage_decision_ns);
        outcome = protocol.run(std::move(demands));
      }
      account_plan(outcome.plan);
      count_recoveries(outcome.plan);
      metrics.protocol_conflicts += outcome.conflicts;
      metrics.protocol_iterations = outcome.iterations;
      metrics.protocol_drops = outcome.drops;
      metrics.protocol_retries = outcome.retries;
    } else if (config_.sharded_manage) {
      // Sharded two-phase sweep, FCFS flavor: the same parallel propose,
      // with each committed migration set scheduled immediately through the
      // shared admission broker — still strictly ordered by shim id.
      mig::AdmissionBroker broker(deployment_);
      std::vector<ShimProposal> proposals = propose_shards(collected);
      {
        PhaseTimer commit_timer(profile_.manage_commit_ns);
        commit_proposals(proposals, metrics, [&](topo::RackId mgr, std::vector<wl::VmId> set) {
          VmMigrationScheduler scheduler(deployment_, cost_model_, broker,
                                         config_.sheriff.max_matching_rounds);
          // Decision time nests inside manage_commit_ns on this path (the
          // scheduler runs in the serial commit pass).
          PhaseTimer decision_timer(profile_.manage_decision_ns);
          account_plan(
              scheduler.migrate(std::move(set), shims_[mgr].migration_targets(deployment_)));
        });
      }
      for (std::size_t r = 0; r < orphans_by_rack.size(); ++r) {
        if (orphans_by_rack[r].empty()) continue;
        const topo::RackId mgr = managing_rack(static_cast<topo::RackId>(r));
        if (mgr == topo::kInvalidRack) continue;
        VmMigrationScheduler scheduler(deployment_, cost_model_, broker,
                                       config_.sheriff.max_matching_rounds);
        MigrationPlan plan;
        {
          PhaseTimer decision_timer(profile_.manage_decision_ns);
          plan = scheduler.migrate(std::move(orphans_by_rack[r]),
                                   shims_[mgr].migration_targets(deployment_));
        }
        account_plan(plan);
        count_recoveries(plan);
      }
    } else {
      mig::AdmissionBroker broker(deployment_);
      for (std::size_t s = 0; s < shims_.size(); ++s) {
        const topo::RackId mgr = managing_rack(static_cast<topo::RackId>(s));
        if (mgr == topo::kInvalidRack) continue;
        if (mgr == static_cast<topo::RackId>(s)) {
          const auto result = shims_[s].act(collected[s], deployment_, predicted_, cost_model_,
                                            broker, rerouter_, flows_, flow_owner_);
          metrics.host_alerts += result.host_alerts;
          metrics.tor_alerts += result.tor_alerts;
          metrics.switch_alerts += result.switch_alerts;
          metrics.reroutes += result.reroutes.rerouted;
          account_plan(result.plan);
        } else {
          // Takeover: the neighbor shim runs the rack's selection and
          // schedules the moves into its own region.
          auto selection = shims_[s].select(collected[s], deployment_, predicted_, rerouter_,
                                            flows_, flow_owner_);
          metrics.host_alerts += selection.host_alerts;
          metrics.tor_alerts += selection.tor_alerts;
          metrics.switch_alerts += selection.switch_alerts;
          metrics.reroutes += selection.reroutes.rerouted;
          if (!selection.migration_set.empty()) {
            VmMigrationScheduler scheduler(deployment_, cost_model_, broker,
                                           config_.sheriff.max_matching_rounds);
            PhaseTimer decision_timer(profile_.manage_decision_ns);
            account_plan(scheduler.migrate(std::move(selection.migration_set),
                                           shims_[mgr].migration_targets(deployment_)));
          }
        }
      }
      for (std::size_t r = 0; r < orphans_by_rack.size(); ++r) {
        if (orphans_by_rack[r].empty()) continue;
        const topo::RackId mgr = managing_rack(static_cast<topo::RackId>(r));
        if (mgr == topo::kInvalidRack) continue;
        VmMigrationScheduler scheduler(deployment_, cost_model_, broker,
                                       config_.sheriff.max_matching_rounds);
        MigrationPlan plan;
        {
          PhaseTimer decision_timer(profile_.manage_decision_ns);
          plan = scheduler.migrate(std::move(orphans_by_rack[r]),
                                   shims_[mgr].migration_targets(deployment_));
        }
        account_plan(plan);
        count_recoveries(plan);
      }
    }
  } else {
    // Centralized baselines (kCentralized, kKMedian): the same per-rack
    // alert collection feeds one manager with the global view; host alerts
    // of every rack are gathered through PRIORITY's single-VM rule applied
    // per host, ToR/switch alerts per rack. A rack whose shim died
    // unreplaced reports nothing — monitoring is lost too.
    std::vector<wl::VmId> global_set;
    for (std::size_t s = 0; s < shims_.size(); ++s) {
      if (injector_ != nullptr && takeover_[s] == topo::kInvalidRack) continue;
      for (const Alert& alert : collected[s].alerts) {
        metrics.host_alerts += alert.source == AlertSource::kHost ? 1 : 0;
        metrics.tor_alerts += alert.source == AlertSource::kLocalTor ? 1 : 0;
        metrics.switch_alerts += alert.source == AlertSource::kOuterSwitch ? 1 : 0;
      }
      // The global manager migrates every VM whose own ALERT fired.
      for (std::size_t i = 0; i < collected[s].rack_vms.size(); ++i) {
        if (collected[s].vm_alert_values[i] > 0.0 &&
            !deployment_.vm(collected[s].rack_vms[i]).delay_sensitive) {
          global_set.push_back(collected[s].rack_vms[i]);
        }
      }
    }
    // Orphans are re-placed unconditionally (their host is gone, so even
    // delay-sensitive VMs must restart elsewhere). collect() skipped their
    // hosts, so no VM appears twice.
    global_set.insert(global_set.end(), orphans.begin(), orphans.end());
    MigrationPlan plan;
    if (config_.mode == ManagerMode::kKMedian) {
      // Sec. V-A: planner row upkeep + the k-median solve are the
      // manage_kmedian sub-phase; matching/scheduling is manage_schedule.
      {
        PhaseTimer timer(profile_.manage_kmedian_ns);
        // Row upkeep mutates the planner, so it only applies to an owned
        // one. A borrowed (substrate) planner is maskless by contract —
        // refresh() on it would be a no-op anyway — and rebuild() never
        // borrows (the ctor falls back to an owned planner when
        // fast_kmedian is off).
        if (kmedian_planner_ != nullptr) {
          if (config_.fast_kmedian) {
            kmedian_planner_->refresh();
          } else {
            kmedian_planner_->rebuild();
          }
        }
      }
      const KMedianMigrationManager::Stats& stats = kmedian_manager_->stats();
      const std::uint64_t kmedian_before = stats.kmedian_ns;
      const std::uint64_t schedule_before = stats.schedule_ns;
      {
        PhaseTimer decision_timer(profile_.manage_decision_ns);
        plan = kmedian_manager_->migrate(std::move(global_set));
      }
      profile_.manage_kmedian_ns += stats.kmedian_ns - kmedian_before;
      profile_.manage_schedule_ns += stats.schedule_ns - schedule_before;
    } else {
      CentralizedManager manager(deployment_, cost_model_, config_.sheriff);
      if (injector_ != nullptr) manager.set_liveness(&injector_->liveness());
      PhaseTimer decision_timer(profile_.manage_decision_ns);
      plan = manager.migrate(std::move(global_set));
    }
    count_recoveries(plan);
    observe_plan(plan);
    metrics.migrations += plan.moves.size();
    metrics.migration_requests += plan.requests;
    metrics.migration_rejects += plan.rejects;
    metrics.migration_cost += plan.total_cost;
    metrics.search_space += plan.search_space;
    metrics.migration_seconds += plan.total_duration_seconds;
    metrics.migration_downtime_seconds += plan.total_downtime_seconds;
  }
  cost_model_.set_bandwidth_state(nullptr);
  manage_timer.reset();

  metrics.workload_stddev_after = deployment_.workload_stddev();
  if (hub_ != nullptr) publish_round(metrics, audited_moves);
  ++profile_.rounds;
  return metrics;
}

std::vector<ShimProposal> DistributedEngine::propose_shards(
    std::span<const ShimCollectResult> collected) {
  // Per-rack flow index: the indices of the flows owned by each rack's
  // VMs, ascending — each shim's switch-alert F-set scan becomes O(own
  // flows) instead of O(all flows). Built serially so the index order (and
  // therefore every F-set) is independent of the shard count.
  std::vector<std::vector<std::size_t>> rack_flows(topo_->rack_count());
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    rack_flows[topo_->node(deployment_.vm(flow_owner_[f]).host).rack].push_back(f);
  }
  std::vector<ShimProposal> proposals(shims_.size());
  const auto propose_shard = [&](std::size_t shard) {
    PhaseTimer timer(profile_.manage_shard_propose_ns[shard]);
    for (topo::RackId s : shard_plan_.racks_of(shard)) {
      if (managing_rack(s) == topo::kInvalidRack) continue;
      proposals[s] = shims_[s].propose(collected[s], deployment_, predicted_, flows_,
                                       flow_owner_, rack_flows[s]);
    }
  };
  // propose() is pure (no flow mutation, no trace emission, no tallies), so
  // the shards can run concurrently over the same round state.
  if (config_.parallel_collect && shard_plan_.shard_count() > 1) {
    common::parallel_for(worker_pool(), shard_plan_.shard_count(), propose_shard);
  } else {
    for (std::size_t shard = 0; shard < shard_plan_.shard_count(); ++shard) {
      propose_shard(shard);
    }
  }
  return proposals;
}

void DistributedEngine::commit_proposals(
    std::span<ShimProposal> proposals, RoundMetrics& metrics,
    const std::function<void(topo::RackId, std::vector<wl::VmId>)>& schedule) {
  // Serial apply, totally ordered by shim id: the one place the sharded
  // sweep touches shared state, so the outcome is the same for every shard
  // count. Both claim kinds commit first-claimant-wins — each hot switch
  // is rerouted once per round, and each VM migrates at most once per
  // round (one shim can claim a tenant twice: the host-alert single-VM
  // rule and the ToR budget pass may pick the same VM). Losing claims are
  // resolved as shard conflicts instead of re-applied.
  std::vector<bool> switch_claimed(topo_->node_count(), false);
  std::vector<bool> vm_claimed(deployment_.vm_count(), false);
  for (std::size_t s = 0; s < proposals.size(); ++s) {
    const topo::RackId mgr = managing_rack(static_cast<topo::RackId>(s));
    if (mgr == topo::kInvalidRack) continue;
    ShimProposal& proposal = proposals[s];
    metrics.host_alerts += proposal.host_alerts;
    metrics.tor_alerts += proposal.tor_alerts;
    metrics.switch_alerts += proposal.switch_alerts;
    shard_stats_.reroute_claims += proposal.reroute_claims.size();
    for (topo::NodeId hot : proposal.reroute_claims) {
      if (switch_claimed[hot]) {
        ++metrics.shard_conflicts;
        ++shard_stats_.reroute_conflicts;
        continue;
      }
      switch_claimed[hot] = true;
      ++shard_stats_.reroute_commits;
      metrics.reroutes += shims_[s].apply_reroute(hot, rerouter_, flows_).rerouted;
    }
    shard_stats_.vm_claims += proposal.migration_set.size();
    std::vector<wl::VmId> migration_set;
    migration_set.reserve(proposal.migration_set.size());
    for (wl::VmId vm : proposal.migration_set) {
      if (vm_claimed[vm]) {
        ++metrics.shard_conflicts;
        ++shard_stats_.vm_conflicts;
        continue;
      }
      vm_claimed[vm] = true;
      ++shard_stats_.vm_commits;
      migration_set.push_back(vm);
    }
    if (migration_set.empty()) continue;
    ++shard_stats_.demands_by_rack[mgr];
    schedule(mgr, std::move(migration_set));
  }
  ++shard_stats_.sharded_rounds;
}

void DistributedEngine::publish_round(const RoundMetrics& metrics,
                                      std::span<const obs::AuditedMove> moves) {
  obs::MetricRegistry& registry = hub_->registry();
  registry.gauge("engine.rounds").set(static_cast<double>(round_));
  registry.counter("engine.migrations").add(metrics.migrations);
  registry.counter("engine.reroutes").add(metrics.reroutes);
  registry.counter("engine.host_alerts").add(metrics.host_alerts);
  registry.counter("engine.tor_alerts").add(metrics.tor_alerts);
  registry.counter("engine.switch_alerts").add(metrics.switch_alerts);
  registry.counter("engine.migration_requests").add(metrics.migration_requests);
  registry.counter("engine.migration_rejects").add(metrics.migration_rejects);
  registry.counter("engine.protocol_drops").add(metrics.protocol_drops);
  registry.counter("engine.protocol_retries").add(metrics.protocol_retries);
  registry.counter("engine.recovery_migrations").add(metrics.recovery_migrations);
  // Shard bookkeeping: every value here is shard-count invariant (the
  // propose/commit sweep produces identical results for any shard count),
  // so publishing it keeps checkpoints byte-comparable across shard counts.
  registry.counter("engine.shard_conflicts").add(metrics.shard_conflicts);
  registry.gauge("manage.sharded_rounds").set(static_cast<double>(shard_stats_.sharded_rounds));
  registry.gauge("manage.reroute_claims").set(static_cast<double>(shard_stats_.reroute_claims));
  registry.gauge("manage.reroute_commits").set(static_cast<double>(shard_stats_.reroute_commits));
  registry.gauge("manage.reroute_conflicts")
      .set(static_cast<double>(shard_stats_.reroute_conflicts));
  registry.gauge("engine.workload_stddev").set(metrics.workload_stddev_after);
  registry.gauge("engine.max_link_utilization").set(metrics.max_link_utilization);
  registry.gauge("engine.flow_satisfaction").set(metrics.flow_satisfaction);
  registry.gauge("engine.flow_fairness").set(metrics.flow_fairness);
  registry
      .histogram("engine.round_migration_cost", {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0})
      .observe(metrics.migration_cost);
  registry.gauge("trace.emitted").set(static_cast<double>(hub_->trace().total_emitted()));
  registry.gauge("trace.dropped").set(static_cast<double>(hub_->trace().total_dropped()));
  if (kmedian_manager_ != nullptr) {
    const KMedianMigrationManager::Stats& stats = kmedian_manager_->stats();
    registry.counter("kmedian.plans").add(stats.plans - published_kmedian_stats_.plans);
    registry.counter("kmedian.evaluations")
        .add(stats.evaluations - published_kmedian_stats_.evaluations);
    registry.counter("kmedian.cap_hits").add(stats.cap_hits - published_kmedian_stats_.cap_hits);
    registry.counter("kmedian.planner_rebuilds")
        .add(kmedian_planner_view_->rebuilds() - published_planner_rebuilds_);
    published_kmedian_stats_ = stats;
    published_planner_rebuilds_ = kmedian_planner_view_->rebuilds();
  }
  {
    // Per-round deltas of the decision-kernel counters. The pruning-
    // losslessness identity (evaluated_on + pruned_on == evaluated_off,
    // pruned_off == 0) is checked in tests over these published values.
    const mig::CostModelStats cost = cost_model_.stats();
    registry.counter("cost.evaluated").add(cost.evaluated - published_cost_stats_.evaluated);
    registry.counter("cost.pruned").add(cost.pruned - published_cost_stats_.pruned);
    registry.counter("cost.surface_builds")
        .add(cost.surface_builds - published_cost_stats_.surface_builds);
    published_cost_stats_ = cost;
  }
  if (config_.incremental_fair_share) solver_.publish_metrics(registry);
  router_.publish_metrics(registry);
  queues_.publish_metrics(registry);
  if (injector_ != nullptr) injector_->publish_metrics(registry);
  for (const ShimController& shim : shims_) shim.publish_metrics(registry);

  if (hub_->auditor() != nullptr) {
    obs::InvariantAuditor::RoundInputs inputs;
    inputs.round = static_cast<std::uint32_t>(metrics.round);
    inputs.deployment = &deployment_;
    inputs.moves = moves;
    hub_->auditor()->audit_management(inputs);
  }
}

std::vector<RoundMetrics> DistributedEngine::run(std::size_t rounds) {
  std::vector<RoundMetrics> out;
  out.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) out.push_back(run_round());
  return out;
}

// --- checkpoint/restore (DESIGN.md §10) -------------------------------------

namespace {
// Section schema versions. Bump a section's version whenever its payload
// layout changes; load_state rejects skew loudly via expect_section.
constexpr std::uint32_t kMetaVersion = 2;
constexpr std::uint32_t kDeploymentVersion = 1;
constexpr std::uint32_t kFlowVersion = 1;
constexpr std::uint32_t kFaultVersion = 1;
constexpr std::uint32_t kFairShareVersion = 2;
constexpr std::uint32_t kQueueVersion = 1;
constexpr std::uint32_t kPredictVersion = 1;
constexpr std::uint32_t kShimVersion = 1;
constexpr std::uint32_t kShardVersion = 1;
constexpr std::uint32_t kObsVersion = 1;

void put_holt_scalar(snapshot::Writer& writer, const HoltScalar& scalar) {
  const HoltScalar::State s = scalar.state();
  writer.put_f64(s.level);
  writer.put_f64(s.trend);
  writer.put_u64(s.observations);
}

/// load_state failure policy: every mismatch or corrupt payload throws
/// SnapshotError, matching the archive layer — callers (Checkpoint, the
/// bench resume probe) catch one exception type for "this file cannot be
/// loaded here".
void check_load(bool ok, const std::string& what) {
  if (!ok) throw snapshot::SnapshotError(what);
}

void get_holt_scalar(snapshot::Reader& reader, HoltScalar& scalar) {
  HoltScalar::State s;
  s.level = reader.get_f64();
  s.trend = reader.get_f64();
  s.observations = reader.get_u64();
  scalar.restore(s);
}
}  // namespace

void DistributedEngine::save_state(snapshot::Writer& writer) const {
  // META: run position + a structural fingerprint so a checkpoint can only
  // be loaded into an engine built over the same inputs.
  writer.begin_section("META", kMetaVersion);
  writer.put_u64(round_);
  writer.put_u64(topo_->node_count());
  writer.put_u64(topo_->link_count());
  writer.put_u64(topo_->rack_count());
  writer.put_u64(deployment_.vm_count());
  writer.put_u64(flows_.size());
  writer.put_u8(static_cast<std::uint8_t>(config_.mode));
  writer.put_u8(static_cast<std::uint8_t>(config_.protocol));
  writer.put_u8(static_cast<std::uint8_t>(config_.predictor));
  writer.put_bool(config_.incremental_fair_share);
  // sharded_manage is semantics-bearing (legacy interleaved sweep vs
  // two-phase commit), so it fingerprints; manage_shards does not — the
  // shard count never changes results, exactly like the pool size.
  // cost_surface / cost_pruning / prewarm_cost_rows / parallel_workload
  // are results-identical accelerations (bitwise-equal selections and
  // traces) and are likewise excluded.
  writer.put_bool(config_.sharded_manage);
  writer.put_bool(injector_ != nullptr);
  writer.put_bool(channel_ != nullptr);
  writer.put_bool(kmedian_manager_ != nullptr);
  writer.put_bool(hub_ != nullptr);
  writer.put_bool(hub_ != nullptr && hub_->auditor() != nullptr);
  writer.end_section();

  writer.begin_section("DEPL", kDeploymentVersion);
  deployment_.save_state(writer);
  writer.end_section();

  // FLOW: the mutable half of the flow table. Ids, delay sensitivity, and
  // the owner/peer maps are constructor-derived from the dependency graph.
  writer.begin_section("FLOW", kFlowVersion);
  writer.put_u64(flows_.size());
  for (const net::Flow& flow : flows_) {
    writer.put_u32(flow.src_host);
    writer.put_u32(flow.dst_host);
    writer.put_f64(flow.demand_gbps);
    writer.put_u8(static_cast<std::uint8_t>(flow.dscp));
    writer.put_u32v(flow.path);
    writer.put_f64(flow.allocated_gbps);
    writer.put_f64(flow.rate_limit_gbps);
  }
  writer.end_section();

  // FALT: only the lossy channel's stream state travels in the archive —
  // the injector itself is reconstructed by replaying its (deterministic)
  // plan up to `round_` at load time.
  writer.begin_section("FALT", kFaultVersion);
  writer.put_bool(channel_ != nullptr);
  if (channel_ != nullptr) {
    const fault::LossyChannel::State s = channel_->state();
    writer.put_u64(s.rng.state);
    writer.put_u64(s.rng.inc);
    writer.put_bool(s.rng.has_cached_normal);
    writer.put_f64(s.rng.cached_normal);
    writer.put_u64(s.drops);
  }
  writer.end_section();

  writer.begin_section("FAIR", kFairShareVersion);
  solver_.save_state(writer);
  writer.end_section();

  writer.begin_section("QUEU", kQueueVersion);
  queues_.save_state(writer);
  rate_controller_.save_state(writer);
  writer.end_section();

  writer.begin_section("PRED", kPredictVersion);
  writer.put_u64(predictors_.size());
  for (const auto& predictor : predictors_) predictor->save_state(writer);
  writer.put_u64(predicted_.size());
  for (const wl::WorkloadProfile& profile : predicted_) {
    for (double v : profile.values) writer.put_f64(v);
  }
  writer.put_u64(tor_utilization_predictors_.size());
  for (const HoltScalar& s : tor_utilization_predictors_) put_holt_scalar(writer, s);
  for (const HoltScalar& s : tor_queue_predictors_) put_holt_scalar(writer, s);
  writer.end_section();

  writer.begin_section("SHIM", kShimVersion);
  writer.put_u64(shims_.size());
  for (const ShimController& shim : shims_) shim.save_state(writer);
  writer.end_section();

  // SHRD: shard-sweep bookkeeping. Only shard-count-invariant aggregates
  // travel (per-shard data would break checkpoint byte-parity across shard
  // counts); the shard plan itself is a pure function of
  // (rack_count, shard_count) and is reconstructed, never serialized.
  writer.begin_section("SHRD", kShardVersion);
  writer.put_u64(shard_stats_.sharded_rounds);
  writer.put_u64(shard_stats_.reroute_claims);
  writer.put_u64(shard_stats_.reroute_commits);
  writer.put_u64(shard_stats_.reroute_conflicts);
  writer.put_u64(shard_stats_.vm_claims);
  writer.put_u64(shard_stats_.vm_commits);
  writer.put_u64(shard_stats_.vm_conflicts);
  writer.put_u64v(shard_stats_.demands_by_rack);
  writer.end_section();

  // OBSR: registry contents, auditor tallies, trace rings. Saved last and
  // restored last, so anything load-time replay emits is overwritten.
  writer.begin_section("OBSR", kObsVersion);
  writer.put_bool(hub_ != nullptr);
  if (hub_ != nullptr) {
    const obs::MetricRegistry& registry = hub_->registry();
    std::size_t counters = 0;
    std::size_t gauges = 0;
    std::size_t histograms = 0;
    registry.for_each_counter([&](const std::string&, const obs::Counter&) { ++counters; });
    registry.for_each_gauge([&](const std::string&, const obs::Gauge&) { ++gauges; });
    registry.for_each_histogram([&](const std::string&, const obs::Histogram&) { ++histograms; });
    writer.put_u64(counters);
    registry.for_each_counter([&](const std::string& name, const obs::Counter& c) {
      writer.put_str(name);
      writer.put_u64(c.value());
    });
    writer.put_u64(gauges);
    registry.for_each_gauge([&](const std::string& name, const obs::Gauge& g) {
      writer.put_str(name);
      writer.put_f64(g.value());
    });
    writer.put_u64(histograms);
    registry.for_each_histogram([&](const std::string& name, const obs::Histogram& h) {
      writer.put_str(name);
      writer.put_f64v(h.bounds());
      writer.put_u64v(h.counts());
      writer.put_u64(h.total());
      writer.put_f64(h.sum());
    });

    const obs::EventTrace& trace = hub_->trace();
    writer.put_u64(trace.ring_count());
    for (std::size_t r = 0; r < trace.ring_count(); ++r) {
      const obs::EventTrace::RingView ring = trace.ring_view(r);
      writer.put_u64(ring.slots.size());
      for (const obs::TraceRecord& record : ring.slots) {
        writer.put_u64(record.seq);
        writer.put_u32(record.round);
        writer.put_u32(record.shim);
        writer.put_u8(static_cast<std::uint8_t>(record.type));
        writer.put_u32(record.a);
        writer.put_u32(record.b);
        writer.put_f64(record.value);
      }
      writer.put_u64(ring.head);
      writer.put_u64(ring.emitted);
      writer.put_u64(ring.dropped);
    }
    writer.put_u64(trace.next_seq());
    writer.put_u32(trace.round());

    writer.put_bool(hub_->auditor() != nullptr);
    if (hub_->auditor() != nullptr) hub_->auditor()->save_state(writer);
  }
  writer.end_section();
}

void DistributedEngine::load_state(snapshot::Reader& reader) {
  reader.expect_section("META", kMetaVersion);
  const std::uint64_t saved_round = reader.get_u64();
  check_load(reader.get_u64() == topo_->node_count() &&
                      reader.get_u64() == topo_->link_count() &&
                      reader.get_u64() == topo_->rack_count(),
                  "checkpoint was taken over a different topology");
  check_load(reader.get_u64() == deployment_.vm_count(),
                  "checkpoint was taken over a different VM population");
  check_load(reader.get_u64() == flows_.size(),
                  "checkpoint was taken over a different flow table");
  check_load(reader.get_u8() == static_cast<std::uint8_t>(config_.mode) &&
                      reader.get_u8() == static_cast<std::uint8_t>(config_.protocol) &&
                      reader.get_u8() == static_cast<std::uint8_t>(config_.predictor) &&
                      reader.get_bool() == config_.incremental_fair_share &&
                      reader.get_bool() == config_.sharded_manage,
                  "checkpoint was taken under a different engine configuration");
  check_load(reader.get_bool() == (injector_ != nullptr) &&
                      reader.get_bool() == (channel_ != nullptr) &&
                      reader.get_bool() == (kmedian_manager_ != nullptr),
                  "checkpoint was taken under a different fault/manager setup");
  check_load(reader.get_bool() == (hub_ != nullptr) &&
                      reader.get_bool() == (hub_ != nullptr && hub_->auditor() != nullptr),
                  "checkpoint was taken under a different observability setup");
  reader.leave_section();
  round_ = saved_round;

  reader.expect_section("DEPL", kDeploymentVersion);
  deployment_.load_state(reader);
  reader.leave_section();

  reader.expect_section("FLOW", kFlowVersion);
  const std::uint64_t flow_count = reader.get_u64();
  check_load(flow_count == flows_.size(), "corrupt flow section");
  for (net::Flow& flow : flows_) {
    flow.src_host = reader.get_u32();
    flow.dst_host = reader.get_u32();
    flow.demand_gbps = reader.get_f64();
    flow.dscp = static_cast<net::DscpMark>(reader.get_u8());
    flow.path = reader.get_u32v();
    flow.allocated_gbps = reader.get_f64();
    flow.rate_limit_gbps = reader.get_f64();
  }
  reader.leave_section();

  reader.expect_section("FALT", kFaultVersion);
  const bool archived_channel = reader.get_bool();
  check_load(archived_channel == (channel_ != nullptr), "corrupt fault section");
  if (channel_ != nullptr) {
    fault::LossyChannel::State s;
    s.rng.state = reader.get_u64();
    s.rng.inc = reader.get_u64();
    s.rng.has_cached_normal = reader.get_bool();
    s.rng.cached_normal = reader.get_f64();
    s.drops = reader.get_u64();
    channel_->restore(s);
  }
  reader.leave_section();
  if (injector_ != nullptr) {
    // Replay the plan up to the saved round with the trace detached: the
    // LivenessMask (version counter included) and shim availability land
    // exactly where the saved run left them, without duplicate trace
    // events — the OBSR restore below carries the authoritative rings.
    injector_->set_trace(nullptr);
    for (std::size_t r = 0; r < saved_round; ++r) (void)injector_->advance(r);
    if (hub_ != nullptr) injector_->set_trace(&hub_->trace());
    router_.refresh_liveness();
    recompute_takeovers();
  }

  reader.expect_section("FAIR", kFairShareVersion);
  solver_.load_state(reader, injector_ != nullptr ? &injector_->liveness() : nullptr);
  reader.leave_section();

  reader.expect_section("QUEU", kQueueVersion);
  queues_.load_state(reader);
  rate_controller_.load_state(reader);
  reader.leave_section();

  reader.expect_section("PRED", kPredictVersion);
  check_load(reader.get_u64() == predictors_.size(), "corrupt predictor section");
  for (const auto& predictor : predictors_) predictor->load_state(reader);
  check_load(reader.get_u64() == predicted_.size(), "corrupt predictor section");
  for (wl::WorkloadProfile& profile : predicted_) {
    for (double& v : profile.values) v = reader.get_f64();
  }
  check_load(reader.get_u64() == tor_utilization_predictors_.size(),
                  "corrupt ToR predictor section");
  for (HoltScalar& s : tor_utilization_predictors_) get_holt_scalar(reader, s);
  for (HoltScalar& s : tor_queue_predictors_) get_holt_scalar(reader, s);
  reader.leave_section();

  reader.expect_section("SHIM", kShimVersion);
  check_load(reader.get_u64() == shims_.size(), "corrupt shim section");
  for (ShimController& shim : shims_) shim.load_state(reader);
  reader.leave_section();

  reader.expect_section("SHRD", kShardVersion);
  shard_stats_.sharded_rounds = reader.get_u64();
  shard_stats_.reroute_claims = reader.get_u64();
  shard_stats_.reroute_commits = reader.get_u64();
  shard_stats_.reroute_conflicts = reader.get_u64();
  shard_stats_.vm_claims = reader.get_u64();
  shard_stats_.vm_commits = reader.get_u64();
  shard_stats_.vm_conflicts = reader.get_u64();
  shard_stats_.demands_by_rack = reader.get_u64v();
  check_load(shard_stats_.demands_by_rack.size() == topo_->rack_count(),
             "corrupt shard section");
  reader.leave_section();

  reader.expect_section("OBSR", kObsVersion);
  const bool archived_hub = reader.get_bool();
  check_load(archived_hub == (hub_ != nullptr), "corrupt observability section");
  if (hub_ != nullptr) {
    obs::MetricRegistry& registry = hub_->registry();
    const std::uint64_t counters = reader.counted(16);
    for (std::uint64_t i = 0; i < counters; ++i) {
      const std::string name = reader.get_str();
      obs::Counter& c = registry.counter(name);
      c.reset();
      c.add(reader.get_u64());
    }
    const std::uint64_t gauges = reader.counted(16);
    for (std::uint64_t i = 0; i < gauges; ++i) {
      const std::string name = reader.get_str();
      registry.gauge(name).set(reader.get_f64());
    }
    const std::uint64_t histograms = reader.counted(16);
    for (std::uint64_t i = 0; i < histograms; ++i) {
      const std::string name = reader.get_str();
      std::vector<double> bounds = reader.get_f64v();
      std::vector<std::uint64_t> counts = reader.get_u64v();
      const std::uint64_t total = reader.get_u64();
      const double sum = reader.get_f64();
      obs::Histogram& h = registry.histogram(name, std::move(bounds));
      check_load(h.restore(std::move(counts), total, sum),
                      "checkpoint histogram '" + name + "' does not match this build's buckets");
    }

    obs::EventTrace& trace = hub_->trace();
    check_load(reader.get_u64() == trace.ring_count(), "corrupt trace section");
    for (std::size_t r = 0; r < trace.ring_count(); ++r) {
      const std::uint64_t slot_count = reader.counted(33);
      check_load(slot_count <= trace.capacity_per_shim(),
                      "checkpoint trace ring exceeds this build's capacity");
      std::vector<obs::TraceRecord> slots;
      slots.reserve(slot_count);
      for (std::uint64_t i = 0; i < slot_count; ++i) {
        obs::TraceRecord record;
        record.seq = reader.get_u64();
        record.round = reader.get_u32();
        record.shim = reader.get_u32();
        const std::uint8_t type = reader.get_u8();
        check_load(type < obs::kEventTypeCount, "corrupt trace record type");
        record.type = static_cast<obs::EventType>(type);
        record.a = reader.get_u32();
        record.b = reader.get_u32();
        record.value = reader.get_f64();
        slots.push_back(record);
      }
      const std::uint64_t head = reader.get_u64();
      const std::uint64_t emitted = reader.get_u64();
      const std::uint64_t dropped = reader.get_u64();
      trace.restore_ring(r, std::move(slots), static_cast<std::size_t>(head), emitted, dropped);
    }
    trace.set_next_seq(reader.get_u64());
    trace.set_round(reader.get_u32());

    const bool archived_auditor = reader.get_bool();
    check_load(archived_auditor == (hub_->auditor() != nullptr),
                    "corrupt observability section");
    if (hub_->auditor() != nullptr) hub_->auditor()->load_state(reader);
  }
  reader.leave_section();

  // Delta-published k-median counters: re-baseline against the fresh
  // planner/manager so the next publish adds only post-resume activity.
  // (The fresh planner's construction rebuild makes kmedian.planner_rebuilds
  // the one registry counter that may run +1 ahead after a resume.)
  if (kmedian_manager_ != nullptr) {
    published_kmedian_stats_ = kmedian_manager_->stats();
    published_planner_rebuilds_ = kmedian_planner_view_->rebuilds();
  }
  // Same re-baseline for the decision-kernel counters (the cost model's
  // counters are process-local, never serialized).
  published_cost_stats_ = cost_model_.stats();
}

}  // namespace sheriff::core
