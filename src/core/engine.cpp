#include "core/engine.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace sheriff::core {

DistributedEngine::DistributedEngine(const topo::Topology& topo,
                                     const wl::DeploymentOptions& deployment_options,
                                     EngineConfig config)
    : topo_(&topo),
      config_(config),
      deployment_(topo, deployment_options),
      router_(topo),
      rerouter_(router_),
      queues_(topo),
      cost_model_(topo, deployment_, config.sheriff.cost) {
  shims_.reserve(topo.rack_count());
  for (topo::RackId r = 0; r < topo.rack_count(); ++r) {
    shims_.emplace_back(r, topo, config.sheriff);
  }
  predictors_.reserve(deployment_.vm_count());
  for (std::size_t i = 0; i < deployment_.vm_count(); ++i) {
    predictors_.push_back(make_predictor());
  }
  predicted_.resize(deployment_.vm_count());
  tor_utilization_predictors_.resize(topo.rack_count());
  tor_queue_predictors_.resize(topo.rack_count());
  build_flows();
}

std::unique_ptr<ProfilePredictor> DistributedEngine::make_predictor() const {
  switch (config_.predictor) {
    case PredictorKind::kHolt: return std::make_unique<HoltProfilePredictor>();
    case PredictorKind::kEnsemble: return std::make_unique<EnsembleProfilePredictor>();
    case PredictorKind::kNaive: return std::make_unique<NaiveProfilePredictor>();
  }
  SHERIFF_REQUIRE(false, "unknown predictor kind");
  return nullptr;
}

void DistributedEngine::build_flows() {
  // One flow per dependency edge (a < b to avoid duplicates): dependent
  // VMs communicate, and their traffic feature drives the demand.
  const auto& deps = deployment_.dependencies();
  for (wl::VmId a = 0; a < deployment_.vm_count(); ++a) {
    for (wl::VmId b : deps.neighbors(a)) {
      if (a >= b) continue;
      net::Flow flow;
      flow.id = static_cast<net::FlowId>(flows_.size());
      flow.src_host = deployment_.vm(a).host;
      flow.dst_host = deployment_.vm(b).host;
      flow.delay_sensitive =
          deployment_.vm(a).delay_sensitive || deployment_.vm(b).delay_sensitive;
      flows_.push_back(std::move(flow));
      flow_owner_.push_back(a);
      flow_peer_.push_back(b);
    }
  }
  router_.route_all(flows_);
}

void DistributedEngine::update_flow_demands() {
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const double trf = deployment_.vm(flow_owner_[f]).profile[wl::Feature::kTraffic];
    flows_[f].demand_gbps = config_.flow_demand_scale_gbps * trf;
  }
}

void DistributedEngine::observe_and_predict() {
  auto& pool = common::default_pool();
  const auto work = [&](std::size_t i) {
    predictors_[i]->observe(deployment_.vm(static_cast<wl::VmId>(i)).profile);
    predicted_[i] = predictors_[i]->ready()
                        ? predictors_[i]->predict(config_.sheriff.prediction_horizon)
                        : deployment_.vm(static_cast<wl::VmId>(i)).profile;
  };
  if (config_.parallel_collect && deployment_.vm_count() > 256) {
    common::parallel_for(pool, deployment_.vm_count(), work);
  } else {
    for (std::size_t i = 0; i < deployment_.vm_count(); ++i) work(i);
  }
}

std::vector<wl::VmId> DistributedEngine::alerted_vms() const {
  const AlertScheme scheme(config_.sheriff.vm_alert_threshold);
  std::vector<wl::VmId> out;
  for (std::size_t i = 0; i < predicted_.size(); ++i) {
    if (scheme.fires(predicted_[i])) out.push_back(static_cast<wl::VmId>(i));
  }
  return out;
}

RoundMetrics DistributedEngine::run_round() {
  RoundMetrics metrics;
  metrics.round = round_++;

  // 1. Workloads evolve; flows track the new traffic levels and any
  //    migrated endpoints.
  deployment_.advance();
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    net::Flow& flow = flows_[f];
    const topo::NodeId src = deployment_.vm(flow_owner_[f]).host;
    const topo::NodeId dst = deployment_.vm(flow_peer_[f]).host;
    if (flow.src_host != src || flow.dst_host != dst) {
      flow.src_host = src;
      flow.dst_host = dst;
      flow.path.clear();
    }
  }
  update_flow_demands();
  for (net::Flow& flow : flows_) {
    if (!flow.routed()) router_.route(flow);
  }

  // 2. Network state: fair share + queue/QCN update, then the end-host
  //    reaction point adjusts rate limits for the next period.
  auto shares = net::max_min_fair_share(*topo_, flows_);
  queues_.update(shares, flows_);
  if (config_.qcn_rate_control) {
    rate_controller_.update(flows_, queues_);
    metrics.rate_limited_flows = rate_controller_.tracked_flows();
  }
  const auto congested = queues_.congested_switches();
  metrics.congested_switches = congested.size();
  for (double u : shares.link_utilization) {
    metrics.max_link_utilization = std::max(metrics.max_link_utilization, u);
  }
  const auto qos = net::compute_qos_stats(flows_);
  metrics.flow_satisfaction = qos.mean_satisfaction;
  metrics.flow_fairness = qos.jain_fairness;

  // 3. Prediction + alert collection (parallel across racks).
  observe_and_predict();
  metrics.workload_stddev_before = deployment_.workload_stddev();
  metrics.workload_mean = deployment_.workload_mean();

  // Pre-filter congestion feedback per rack: scan flows once, not per shim.
  std::vector<std::vector<topo::NodeId>> rack_hot(topo_->rack_count());
  if (!congested.empty()) {
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (!flows_[f].routed()) continue;
      const topo::RackId owner_rack = topo_->node(flows_[f].src_host).rack;
      for (topo::NodeId sw : congested) {
        if (!flows_[f].transits(sw)) continue;
        auto& list = rack_hot[owner_rack];
        if (std::find(list.begin(), list.end(), sw) == list.end()) list.push_back(sw);
      }
    }
  }

  // Per-rack ToR signal prediction (Sec. IV-A): feed this round's uplink
  // utilization and queue length into the scalar predictors, then hand the
  // shims their T-ahead extrapolations.
  const double fleet_mean = deployment_.workload_mean();
  std::vector<ShimController::Observation> observations(shims_.size());
  for (topo::RackId r = 0; r < topo_->rack_count(); ++r) {
    const topo::NodeId tor = topo_->rack(r).tor;
    double utilization = 0.0;
    for (topo::LinkId l : topo_->links_of(tor)) {
      const topo::NodeId other = topo_->peer(l, tor);
      if (!topo::is_switch(topo_->node(other).kind)) continue;
      utilization = std::max(utilization, shares.link_utilization[l]);
    }
    tor_utilization_predictors_[r].observe(utilization);
    tor_queue_predictors_[r].observe(queues_.queue_length(tor));

    auto& obs = observations[r];
    obs.shares = &shares;
    obs.hot_switches = rack_hot[r];
    obs.fleet_mean_load_percent = fleet_mean;
    obs.tor_queue_equilibrium = queues_.config().equilibrium_queue;
    if (tor_utilization_predictors_[r].ready()) {
      obs.predicted_tor_utilization = std::max(
          0.0, tor_utilization_predictors_[r].predict(config_.sheriff.prediction_horizon));
      obs.predicted_tor_queue = std::max(
          0.0, tor_queue_predictors_[r].predict(config_.sheriff.prediction_horizon));
    }
  }

  std::vector<ShimCollectResult> collected(shims_.size());
  {
    const auto work = [&](std::size_t s) {
      collected[s] = shims_[s].collect(deployment_, predicted_, observations[s]);
    };
    if (config_.parallel_collect && shims_.size() > 8) {
      common::parallel_for(common::default_pool(), shims_.size(), work);
    } else {
      for (std::size_t s = 0; s < shims_.size(); ++s) work(s);
    }
  }

  // 4. Management actions.
  cost_model_.set_bandwidth_state(&shares);
  if (config_.mode == ManagerMode::kSheriff) {
    const auto account_plan = [&metrics](const MigrationPlan& plan) {
      metrics.migrations += plan.moves.size();
      metrics.migration_requests += plan.requests;
      metrics.migration_rejects += plan.rejects;
      metrics.migration_cost += plan.total_cost;
      metrics.search_space += plan.search_space;
      metrics.migration_seconds += plan.total_duration_seconds;
      metrics.migration_downtime_seconds += plan.total_downtime_seconds;
    };
    if (config_.protocol == MigrationProtocol::kMessagePassing) {
      // Alert dispatch + FLOWREROUTE per shim (serial: reroutes touch the
      // shared flow table), then one distributed propose/decide/apply run.
      std::vector<MigrationDemand> demands;
      for (std::size_t s = 0; s < shims_.size(); ++s) {
        auto selection = shims_[s].select(collected[s], deployment_, predicted_, rerouter_,
                                          flows_, flow_owner_);
        metrics.host_alerts += selection.host_alerts;
        metrics.tor_alerts += selection.tor_alerts;
        metrics.switch_alerts += selection.switch_alerts;
        metrics.reroutes += selection.reroutes.rerouted;
        if (!selection.migration_set.empty()) {
          demands.push_back({shims_[s].rack(), std::move(selection.migration_set),
                             shims_[s].migration_targets(deployment_)});
        }
      }
      DistributedMigrationProtocol protocol(
          deployment_, cost_model_, config_.sheriff,
          config_.parallel_collect ? &common::default_pool() : nullptr);
      const auto outcome = protocol.run(std::move(demands));
      account_plan(outcome.plan);
      metrics.protocol_conflicts += outcome.conflicts;
      metrics.protocol_iterations = outcome.iterations;
    } else {
      mig::AdmissionBroker broker(deployment_);
      for (std::size_t s = 0; s < shims_.size(); ++s) {
        const auto result = shims_[s].act(collected[s], deployment_, predicted_, cost_model_,
                                          broker, rerouter_, flows_, flow_owner_);
        metrics.host_alerts += result.host_alerts;
        metrics.tor_alerts += result.tor_alerts;
        metrics.switch_alerts += result.switch_alerts;
        metrics.reroutes += result.reroutes.rerouted;
        account_plan(result.plan);
      }
    }
  } else {
    // Centralized: the same per-rack alert collection feeds one global
    // manager; host alerts of every rack are gathered through PRIORITY's
    // single-VM rule applied per host, ToR/switch alerts per rack.
    std::vector<wl::VmId> global_set;
    for (std::size_t s = 0; s < shims_.size(); ++s) {
      for (const Alert& alert : collected[s].alerts) {
        metrics.host_alerts += alert.source == AlertSource::kHost ? 1 : 0;
        metrics.tor_alerts += alert.source == AlertSource::kLocalTor ? 1 : 0;
        metrics.switch_alerts += alert.source == AlertSource::kOuterSwitch ? 1 : 0;
      }
      // The global manager migrates every VM whose own ALERT fired.
      for (std::size_t i = 0; i < collected[s].rack_vms.size(); ++i) {
        if (collected[s].vm_alert_values[i] > 0.0 &&
            !deployment_.vm(collected[s].rack_vms[i]).delay_sensitive) {
          global_set.push_back(collected[s].rack_vms[i]);
        }
      }
    }
    CentralizedManager manager(deployment_, cost_model_, config_.sheriff);
    const auto plan = manager.migrate(std::move(global_set));
    metrics.migrations += plan.moves.size();
    metrics.migration_requests += plan.requests;
    metrics.migration_rejects += plan.rejects;
    metrics.migration_cost += plan.total_cost;
    metrics.search_space += plan.search_space;
    metrics.migration_seconds += plan.total_duration_seconds;
    metrics.migration_downtime_seconds += plan.total_downtime_seconds;
  }
  cost_model_.set_bandwidth_state(nullptr);

  metrics.workload_stddev_after = deployment_.workload_stddev();
  return metrics;
}

std::vector<RoundMetrics> DistributedEngine::run(std::size_t rounds) {
  std::vector<RoundMetrics> out;
  out.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) out.push_back(run_round());
  return out;
}

}  // namespace sheriff::core
