#include "core/vm_migration.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "graph/matching.hpp"
#include "migration/live_migration.hpp"

namespace sheriff::core {

void MigrationPlan::merge(const MigrationPlan& other) {
  moves.insert(moves.end(), other.moves.begin(), other.moves.end());
  total_cost += other.total_cost;
  search_space += other.search_space;
  requests += other.requests;
  rejects += other.rejects;
  total_duration_seconds += other.total_duration_seconds;
  total_downtime_seconds += other.total_downtime_seconds;
  unplaced.insert(unplaced.end(), other.unplaced.begin(), other.unplaced.end());
}

VmMigrationScheduler::VmMigrationScheduler(wl::Deployment& deployment,
                                           mig::MigrationCostModel& cost_model,
                                           mig::AdmissionBroker& broker, std::size_t max_rounds)
    : deployment_(&deployment), cost_model_(&cost_model), broker_(&broker),
      max_rounds_(max_rounds) {
  SHERIFF_REQUIRE(max_rounds >= 1, "need at least one matching round");
}

MigrationPlan VmMigrationScheduler::migrate(std::vector<wl::VmId> candidates,
                                            const std::vector<topo::NodeId>& target_hosts) {
  MigrationPlan plan;
  // Dedup while preserving order.
  {
    std::vector<wl::VmId> unique;
    for (wl::VmId id : candidates) {
      if (std::find(unique.begin(), unique.end(), id) == unique.end()) unique.push_back(id);
    }
    candidates = std::move(unique);
  }
  if (candidates.empty() || target_hosts.empty()) {
    plan.unplaced = std::move(candidates);
    return plan;
  }

  std::vector<wl::VmId> remaining = std::move(candidates);
  for (std::size_t round = 0; round < max_rounds_ && !remaining.empty(); ++round) {
    const auto proposals =
        propose_matching(*deployment_, *cost_model_, remaining, target_hosts,
                         &plan.search_space);
    if (proposals.empty()) break;

    bool progress = false;
    std::vector<wl::VmId> matched;
    for (const auto& proposal : proposals) {
      matched.push_back(proposal.vm);
      const topo::NodeId from = deployment_->vm(proposal.vm).host;
      // Six-stage live-migration timeline for this move, sized from the VM
      // and the bandwidth its transfer path can actually get (must be
      // computed before the ACK relocates the VM).
      mig::LiveMigrationParams timing;
      const auto& vm = deployment_->vm(proposal.vm);
      timing.memory_gb = 0.25 * static_cast<double>(vm.capacity);
      timing.dirty_rate_gbps = 0.1 + 0.4 * vm.profile[wl::Feature::kCpu];
      timing.bandwidth_gbps =
          std::max(0.05, cost_model_->path_bottleneck_bandwidth(proposal.vm, proposal.dest));
      ++plan.requests;
      const auto outcome = broker_->request(
          proposal.vm, proposal.dest, deployment_->topology().node(proposal.dest).rack);
      if (outcome == mig::RequestOutcome::kAck) {
        const auto timeline = mig::simulate_live_migration(timing);
        plan.moves.push_back({proposal.vm, from, proposal.dest, proposal.cost,
                              timeline.total_seconds(), timeline.t3_downtime_seconds});
        plan.total_cost += proposal.cost;
        plan.total_duration_seconds += timeline.total_seconds();
        plan.total_downtime_seconds += timeline.t3_downtime_seconds;
        progress = true;
        // Remove from remaining.
        remaining.erase(std::find(remaining.begin(), remaining.end(), proposal.vm));
      } else {
        ++plan.rejects;
      }
    }
    if (!progress) break;
  }

  plan.unplaced = std::move(remaining);
  return plan;
}

std::vector<ProposedMove> propose_matching(const wl::Deployment& deployment,
                                           const mig::MigrationCostModel& cost_model,
                                           const std::vector<wl::VmId>& candidates,
                                           const std::vector<topo::NodeId>& targets,
                                           std::size_t* search_space) {
  std::vector<ProposedMove> out;
  if (candidates.empty()) return out;
  // Only targets with any room participate.
  std::vector<topo::NodeId> open;
  for (topo::NodeId h : targets) {
    if (deployment.host_free_capacity(h) > 0) open.push_back(h);
  }
  if (open.empty()) return out;

  // Matching handles at most |open| VMs per pass (rows <= cols); the rest
  // waits for the next pass, like the paper's while-loop.
  const std::size_t batch = std::min(candidates.size(), open.size());
  const bool prune = cost_model.pruning_enabled();

  if (prune && batch == 1) {
    // Bound-guarded argmin scan. A 1-row assignment reduces to a strict-<
    // first-index argmin over the columns (both the Hungarian and the
    // brute-force branch of solve_assignment scan ascending with strict <,
    // and finalize() strips any kForbidden-level winner to kUnassigned —
    // the kForbidden incumbent below reproduces that). A candidate whose
    // admissible lower bound already reaches the incumbent can therefore
    // be skipped without ever changing the selection: bound <= cost
    // implies cost >= best, which the strict-< scan rejects anyway.
    const wl::VmId vm = candidates[0];
    double best = graph::AssignmentProblem::kForbidden;
    std::size_t best_col = graph::AssignmentResult::kUnassigned;
    for (std::size_t c = 0; c < open.size(); ++c) {
      if (search_space != nullptr) ++*search_space;
      if (!deployment.can_place(vm, open[c])) continue;
      double base = 0.0;
      if (cost_model.provably_infeasible(vm, open[c]) ||
          cost_model.candidate_lower_bound(vm, open[c], &base) >= best) {
        cost_model.note_pruned();
        continue;
      }
      // The bound already paid the dependency walk; reusing its base makes
      // the survivor's evaluation transmission-only (bitwise total_cost).
      const double cost = cost_model.total_cost_with_base(vm, open[c], base);
      if (cost < best) {
        best = cost;
        best_col = c;
      }
    }
    if (best_col != graph::AssignmentResult::kUnassigned) out.push_back({vm, open[best_col], best});
    return out;
  }

  graph::AssignmentProblem problem(batch, open.size());
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < open.size(); ++c) {
      if (search_space != nullptr) ++*search_space;
      if (!deployment.can_place(candidates[r], open[c])) continue;
      // Dominance pruning is only selection-safe on the 1-row scan above
      // (a multi-row Hungarian may pick any equal-cost optimum), but an
      // entry that is *provably infinite* would never be set either way —
      // skipping its evaluation leaves the matrix bit-identical.
      if (prune && cost_model.provably_infeasible(candidates[r], open[c])) {
        cost_model.note_pruned();
        continue;
      }
      const double cost = cost_model.total_cost(candidates[r], open[c]);
      if (std::isfinite(cost)) problem.set_cost(r, c, cost);
    }
  }
  const auto matching = graph::solve_assignment(problem);
  for (std::size_t r = 0; r < batch; ++r) {
    const std::size_t col = matching.assignment[r];
    if (col == graph::AssignmentResult::kUnassigned) continue;
    out.push_back({candidates[r], open[col], problem.cost(r, col)});
  }
  return out;
}

}  // namespace sheriff::core
