#include "core/manage_shards.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace sheriff::core {

ManageShardPlan::ManageShardPlan(std::size_t rack_count, std::size_t shard_count) {
  if (rack_count == 0) return;
  const std::size_t shards = std::clamp<std::size_t>(shard_count, 1, rack_count);
  racks_.resize(rack_count);
  shard_of_.resize(rack_count);
  offsets_.resize(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) {
    // floor(s·R/S): contiguous blocks whose sizes differ by at most one.
    offsets_[s] = s * rack_count / shards;
  }
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t i = offsets_[s]; i < offsets_[s + 1]; ++i) {
      racks_[i] = static_cast<topo::RackId>(i);
      shard_of_[i] = s;
    }
  }
}

std::span<const topo::RackId> ManageShardPlan::racks_of(std::size_t shard) const {
  SHERIFF_REQUIRE(shard < shard_count(), "shard out of range");
  return std::span<const topo::RackId>(racks_).subspan(offsets_[shard],
                                                       offsets_[shard + 1] - offsets_[shard]);
}

std::size_t ManageShardPlan::shard_of(topo::RackId rack) const {
  SHERIFF_REQUIRE(rack < shard_of_.size(), "rack out of range");
  return shard_of_[rack];
}

}  // namespace sheriff::core
