#pragma once
// Per-VM workload prediction (Sec. IV). Two implementations share one
// interface:
//
//  * HoltProfilePredictor — double exponential smoothing (level + trend)
//    per profile feature. O(1) per observation, which is what the engine
//    uses when it drives thousands of VMs.
//  * EnsembleProfilePredictor — the paper's full machinery: a dynamic
//    ARIMA + NARNET model selector per feature, refitted periodically on
//    the VM's history window. Used by the examples, the prediction
//    experiments, and small-scale engine runs.
//
// Both consume one observation per tick and answer T-steps-ahead profile
// predictions.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "timeseries/model_selection.hpp"
#include "workload/profile.hpp"

namespace sheriff::core {

/// Predicts the full workload profile h steps ahead.
class ProfilePredictor {
 public:
  virtual ~ProfilePredictor() = default;
  /// Feeds the current measured profile.
  virtual void observe(const wl::WorkloadProfile& profile) = 0;
  /// T-steps-ahead prediction (components clamped to [0,1]).
  [[nodiscard]] virtual wl::WorkloadProfile predict(std::size_t horizon) const = 0;
  /// True once enough history has accumulated to predict.
  [[nodiscard]] virtual bool ready() const = 0;
  /// Checkpoint hooks: the observation-driven state (histories, smoothing
  /// state, fitted models). load_state assumes a same-options target.
  virtual void save_state(snapshot::Writer& writer) const = 0;
  virtual void load_state(snapshot::Reader& reader) = 0;
};

/// Scalar Holt smoothing (level + trend) for single signals like a ToR's
/// uplink utilization or queue length (Sec. IV-A: shims predict the future
/// queue length of their ToR from its history).
class HoltScalar {
 public:
  explicit HoltScalar(double level_gain = 0.5, double trend_gain = 0.2) noexcept
      : level_gain_(level_gain), trend_gain_(trend_gain) {}

  void observe(double x) noexcept {
    if (observations_ == 0) {
      level_ = x;
    } else {
      const double prev = level_;
      level_ = level_gain_ * x + (1.0 - level_gain_) * (level_ + trend_);
      trend_ = trend_gain_ * (level_ - prev) + (1.0 - trend_gain_) * trend_;
    }
    ++observations_;
  }

  [[nodiscard]] bool ready() const noexcept { return observations_ >= 2; }
  /// Extrapolated value `horizon` steps ahead (last value before ready()).
  [[nodiscard]] double predict(std::size_t horizon) const noexcept {
    return ready() ? level_ + static_cast<double>(horizon) * trend_ : level_;
  }

  /// Checkpointable smoothing state (gains stay with the constructor).
  struct State {
    double level = 0.0;
    double trend = 0.0;
    std::uint64_t observations = 0;
  };
  [[nodiscard]] State state() const noexcept { return {level_, trend_, observations_}; }
  void restore(const State& s) noexcept {
    level_ = s.level;
    trend_ = s.trend;
    observations_ = static_cast<std::size_t>(s.observations);
  }

 private:
  double level_gain_;
  double trend_gain_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t observations_ = 0;
};

/// No real prediction: reports the last observed profile. This is the
/// "contingency" baseline — management reacts only to what already
/// happened — used by the predictor ablation bench.
class NaiveProfilePredictor final : public ProfilePredictor {
 public:
  void observe(const wl::WorkloadProfile& profile) override {
    last_ = profile;
    seen_ = true;
  }
  [[nodiscard]] wl::WorkloadProfile predict(std::size_t /*horizon*/) const override {
    return last_;
  }
  [[nodiscard]] bool ready() const override { return seen_; }
  void save_state(snapshot::Writer& writer) const override;
  void load_state(snapshot::Reader& reader) override;

 private:
  wl::WorkloadProfile last_;
  bool seen_ = false;
};

/// Holt's linear (double exponential) smoothing per feature.
class HoltProfilePredictor final : public ProfilePredictor {
 public:
  /// `level_gain`/`trend_gain` are the classic alpha/beta smoothing gains.
  explicit HoltProfilePredictor(double level_gain = 0.5, double trend_gain = 0.2);

  void observe(const wl::WorkloadProfile& profile) override;
  [[nodiscard]] wl::WorkloadProfile predict(std::size_t horizon) const override;
  [[nodiscard]] bool ready() const override { return observations_ >= 2; }
  void save_state(snapshot::Writer& writer) const override;
  void load_state(snapshot::Reader& reader) override;

 private:
  double level_gain_;
  double trend_gain_;
  std::array<double, wl::kFeatureCount> level_{};
  std::array<double, wl::kFeatureCount> trend_{};
  std::size_t observations_ = 0;
};

/// The full dynamic ARIMA+NARNET ensemble of Sec. IV-B, one selector per
/// feature, refitted every `refit_interval` observations on a sliding
/// history window.
class EnsembleProfilePredictor final : public ProfilePredictor {
 public:
  struct Options {
    std::size_t history = 128;        ///< window kept per feature
    std::size_t min_fit = 48;         ///< observations before the first fit
    std::size_t refit_interval = 32;  ///< observations between refits
    std::size_t selector_window = 16; ///< T_p of Eq. (14)
    std::uint64_t seed = 11;          ///< NARNET initialization
  };

  EnsembleProfilePredictor();
  explicit EnsembleProfilePredictor(Options options);

  void observe(const wl::WorkloadProfile& profile) override;
  [[nodiscard]] wl::WorkloadProfile predict(std::size_t horizon) const override;
  [[nodiscard]] bool ready() const override { return fitted_; }

  /// Which model the selector currently favors for a feature (diagnostics).
  [[nodiscard]] std::string current_model(wl::Feature feature) const;

  void save_state(snapshot::Writer& writer) const override;
  void load_state(snapshot::Reader& reader) override;

 private:
  void refit();
  [[nodiscard]] std::unique_ptr<ts::DynamicModelSelector> make_selector() const;

  Options options_;
  std::array<std::vector<double>, wl::kFeatureCount> history_;
  std::array<std::unique_ptr<ts::DynamicModelSelector>, wl::kFeatureCount> selectors_;
  std::size_t since_refit_ = 0;
  bool fitted_ = false;
};

}  // namespace sheriff::core
