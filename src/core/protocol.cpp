#include "core/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "migration/live_migration.hpp"

namespace sheriff::core {

namespace {

struct Request {
  topo::RackId proposer = topo::kInvalidRack;
  wl::VmId vm = wl::kInvalidVm;
  topo::NodeId dest = topo::kInvalidNode;
  double cost = 0.0;
};

struct Decision {
  Request request;
  bool ack = false;
};

}  // namespace

namespace {

/// Bounded backoff after a lost message: 1, 2, then 3 iterations of
/// silence, however many consecutive losses a VM suffers.
constexpr std::size_t kBackoffCap = 3;

}  // namespace

DistributedMigrationProtocol::DistributedMigrationProtocol(
    wl::Deployment& deployment, mig::MigrationCostModel& cost_model, SheriffConfig config,
    common::ThreadPool* pool, fault::LossyChannel* channel, std::size_t loss_retry_budget,
    obs::EventTrace* trace)
    : deployment_(&deployment),
      cost_model_(&cost_model),
      config_(config),
      pool_(pool),
      channel_(channel != nullptr && !channel->lossless() ? channel : nullptr),
      loss_retry_budget_(loss_retry_budget),
      trace_(trace) {}

ProtocolResult DistributedMigrationProtocol::run(std::vector<MigrationDemand> demands) {
  ProtocolResult result;
  const topo::Topology& topo = deployment_->topology();

  // Drop empty demands and dedup VMs across all of them (first demand in
  // shim-id order wins): a VM can be selected twice by one shim — the
  // host-alert single-VM rule and the ToR budget pass may pick the same
  // tenant — and a duplicate would otherwise be proposed, ACKed, and moved
  // twice in one round (auditor check 8 exclusivity).
  {
    std::vector<bool> seen(deployment_->vm_count(), false);
    for (auto& d : demands) {
      std::erase_if(d.vms, [&](wl::VmId id) {
        const bool dup = seen[id];
        seen[id] = true;
        return dup;
      });
    }
  }
  std::erase_if(demands, [](const MigrationDemand& d) { return d.vms.empty(); });

  std::vector<std::size_t> search_space_by_demand(demands.size(), 0);

  // Per-VM loss state (only touched from serial phases).
  std::vector<std::uint8_t> backoff(deployment_->vm_count(), 0);
  std::vector<std::uint8_t> loss_streak(deployment_->vm_count(), 0);
  std::vector<bool> retry_pending(deployment_->vm_count(), false);
  const auto register_loss = [&](wl::VmId vm) {
    ++result.drops;
    loss_streak[vm] = static_cast<std::uint8_t>(
        std::min<std::size_t>(loss_streak[vm] + 1, kBackoffCap));
    backoff[vm] = loss_streak[vm];
    retry_pending[vm] = true;
  };

  const std::size_t iteration_cap =
      config_.max_matching_rounds + (channel_ != nullptr ? loss_retry_budget_ : 0);

  for (std::size_t iteration = 0; iteration < iteration_cap; ++iteration) {
    bool any_pending = false;
    for (const auto& d : demands) any_pending |= !d.vms.empty();
    if (!any_pending) break;
    ++result.iterations;

    // VMs backing off after a lost message sit this iteration out.
    bool any_withheld = false;
    std::vector<std::vector<wl::VmId>> active(demands.size());
    for (std::size_t i = 0; i < demands.size(); ++i) {
      active[i].reserve(demands[i].vms.size());
      for (wl::VmId vm : demands[i].vms) {
        if (backoff[vm] > 0) {
          --backoff[vm];
          any_withheld = true;
        } else {
          active[i].push_back(vm);
        }
      }
    }

    // --- PROPOSE (parallel; read-only against shared state) -------------
    std::vector<std::vector<ProposedMove>> proposals(demands.size());
    const auto propose = [&](std::size_t i) {
      if (active[i].empty()) return;
      proposals[i] = propose_matching(*deployment_, *cost_model_, active[i],
                                      demands[i].region_targets,
                                      &search_space_by_demand[i]);
    };
    if (pool_ != nullptr && demands.size() > 1) {
      common::parallel_for(*pool_, demands.size(), propose);
    } else {
      for (std::size_t i = 0; i < demands.size(); ++i) propose(i);
    }

    // --- DELIVER: group requests by destination rack (serial: the lossy
    // channel's draw order must not depend on thread scheduling) ----------
    std::size_t losses_this_iteration = 0;
    std::vector<std::vector<Request>> mailbox(topo.rack_count());
    for (std::size_t i = 0; i < demands.size(); ++i) {
      for (const auto& p : proposals[i]) {
        if (channel_ != nullptr && !channel_->deliver()) {
          register_loss(p.vm);  // REQUEST lost: never reaches the delegate
          ++losses_this_iteration;
          if (trace_ != nullptr) {
            trace_->emit(demands[i].shim, obs::EventType::kProtocolMsgDropped, p.vm);
          }
          continue;
        }
        if (retry_pending[p.vm]) {
          ++result.retries;
          retry_pending[p.vm] = false;
          if (trace_ != nullptr) {
            trace_->emit(demands[i].shim, obs::EventType::kProtocolMsgRetried, p.vm);
          }
        }
        if (trace_ != nullptr) {
          trace_->emit(demands[i].shim, obs::EventType::kProtocolMsgSent, p.vm, p.dest);
          trace_->emit(demands[i].shim, obs::EventType::kMigrationPlanned, p.vm, p.dest,
                       p.cost);
        }
        mailbox[topo.node(p.dest).rack].push_back(
            {demands[i].shim, p.vm, p.dest, p.cost});
      }
    }

    // --- DECIDE (parallel per destination delegate, FCFS) ----------------
    std::vector<std::vector<Decision>> decisions(topo.rack_count());
    const auto decide = [&](std::size_t rack) {
      auto& inbox = mailbox[rack];
      if (inbox.empty()) return;
      // FCFS: deterministic arrival order (by proposer shim, then VM).
      std::sort(inbox.begin(), inbox.end(), [](const Request& a, const Request& b) {
        if (a.proposer != b.proposer) return a.proposer < b.proposer;
        return a.vm < b.vm;
      });
      // Local reservation ledger against the rack's current free capacity.
      std::vector<std::pair<topo::NodeId, int>> reserved_free;
      for (topo::NodeId h : topo.rack(static_cast<topo::RackId>(rack)).hosts) {
        reserved_free.emplace_back(h, deployment_->host_free_capacity(h));
      }
      const auto free_of = [&](topo::NodeId h) -> int& {
        for (auto& [host, free] : reserved_free) {
          if (host == h) return free;
        }
        SHERIFF_REQUIRE(false, "request addressed to a host outside the rack");
        return reserved_free.front().second;  // unreachable
      };
      for (const Request& request : inbox) {
        Decision decision{request, false};
        int& free = free_of(request.dest);
        const auto& vm = deployment_->vm(request.vm);
        if (free >= vm.capacity && deployment_->can_place(request.vm, request.dest)) {
          free -= vm.capacity;
          decision.ack = true;
        }
        decisions[rack].push_back(decision);
      }
    };
    std::vector<std::size_t> busy_racks;
    for (std::size_t r = 0; r < topo.rack_count(); ++r) {
      if (!mailbox[r].empty()) busy_racks.push_back(r);
    }
    if (pool_ != nullptr && busy_racks.size() > 1) {
      common::parallel_for(*pool_, busy_racks.size(),
                           [&](std::size_t i) { decide(busy_racks[i]); });
    } else {
      for (std::size_t r : busy_racks) decide(r);
    }

    // --- APPLY (serial, deterministic order) -----------------------------
    bool progress = false;
    std::vector<bool> placed(deployment_->vm_count(), false);
    for (std::size_t rack = 0; rack < topo.rack_count(); ++rack) {
      for (const Decision& decision : decisions[rack]) {
        ++result.plan.requests;
        if (!decision.ack) {
          ++result.plan.rejects;
          continue;
        }
        const Request& rq = decision.request;
        // The ACK itself can be lost: the proposer times out and the move
        // is not committed. The delegate's reservation only existed in
        // this iteration's ledger, so nothing leaks — the VM retries.
        if (channel_ != nullptr && !channel_->deliver()) {
          register_loss(rq.vm);
          ++losses_this_iteration;
          if (trace_ != nullptr) {
            trace_->emit(static_cast<std::uint32_t>(rack),
                         obs::EventType::kProtocolMsgDropped, rq.vm);
          }
          continue;
        }
        if (trace_ != nullptr) {
          // The ACK that reached the proposer (delegate rack -> proposer).
          trace_->emit(static_cast<std::uint32_t>(rack), obs::EventType::kProtocolMsgSent,
                       rq.vm, rq.dest);
        }
        // A same-round race (e.g. a dependency partner ACKed onto the same
        // host by another delegate) can invalidate the reservation: the
        // loser is a conflict and retries next iteration.
        if (!deployment_->can_place(rq.vm, rq.dest)) {
          ++result.conflicts;
          continue;
        }
        mig::LiveMigrationParams timing;
        const auto& vm = deployment_->vm(rq.vm);
        timing.memory_gb = 0.25 * static_cast<double>(vm.capacity);
        timing.dirty_rate_gbps = 0.1 + 0.4 * vm.profile[wl::Feature::kCpu];
        timing.bandwidth_gbps =
            std::max(0.05, cost_model_->path_bottleneck_bandwidth(rq.vm, rq.dest));
        const topo::NodeId from = vm.host;
        deployment_->move_vm(rq.vm, rq.dest);
        const auto timeline = mig::simulate_live_migration(timing);
        result.plan.moves.push_back({rq.vm, from, rq.dest, rq.cost,
                                     timeline.total_seconds(),
                                     timeline.t3_downtime_seconds});
        result.plan.total_cost += rq.cost;
        result.plan.total_duration_seconds += timeline.total_seconds();
        result.plan.total_downtime_seconds += timeline.t3_downtime_seconds;
        placed[rq.vm] = true;
        progress = true;
      }
    }

    // Remove placed VMs from their demands.
    for (auto& d : demands) {
      std::erase_if(d.vms, [&](wl::VmId id) { return placed[id]; });
    }
    // A lossy or backing-off iteration is a stall, not a dead end: keep
    // going while the retry budget lasts.
    if (!progress && losses_this_iteration == 0 && !any_withheld) break;
  }

  for (std::size_t i = 0; i < demands.size(); ++i) {
    result.plan.search_space += search_space_by_demand[i];
    result.plan.unplaced.insert(result.plan.unplaced.end(), demands[i].vms.begin(),
                                demands[i].vms.end());
  }
  return result;
}

}  // namespace sheriff::core
