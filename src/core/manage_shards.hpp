#pragma once
// ManageShardPlan: a deterministic partition of the fabric's racks into
// contiguous shards, driving the two-phase (propose/commit) manage sweep
// of DistributedEngine (DESIGN.md §11).
//
// Sheriff's premise is that regional shims act independently; the shard
// plan makes that independence executable: each shard's shims run their
// alert dispatch, reroute planning, and migration planning as one
// parallel *propose* task against an immutable view of the round state,
// and every side effect is committed afterwards in one serial *apply*
// pass ordered by shim id. Because propose is pure and apply is totally
// ordered, the results are byte-identical for ANY shard count — the shard
// count is a throughput knob exactly like the thread-pool size, never a
// semantics knob.
//
// The partition is contiguous (shard s covers racks [floor(s·R/S),
// floor((s+1)·R/S))): neighbor racks — the likeliest members of one
// dominating region — tend to land in the same shard, and the mapping is
// a pure function of (rack_count, shard_count), so it never needs to be
// serialized into checkpoints.

#include <cstddef>
#include <span>
#include <vector>

#include "topology/entities.hpp"

namespace sheriff::core {

class ManageShardPlan {
 public:
  ManageShardPlan() = default;

  /// Partitions racks 0..rack_count-1 into `shard_count` contiguous
  /// shards. shard_count is clamped to [1, rack_count] (an empty fabric
  /// yields an empty plan).
  ManageShardPlan(std::size_t rack_count, std::size_t shard_count);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t rack_count() const noexcept { return racks_.size(); }

  /// The racks of one shard, ascending.
  [[nodiscard]] std::span<const topo::RackId> racks_of(std::size_t shard) const;

  /// The shard owning `rack`.
  [[nodiscard]] std::size_t shard_of(topo::RackId rack) const;

 private:
  std::vector<topo::RackId> racks_;    ///< 0..R-1 (contiguous, ascending)
  std::vector<std::size_t> offsets_;   ///< shard s = racks_[offsets_[s], offsets_[s+1])
  std::vector<std::size_t> shard_of_;  ///< by rack id
};

}  // namespace sheriff::core
