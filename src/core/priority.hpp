#pragma once
// PRIORITY function (Alg. 2): given the candidate VM set F gathered for an
// alert, select which VMs to actually move.
//
//   * mode kSingle (ω = 1, host alerts): the single VM with the highest
//     ALERT value — rebalance the end host with one decisive move.
//   * mode kAlpha / kBeta (switch / ToR alerts): first eliminate
//     delay-sensitive VMs, then run the min-value knapsack over the budget
//     C = ω · capacity, picking the set that offloads the most capacity at
//     the least total value.

#include <cstdint>
#include <vector>

#include "workload/deployment.hpp"

namespace sheriff::core {

enum class PriorityMode : std::uint8_t {
  kSingle,  ///< ω = 1: one max-ALERT VM
  kAlpha,   ///< ω = α: budget α · switch capacity
  kBeta,    ///< ω = β: budget β · ToR capacity
};

struct PrioritySelection {
  std::vector<wl::VmId> selected;
  int offloaded_capacity = 0;   ///< total capacity units of the selection
  double sacrificed_value = 0.0;
  std::size_t eliminated_delay_sensitive = 0;
};

/// Runs Alg. 2. `alert_values` maps each candidate in `candidates` (same
/// order) to its ALERT magnitude; only kSingle consults it.
/// `capacity_budget` is the already-scaled C = ω · capacity in VM capacity
/// units; ignored by kSingle.
PrioritySelection priority_select(const wl::Deployment& deployment,
                                  const std::vector<wl::VmId>& candidates,
                                  const std::vector<double>& alert_values, PriorityMode mode,
                                  int capacity_budget);

}  // namespace sheriff::core
