#pragma once
// DistributedEngine: the round-based simulation driver tying everything
// together. Every round (one management period T):
//
//   1. VM workloads evolve (trace-driven) and flows update their demands.
//   2. The fair-share allocator produces link loads; switch queues update
//      and emit QCN congestion feedback.
//   3. Every VM's predictor observes the new sample; shims *collect*
//      alerts from the T-ahead predictions — in parallel, one task per
//      rack, since collection is read-only.
//   4. Shims *act* (Alg. 1): FLOWREROUTE + VMMIGRATION through the FCFS
//      admission broker; actions are serialized across shims, which is
//      exactly the message-passing semantics of Alg. 3/4.
//
// The same engine can run in centralized mode, where one manager with the
// global view processes the union of all alerts against all hosts — the
// baseline of Fig. 11–14.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/centralized_manager.hpp"
#include "core/config.hpp"
#include "core/kmedian_planner.hpp"
#include "core/manage_shards.hpp"
#include "core/predictor.hpp"
#include "core/protocol.hpp"
#include "core/shim_controller.hpp"
#include "core/vm_migration.hpp"
#include "fault/fault_injector.hpp"
#include "fault/lossy_channel.hpp"
#include "migration/cost_model.hpp"
#include "net/fair_share.hpp"
#include "net/queueing.hpp"
#include "net/flow_stats.hpp"
#include "net/rate_control.hpp"
#include "net/reroute.hpp"
#include "net/routing.hpp"
#include "obs/hub.hpp"
#include "topology/topology.hpp"
#include "workload/deployment.hpp"

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::core {

enum class ManagerMode : std::uint8_t {
  kSheriff,      ///< regional shims (the paper's scheme)
  kCentralized,  ///< one global manager (the baseline)
  kKMedian,      ///< Sec. V-A centralized k-median reduction (Alg. 5 planner)
};

enum class MigrationProtocol : std::uint8_t {
  kMessagePassing,  ///< propose/decide/apply rounds with per-rack delegates
                    ///< (the paper's distributed REQUEST/ACK; default)
  kSerializedFcfs,  ///< shims act one after another through one broker
};

enum class PredictorKind : std::uint8_t {
  kHolt,      ///< cheap double-exponential smoothing (default at scale)
  kEnsemble,  ///< full ARIMA+NARNET dynamic selection (small scenarios)
  kNaive,     ///< no prediction (contingency baseline for ablations)
};

struct EngineConfig {
  SheriffConfig sheriff;
  ManagerMode mode = ManagerMode::kSheriff;
  MigrationProtocol protocol = MigrationProtocol::kMessagePassing;
  PredictorKind predictor = PredictorKind::kHolt;
  double flow_demand_scale_gbps = 0.4;  ///< demand per dependency edge at TRF=1
  bool parallel_collect = true;         ///< run shim collection on the thread pool
  bool qcn_rate_control = true;         ///< end-host reaction to QCN feedback (Sec. III-A.2)
  // --- per-round hot-path switches (all on by default; turning one off
  //     reproduces the naive recompute-everything behavior, the bench
  //     baseline). The caching switches never change results; the two
  //     cost-rooting switches pick equal-cost trees whose FP summation
  //     order / path tie-breaks may differ, so each mode is deterministic
  //     but the modes are not bit-identical to each other. ----------------
  bool incremental_fair_share = true;  ///< stateful FairShareSolver vs from-scratch waterfill
  /// Water-fill dirty sharing-graph components on the worker pool. Like
  /// the pool size, this never changes results — each component writes
  /// only its own slice of the allocation and every summation order is
  /// canonical — so it is excluded from the checkpoint fingerprint.
  bool parallel_fair_share = true;
  bool route_cache = true;             ///< Router shortest-path-tree + resolved-path caches
  bool retain_cost_trees = true;       ///< keep cost-model Dijkstra trees across rounds
  /// Dependency-span distances rooted at the partners instead of every
  /// candidate destination (one Dijkstra tree per partner, not per host).
  bool partner_rooted_costs = true;
  /// Cost-model trees shared across single-homed hosts (rooted at the ToR
  /// behind the host's one leaf edge): one tree per queried rack instead
  /// of one per queried host on fat-tree-like fabrics.
  bool shared_leaf_cost_trees = true;
  /// kKMedian mode: delta-evaluated fast local search + liveness-gated
  /// planner row reuse; off = reference solver + per-round planner rebuild.
  bool fast_kmedian = true;
  /// Per-round CostSurface: per-link bandwidth/utilization SoA snapshotted
  /// once from the fair-share result + rack-keyed path-link memos, so
  /// Eq. (1) evaluates as a flat array kernel. Bit-transparent (the flat
  /// kernel replays the legacy FP ops in order), so like the caches it is
  /// excluded from the checkpoint fingerprint.
  bool cost_surface = true;
  /// Bound-guarded candidate pruning in the matching sweeps: an exact,
  /// admissible lower bound skips dominated (VM, destination) pairs
  /// without ever changing the argmin (selections are bitwise identical
  /// with it on or off — only the cost.evaluated/cost.pruned counter split
  /// moves). Excluded from the checkpoint fingerprint.
  bool cost_pruning = true;
  /// Eagerly build the cost model's ToR-rooted distance rows at engine
  /// construction instead of lazily inside the first manage round. The
  /// rows depend only on the immutable pristine topology (like the
  /// k-median planner's matrix, which is already built eagerly), so this
  /// moves a one-time startup cost out of the decision path; the rows
  /// themselves are bit-identical either way. Only meaningful with
  /// retain_cost_trees. Excluded from the checkpoint fingerprint.
  bool prewarm_cost_rows = true;
  /// Workload trace advance swept across the worker pool. Each VM owns its
  /// counter-seeded RNG streams, so the sweep is bit-identical at any pool
  /// size — excluded from the checkpoint fingerprint like manage_shards.
  bool parallel_workload = true;
  /// Regional sharding of the manage phase (kSheriff mode, DESIGN.md §11):
  /// shims are grouped into deterministic contiguous rack shards, each
  /// shard's alert dispatch + reroute/migration planning runs as one
  /// parallel *propose* task against an immutable round snapshot, and all
  /// claims are committed in one serial *apply* pass ordered by shim id
  /// (duplicate reroute claims on one switch resolve to the lowest shim
  /// id; the rest count as RoundMetrics::shard_conflicts). Results are
  /// byte-identical for ANY shard count — tests pin 1/2/8. false = the
  /// legacy interleaved serial sweep (the bench_scale baseline).
  bool sharded_manage = true;
  /// Shard count for the sharded manage phase; 0 = auto (min(8, racks)).
  /// Clamped to [1, rack_count]. Like the pool size, this never changes
  /// results, so it is deliberately excluded from the checkpoint
  /// fingerprint.
  std::size_t manage_shards = 0;
  std::size_t kmedian_destination_racks = 4;  ///< k medians per plan (kKMedian mode)
  std::size_t kmedian_swap_p = 2;             ///< Alg. 5 swap size (kKMedian mode)
  std::size_t kmedian_max_evaluations = 0;    ///< k-median safety cap (0 = unlimited)
  /// Worker pool for the parallel sweeps (predictor observe, switch queue
  /// update, shim collect, protocol propose). nullptr = the process-wide
  /// default pool. Sweeps are bit-identical for any pool size — tests pin
  /// pools of size 1/2/8 to prove it.
  common::ThreadPool* pool = nullptr;
  /// Optional timed fault schedule (link/switch/host/shim failures, lossy
  /// protocol messaging). Must outlive the engine. An empty plan (or
  /// nullptr) reproduces the pristine-fabric run bit for bit.
  const fault::FaultPlan* fault_plan = nullptr;
  // --- observability (src/obs/): all off by default. With everything off
  //     the engine owns no ObservationHub and the per-round hot path takes
  //     a handful of null checks — bench_scale bounds the overhead at 3%.
  bool observe = false;  ///< own an ObservationHub (event trace + metric registry)
  bool audit = false;    ///< run the InvariantAuditor each round (implies observe)
  bool audit_fail_fast = false;       ///< first violation throws RequirementError
  bool deep_fair_share_audit = false; ///< auditor re-solves from scratch (tests only)
  std::size_t trace_capacity_per_shim = 4096;
};

struct RoundMetrics {
  std::size_t round = 0;
  double workload_stddev_before = 0.0;  ///< Fig. 9/10 metric, pre-management
  double workload_stddev_after = 0.0;   ///< ... post-management
  double workload_mean = 0.0;
  std::size_t host_alerts = 0;
  std::size_t tor_alerts = 0;
  std::size_t switch_alerts = 0;
  std::size_t migrations = 0;
  std::size_t migration_requests = 0;
  std::size_t migration_rejects = 0;
  std::size_t reroutes = 0;
  double migration_cost = 0.0;     ///< Fig. 11/13 metric
  std::size_t search_space = 0;    ///< Fig. 12/14 metric
  double max_link_utilization = 0.0;
  std::size_t congested_switches = 0;
  std::size_t rate_limited_flows = 0;      ///< flows under a QCN cut this round
  double flow_satisfaction = 1.0;          ///< mean allocated/demand over offered flows
  double flow_fairness = 1.0;              ///< Jain's index over allocated rates
  std::size_t protocol_conflicts = 0;      ///< same-round reservation races resolved
  std::size_t protocol_iterations = 0;     ///< propose/decide/apply rounds used
  /// Cross-shard claims resolved by the ordered commit of the sharded
  /// manage phase (duplicate reroute claims on one hot switch dropped in
  /// favor of the lowest shim id). Deterministic and shard-count
  /// invariant; 0 on the legacy sweep.
  std::size_t shard_conflicts = 0;
  double migration_seconds = 0.0;          ///< summed live-migration wall time
  double migration_downtime_seconds = 0.0; ///< summed stop&copy suspensions
  // --- failure model (all zero on a pristine fabric) -----------------------
  std::size_t failed_links = 0;        ///< links unable to carry traffic this round
  std::size_t failed_switches = 0;     ///< switches currently crashed
  std::size_t orphaned_vms = 0;        ///< VMs on dead/cut-off hosts before recovery
  std::size_t unroutable_flows = 0;    ///< flows with no live path this round
  std::size_t protocol_drops = 0;      ///< REQUEST/ACK messages lost this round
  std::size_t protocol_retries = 0;    ///< re-proposals after message loss
  std::size_t recovery_migrations = 0; ///< orphaned VMs re-placed this round
};

/// Wall time spent in each stage of run_round, summed over all rounds run
/// so far. Feeds bench_scale's per-phase breakdown; not meant to be cheap
/// enough to leave on in inner loops (it is — two clock reads per phase).
struct PhaseProfile {
  std::uint64_t fault_ns = 0;       ///< fault events + liveness propagation
  std::uint64_t workload_ns = 0;    ///< trace advance + demand updates + routing
  std::uint64_t fair_share_ns = 0;  ///< max–min allocation
  /// Incremental-solver sub-phases of fair_share_ns (zero on the naive
  /// from-scratch path): dirty detection + CSR/component upkeep vs the
  /// water-filling kernel proper.
  std::uint64_t fair_share_build_ns = 0;
  std::uint64_t fair_share_fill_ns = 0;
  std::uint64_t queue_ns = 0;       ///< switch queues + QCN rate control
  std::uint64_t predict_ns = 0;     ///< predictor observe + shim collect
  std::uint64_t manage_ns = 0;      ///< reroutes + migration protocol (total)
  /// kKMedian-mode sub-phases of manage_ns: planner row upkeep + the
  /// k-median solve, and the matching/scheduling of the chosen moves.
  std::uint64_t manage_kmedian_ns = 0;
  std::uint64_t manage_schedule_ns = 0;
  /// Sharded-manage sub-phases of manage_ns: wall time of each shard's
  /// parallel propose task (indexed by shard, summed over rounds) and of
  /// the serial ordered commit. Empty/zero on the legacy sweep.
  std::vector<std::uint64_t> manage_shard_propose_ns;
  std::uint64_t manage_commit_ns = 0;
  /// Migration decision kernel inside manage_ns: protocol matching runs,
  /// scheduler/manager migrate calls — the Eq. (1) evaluation load, as
  /// opposed to the kmedian solve and the sharded commit bookkeeping.
  /// (On the sharded-FCFS path the scheduler runs inside the commit pass,
  /// so there decision time is also part of manage_commit_ns.)
  std::uint64_t manage_decision_ns = 0;
  std::size_t rounds = 0;
};

/// Cumulative bookkeeping of the sharded manage phase. Every field is a
/// deterministic function of the run (and invariant to the shard count —
/// the ordered commit resolves claims identically however the propose
/// work was grouped), so the whole struct travels in checkpoints (section
/// SHRD) and must survive a resume byte-exactly.
struct ManageShardStats {
  std::uint64_t sharded_rounds = 0;     ///< rounds run through propose/commit
  std::uint64_t reroute_claims = 0;     ///< reroute claims proposed
  std::uint64_t reroute_commits = 0;    ///< claims that won the ordered commit
  std::uint64_t reroute_conflicts = 0;  ///< duplicate claims dropped
  std::uint64_t vm_claims = 0;          ///< VM migration claims proposed
  std::uint64_t vm_commits = 0;         ///< VM claims that won the ordered commit
  std::uint64_t vm_conflicts = 0;       ///< duplicate VM claims dropped
  std::vector<std::uint64_t> demands_by_rack;  ///< migration demands issued per managing rack
};

/// Shared read-only substrate for fleets of engines over one topology
/// (DESIGN.md §12). Everything here is *cold, immutable* input that is
/// expensive to derive and identical for every run: borrowing it never
/// changes a single output byte, it only skips redundant construction
/// work. All pointers are borrowed and must outlive every engine built
/// over the substrate.
struct EngineSubstrate {
  /// A maskless KMedianPlanner over the engine's topology whose ToR
  /// distance rows every borrowing engine reuses instead of running its
  /// own O(racks) Dijkstra sweep (kKMedian mode only; ignored otherwise).
  /// Borrowed only when the engine would never mutate the planner — i.e.
  /// fast_kmedian is on (no per-round rebuild()) and no fault plan is
  /// bound (no liveness-driven refresh()); engines outside that envelope
  /// silently build their own planner, so a substrate is always safe to
  /// pass. plan() is const and data-race free, so concurrent fleet runs
  /// may share one planner.
  const KMedianPlanner* kmedian_planner = nullptr;
};

class DistributedEngine {
 public:
  /// The topology must outlive the engine.
  DistributedEngine(const topo::Topology& topo, const wl::DeploymentOptions& deployment_options,
                    EngineConfig config);
  /// Substrate-borrowing constructor: identical behavior, minus the cost
  /// of rebuilding whatever the substrate already holds.
  DistributedEngine(const topo::Topology& topo, const wl::DeploymentOptions& deployment_options,
                    EngineConfig config, const EngineSubstrate& substrate);

  /// Runs one management round; returns its metrics.
  RoundMetrics run_round();
  /// Runs `rounds` rounds.
  std::vector<RoundMetrics> run(std::size_t rounds);

  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const wl::Deployment& deployment() const noexcept { return deployment_; }
  [[nodiscard]] std::span<const net::Flow> flows() const noexcept { return flows_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t rounds_run() const noexcept { return round_; }
  [[nodiscard]] const PhaseProfile& phase_profile() const noexcept { return profile_; }
  [[nodiscard]] const net::Router& router() const noexcept { return router_; }
  [[nodiscard]] const net::FairShareSolver& fair_share_solver() const noexcept {
    return solver_;
  }
  /// The manage-phase shard partition (resolved from EngineConfig::
  /// manage_shards at construction; a 1-shard plan when sharding is off).
  [[nodiscard]] const ManageShardPlan& shard_plan() const noexcept { return shard_plan_; }
  [[nodiscard]] const ManageShardStats& shard_stats() const noexcept { return shard_stats_; }

  /// Force-collects the alerted VM set of the *current* state (used by
  /// benches that want to hand the same alerts to both manager modes).
  [[nodiscard]] std::vector<wl::VmId> alerted_vms() const;

  /// The observation hub, or nullptr when observability is off
  /// (EngineConfig::observe/audit both false and SHERIFF_FORCE_AUDIT unset).
  [[nodiscard]] obs::ObservationHub* observation_hub() noexcept { return hub_.get(); }
  [[nodiscard]] const obs::ObservationHub* observation_hub() const noexcept {
    return hub_.get();
  }

  /// The fault injector driving this run, or nullptr on a pristine fabric.
  [[nodiscard]] const fault::FaultInjector* fault_injector() const noexcept {
    return injector_.get();
  }
  /// The rack whose shim currently manages `rack` (a live neighbor when the
  /// own shim is down), or topo::kInvalidRack when nobody can take over.
  [[nodiscard]] topo::RackId managing_rack(topo::RackId rack) const;

  /// Checkpoint hooks (see DESIGN.md §10). save_state serializes every
  /// piece of mutable cross-round state; load_state expects a freshly
  /// constructed engine over the *same* (topology, deployment options,
  /// config) — constructor-derived structure (VM population, dependency
  /// graph, flow table shape, shims) is validated via a fingerprint, not
  /// serialized. Caches (router trees/paths, cost-model Dijkstra trees and
  /// rack-prefix link memos, the per-round cost surface) resume cold: they
  /// are rebuilt on demand and never change results.
  /// The fault injector is restored by replaying its plan up to the saved
  /// round (trace-detached), which reproduces the LivenessMask bit for bit
  /// including its version counter. After load_state, run_round() continues
  /// the run bit-identically to one that never stopped.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  void build_flows();
  void update_flow_demands();
  void observe_and_predict();
  /// The pool the parallel sweeps run on (config override or the default).
  [[nodiscard]] common::ThreadPool& worker_pool() const;
  [[nodiscard]] std::unique_ptr<ProfilePredictor> make_predictor() const;
  void apply_fault_events(RoundMetrics& metrics);
  void recompute_takeovers();
  /// Round-boundary observability: publishes subsystem metrics into the
  /// hub's registry and runs the management-side audit. hub_ must be set.
  void publish_round(const RoundMetrics& metrics, std::span<const obs::AuditedMove> moves);
  /// True when the host is up and has at least one usable link.
  [[nodiscard]] bool host_attached(topo::NodeId host) const;
  /// VMs stranded on dead or cut-off hosts, grouped for recovery.
  [[nodiscard]] std::vector<wl::VmId> collect_orphans() const;
  /// Propose phase of the sharded manage sweep (DESIGN.md §11): every
  /// shard's shims run Alg. 1 as a pure propose() against the manage-entry
  /// round state, in parallel across shards. Returned vector is indexed by
  /// rack id; racks with no live manager keep an empty proposal.
  [[nodiscard]] std::vector<ShimProposal> propose_shards(
      std::span<const ShimCollectResult> collected);
  /// Commit phase: one serial pass ordered by shim id. Reroute claims
  /// commit first-claimant-wins (cross-shard duplicates become
  /// RoundMetrics::shard_conflicts); each non-empty migration set is handed
  /// to `schedule` (a demand push under kMessagePassing, an FCFS scheduler
  /// run under kSerializedFcfs).
  void commit_proposals(
      std::span<ShimProposal> proposals, RoundMetrics& metrics,
      const std::function<void(topo::RackId, std::vector<wl::VmId>)>& schedule);

  const topo::Topology* topo_;
  EngineConfig config_;
  wl::Deployment deployment_;
  net::Router router_;
  net::FlowRerouter rerouter_;
  net::SwitchQueues queues_;
  net::FairShareSolver solver_;
  net::FairShareResult naive_shares_;  ///< scratch when incremental_fair_share is off
  net::QcnRateController rate_controller_;
  mig::MigrationCostModel cost_model_;
  std::vector<ShimController> shims_;
  std::vector<net::Flow> flows_;
  std::vector<wl::VmId> flow_owner_;  ///< source VM of each flow
  std::vector<wl::VmId> flow_peer_;   ///< destination VM of each flow
  std::vector<std::unique_ptr<ProfilePredictor>> predictors_;  ///< by VmId
  std::vector<wl::WorkloadProfile> predicted_;                 ///< by VmId
  std::vector<HoltScalar> tor_utilization_predictors_;         ///< by RackId
  std::vector<HoltScalar> tor_queue_predictors_;               ///< by RackId
  std::unique_ptr<fault::FaultInjector> injector_;  ///< null = pristine fabric
  std::unique_ptr<fault::LossyChannel> channel_;    ///< null = reliable messaging
  std::unique_ptr<KMedianPlanner> kmedian_planner_;          ///< kKMedian mode, owned (null when borrowed)
  /// The planner actually consulted (owned or substrate-borrowed); null
  /// outside kKMedian mode. Mutating calls (refresh/rebuild) only ever go
  /// to kmedian_planner_ — a borrowed planner is strictly read-only.
  const KMedianPlanner* kmedian_planner_view_ = nullptr;
  std::unique_ptr<KMedianMigrationManager> kmedian_manager_; ///< kKMedian mode only
  std::unique_ptr<obs::ObservationHub> hub_;        ///< null = observability off
  std::vector<topo::RackId> takeover_;              ///< managing rack per rack
  ManageShardPlan shard_plan_;
  ManageShardStats shard_stats_;
  std::size_t round_ = 0;
  PhaseProfile profile_;
  /// Last stats snapshot published to the metric registry (delta counters).
  KMedianMigrationManager::Stats published_kmedian_stats_;
  std::size_t published_planner_rebuilds_ = 0;
  mig::CostModelStats published_cost_stats_;
};

}  // namespace sheriff::core
