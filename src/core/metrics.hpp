#pragma once
// Round-metrics utilities: tabulation, CSV export, and aggregate summaries
// over a run — so benches, examples, and downstream users consume the
// engine's output uniformly.

#include <iosfwd>
#include <span>

#include "common/table.hpp"
#include "core/engine.hpp"

namespace sheriff::core {

/// All metrics of a run as an aligned table (one row per round).
common::Table metrics_table(std::span<const RoundMetrics> rounds);

/// CSV with a header row; loads directly into pandas / gnuplot.
void write_metrics_csv(std::ostream& os, std::span<const RoundMetrics> rounds);

/// Aggregates over a run.
struct RunSummary {
  std::size_t rounds = 0;
  std::size_t total_alerts = 0;
  std::size_t total_migrations = 0;
  std::size_t total_reroutes = 0;
  double total_migration_cost = 0.0;
  double total_migration_seconds = 0.0;
  double total_downtime_seconds = 0.0;
  std::size_t total_search_space = 0;
  double first_stddev = 0.0;   ///< workload stddev before round 0's management
  double last_stddev = 0.0;    ///< ... after the final round
  double mean_link_peak = 0.0; ///< average of per-round max link utilization
  // --- failure model ---
  std::size_t rounds_with_failures = 0;      ///< rounds with any dead link/switch
  std::size_t peak_orphaned_vms = 0;         ///< worst single-round orphan count
  std::size_t total_recovery_migrations = 0; ///< orphaned VMs re-placed over the run
  std::size_t total_protocol_drops = 0;      ///< REQUEST/ACK messages lost
  std::size_t total_protocol_retries = 0;    ///< re-proposals after message loss
};
RunSummary summarize(std::span<const RoundMetrics> rounds);

}  // namespace sheriff::core
