#pragma once
// Tunables of the Sheriff scheme, with defaults from the paper's
// evaluation (Sec. VI-B) where it gives them.

#include <cstddef>

#include "migration/cost_model.hpp"

namespace sheriff::core {

struct SheriffConfig {
  // --- pre-alert (Sec. IV) ------------------------------------------------
  double vm_alert_threshold = 0.9;     ///< THRESHOLD on predicted profile components
  double host_overload_percent = 90.0; ///< predicted host load (%) that raises a host alert
  // Relative hotspot detection: a host whose predicted load is both above
  // `hotspot_floor_percent` and more than `hotspot_factor` times the fleet
  // mean is also alerted. Absolute 90 % overloads are rare in a healthy
  // DCN; imbalance (the Fig. 9/10 condition) is what migration fixes.
  double hotspot_factor = 1.5;
  double hotspot_floor_percent = 25.0;
  /// Migration receivers: prefer hosts below this load; if none qualify in
  /// the region the shim falls back to any host with free capacity.
  double receiver_max_load_percent = 50.0;
  double tor_utilization_threshold = 0.85;  ///< predicted ToR uplink utilization alert level
  std::size_t prediction_horizon = 1;  ///< T-seconds-ahead steps predicted
  std::size_t history_window = 64;     ///< samples of history each predictor keeps

  // --- selection (Alg. 2) --------------------------------------------------
  double alpha = 0.3;  ///< switch-alert capacity fraction (C = α · capacity)
  double beta = 0.2;   ///< ToR-alert capacity fraction (C = β · capacity)
  int switch_capacity_units = 100;  ///< s_j.capacity in VM-capacity units
  int tor_capacity_units = 150;     ///< ToR_i.capacity in VM-capacity units

  // --- migration (Alg. 3, Sec. V) ------------------------------------------
  mig::CostParams cost;          ///< Eq. (1) parameters (C_r=100, C_d=δ=η=1)
  std::size_t local_search_p = 2;  ///< swap size p of Alg. 5 (ratio 3 + 2/p)
  /// Bound on a shim's dominating region: at most this many one-hop
  /// neighbor racks (nearest first by floor distance). Rich fabrics like
  /// BCube make *every* rack a one-hop neighbor; the paper's regions are
  /// small localities, which is what keeps the search space flat.
  std::size_t max_region_racks = 12;
  std::size_t max_matching_rounds = 8;  ///< Alg. 3 retry bound

  // --- rerouting -----------------------------------------------------------
  bool reroute_first = true;     ///< Sec. III-B: reroute before migrating
  double reroute_fraction = 0.5; ///< share of conflicting flows to move
};

}  // namespace sheriff::core
