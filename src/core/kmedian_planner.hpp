#pragma once
// Sec. V-A: the reduction of (centralized) VMMIGRATION to k-median.
//
//   1. Build the rack graph T (vertices = racks, edge costs = wired
//      connection costs between rack ToRs).
//   2. Collapse it to a complete metric T' by all-pairs shortest paths
//      (the paper uses Floyd–Warshall; we expose that and an equivalent
//      per-ToR Dijkstra sweep that is much cheaper on large fabrics).
//   3. Treat the alerting source ToRs as clients, all ToRs as facilities,
//      and solve k-median with the Alg. 5 local search (ratio 3 + 2/p).
//
// The ToR rows of T' are computed once and shared across plan() calls; a
// planner bound to a LivenessMask recomputes them only when the mask's
// version counter moved (refresh()), instead of re-running O(racks) full
// Dijkstras per round.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/kmedian.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::mig {
class MigrationCostModel;
}

namespace sheriff::core {

struct KMedianPlan {
  std::vector<topo::RackId> destinations;  ///< the chosen m destination ToRs
  double connection_cost = 0.0;            ///< Σ_clients dist(client, nearest dest)
  std::size_t evaluations = 0;             ///< local-search solutions examined
  bool hit_evaluation_cap = false;         ///< stopped on the evaluation budget
};

struct KMedianPlannerOptions {
  /// The paper's original pipeline (rack multigraph + Floyd–Warshall);
  /// O(|V|^3), test/small-scale only. The default per-ToR Dijkstra sweep
  /// produces identical distances.
  bool use_floyd_warshall = false;
  /// Shards the per-ToR Dijkstra rows across the pool (each shard owns its
  /// rows, so the matrix is identical for any pool size). nullptr = serial.
  common::ThreadPool* pool = nullptr;
  /// When set, distances are computed over the masked graph (unusable links
  /// skipped), racks with a dead ToR are excluded from the facility set,
  /// and refresh() rebuilds the rows when the mask's version moves. The
  /// mask must outlive the planner.
  const topo::LivenessMask* liveness = nullptr;
  /// One source of truth for pristine ToR distances: when set (and no
  /// liveness mask is bound), the planner fills its matrix from the cost
  /// model's cached distance rows — same unmasked distance graph, same
  /// Dijkstra, identical values — instead of re-running its own sweep.
  /// The model must outlive the planner.
  const mig::MigrationCostModel* shared_rows = nullptr;
};

class KMedianPlanner {
 public:
  /// Precomputes the rack-level distance matrix of T'. `use_floyd_warshall`
  /// selects the paper's original pipeline (builds the rack multigraph and
  /// runs FW); the default Dijkstra sweep produces identical distances.
  explicit KMedianPlanner(const topo::Topology& topo, bool use_floyd_warshall = false);
  KMedianPlanner(const topo::Topology& topo, KMedianPlannerOptions options);

  /// d(T')(i, j) between two racks.
  [[nodiscard]] const graph::DistanceMatrix& rack_distances() const noexcept {
    return distances_;
  }

  /// Racks eligible as destinations (all racks, minus dead-ToR racks when a
  /// liveness mask is bound).
  [[nodiscard]] const std::vector<topo::RackId>& facility_racks() const noexcept {
    return facilities_;
  }

  /// Recomputes the shared ToR rows iff the bound liveness mask changed
  /// since the last build. Returns true when a rebuild happened. Planners
  /// without a mask never rebuild (the topology is immutable).
  bool refresh();

  /// Unconditionally recomputes the ToR rows (the naive per-round behavior
  /// the engine's fast_kmedian=false path reproduces for benchmarking).
  void rebuild();

  /// Times the distance rows were (re)built, the initial build included.
  [[nodiscard]] std::size_t rebuilds() const noexcept { return rebuilds_; }

  /// How plan() searches.
  struct PlanOptions {
    std::size_t k = 1;                  ///< destination racks to open
    std::size_t p = 2;                  ///< Alg. 5 swap size
    /// Delta-evaluated solver (first-improvement: identical medians to the
    /// reference scan); false = the reference local_search_kmedian.
    bool fast = true;
    common::ThreadPool* pool = nullptr; ///< shards the fast gain sweeps
    std::size_t max_evaluations = 0;    ///< safety cap (0 = unlimited)
  };

  /// Chooses destination racks for the given alerting source racks.
  [[nodiscard]] KMedianPlan plan(const std::vector<topo::RackId>& source_racks,
                                 const PlanOptions& options) const;

  /// Reference-solver shorthand (kept for the ratio experiments/tests).
  [[nodiscard]] KMedianPlan plan(const std::vector<topo::RackId>& source_racks, std::size_t k,
                                 std::size_t p) const;

  /// Exhaustive optimum for ratio experiments (small instances only).
  [[nodiscard]] KMedianPlan plan_exact(const std::vector<topo::RackId>& source_racks,
                                       std::size_t k) const;

 private:
  [[nodiscard]] graph::KMedianInstance make_instance(
      const std::vector<topo::RackId>& source_racks, std::size_t k) const;

  const topo::Topology* topo_;
  KMedianPlannerOptions options_;
  graph::DistanceMatrix distances_;
  std::vector<topo::RackId> facilities_;
  std::uint64_t built_version_ = 0;
  std::size_t rebuilds_ = 0;
};

}  // namespace sheriff::core

#include "core/vm_migration.hpp"
#include "migration/cost_model.hpp"

namespace sheriff::core {

/// The full Sec. V-A centralized strategy: reduce VMMIGRATION to k-median
/// — pick `destination_racks` medians among all ToRs for the alerting
/// source ToRs with the Alg. 5 local search — then match the alerted VMs
/// onto the chosen racks' hosts by minimal weighted matching. Its search
/// space is the local-search evaluations plus the (much smaller) matching
/// over the chosen racks only, trading a bounded approximation factor for
/// a far smaller scan than the exhaustive global matching.
class KMedianMigrationManager {
 public:
  struct Options {
    std::size_t destination_racks = 4;  ///< k medians to open
    std::size_t local_search_p = 2;     ///< Alg. 5 swap size
    /// Delta-evaluated fast solver (same medians as the reference scan —
    /// first-improvement trajectory parity); false = reference solver.
    bool fast_local_search = true;
    std::size_t max_evaluations = 0;    ///< k-median safety cap (0 = unlimited)
    common::ThreadPool* pool = nullptr; ///< shards the fast gain sweeps
    /// When set, detached hosts (dead, or cut off behind a dead ToR) are
    /// excluded from the migration targets. Must outlive the manager.
    const topo::LivenessMask* liveness = nullptr;
  };

  /// Cumulative counters across migrate() calls, for the obs registry and
  /// the engine's manage_kmedian/manage_schedule sub-phase profile.
  struct Stats {
    std::size_t plans = 0;            ///< k-median plans solved
    std::size_t evaluations = 0;      ///< candidate evaluations across plans
    std::size_t cap_hits = 0;         ///< plans stopped by max_evaluations
    std::uint64_t kmedian_ns = 0;     ///< wall time in the k-median solve
    std::uint64_t schedule_ns = 0;    ///< wall time matching/scheduling the moves
  };

  /// The planner must be built over the same topology as the deployment.
  KMedianMigrationManager(wl::Deployment& deployment, mig::MigrationCostModel& cost_model,
                          const KMedianPlanner& planner);
  KMedianMigrationManager(wl::Deployment& deployment, mig::MigrationCostModel& cost_model,
                          const KMedianPlanner& planner, Options options);

  /// Migrates the alerted VMs into the k chosen destination racks. The
  /// returned plan's search_space includes the k-median evaluations.
  MigrationPlan migrate(std::vector<wl::VmId> alerted);

  /// The destination racks chosen by the most recent migrate() call.
  [[nodiscard]] const std::vector<topo::RackId>& last_destinations() const noexcept {
    return last_destinations_;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  wl::Deployment* deployment_;
  mig::MigrationCostModel* cost_model_;
  const KMedianPlanner* planner_;
  Options options_;
  std::vector<topo::RackId> last_destinations_;
  Stats stats_;
};

}  // namespace sheriff::core
