#pragma once
// Sec. V-A: the reduction of (centralized) VMMIGRATION to k-median.
//
//   1. Build the rack graph T (vertices = racks, edge costs = wired
//      connection costs between rack ToRs).
//   2. Collapse it to a complete metric T' by all-pairs shortest paths
//      (the paper uses Floyd–Warshall; we expose that and an equivalent
//      per-ToR Dijkstra sweep that is much cheaper on large fabrics).
//   3. Treat the alerting source ToRs as clients, all ToRs as facilities,
//      and solve k-median with the Alg. 5 local search (ratio 3 + 2/p).

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/kmedian.hpp"
#include "topology/topology.hpp"

namespace sheriff::core {

struct KMedianPlan {
  std::vector<topo::RackId> destinations;  ///< the chosen m destination ToRs
  double connection_cost = 0.0;            ///< Σ_clients dist(client, nearest dest)
  std::size_t evaluations = 0;             ///< local-search solutions examined
};

class KMedianPlanner {
 public:
  /// Precomputes the rack-level distance matrix of T'. `use_floyd_warshall`
  /// selects the paper's original pipeline (builds the rack multigraph and
  /// runs FW); the default Dijkstra sweep produces identical distances.
  explicit KMedianPlanner(const topo::Topology& topo, bool use_floyd_warshall = false);

  /// d(T')(i, j) between two racks.
  [[nodiscard]] const graph::DistanceMatrix& rack_distances() const noexcept {
    return distances_;
  }

  /// Chooses `k` destination racks for the given alerting source racks
  /// with local-search swap size `p`.
  [[nodiscard]] KMedianPlan plan(const std::vector<topo::RackId>& source_racks, std::size_t k,
                                 std::size_t p) const;

  /// Exhaustive optimum for ratio experiments (small instances only).
  [[nodiscard]] KMedianPlan plan_exact(const std::vector<topo::RackId>& source_racks,
                                       std::size_t k) const;

 private:
  [[nodiscard]] graph::KMedianInstance make_instance(
      const std::vector<topo::RackId>& source_racks, std::size_t k) const;

  const topo::Topology* topo_;
  graph::DistanceMatrix distances_;
};

}  // namespace sheriff::core

#include "core/vm_migration.hpp"
#include "migration/cost_model.hpp"

namespace sheriff::core {

/// The full Sec. V-A centralized strategy: reduce VMMIGRATION to k-median
/// — pick `destination_racks` medians among all ToRs for the alerting
/// source ToRs with the Alg. 5 local search — then match the alerted VMs
/// onto the chosen racks' hosts by minimal weighted matching. Its search
/// space is the local-search evaluations plus the (much smaller) matching
/// over the chosen racks only, trading a bounded approximation factor for
/// a far smaller scan than the exhaustive global matching.
class KMedianMigrationManager {
 public:
  struct Options {
    std::size_t destination_racks = 4;  ///< k medians to open
    std::size_t local_search_p = 2;     ///< Alg. 5 swap size
  };

  /// The planner must be built over the same topology as the deployment.
  KMedianMigrationManager(wl::Deployment& deployment, mig::MigrationCostModel& cost_model,
                          const KMedianPlanner& planner);
  KMedianMigrationManager(wl::Deployment& deployment, mig::MigrationCostModel& cost_model,
                          const KMedianPlanner& planner, Options options);

  /// Migrates the alerted VMs into the k chosen destination racks. The
  /// returned plan's search_space includes the k-median evaluations.
  MigrationPlan migrate(std::vector<wl::VmId> alerted);

  /// The destination racks chosen by the most recent migrate() call.
  [[nodiscard]] const std::vector<topo::RackId>& last_destinations() const noexcept {
    return last_destinations_;
  }

 private:
  wl::Deployment* deployment_;
  mig::MigrationCostModel* cost_model_;
  const KMedianPlanner* planner_;
  Options options_;
  std::vector<topo::RackId> last_destinations_;
};

}  // namespace sheriff::core
