#pragma once
// Alert scheme (Sec. IV-C): the seriousness of a VM's predicted condition,
//
//   ALERT = max(W)  if any component of the predicted profile W exceeds
//                   THRESHOLD,
//           0       otherwise,
//
// plus the three alert events of Sec. III-B that a shim reacts to: host
// overload, local ToR uplink congestion, and outer-switch congestion.

#include <cstdint>
#include <vector>

#include "topology/entities.hpp"
#include "workload/profile.hpp"
#include "workload/vm.hpp"

namespace sheriff::core {

enum class AlertSource : std::uint8_t {
  kHost,         ///< overloaded server in the shim's rack
  kLocalTor,     ///< the rack's own ToR uplink is congesting
  kOuterSwitch,  ///< congestion feedback from an aggregation/core switch
};

const char* to_string(AlertSource source) noexcept;

struct Alert {
  AlertSource source = AlertSource::kHost;
  topo::RackId rack = topo::kInvalidRack;  ///< shim the alert is addressed to
  topo::NodeId node = topo::kInvalidNode;  ///< host / ToR / outer switch
  double value = 0.0;                      ///< magnitude (load %, utilization, ...)
};

/// Computes per-VM alert magnitudes from predicted workload profiles.
class AlertScheme {
 public:
  explicit AlertScheme(double threshold = 0.9);

  /// ALERT^k_ij per the scheme above. `predicted` must already be the
  /// T-seconds-ahead profile.
  [[nodiscard]] double vm_alert(const wl::WorkloadProfile& predicted) const noexcept;

  /// True when the alert fires.
  [[nodiscard]] bool fires(const wl::WorkloadProfile& predicted) const noexcept {
    return vm_alert(predicted) > 0.0;
  }

  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  double threshold_;
};

}  // namespace sheriff::core
