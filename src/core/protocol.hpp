#pragma once
// The distributed REQUEST/ACK migration protocol (Alg. 3 + Alg. 4 as a
// *message-passing* round, the way the paper's shims actually interact):
//
//   1. PROPOSE — every shim with a migration set matches its VMs against
//      its own region (Hungarian on the Eq. (1) costs). Runs in parallel:
//      this phase only reads shared state.
//   2. DECIDE — proposals are delivered to the destination racks'
//      delegates; each delegate serves its mailbox FCFS against its local
//      reservation ledger (capacity + dependency conflicts) and answers
//      ACK or REJECT. Delegates are independent, so this runs in parallel
//      per destination rack.
//   3. APPLY — ACKed moves are committed. Two shims can win reservations
//      that turn out incompatible (a dependency partner ACKed onto the
//      same host in the same round); the commit re-checks and the loser
//      counts as a conflict and retries next iteration — exactly the
//      confliction handling Sec. V-B calls for.
//
// Iterates until every demand is placed or no progress is possible.
//
// Messaging may be unreliable: with a fault::LossyChannel attached, each
// REQUEST (propose→delegate) and ACK (delegate→proposer) is a Bernoulli
// delivery. A lost REQUEST never reaches the mailbox; a lost ACK leaves
// the proposer timing out, so the move is NOT committed (the delegate's
// reservation only lived in that iteration's ledger — no reservation can
// leak). Either loss puts the VM on a bounded backoff (1, 2, then capped
// at 3 iterations of silence) before it is re-proposed; re-proposals after
// a loss are counted as retries, and the iteration budget is extended by
// FaultOptions::max_protocol_retries so loss cannot starve convergence.

#include <vector>

#include "core/config.hpp"
#include "core/vm_migration.hpp"
#include "fault/lossy_channel.hpp"
#include "migration/cost_model.hpp"
#include "obs/trace.hpp"
#include "workload/deployment.hpp"

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::core {

/// One shim's migration demand for the round.
struct MigrationDemand {
  topo::RackId shim = topo::kInvalidRack;
  std::vector<wl::VmId> vms;                ///< PRIORITY-selected candidates
  std::vector<topo::NodeId> region_targets; ///< the shim's dominating region
};

struct ProtocolResult {
  MigrationPlan plan;
  std::size_t conflicts = 0;   ///< apply-time losses (re-queued)
  std::size_t iterations = 0;  ///< propose/decide/apply rounds executed
  std::size_t drops = 0;       ///< REQUEST/ACK messages lost in transit
  std::size_t retries = 0;     ///< re-proposals after a lost message
};

class DistributedMigrationProtocol {
 public:
  /// `pool` may be null for single-threaded execution (results identical).
  /// `channel` may be null (reliable messaging); when set it must outlive
  /// the protocol, and `loss_retry_budget` extra iterations are granted to
  /// wait out losses.
  /// `trace` may be null; when set, every REQUEST/ACK delivery, loss, and
  /// re-proposal becomes a trace event. Emission happens only in the
  /// serial DELIVER/APPLY phases — the parallel PROPOSE/DECIDE sweeps can
  /// have two demands owned by one shim (a takeover), so they must not
  /// write shim rings.
  DistributedMigrationProtocol(wl::Deployment& deployment,
                               mig::MigrationCostModel& cost_model, SheriffConfig config,
                               common::ThreadPool* pool = nullptr,
                               fault::LossyChannel* channel = nullptr,
                               std::size_t loss_retry_budget = 0,
                               obs::EventTrace* trace = nullptr);

  ProtocolResult run(std::vector<MigrationDemand> demands);

 private:
  wl::Deployment* deployment_;
  mig::MigrationCostModel* cost_model_;
  SheriffConfig config_;
  common::ThreadPool* pool_;
  fault::LossyChannel* channel_;
  std::size_t loss_retry_budget_;
  obs::EventTrace* trace_;
};

}  // namespace sheriff::core
