#pragma once
// The distributed REQUEST/ACK migration protocol (Alg. 3 + Alg. 4 as a
// *message-passing* round, the way the paper's shims actually interact):
//
//   1. PROPOSE — every shim with a migration set matches its VMs against
//      its own region (Hungarian on the Eq. (1) costs). Runs in parallel:
//      this phase only reads shared state.
//   2. DECIDE — proposals are delivered to the destination racks'
//      delegates; each delegate serves its mailbox FCFS against its local
//      reservation ledger (capacity + dependency conflicts) and answers
//      ACK or REJECT. Delegates are independent, so this runs in parallel
//      per destination rack.
//   3. APPLY — ACKed moves are committed. Two shims can win reservations
//      that turn out incompatible (a dependency partner ACKed onto the
//      same host in the same round); the commit re-checks and the loser
//      counts as a conflict and retries next iteration — exactly the
//      confliction handling Sec. V-B calls for.
//
// Iterates until every demand is placed or no progress is possible.

#include <vector>

#include "core/config.hpp"
#include "core/vm_migration.hpp"
#include "migration/cost_model.hpp"
#include "workload/deployment.hpp"

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::core {

/// One shim's migration demand for the round.
struct MigrationDemand {
  topo::RackId shim = topo::kInvalidRack;
  std::vector<wl::VmId> vms;                ///< PRIORITY-selected candidates
  std::vector<topo::NodeId> region_targets; ///< the shim's dominating region
};

struct ProtocolResult {
  MigrationPlan plan;
  std::size_t conflicts = 0;   ///< apply-time losses (re-queued)
  std::size_t iterations = 0;  ///< propose/decide/apply rounds executed
};

class DistributedMigrationProtocol {
 public:
  /// `pool` may be null for single-threaded execution (results identical).
  DistributedMigrationProtocol(wl::Deployment& deployment,
                               mig::MigrationCostModel& cost_model, SheriffConfig config,
                               common::ThreadPool* pool = nullptr);

  ProtocolResult run(std::vector<MigrationDemand> demands);

 private:
  wl::Deployment* deployment_;
  mig::MigrationCostModel* cost_model_;
  SheriffConfig config_;
  common::ThreadPool* pool_;
};

}  // namespace sheriff::core
