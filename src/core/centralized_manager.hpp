#pragma once
// Centralized baseline (the "global optimal centralized manager" of
// Fig. 11–14): one controller with global knowledge gathers every alerted
// VM in the DCN and solves a single assignment over *all* hosts with the
// Hungarian algorithm — the exact optimum of the one-round matching
// problem — at the price of a search space that scans the entire fabric.

#include <vector>

#include "core/config.hpp"
#include "core/vm_migration.hpp"
#include "migration/cost_model.hpp"
#include "migration/request.hpp"
#include "topology/liveness.hpp"
#include "workload/deployment.hpp"

namespace sheriff::core {

class CentralizedManager {
 public:
  CentralizedManager(wl::Deployment& deployment, mig::MigrationCostModel& cost_model,
                     SheriffConfig config = {});

  /// Attaches the fabric's liveness mask (nullptr = pristine fabric): the
  /// global view drops dead hosts from the candidate set. The mask must
  /// outlive the manager.
  void set_liveness(const topo::LivenessMask* liveness) { liveness_ = liveness; }

  /// Migrates the alerted VMs using the full (live) host set as candidates.
  MigrationPlan migrate(std::vector<wl::VmId> alerted);

 private:
  wl::Deployment* deployment_;
  mig::MigrationCostModel* cost_model_;
  SheriffConfig config_;
  std::vector<topo::NodeId> all_hosts_;
  const topo::LivenessMask* liveness_ = nullptr;
};

}  // namespace sheriff::core
