#pragma once
// VMMIGRATION (Alg. 3): pair the selected VMs with candidate destination
// hosts by minimal weighted matching on the Eq. (1) costs, then run the
// REQUEST/ACK handshake with each destination's delegate; rejected VMs are
// re-matched in the next round against the updated capacities.

#include <cstddef>
#include <vector>

#include "migration/cost_model.hpp"
#include "migration/request.hpp"
#include "topology/entities.hpp"
#include "workload/deployment.hpp"

namespace sheriff::core {

struct MigrationMove {
  wl::VmId vm = wl::kInvalidVm;
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;
  double cost = 0.0;
  double duration_seconds = 0.0;  ///< six-stage live-migration wall time
  double downtime_seconds = 0.0;  ///< stop&copy suspension
};

struct MigrationPlan {
  std::vector<MigrationMove> moves;
  double total_cost = 0.0;
  std::size_t search_space = 0;  ///< candidate (VM, host) pairs whose cost was evaluated
  std::size_t requests = 0;
  std::size_t rejects = 0;
  double total_duration_seconds = 0.0;  ///< sum of per-move live-migration times
  double total_downtime_seconds = 0.0;
  std::vector<wl::VmId> unplaced;  ///< VMs that found no feasible destination

  void merge(const MigrationPlan& other);
};

/// One (vm → destination) pairing produced by a matching pass.
struct ProposedMove {
  wl::VmId vm = wl::kInvalidVm;
  topo::NodeId dest = topo::kInvalidNode;
  double cost = 0.0;
};

/// One matching iteration of Alg. 3 *without* applying anything: pairs up
/// to |targets| candidates with feasible min-cost destinations via the
/// Hungarian algorithm. Examined pairs are added to *search_space. Safe to
/// call concurrently for disjoint candidate sets (the cost model's cache
/// is thread-safe and the deployment is only read).
std::vector<ProposedMove> propose_matching(const wl::Deployment& deployment,
                                           const mig::MigrationCostModel& cost_model,
                                           const std::vector<wl::VmId>& candidates,
                                           const std::vector<topo::NodeId>& targets,
                                           std::size_t* search_space);

class VmMigrationScheduler {
 public:
  /// All references must outlive the scheduler. `max_rounds` bounds the
  /// match-request-retry loop.
  VmMigrationScheduler(wl::Deployment& deployment, mig::MigrationCostModel& cost_model,
                       mig::AdmissionBroker& broker, std::size_t max_rounds = 8);

  /// Migrates as many of `candidates` as possible into `target_hosts`.
  /// Moves are applied to the deployment through the broker as they ACK.
  MigrationPlan migrate(std::vector<wl::VmId> candidates,
                        const std::vector<topo::NodeId>& target_hosts);

 private:
  wl::Deployment* deployment_;
  mig::MigrationCostModel* cost_model_;
  mig::AdmissionBroker* broker_;
  std::size_t max_rounds_;
};

}  // namespace sheriff::core
