#include "core/predictor.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::core {

HoltProfilePredictor::HoltProfilePredictor(double level_gain, double trend_gain)
    : level_gain_(level_gain), trend_gain_(trend_gain) {
  SHERIFF_REQUIRE(level_gain > 0.0 && level_gain <= 1.0, "level gain must be in (0,1]");
  SHERIFF_REQUIRE(trend_gain >= 0.0 && trend_gain <= 1.0, "trend gain must be in [0,1]");
}

void HoltProfilePredictor::observe(const wl::WorkloadProfile& profile) {
  if (observations_ == 0) {
    for (std::size_t f = 0; f < wl::kFeatureCount; ++f) level_[f] = profile.values[f];
  } else {
    for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
      const double prev_level = level_[f];
      level_[f] = level_gain_ * profile.values[f] + (1.0 - level_gain_) * (level_[f] + trend_[f]);
      trend_[f] = trend_gain_ * (level_[f] - prev_level) + (1.0 - trend_gain_) * trend_[f];
    }
  }
  ++observations_;
}

wl::WorkloadProfile HoltProfilePredictor::predict(std::size_t horizon) const {
  SHERIFF_REQUIRE(ready(), "predict() before enough observations");
  wl::WorkloadProfile out;
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    out.values[f] = common::clamp01(level_[f] + static_cast<double>(horizon) * trend_[f]);
  }
  return out;
}

EnsembleProfilePredictor::EnsembleProfilePredictor() : EnsembleProfilePredictor(Options{}) {}

EnsembleProfilePredictor::EnsembleProfilePredictor(Options options) : options_(options) {
  SHERIFF_REQUIRE(options.min_fit >= 40, "ensemble needs >= 40 observations to fit");
  SHERIFF_REQUIRE(options.history >= options.min_fit, "history window below min_fit");
  SHERIFF_REQUIRE(options.refit_interval >= 1, "refit interval must be positive");
}

std::unique_ptr<ts::DynamicModelSelector> EnsembleProfilePredictor::make_selector() const {
  // The paper's four-candidate example: two ARIMA orders and two NARNET
  // shapes, plus the naive floor as a degenerate safety net.
  auto selector = std::make_unique<ts::DynamicModelSelector>(options_.selector_window);
  selector->add_model(ts::make_arima_forecaster(1, 1, 1));
  selector->add_model(ts::make_arima_forecaster(2, 0, 1));
  selector->add_model(ts::make_narnet_forecaster(8, 10, options_.seed));
  selector->add_model(ts::make_narnet_forecaster(4, 20, options_.seed + 1));
  selector->add_model(ts::make_naive_forecaster());
  return selector;
}

void EnsembleProfilePredictor::observe(const wl::WorkloadProfile& profile) {
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    // Keep the Eq. (14) fitness rolling: score the pending one-step
    // prediction against the arriving truth before storing it.
    if (fitted_) {
      (void)selectors_[f]->predict_next(history_[f]);
      selectors_[f]->observe(profile.values[f]);
    }
    history_[f].push_back(profile.values[f]);
    if (history_[f].size() > options_.history) history_[f].erase(history_[f].begin());
  }
  ++since_refit_;
  const bool due_first = !fitted_ && history_[0].size() >= options_.min_fit;
  const bool due_refit = fitted_ && since_refit_ >= options_.refit_interval;
  if (due_first || due_refit) refit();
}

void EnsembleProfilePredictor::refit() {
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    auto selector = make_selector();
    selector->fit(history_[f]);
    selectors_[f] = std::move(selector);
  }
  since_refit_ = 0;
  fitted_ = true;
}

wl::WorkloadProfile EnsembleProfilePredictor::predict(std::size_t horizon) const {
  SHERIFF_REQUIRE(fitted_, "predict() before the first fit");
  SHERIFF_REQUIRE(horizon >= 1, "horizon must be at least 1");
  wl::WorkloadProfile out;
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    const auto path = selectors_[f]->forecast(history_[f], horizon);
    out.values[f] = common::clamp01(path.back());
  }
  return out;
}

std::string EnsembleProfilePredictor::current_model(wl::Feature feature) const {
  SHERIFF_REQUIRE(fitted_, "current_model() before the first fit");
  const auto f = static_cast<std::size_t>(feature);
  return selectors_[f]->model_name(selectors_[f]->best_model());
}

void NaiveProfilePredictor::save_state(snapshot::Writer& writer) const {
  for (double v : last_.values) writer.put_f64(v);
  writer.put_bool(seen_);
}

void NaiveProfilePredictor::load_state(snapshot::Reader& reader) {
  for (double& v : last_.values) v = reader.get_f64();
  seen_ = reader.get_bool();
}

void HoltProfilePredictor::save_state(snapshot::Writer& writer) const {
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    writer.put_f64(level_[f]);
    writer.put_f64(trend_[f]);
  }
  writer.put_u64(observations_);
}

void HoltProfilePredictor::load_state(snapshot::Reader& reader) {
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    level_[f] = reader.get_f64();
    trend_[f] = reader.get_f64();
  }
  observations_ = reader.get_u64();
}

void EnsembleProfilePredictor::save_state(snapshot::Writer& writer) const {
  writer.put_bool(fitted_);
  writer.put_u64(since_refit_);
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    writer.put_f64v(history_[f]);
    if (fitted_) selectors_[f]->save_state(writer);
  }
}

void EnsembleProfilePredictor::load_state(snapshot::Reader& reader) {
  fitted_ = reader.get_bool();
  since_refit_ = reader.get_u64();
  for (std::size_t f = 0; f < wl::kFeatureCount; ++f) {
    history_[f] = reader.get_f64v();
    if (fitted_) {
      // Selectors exist only after the first refit; rebuild the candidate
      // set (same shapes and seeds) and restore its fitted parameters.
      selectors_[f] = make_selector();
      selectors_[f]->load_state(reader);
    } else {
      selectors_[f].reset();
    }
  }
}

}  // namespace sheriff::core
