#pragma once
// Trace and metric exporters: JSON Lines for machine consumption (one
// TraceRecord per line, doubles round-trip exact), a CSV-able summary
// table (events per type per round), and a metric-registry dump. The JSONL
// reader is the inverse of the writer — it parses exactly what
// write_trace_jsonl emits, which is all the round-trip tests need.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sheriff::obs {

/// One record per line:
/// {"seq":0,"round":1,"shim":2,"type":"AlertRaised","a":3,"b":0,"value":0.5}
void write_trace_jsonl(std::span<const TraceRecord> records, std::ostream& os);

/// Parses lines produced by write_trace_jsonl. Throws
/// common::RequirementError on a malformed line or an unknown type name.
std::vector<TraceRecord> read_trace_jsonl(std::istream& is);

/// Per-round event-type counts: one row per round that has events, one
/// column per EventType, plus a totals row. print_csv() gives the CSV form.
common::Table summarize_trace(std::span<const TraceRecord> records);

/// Name-sorted `metric,value` dump of a registry snapshot.
common::Table metrics_table(const MetricRegistry& registry);

}  // namespace sheriff::obs
