#include "obs/export.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>

#include "common/require.hpp"

namespace sheriff::obs {
namespace {

/// Shortest decimal form that parses back to the same double (%.17g is
/// exact for IEEE 754 binary64).
std::string format_double(double v) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  return std::string(buf.data());
}

/// Extracts the value after `"key":` in `line`; the writer emits no
/// whitespace and no string payloads, so scanning to the next ',' or '}'
/// is sufficient.
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  SHERIFF_REQUIRE(at != std::string::npos, "trace JSONL line is missing field '" + key + "'");
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

EventType parse_event_type(const std::string& name) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    if (name == to_string(type)) return type;
  }
  SHERIFF_REQUIRE(false, "unknown trace event type '" + name + "'");
  return EventType::kAlertRaised;  // unreachable
}

}  // namespace

void write_trace_jsonl(std::span<const TraceRecord> records, std::ostream& os) {
  for (const TraceRecord& r : records) {
    os << "{\"seq\":" << r.seq << ",\"round\":" << r.round << ",\"shim\":" << r.shim
       << ",\"type\":\"" << to_string(r.type) << "\",\"a\":" << r.a << ",\"b\":" << r.b
       << ",\"value\":" << format_double(r.value) << "}\n";
  }
}

std::vector<TraceRecord> read_trace_jsonl(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceRecord r;
    r.seq = std::strtoull(field(line, "seq").c_str(), nullptr, 10);
    r.round = static_cast<std::uint32_t>(std::strtoul(field(line, "round").c_str(), nullptr, 10));
    r.shim = static_cast<std::uint32_t>(std::strtoul(field(line, "shim").c_str(), nullptr, 10));
    std::string type = field(line, "type");
    SHERIFF_REQUIRE(type.size() >= 2 && type.front() == '"' && type.back() == '"',
                    "trace JSONL type field is not a string");
    r.type = parse_event_type(type.substr(1, type.size() - 2));
    r.a = static_cast<std::uint32_t>(std::strtoul(field(line, "a").c_str(), nullptr, 10));
    r.b = static_cast<std::uint32_t>(std::strtoul(field(line, "b").c_str(), nullptr, 10));
    r.value = std::strtod(field(line, "value").c_str(), nullptr);
    out.push_back(r);
  }
  return out;
}

common::Table summarize_trace(std::span<const TraceRecord> records) {
  std::vector<std::string> headers{"round"};
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    headers.emplace_back(to_string(static_cast<EventType>(i)));
  }
  headers.emplace_back("total");
  common::Table table(std::move(headers));

  // round -> per-type counts (map keeps rounds sorted).
  std::map<std::uint32_t, std::array<std::size_t, kEventTypeCount>> by_round;
  for (const TraceRecord& r : records) {
    auto& row = by_round.try_emplace(r.round).first->second;
    ++row[static_cast<std::size_t>(r.type)];
  }

  std::array<std::size_t, kEventTypeCount> totals{};
  for (const auto& [round, counts] : by_round) {
    table.begin_row().add(static_cast<std::size_t>(round));
    std::size_t row_total = 0;
    for (std::size_t i = 0; i < kEventTypeCount; ++i) {
      table.add(counts[i]);
      row_total += counts[i];
      totals[i] += counts[i];
    }
    table.add(row_total);
  }
  table.begin_row().add("all");
  std::size_t grand_total = 0;
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    table.add(totals[i]);
    grand_total += totals[i];
  }
  table.add(grand_total);
  return table;
}

common::Table metrics_table(const MetricRegistry& registry) {
  common::Table table({"metric", "value"});
  for (const auto& [name, value] : registry.snapshot()) {
    table.begin_row().add(name).add(format_double(value));
  }
  return table;
}

}  // namespace sheriff::obs
