#pragma once
// Invariant auditor: validates the engine's conservation laws at round
// boundaries. When enabled, the engine hands it the round's full state
// (flows + fair-share result, deployment, solver bookkeeping, applied
// migration moves) and it checks the catalogue below; every violation is
// reported as a kInvariantViolation trace event, counted in the registry
// ("auditor.violations"), and retained as a human-readable message. With
// `fail_fast` (the CI-forced mode) the first violation throws
// common::RequirementError so any test running above it fails loudly.
//
// Invariant catalogue (check ids; see the matching check_* function in
// auditor.cpp):
//   1 flow-rate bounds      — 0 <= rate <= effective demand, and <= the
//                             capacity of every traversed link
//   2 link conservation     — per link: sum of crossing flows' rates <=
//                             capacity, and == the reported link load
//   3 placement consistency — every VM on exactly one live host slot,
//                             host used-capacity bookkeeping exact and
//                             within host capacity
//   4 migration costs       — every applied move has non-negative finite
//                             cost, duration >= downtime >= 0, from != to
//   5 live-migration model  — six-stage total time is non-negative and
//                             monotone in the dirty-page rate (one-time
//                             property probe of simulate_live_migration)
//   6 solver bookkeeping    — the incremental FairShareSolver's dirty-set
//                             accounting closes: one solve per round,
//                             dirty <= affected, affected + reused == flow
//                             count, rebuilds <= solves
//   7 deep fair-share equivalence (opt-in) — re-solve from scratch and
//                             compare rates at 1e-6
//   8 shard-commit exclusivity/headroom — the round's committed moves are
//                             a valid serial commit: no VM moves twice in
//                             one round (cross-shard claims must have been
//                             resolved), each moved VM ends up on its
//                             move's destination, and no destination host
//                             receives more incoming capacity than it can
//                             hold outright

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/fair_share.hpp"
#include "net/flow.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "topology/liveness.hpp"
#include "topology/topology.hpp"
#include "workload/deployment.hpp"

namespace sheriff::obs {

struct AuditOptions {
  /// Absolute slack on rate/capacity comparisons (on top of a 1e-9
  /// relative term) — progressive filling accumulates ~1e-12 noise.
  double rate_epsilon = 1e-6;
  /// Throw common::RequirementError on the first violation instead of
  /// just recording it (used when SHERIFF_FORCE_AUDIT=1 drives CI).
  bool fail_fast = false;
  /// Re-run the from-scratch max_min_fair_share each round and compare
  /// (expensive — tests only).
  bool deep_fair_share = false;
  /// Violation messages retained for inspection (the count is unbounded).
  std::size_t max_messages = 64;
};

/// A migration move in auditor terms (mirrors core::MigrationMove without
/// depending on sheriff_core, which sits above this library).
struct AuditedMove {
  std::uint32_t vm = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double cost = 0.0;
  double duration_seconds = 0.0;
  double downtime_seconds = 0.0;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditOptions options = {});

  /// Reporting sinks (both optional; must outlive the auditor).
  void attach(EventTrace* trace, MetricRegistry* registry);

  /// Everything the engine exposes at a round boundary.
  struct RoundInputs {
    std::uint32_t round = 0;
    const wl::Deployment* deployment = nullptr;      ///< required
    std::span<const net::Flow> flows;
    const net::FairShareResult* shares = nullptr;    ///< required
    const net::FairShareSolver* solver = nullptr;    ///< null = naive path
    const topo::LivenessMask* liveness = nullptr;    ///< null = pristine
    std::span<const AuditedMove> moves;              ///< this round's migrations
  };

  /// Network-state checks (1, 2, 6, 7). The engine calls this right after
  /// the fair-share solve, while flows' paths and rate limits are exactly
  /// the ones the allocation saw — reroutes and QCN updates later in the
  /// round legitimately de-synchronize them. Counts the round as audited.
  void audit_network(const RoundInputs& in);

  /// Placement/migration checks (3, 4, 5), run at the round boundary after
  /// management actions committed. `in.moves` carries the round's moves.
  void audit_management(const RoundInputs& in);

  /// Both halves back to back (for tests auditing a consistent snapshot).
  void audit_round(const RoundInputs& in);

  [[nodiscard]] std::size_t violation_count() const noexcept { return violations_; }
  [[nodiscard]] std::size_t rounds_audited() const noexcept { return rounds_audited_; }
  [[nodiscard]] const std::vector<std::string>& messages() const noexcept { return messages_; }

  /// Checkpoint hooks: tallies, retained messages, the one-time model
  /// probe flag, and the previous round's solver-stats snapshot (check 6
  /// audits per-round *deltas*, so the baseline must survive a resume).
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  void report(int check_id, double magnitude, const std::string& message);

  void check_flow_rates(const RoundInputs& in);        // 1 + 2
  void check_placement(const RoundInputs& in);         // 3
  void check_moves(const RoundInputs& in);             // 4
  void check_shard_commit(const RoundInputs& in);      // 8
  void check_migration_model();                        // 5 (one-time)
  void check_solver_bookkeeping(const RoundInputs& in);  // 6
  void check_deep_fair_share(const RoundInputs& in);   // 7

  AuditOptions options_;
  EventTrace* trace_ = nullptr;
  MetricRegistry* registry_ = nullptr;
  std::size_t violations_ = 0;
  std::size_t rounds_audited_ = 0;
  std::vector<std::string> messages_;
  bool model_probed_ = false;
  net::FairShareSolver::Stats last_solver_stats_;
  bool have_solver_stats_ = false;
  std::vector<double> link_load_scratch_;  ///< per-link recomputed load
};

}  // namespace sheriff::obs
