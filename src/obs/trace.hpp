#pragma once
// Structured event trace: fixed-capacity per-shim ring buffers of typed
// records. Every management decision the simulator takes — an alert
// firing, a flow rerouted, a migration planned/committed, a protocol
// message lost, a fault event, a shim takeover, an invariant violation —
// becomes one TraceRecord stamped with the round, the owning shim, and a
// globally monotonic sequence number.
//
// Concurrency model ("lock-free-ish"): each shim id owns one ring, and by
// construction at most one thread works on a shim at a time (the engine's
// parallel sweeps hand each rack to exactly one task; everything else is
// serial). The only shared state is the sequence counter, a relaxed
// atomic — so concurrent emits from different shims never contend on a
// lock, and a merged snapshot can still be ordered totally by `seq`.
//
// Rings are bounded: when a shim's ring is full the oldest record is
// overwritten and `dropped()` counts it. Tracing therefore has a hard
// memory ceiling no matter how long the run is.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace sheriff::obs {

enum class EventType : std::uint8_t {
  kAlertRaised,        ///< a = alerting node, value = alert magnitude
  kRerouteChosen,      ///< a = hot switch routed around, value = flows moved
  kMigrationPlanned,   ///< a = vm, b = destination host, value = Eq. (1) cost
  kMigrationCompleted, ///< a = vm, b = destination host, value = Eq. (1) cost
  kProtocolMsgSent,    ///< a = vm, b = destination host (REQUEST or ACK)
  kProtocolMsgDropped, ///< a = vm the lost REQUEST/ACK concerned
  kProtocolMsgRetried, ///< a = vm re-proposed after a loss
  kFaultInjected,      ///< a = FaultKind as int, b = target id
  kShimTakeover,       ///< a = rack adopted, b = adopting rack (invalid = unmanaged)
  kInvariantViolation, ///< a = check id, value = offending magnitude
};

inline constexpr std::size_t kEventTypeCount = 10;

/// Stable name used by the JSONL exporter and the summarizer.
const char* to_string(EventType type) noexcept;

struct TraceRecord {
  std::uint64_t seq = 0;    ///< global monotonic emission order
  std::uint32_t round = 0;  ///< management round the event happened in
  std::uint32_t shim = 0;   ///< owning rack, or EventTrace::kEngine
  EventType type = EventType::kAlertRaised;
  std::uint32_t a = 0;      ///< primary payload id (see EventType docs)
  std::uint32_t b = 0;      ///< secondary payload id
  double value = 0.0;       ///< payload magnitude (cost, load, count, ...)

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class EventTrace {
 public:
  /// Pseudo-shim id for events raised by the engine itself rather than a
  /// rack's shim (fault application, takeover recomputation, audits).
  static constexpr std::uint32_t kEngine = static_cast<std::uint32_t>(-1);

  explicit EventTrace(std::size_t shim_count, std::size_t capacity_per_shim = 4096)
      : capacity_(capacity_per_shim > 0 ? capacity_per_shim : 1),
        rings_(shim_count + 1) {}

  /// Stamped onto subsequent records; call at the top of each round, while
  /// no emitter is running.
  void set_round(std::uint32_t round) noexcept { round_ = round; }
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }

  /// Appends one record to `shim`'s ring (kEngine for engine-level events).
  /// Safe to call concurrently for *different* shims.
  void emit(std::uint32_t shim, EventType type, std::uint32_t a = 0, std::uint32_t b = 0,
            double value = 0.0) {
    Ring& ring = rings_[shim == kEngine ? rings_.size() - 1 : shim];
    TraceRecord record;
    record.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    record.round = round_;
    record.shim = shim;
    record.type = type;
    record.a = a;
    record.b = b;
    record.value = value;
    if (ring.slots.size() < capacity_) {
      ring.slots.push_back(record);
    } else {
      ring.slots[ring.head] = record;  // overwrite the oldest
      ring.head = (ring.head + 1) % capacity_;
      ++ring.dropped;
    }
    ++ring.emitted;
  }

  [[nodiscard]] std::size_t capacity_per_shim() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shim_count() const noexcept { return rings_.size() - 1; }

  /// Records ever emitted (including those since overwritten).
  [[nodiscard]] std::uint64_t total_emitted() const {
    std::uint64_t n = 0;
    for (const Ring& r : rings_) n += r.emitted;
    return n;
  }
  /// Records lost to ring overwrites.
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const Ring& r : rings_) n += r.dropped;
    return n;
  }

  /// All retained records merged across rings, sorted by sequence number.
  /// Call from serial code only (between rounds or after a run).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    for (const Ring& r : rings_) out.insert(out.end(), r.slots.begin(), r.slots.end());
    std::sort(out.begin(), out.end(),
              [](const TraceRecord& x, const TraceRecord& y) { return x.seq < y.seq; });
    return out;
  }

  void clear() {
    for (Ring& r : rings_) {
      r.slots.clear();
      r.head = 0;
      r.emitted = 0;
      r.dropped = 0;
    }
  }

  // --- checkpoint state access ----------------------------------------------
  // Raw per-ring views + the sequence counter, so the engine's checkpoint
  // code can serialize the trace byte-exactly (ring contents, overwrite
  // cursor, drop tallies, next seq) without this header depending on the
  // archive. Call from serial code only.

  /// Total rings, including the trailing engine ring.
  [[nodiscard]] std::size_t ring_count() const noexcept { return rings_.size(); }

  struct RingView {
    const std::vector<TraceRecord>& slots;
    std::size_t head;
    std::uint64_t emitted;
    std::uint64_t dropped;
  };
  [[nodiscard]] RingView ring_view(std::size_t index) const {
    const Ring& r = rings_[index];
    return {r.slots, r.head, r.emitted, r.dropped};
  }
  void restore_ring(std::size_t index, std::vector<TraceRecord> slots, std::size_t head,
                    std::uint64_t emitted, std::uint64_t dropped) {
    Ring& r = rings_[index];
    r.slots = std::move(slots);
    r.head = head;
    r.emitted = emitted;
    r.dropped = dropped;
  }

  /// The sequence number the next emit() will take.
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }
  void set_next_seq(std::uint64_t seq) noexcept { seq_.store(seq, std::memory_order_relaxed); }

 private:
  struct Ring {
    std::vector<TraceRecord> slots;  ///< grows to capacity_, then wraps at head
    std::size_t head = 0;            ///< next overwrite position once full
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
  };

  std::size_t capacity_;
  std::vector<Ring> rings_;  ///< one per shim + one engine ring (last)
  std::atomic<std::uint64_t> seq_{0};
  std::uint32_t round_ = 0;
};

}  // namespace sheriff::obs
