#pragma once
// ObservationHub: the one object the engine owns when observability is on.
// Bundles the event trace, the metric registry, and (optionally) the
// invariant auditor, wired together so auditor violations land in the
// trace and the registry. The engine holds a null hub when
// EngineConfig::observe is false — that is the zero-cost-disabled path.

#include <cstddef>
#include <memory>

#include "obs/auditor.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sheriff::obs {

struct ObservationConfig {
  std::size_t trace_capacity_per_shim = 4096;
  bool audit = false;            ///< run the invariant auditor each round
  AuditOptions audit_options{};  ///< only consulted when audit is true
};

class ObservationHub {
 public:
  ObservationHub(std::size_t shim_count, ObservationConfig config);

  [[nodiscard]] EventTrace& trace() noexcept { return trace_; }
  [[nodiscard]] const EventTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] MetricRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricRegistry& registry() const noexcept { return registry_; }

  /// Null when auditing is off.
  [[nodiscard]] InvariantAuditor* auditor() noexcept { return auditor_.get(); }
  [[nodiscard]] const InvariantAuditor* auditor() const noexcept { return auditor_.get(); }

 private:
  EventTrace trace_;
  MetricRegistry registry_;
  std::unique_ptr<InvariantAuditor> auditor_;
};

}  // namespace sheriff::obs
