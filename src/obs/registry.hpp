#pragma once
// Metric registry: named counters, gauges, and fixed-bucket histograms
// that the engine and its subsystems publish into each round. Names follow
// the `subsystem.metric` convention (e.g. "router.tree_hits",
// "fair_share.reused_flows", "engine.migrations") — see DESIGN.md §8 for
// the catalogue.
//
// Lookup returns stable references (metrics live in deques), so hot call
// sites resolve a metric once and keep the pointer. Counters are relaxed
// atomics — parallel sweep bodies may bump them — while gauges and
// histograms are written from serial round-boundary code only.
//
// Header-only on purpose: sheriff_net and sheriff_fault publish into the
// registry without linking the sheriff_obs library (which sits *above*
// them in the dependency order, because the invariant auditor inspects
// their types).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace sheriff::obs {

/// Monotonically increasing count; safe to add() from parallel code.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins sample; written from serial code.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: counts of observations <= each upper bound,
/// plus an overflow bucket. Bounds are set at registration and immutable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(double v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    ++total_;
    sum_ += v;
  }

  [[nodiscard]] std::span<const double> bounds() const noexcept { return bounds_; }
  /// counts()[i] = observations in (bounds[i-1], bounds[i]]; last = overflow.
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Checkpoint restore; returns false (and leaves the histogram untouched)
  /// when `counts` does not match this histogram's bucket layout.
  bool restore(std::vector<std::uint64_t> counts, std::uint64_t total, double sum) {
    if (counts.size() != counts_.size()) return false;
    counts_ = std::move(counts);
    total_ = total;
    sum_ = sum;
    return true;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

class MetricRegistry {
 public:
  /// Finds or creates the counter named `name`. The reference stays valid
  /// for the registry's lifetime.
  Counter& counter(const std::string& name) {
    if (auto it = counters_.find(name); it != counters_.end()) return *it->second;
    counter_storage_.emplace_back();
    counters_.emplace(name, &counter_storage_.back());
    return counter_storage_.back();
  }

  Gauge& gauge(const std::string& name) {
    if (auto it = gauges_.find(name); it != gauges_.end()) return *it->second;
    gauge_storage_.emplace_back();
    gauges_.emplace(name, &gauge_storage_.back());
    return gauge_storage_.back();
  }

  /// Finds or creates a histogram; `upper_bounds` is only consulted on
  /// first registration (must be sorted ascending).
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds) {
    if (auto it = histograms_.find(name); it != histograms_.end()) return *it->second;
    histogram_storage_.emplace_back(std::move(upper_bounds));
    histograms_.emplace(name, &histogram_storage_.back());
    return histogram_storage_.back();
  }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second;
  }
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
  }

  /// Name-sorted flattened view (histograms contribute `.count` and
  /// `.sum`) — the export/debug surface.
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const {
    std::vector<std::pair<std::string, double>> out;
    for (const auto& [name, c] : counters_) out.emplace_back(name, static_cast<double>(c->value()));
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
    for (const auto& [name, h] : histograms_) {
      out.emplace_back(name + ".count", static_cast<double>(h->total()));
      out.emplace_back(name + ".sum", h->sum());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // --- checkpoint state access ----------------------------------------------
  // Name-sorted iteration (the maps are ordered), so serialized registries
  // are deterministic. Restoring goes through the find-or-create accessors
  // above; these visitors are the save side.
  template <typename F>
  void for_each_counter(F&& f) const {
    for (const auto& [name, c] : counters_) f(name, *c);
  }
  template <typename F>
  void for_each_gauge(F&& f) const {
    for (const auto& [name, g] : gauges_) f(name, *g);
  }
  template <typename F>
  void for_each_histogram(F&& f) const {
    for (const auto& [name, h] : histograms_) f(name, *h);
  }

 private:
  // Deques give stable element addresses; maps give sorted iteration for
  // deterministic export order.
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

}  // namespace sheriff::obs
