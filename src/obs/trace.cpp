#include "obs/trace.hpp"

namespace sheriff::obs {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kAlertRaised: return "AlertRaised";
    case EventType::kRerouteChosen: return "RerouteChosen";
    case EventType::kMigrationPlanned: return "MigrationPlanned";
    case EventType::kMigrationCompleted: return "MigrationCompleted";
    case EventType::kProtocolMsgSent: return "ProtocolMsgSent";
    case EventType::kProtocolMsgDropped: return "ProtocolMsgDropped";
    case EventType::kProtocolMsgRetried: return "ProtocolMsgRetried";
    case EventType::kFaultInjected: return "FaultInjected";
    case EventType::kShimTakeover: return "ShimTakeover";
    case EventType::kInvariantViolation: return "InvariantViolation";
  }
  return "Unknown";
}

}  // namespace sheriff::obs
