#include "obs/hub.hpp"

namespace sheriff::obs {

ObservationHub::ObservationHub(std::size_t shim_count, ObservationConfig config)
    : trace_(shim_count, config.trace_capacity_per_shim) {
  if (config.audit) {
    auditor_ = std::make_unique<InvariantAuditor>(config.audit_options);
    auditor_->attach(&trace_, &registry_);
  }
}

}  // namespace sheriff::obs
