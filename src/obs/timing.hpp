#pragma once
// The one scoped-timer/stopwatch utility of the codebase. Everything that
// measures wall time — bench phase timing, the engine's PhaseProfile, the
// trace explorer — goes through these two classes so there is exactly one
// clock-reading idiom to audit (monotonic steady_clock, two reads per
// measurement, no hidden allocation).

#include <chrono>
#include <cstdint>

namespace sheriff::obs {

/// Monotonic stopwatch with restart and lap semantics.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()), lap_(start_) {}

  /// Re-zeroes both the total and the lap mark.
  void restart() noexcept { start_ = lap_ = clock::now(); }
  /// Alias kept for call sites written against the old common::Stopwatch.
  void reset() noexcept { restart(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_millis() const noexcept { return elapsed_seconds() * 1e3; }
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }

  /// Seconds since the previous lap() (or construction/restart), advancing
  /// the lap mark — split times without touching the running total.
  double lap_seconds() noexcept {
    const auto now = clock::now();
    const double split = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return split;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  clock::time_point lap_;
};

/// Accumulates the wall time between construction and destruction into a
/// nanosecond counter (two steady_clock reads per scope). The sink must
/// outlive the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t& sink) noexcept
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    *sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start_)
            .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sheriff::obs
