#include "obs/auditor.hpp"

#include <cmath>
#include <string>

#include "common/require.hpp"
#include "migration/live_migration.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::obs {

InvariantAuditor::InvariantAuditor(AuditOptions options) : options_(options) {}

void InvariantAuditor::attach(EventTrace* trace, MetricRegistry* registry) {
  trace_ = trace;
  registry_ = registry;
}

void InvariantAuditor::report(int check_id, double magnitude, const std::string& message) {
  ++violations_;
  if (registry_ != nullptr) registry_->counter("auditor.violations").add();
  if (trace_ != nullptr) {
    trace_->emit(EventTrace::kEngine, EventType::kInvariantViolation,
                 static_cast<std::uint32_t>(check_id), 0, magnitude);
  }
  if (messages_.size() < options_.max_messages) {
    messages_.push_back("[check " + std::to_string(check_id) + "] " + message);
  }
  SHERIFF_REQUIRE(!options_.fail_fast, "invariant violation: " + message);
}

void InvariantAuditor::audit_network(const RoundInputs& in) {
  SHERIFF_REQUIRE(in.deployment != nullptr && in.shares != nullptr,
                  "audit_network needs the deployment and the fair-share result");
  ++rounds_audited_;
  check_flow_rates(in);
  if (in.solver != nullptr) check_solver_bookkeeping(in);
  if (options_.deep_fair_share) check_deep_fair_share(in);
  if (registry_ != nullptr) {
    registry_->gauge("auditor.rounds").set(static_cast<double>(rounds_audited_));
  }
}

void InvariantAuditor::audit_management(const RoundInputs& in) {
  SHERIFF_REQUIRE(in.deployment != nullptr, "audit_management needs the deployment");
  check_placement(in);
  check_moves(in);
  check_shard_commit(in);
  check_migration_model();
}

void InvariantAuditor::audit_round(const RoundInputs& in) {
  audit_network(in);
  audit_management(in);
}

// Checks 1 + 2: per-flow rate bounds and per-link conservation. One pass
// resolves every routed flow's links, bounds its rate, and accumulates the
// per-link load, which is then compared against capacity and against the
// solver's reported link loads.
void InvariantAuditor::check_flow_rates(const RoundInputs& in) {
  const topo::Topology& topo = in.deployment->topology();
  const double eps = options_.rate_epsilon;
  link_load_scratch_.assign(topo.link_count(), 0.0);

  if (in.shares->flow_rate.size() != in.flows.size() ||
      in.shares->link_load_gbps.size() != topo.link_count()) {
    report(2, 0.0, "fair-share result vectors do not match the flow table / topology");
    return;
  }

  for (std::size_t f = 0; f < in.flows.size(); ++f) {
    const net::Flow& flow = in.flows[f];
    const double rate = in.shares->flow_rate[f];
    if (!(rate >= 0.0) || !std::isfinite(rate)) {
      report(1, rate, "flow " + std::to_string(f) + " has negative or non-finite rate");
      continue;
    }
    if (rate > flow.effective_demand() + eps) {
      report(1, rate - flow.effective_demand(),
             "flow " + std::to_string(f) + " rate exceeds its effective demand");
    }
    if (!flow.routed()) {
      if (rate > eps) {
        report(1, rate, "unrouted flow " + std::to_string(f) + " carries a nonzero rate");
      }
      continue;
    }
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
      const topo::LinkId l = topo.link_between(flow.path[i], flow.path[i + 1]);
      const double cap = topo.link(l).capacity_gbps;
      if (rate > cap * (1.0 + 1e-9) + eps) {
        report(1, rate - cap, "flow " + std::to_string(f) + " rate exceeds capacity of link " +
                                  std::to_string(l));
      }
      link_load_scratch_[l] += rate;
    }
  }

  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const double cap = topo.link(l).capacity_gbps;
    const double sum = link_load_scratch_[l];
    if (sum > cap * (1.0 + 1e-9) + eps) {
      report(2, sum - cap,
             "link " + std::to_string(l) + " fair-share load " + std::to_string(sum) +
                 " exceeds capacity " + std::to_string(cap));
    }
    const double reported = in.shares->link_load_gbps[l];
    if (std::abs(sum - reported) > eps + 1e-9 * cap) {
      report(2, std::abs(sum - reported),
             "link " + std::to_string(l) + " reported load " + std::to_string(reported) +
                 " disagrees with the sum of its flows' rates " + std::to_string(sum));
    }
  }
}

// Check 3: every VM sits on exactly one host, the host's VM list agrees,
// and the used-capacity bookkeeping is exact and within host capacity.
void InvariantAuditor::check_placement(const RoundInputs& in) {
  const wl::Deployment& d = *in.deployment;
  const topo::Topology& topo = d.topology();
  std::vector<std::uint8_t> seen(d.vm_count(), 0);
  std::size_t listed = 0;
  for (topo::NodeId host : topo.nodes_of_kind(topo::NodeKind::kHost)) {
    int used = 0;
    for (wl::VmId id : d.vms_on_host(host)) {
      if (id >= d.vm_count()) {
        report(3, static_cast<double>(id), "host list names an out-of-range VM");
        continue;
      }
      ++listed;
      if (++seen[id] > 1) {
        report(3, static_cast<double>(id),
               "VM " + std::to_string(id) + " appears on more than one host");
      }
      if (d.vm(id).host != host) {
        report(3, static_cast<double>(id),
               "VM " + std::to_string(id) + " host field disagrees with the host's VM list");
      }
      used += d.vm(id).capacity;
    }
    if (used != d.host_used_capacity(host)) {
      report(3, static_cast<double>(used),
             "host " + std::to_string(host) + " used-capacity bookkeeping is off");
    }
    if (used > d.host_capacity()) {
      report(3, static_cast<double>(used),
             "host " + std::to_string(host) + " is over its capacity");
    }
  }
  if (listed != d.vm_count()) {
    report(3, static_cast<double>(listed),
           "host lists cover " + std::to_string(listed) + " VM slots, expected " +
               std::to_string(d.vm_count()));
  }
}

// Check 4: applied migration moves are sane.
void InvariantAuditor::check_moves(const RoundInputs& in) {
  const topo::Topology& topo = in.deployment->topology();
  for (const AuditedMove& move : in.moves) {
    if (!(move.cost >= 0.0) || !std::isfinite(move.cost)) {
      report(4, move.cost, "migration of VM " + std::to_string(move.vm) +
                               " has a negative or non-finite cost");
    }
    if (!(move.downtime_seconds >= 0.0) ||
        move.duration_seconds < move.downtime_seconds - 1e-9) {
      report(4, move.duration_seconds,
             "migration of VM " + std::to_string(move.vm) +
                 " has an inconsistent six-stage timeline");
    }
    if (move.from == move.to) {
      report(4, static_cast<double>(move.vm),
             "migration of VM " + std::to_string(move.vm) + " is a self-move");
    }
    if (move.to >= topo.node_count() || topo.node(move.to).kind != topo::NodeKind::kHost) {
      report(4, static_cast<double>(move.to),
             "migration of VM " + std::to_string(move.vm) + " targets a non-host node");
    }
  }
}

// Check 8: the round's committed moves form a valid serial commit of the
// sharded manage sweep. Whatever interleaving produced the proposals, the
// commit must have (a) kept VM claims exclusive — a VM moved twice in one
// round means two shims' claims were both applied, (b) left each moved VM
// on its move's destination, and (c) respected destination headroom — the
// incoming capacity of a host cannot exceed what the host can hold even if
// it started the round empty. (c) is deliberately independent of the
// deployment's own used-capacity bookkeeping (check 3), so a broker that
// over-admits while keeping its books "consistent" still trips it.
void InvariantAuditor::check_shard_commit(const RoundInputs& in) {
  if (in.moves.empty()) return;
  const wl::Deployment& d = *in.deployment;
  const topo::Topology& topo = d.topology();
  std::vector<std::uint8_t> moved(d.vm_count(), 0);
  std::vector<int> incoming(topo.node_count(), 0);
  for (const AuditedMove& move : in.moves) {
    if (move.vm >= d.vm_count()) {
      report(8, static_cast<double>(move.vm), "committed move names an out-of-range VM");
      continue;
    }
    if (++moved[move.vm] > 1) {
      report(8, static_cast<double>(move.vm),
             "VM " + std::to_string(move.vm) +
                 " was committed by more than one shim in the same round");
      continue;
    }
    if (d.vm(move.vm).host != move.to) {
      report(8, static_cast<double>(move.vm),
             "VM " + std::to_string(move.vm) + " was committed to host " +
                 std::to_string(move.to) + " but ended the round on host " +
                 std::to_string(d.vm(move.vm).host));
    }
    if (move.to < topo.node_count()) {
      incoming[move.to] += d.vm(move.vm).capacity;
      if (incoming[move.to] > d.host_capacity()) {
        report(8, static_cast<double>(incoming[move.to]),
               "host " + std::to_string(move.to) + " received " +
                   std::to_string(incoming[move.to]) +
                   " capacity units of migrations in one round, more than it can hold");
      }
    }
  }
}

// Check 5 (one-time): the six-stage live-migration model yields
// non-negative stage times and a total that is monotone non-decreasing in
// the dirty-page rate — more re-dirtied pages can never make the move
// finish sooner.
void InvariantAuditor::check_migration_model() {
  if (model_probed_) return;
  model_probed_ = true;
  mig::LiveMigrationParams params;
  params.memory_gb = 4.0;
  params.bandwidth_gbps = 1.0;
  double previous_total = -1.0;
  for (double dirty = 0.0; dirty <= 1.25; dirty += 0.125) {
    params.dirty_rate_gbps = dirty;
    const auto timeline = mig::simulate_live_migration(params);
    const double total = timeline.total_seconds();
    if (!(total >= 0.0) || !(timeline.t3_downtime_seconds >= 0.0) ||
        !(timeline.t2_precopy_seconds >= 0.0) || !std::isfinite(total)) {
      report(5, total, "live-migration timeline has a negative or non-finite stage");
    }
    if (total < previous_total - 1e-9) {
      report(5, previous_total - total,
             "live-migration total time decreased as the dirty-page rate rose (dirty=" +
                 std::to_string(dirty) + ")");
    }
    previous_total = total;
  }
}

// Check 6: the incremental solver's cumulative dirty-set accounting closes
// over the audited interval: every solve partitions the flow table into
// affected (refilled) + reused flows, dirties are a subset of the
// affected closure, and full rebuilds are a subset of solves.
void InvariantAuditor::check_solver_bookkeeping(const RoundInputs& in) {
  const net::FairShareSolver::Stats& stats = in.solver->stats();
  if (have_solver_stats_) {
    const auto delta = [](std::size_t now, std::size_t then) { return now - then; };
    const std::size_t solves = delta(stats.solves, last_solver_stats_.solves);
    const std::size_t dirty = delta(stats.dirty_flows, last_solver_stats_.dirty_flows);
    const std::size_t affected = delta(stats.affected_flows, last_solver_stats_.affected_flows);
    const std::size_t reused = delta(stats.reused_flows, last_solver_stats_.reused_flows);
    const std::size_t rebuilds = delta(stats.full_rebuilds, last_solver_stats_.full_rebuilds);
    if (solves == 0) {
      report(6, 0.0, "incremental solver was not invoked between audited rounds");
    }
    if (dirty > affected) {
      report(6, static_cast<double>(dirty - affected),
             "solver dirty-flow count exceeds the affected closure");
    }
    if (affected + reused != in.flows.size() * solves) {
      report(6, static_cast<double>(affected + reused),
             "solver affected+reused accounting does not cover the flow table");
    }
    if (rebuilds > solves) {
      report(6, static_cast<double>(rebuilds), "solver rebuilds exceed solves");
    }
  }
  if (in.solver->result().flow_rate.size() != in.flows.size()) {
    report(6, static_cast<double>(in.solver->result().flow_rate.size()),
           "solver result does not match the flow table size");
  }
  last_solver_stats_ = stats;
  have_solver_stats_ = true;
}

// Check 7 (opt-in): the incremental allocation equals the from-scratch
// reference on a private copy of the flow table.
void InvariantAuditor::check_deep_fair_share(const RoundInputs& in) {
  const topo::Topology& topo = in.deployment->topology();
  std::vector<net::Flow> copy(in.flows.begin(), in.flows.end());
  const net::FairShareResult reference = net::max_min_fair_share(topo, copy, in.liveness);
  for (std::size_t f = 0; f < in.flows.size(); ++f) {
    const double got = in.shares->flow_rate[f];
    const double want = reference.flow_rate[f];
    if (std::abs(got - want) > 1e-6 * (1.0 + std::abs(want))) {
      report(7, std::abs(got - want),
             "flow " + std::to_string(f) + " incremental rate " + std::to_string(got) +
                 " diverges from the from-scratch reference " + std::to_string(want));
    }
  }
}

void InvariantAuditor::save_state(snapshot::Writer& writer) const {
  writer.put_u64(violations_);
  writer.put_u64(rounds_audited_);
  writer.put_u64(messages_.size());
  for (const std::string& m : messages_) writer.put_str(m);
  writer.put_bool(model_probed_);
  writer.put_bool(have_solver_stats_);
  writer.put_u64(last_solver_stats_.solves);
  writer.put_u64(last_solver_stats_.full_rebuilds);
  writer.put_u64(last_solver_stats_.dirty_flows);
  writer.put_u64(last_solver_stats_.affected_flows);
  writer.put_u64(last_solver_stats_.reused_flows);
}

void InvariantAuditor::load_state(snapshot::Reader& reader) {
  violations_ = reader.get_u64();
  rounds_audited_ = reader.get_u64();
  const std::uint64_t message_count = reader.counted(8);
  messages_.clear();
  messages_.reserve(message_count);
  for (std::uint64_t i = 0; i < message_count; ++i) messages_.push_back(reader.get_str());
  model_probed_ = reader.get_bool();
  have_solver_stats_ = reader.get_bool();
  last_solver_stats_.solves = reader.get_u64();
  last_solver_stats_.full_rebuilds = reader.get_u64();
  last_solver_stats_.dirty_flows = reader.get_u64();
  last_solver_stats_.affected_flows = reader.get_u64();
  last_solver_stats_.reused_flows = reader.get_u64();
}

}  // namespace sheriff::obs
