#pragma once
// Minimum-weight bipartite matching (Hungarian / Kuhn–Munkres with
// potentials, O(n^2 m)). Alg. 3 of the paper ("MinimalWeightedMatching")
// pairs candidate VMs with possible destination slots at minimum total
// migration cost; the centralized baseline solves one global instance.

#include <cstddef>
#include <vector>

namespace sheriff::graph {

/// Dense row-major cost matrix; rows = left side (VMs to migrate),
/// columns = right side (destination slots). An entry set to
/// `AssignmentProblem::kForbidden` means the pairing is not allowed.
class AssignmentProblem {
 public:
  static constexpr double kForbidden = 1e30;

  AssignmentProblem(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] double cost(std::size_t r, std::size_t c) const { return cost_[r * cols_ + c]; }
  void set_cost(std::size_t r, std::size_t c, double cost);
  void forbid(std::size_t r, std::size_t c) { set_cost(r, c, kForbidden); }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cost_;
};

struct AssignmentResult {
  /// column assigned to each row; kUnassigned when a row has no feasible
  /// partner (every column forbidden or taken by cheaper rows).
  std::vector<std::size_t> assignment;
  double total_cost = 0.0;          ///< sum over matched rows only
  std::size_t matched_count = 0;

  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
};

/// Solves min-cost assignment. Requires rows() <= cols(); callers with more
/// VMs than slots split the instance (the protocol retries next round).
AssignmentResult solve_assignment(const AssignmentProblem& problem);

/// Brute-force optimum by permutation enumeration; for cross-checking in
/// tests (rows <= cols <= ~8).
AssignmentResult solve_assignment_brute_force(const AssignmentProblem& problem);

}  // namespace sheriff::graph
