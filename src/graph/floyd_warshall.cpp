#include "graph/floyd_warshall.hpp"

#include "common/require.hpp"

namespace sheriff::graph {

std::vector<Vertex> ApspResult::path(Vertex from, Vertex to) const {
  std::vector<Vertex> out;
  if (from >= next.size() || to >= next.size()) return out;
  if (from != to && next[from][to] == kNoVertex) return out;
  out.push_back(from);
  Vertex cur = from;
  while (cur != to) {
    cur = next[cur][to];
    SHERIFF_REQUIRE(cur != kNoVertex, "broken next-hop chain");
    out.push_back(cur);
    SHERIFF_REQUIRE(out.size() <= next.size(), "next-hop cycle detected");
  }
  return out;
}

ApspResult floyd_warshall(const Graph& g) {
  const std::size_t n = g.vertex_count();
  ApspResult result(n);
  auto& dist = result.distance;

  for (Vertex u = 0; u < n; ++u) {
    for (const Edge& e : g.neighbors(u)) {
      if (e.weight < dist.at(u, e.to)) {
        dist.set(u, e.to, e.weight);
        result.next[u][e.to] = e.to;
      }
    }
    result.next[u][u] = u;
  }

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist.at(i, k);
      if (dik == kInfiniteDistance) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double candidate = dik + dist.at(k, j);
        if (candidate < dist.at(i, j)) {
          dist.set(i, j, candidate);
          result.next[i][j] = result.next[i][k];
        }
      }
    }
  }
  return result;
}

}  // namespace sheriff::graph
