#include "graph/knapsack.hpp"

#include <limits>

#include "common/require.hpp"

namespace sheriff::graph {

KnapsackSelection min_value_knapsack(const std::vector<KnapsackItem>& items, std::size_t budget) {
  constexpr double kUnreachable = std::numeric_limits<double>::infinity();
  const std::size_t n = items.size();

  // Full (items+1) x (budget+1) table so reconstruction is exact: row i
  // holds the best value using only the first i items. The take bitmap
  // records the decision at each cell.
  std::vector<double> prev(budget + 1, kUnreachable);
  std::vector<double> cur(budget + 1, kUnreachable);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(budget + 1, false));
  prev[0] = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const auto& item = items[i];
    SHERIFF_REQUIRE(item.value >= 0.0, "knapsack item value must be non-negative");
    cur = prev;
    if (item.capacity > 0 && item.capacity <= budget) {
      for (std::size_t j = item.capacity; j <= budget; ++j) {
        const double with = prev[j - item.capacity];
        if (with != kUnreachable && with + item.value < cur[j]) {
          cur[j] = with + item.value;
          take[i][j] = true;
        }
      }
    }
    prev.swap(cur);
  }

  // Primary objective: offload as much capacity as possible (largest
  // reachable j <= budget); secondary: that j's minimum total value.
  std::size_t best_j = 0;
  for (std::size_t j = budget; j > 0; --j) {
    if (prev[j] != kUnreachable) {
      best_j = j;
      break;
    }
  }

  KnapsackSelection selection;
  selection.total_capacity = best_j;
  selection.total_value = best_j == 0 ? 0.0 : prev[best_j];
  std::size_t j = best_j;
  for (std::size_t i = n; i > 0 && j > 0; --i) {
    if (take[i - 1][j]) {
      selection.chosen.push_back(i - 1);
      j -= items[i - 1].capacity;
    }
  }
  return selection;
}

}  // namespace sheriff::graph
