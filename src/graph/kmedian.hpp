#pragma once
// k-median solvers. Sec. V-A reduces VMMIGRATION to k-median on the
// Floyd–Warshall-completed rack graph T'; Alg. 5 is the Arya et al. local
// search with swap size p, whose approximation ratio is 3 + 2/p. We
// implement that local search (for any p), plus an exhaustive solver used
// as ground truth by the ratio experiments and property tests.

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace sheriff::graph {

struct KMedianInstance {
  const DistanceMatrix* distance = nullptr;  ///< metric over all points
  std::vector<std::size_t> clients;          ///< demand points (source ToRs)
  std::vector<std::size_t> facilities;       ///< allowed medians (all ToRs)
  std::size_t k = 1;                         ///< number of medians to open
};

struct KMedianSolution {
  std::vector<std::size_t> medians;   ///< chosen facility ids, size k
  double cost = 0.0;                  ///< sum over clients of distance to nearest median
  std::size_t evaluations = 0;        ///< candidate solutions examined (search-space metric)
};

/// Connection cost of a given median set for the instance.
double kmedian_cost(const KMedianInstance& instance, const std::vector<std::size_t>& medians);

/// Alg. 5: local search with swaps of up to `p` facilities at a time,
/// first-improvement, deterministic initial solution (first k facilities).
/// `min_relative_gain` is the improvement threshold that makes the
/// 3 + 2/p guarantee polynomial-time (Arya et al. use cost reductions of at
/// least cost/poly; any positive epsilon preserves the ratio up to (1+eps)).
KMedianSolution local_search_kmedian(const KMedianInstance& instance, std::size_t p,
                                     double min_relative_gain = 1e-9);

/// Exhaustive optimum over all C(|facilities|, k) subsets. Test-scale only.
KMedianSolution exhaustive_kmedian(const KMedianInstance& instance);

}  // namespace sheriff::graph
