#pragma once
// k-median solvers. Sec. V-A reduces VMMIGRATION to k-median on the
// Floyd–Warshall-completed rack graph T'; Alg. 5 is the Arya et al. local
// search with swap size p, whose approximation ratio is 3 + 2/p. We
// implement that local search (for any p), plus an exhaustive solver used
// as ground truth by the ratio experiments and property tests.

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace sheriff::graph {

struct KMedianInstance {
  const DistanceMatrix* distance = nullptr;  ///< metric over all points
  std::vector<std::size_t> clients;          ///< demand points (source ToRs)
  std::vector<std::size_t> facilities;       ///< allowed medians (all ToRs)
  std::size_t k = 1;                         ///< number of medians to open
  /// Safety bound on candidate evaluations (0 = unlimited). Local search on
  /// a pathological metric can take a long improvement chain; once the
  /// budget is spent the solver returns its current (still feasible, just
  /// not necessarily locally optimal) solution and flags the cap.
  std::size_t max_evaluations = 0;
};

struct KMedianSolution {
  std::vector<std::size_t> medians;   ///< chosen facility ids, size k
  double cost = 0.0;                  ///< sum over clients of distance to nearest median
  std::size_t evaluations = 0;        ///< candidate solutions examined (search-space metric)
  bool hit_evaluation_cap = false;    ///< stopped early on KMedianInstance::max_evaluations
};

/// Connection cost of a given median set for the instance.
double kmedian_cost(const KMedianInstance& instance, const std::vector<std::size_t>& medians);

namespace detail {

/// Shared between the reference and fast solvers.
void validate(const KMedianInstance& instance);

/// Enumerates all index-combinations of size `p` from [0, n) in
/// lexicographic order; invokes fn with each. Returns false if fn requested
/// a stop (found improvement). Both solvers scan candidates in exactly this
/// order — the differential tests rely on matching trajectories.
bool for_each_combination(std::size_t n, std::size_t p,
                          const std::function<bool(const std::vector<std::size_t>&)>& fn);

}  // namespace detail

/// Alg. 5: local search with swaps of up to `p` facilities at a time,
/// first-improvement, deterministic initial solution (first k facilities).
/// `min_relative_gain` is the improvement threshold that makes the
/// 3 + 2/p guarantee polynomial-time (Arya et al. use cost reductions of at
/// least cost/poly; any positive epsilon preserves the ratio up to (1+eps)).
KMedianSolution local_search_kmedian(const KMedianInstance& instance, std::size_t p,
                                     double min_relative_gain = 1e-9);

/// Exhaustive optimum over all C(|facilities|, k) subsets. Test-scale only.
KMedianSolution exhaustive_kmedian(const KMedianInstance& instance);

}  // namespace sheriff::graph
