#pragma once
// Fast swap-based k-median (Resende & Werneck-style delta evaluation).
//
// The reference Alg. 5 local search (kmedian.hpp) re-evaluates
// kmedian_cost from scratch for every candidate swap — O(k·|F|·|C|·k) per
// improvement step for p = 1. The classic fast formulation keeps, per
// client, the distance to its nearest and second-nearest open median; with
// that bookkeeping the gain of every single swap ⟨close r, open f⟩ is
//
//   gain(r, f) = gain_add(f) − loss(r, f)
//   gain_add(f) = Σ_c max(0, d1(c) − d(c, f))
//   loss(r, f)  = Σ_{c: nearest(c)=r, d(c,f) ≥ d1(c)} (min(d2(c), d(c,f)) − d1(c))
//
// so one sweep over all k·(|F|−k) swaps costs O(|F|·(|C|+k)) — each
// candidate facility f needs one pass over the clients plus a k-sized
// reduction. Sweeps are sharded over candidate facilities across the
// common::ThreadPool; every shard computes its candidates independently
// with a fixed client accumulation order and shards merge in fixed order,
// so the result is byte-identical for any pool size.
//
// Swap sizes p ≥ 2 fall back to the reference combinational scan seeded
// from the fast p=1 local optimum: the 3 + 2/p analysis of Arya et al.
// only needs that *no* swap of size ≤ p improves the final solution, so
// running the p ≥ 2 scan as the convergence check (and resuming fast p=1
// sweeps after any accepted multi-swap) preserves the approximation ratio.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/kmedian.hpp"

namespace sheriff::common {
class ThreadPool;
}

namespace sheriff::graph {

/// Which improving swap a delta sweep applies.
enum class SwapPolicy : std::uint8_t {
  /// Highest-gain swap of the sweep; ties broken on lowest facility id,
  /// then lowest median slot. The classic best-improvement formulation.
  kBestImprovement,
  /// The first improving swap in the reference solver's scan order
  /// (median slot major, then facilities in instance order). With this
  /// policy the fast solver replays the reference trajectory exactly and
  /// terminates with identical medians — the differential tests pin it.
  kFirstImprovement,
};

struct FastKMedianOptions {
  std::size_t p = 1;                   ///< Alg. 5 swap size (≥2 uses the reference scan)
  double min_relative_gain = 1e-9;     ///< same improvement threshold as the reference
  SwapPolicy policy = SwapPolicy::kFirstImprovement;
  /// Worker pool for the parallel gain sweeps; nullptr = serial. Results
  /// are byte-identical for any pool size (fixed shard order + tie-breaks).
  common::ThreadPool* pool = nullptr;
  /// Candidate facilities per shard. The shard partition is a function of
  /// the instance only (never of the pool), so determinism is preserved.
  std::size_t shard_size = 64;
};

/// Per-client nearest / second-nearest open-median bookkeeping plus the
/// connection cost, repaired incrementally after each accepted swap.
class KMedianState {
 public:
  /// `medians` are facility ids (positions in the distance matrix).
  KMedianState(const KMedianInstance& instance, std::vector<std::size_t> medians);

  /// Rebuilds all bookkeeping for a new median set (used when the p ≥ 2
  /// convergence check accepts a multi-swap).
  void reset(std::vector<std::size_t> medians);

  [[nodiscard]] double cost() const noexcept { return cost_; }
  [[nodiscard]] const std::vector<std::size_t>& open() const noexcept { return open_; }
  [[nodiscard]] bool is_open(std::size_t facility) const;

  /// Closes the median at `position` and opens `facility` there, repairing
  /// the per-client bookkeeping incrementally: clients whose nearest or
  /// second-nearest lived at `position` rescan the open set (O(k)), every
  /// other client only compares against the new facility (O(1)). The cost
  /// is re-summed over the repaired d1 in fixed client order, so it stays
  /// bitwise equal to a from-scratch kmedian_cost of the same median set.
  void apply_swap(std::size_t position, std::size_t facility);

  /// Distance from client index `ci` (into instance.clients) to its
  /// nearest / second-nearest open median. Test hooks.
  [[nodiscard]] double nearest_distance(std::size_t ci) const { return d1_[ci]; }
  [[nodiscard]] double second_distance(std::size_t ci) const { return d2_[ci]; }
  /// Median slot (position in open()) serving client `ci`.
  [[nodiscard]] std::size_t nearest_position(std::size_t ci) const { return m1_[ci]; }

 private:
  friend KMedianSolution fast_kmedian(const KMedianInstance&, const FastKMedianOptions&);

  void rebuild_client(std::size_t ci);
  void recompute_cost();

  const KMedianInstance* instance_;
  std::vector<std::size_t> open_;       ///< facility id per median slot
  std::vector<char> open_mask_;         ///< by facility id (matrix index)
  std::vector<double> d1_;              ///< per client: nearest open distance
  std::vector<double> d2_;              ///< per client: second-nearest distance
  std::vector<std::uint32_t> m1_;       ///< per client: slot of the nearest
  std::vector<std::uint32_t> m2_;       ///< per client: slot of the second
  double cost_ = 0.0;
};

/// Delta-evaluated local search. For p = 1 with SwapPolicy::kFirstImprovement
/// the accepted-swap trajectory — and therefore the final median set — is
/// identical to local_search_kmedian(instance, 1); only the work to find
/// each swap shrinks. Instances with an unreachable client/facility pair
/// (possible on a partitioned fabric) fall back to the reference solver,
/// whose ∞-cost comparisons handle them. Honors
/// KMedianInstance::max_evaluations at sweep granularity: the fast path may
/// overshoot the cap by at most one sweep (k·(|F|−k) candidates).
KMedianSolution fast_kmedian(const KMedianInstance& instance,
                             const FastKMedianOptions& options = {});

}  // namespace sheriff::graph
