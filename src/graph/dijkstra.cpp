#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

#include "common/require.hpp"

namespace sheriff::graph {

std::vector<Vertex> ShortestPathTree::path_to(Vertex target) const {
  std::vector<Vertex> out;
  if (target >= distance.size() || distance[target] == kInfiniteDistance) return out;
  Vertex cur = target;
  out.push_back(cur);
  while (!parents[cur].empty()) {
    cur = *std::min_element(parents[cur].begin(), parents[cur].end());
    out.push_back(cur);
    SHERIFF_REQUIRE(out.size() <= distance.size(), "parent cycle detected");
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t ShortestPathTree::path_count(Vertex target, std::size_t cap) const {
  if (target >= distance.size() || distance[target] == kInfiniteDistance) return 0;
  // Memoized DFS over the (acyclic) tight-predecessor DAG.
  std::vector<std::size_t> memo(distance.size(), 0);
  std::vector<bool> done(distance.size(), false);
  // Iterative post-order to avoid recursion depth issues on big fabrics.
  std::vector<Vertex> stack{target};
  while (!stack.empty()) {
    const Vertex v = stack.back();
    if (done[v]) {
      stack.pop_back();
      continue;
    }
    if (parents[v].empty()) {
      memo[v] = 1;  // the source
      done[v] = true;
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (Vertex p : parents[v]) {
      if (!done[p]) {
        stack.push_back(p);
        ready = false;
      }
    }
    if (!ready) continue;
    std::size_t total = 0;
    for (Vertex p : parents[v]) total = std::min(cap, total + memo[p]);
    memo[v] = total;
    done[v] = true;
    stack.pop_back();
  }
  return memo[target];
}

ShortestPathTree dijkstra(const Graph& g, Vertex source, const std::vector<bool>& blocked) {
  ShortestPathTree tree;
  dijkstra_into(g, source, blocked, tree);
  return tree;
}

void dijkstra_into(const Graph& g, Vertex source, const std::vector<bool>& blocked,
                   ShortestPathTree& tree) {
  const std::size_t n = g.vertex_count();
  SHERIFF_REQUIRE(source < n, "source out of range");
  SHERIFF_REQUIRE(blocked.empty() || blocked.size() == n, "blocked mask size mismatch");
  tree.distance.assign(n, kInfiniteDistance);
  // Clear the per-vertex parent lists in place: on reuse this keeps their
  // heap blocks, which is the point of the _into variant.
  if (tree.parents.size() == n) {
    for (auto& p : tree.parents) p.clear();
  } else {
    tree.parents.assign(n, {});
  }

  const auto is_blocked = [&](Vertex v) { return !blocked.empty() && blocked[v]; };
  if (is_blocked(source)) return;

  constexpr double kTieTolerance = 1e-12;

  // Level-synchronous fast path for uniform-weight graphs (every DCN
  // fabric's hop-distance graph). It replays the heap loop's exact
  // relaxation sequence, so distances, parent sets, and parent order are
  // all bit-identical to the general path below:
  //  - the heap orders (distance, vertex) lexicographically, and under one
  //    shared weight w every vertex at hop level d carries the same
  //    distance S_d (the same d-fold left sum of w), so pops proceed level
  //    by level, ascending vertex id within a level — which is precisely a
  //    BFS frontier sorted ascending;
  //  - ties never re-push, and strict improvements happen only on first
  //    discovery, so the heap holds no duplicates to replicate;
  //  - consecutive levels are separated by ~w > the tie tolerance (guarded
  //    below, with vertex_count bounding the level index so the running
  //    sum always strictly grows), so the tolerance branches fire exactly
  //    as they do in the heap loop.
  if (g.uniform_weights() && g.edge_count() > 0 && g.uniform_weight() > 1e-9 &&
      n < (std::size_t{1} << 26)) {
    tree.distance[source] = 0.0;
    std::vector<Vertex> frontier{source};
    std::vector<Vertex> next;
    while (!frontier.empty()) {
      for (const Vertex u : frontier) {
        const double d = tree.distance[u];
        for (const Edge& e : g.neighbors(u)) {
          if (is_blocked(e.to)) continue;
          const double candidate = d + e.weight;
          if (candidate + kTieTolerance < tree.distance[e.to]) {
            tree.distance[e.to] = candidate;
            tree.parents[e.to].assign(1, u);
            next.push_back(e.to);
          } else if (std::abs(candidate - tree.distance[e.to]) <= kTieTolerance) {
            auto& ps = tree.parents[e.to];
            if (std::find(ps.begin(), ps.end(), u) == ps.end()) ps.push_back(u);
          }
        }
      }
      std::sort(next.begin(), next.end());
      frontier.swap(next);
      next.clear();
    }
    return;
  }

  using Item = std::pair<double, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  tree.distance[source] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.distance[u] + kTieTolerance) continue;
    for (const Edge& e : g.neighbors(u)) {
      if (is_blocked(e.to)) continue;
      const double candidate = d + e.weight;
      if (candidate + kTieTolerance < tree.distance[e.to]) {
        tree.distance[e.to] = candidate;
        tree.parents[e.to].assign(1, u);
        heap.emplace(candidate, e.to);
      } else if (std::abs(candidate - tree.distance[e.to]) <= kTieTolerance) {
        auto& ps = tree.parents[e.to];
        if (std::find(ps.begin(), ps.end(), u) == ps.end()) ps.push_back(u);
      }
    }
  }
}

}  // namespace sheriff::graph
