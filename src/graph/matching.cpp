#include "graph/matching.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/require.hpp"

namespace sheriff::graph {

AssignmentProblem::AssignmentProblem(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cost_(rows * cols, kForbidden) {
  SHERIFF_REQUIRE(rows > 0 && cols > 0, "assignment problem must be non-empty");
}

void AssignmentProblem::set_cost(std::size_t r, std::size_t c, double cost) {
  SHERIFF_REQUIRE(r < rows_ && c < cols_, "assignment index out of range");
  SHERIFF_REQUIRE(cost >= 0.0, "assignment costs must be non-negative");
  cost_[r * cols_ + c] = std::min(cost, kForbidden);
}

namespace {

/// Strips matches that only exist through kForbidden padding entries.
void finalize(const AssignmentProblem& problem, AssignmentResult& result) {
  result.total_cost = 0.0;
  result.matched_count = 0;
  for (std::size_t r = 0; r < problem.rows(); ++r) {
    auto& col = result.assignment[r];
    if (col == AssignmentResult::kUnassigned) continue;
    if (problem.cost(r, col) >= AssignmentProblem::kForbidden) {
      col = AssignmentResult::kUnassigned;
      continue;
    }
    result.total_cost += problem.cost(r, col);
    ++result.matched_count;
  }
}

}  // namespace

AssignmentResult solve_assignment(const AssignmentProblem& problem) {
  const std::size_t n = problem.rows();
  const std::size_t m = problem.cols();
  SHERIFF_REQUIRE(n <= m, "solve_assignment requires rows <= cols");

  // Classic Hungarian with potentials, 1-indexed internal arrays.
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<std::size_t> match(m + 1, 0);  // match[col] = row occupying it
  std::vector<std::size_t> way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, std::numeric_limits<double>::infinity());
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = std::numeric_limits<double>::infinity();
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = problem.cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.assignment.assign(n, AssignmentResult::kUnassigned);
  for (std::size_t j = 1; j <= m; ++j) {
    if (match[j] != 0) result.assignment[match[j] - 1] = j - 1;
  }
  finalize(problem, result);
  return result;
}

AssignmentResult solve_assignment_brute_force(const AssignmentProblem& problem) {
  const std::size_t n = problem.rows();
  const std::size_t m = problem.cols();
  SHERIFF_REQUIRE(n <= m, "brute force requires rows <= cols");
  SHERIFF_REQUIRE(m <= 9, "brute force limited to tiny instances");

  std::vector<std::size_t> cols(m);
  std::iota(cols.begin(), cols.end(), 0);

  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_assign;
  do {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) total += problem.cost(r, cols[r]);
    if (total < best) {
      best = total;
      best_assign.assign(cols.begin(), cols.begin() + static_cast<std::ptrdiff_t>(n));
    }
  } while (std::next_permutation(cols.begin(), cols.end()));

  AssignmentResult result;
  result.assignment = best_assign;
  finalize(problem, result);
  return result;
}

}  // namespace sheriff::graph
