#pragma once
// All-pairs shortest paths. Sec. V-A.2 of the paper collapses the rack
// multigraph T into a complete cost graph T' with Floyd–Warshall before
// handing it to the k-median solver; this module implements that step with
// path reconstruction.

#include <vector>

#include "graph/graph.hpp"

namespace sheriff::graph {

struct ApspResult {
  DistanceMatrix distance;                 ///< d(i,j); infinity if unreachable
  std::vector<std::vector<Vertex>> next;   ///< next[i][j]: next hop on i→j path

  explicit ApspResult(std::size_t n) : distance(n), next(n, std::vector<Vertex>(n, kNoVertex)) {}

  static constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

  /// Reconstructs the vertex sequence of a shortest i→j path (inclusive of
  /// both endpoints); empty if unreachable.
  [[nodiscard]] std::vector<Vertex> path(Vertex from, Vertex to) const;
};

/// O(V^3) Floyd–Warshall over the minimum-weight parallel edge of each pair.
ApspResult floyd_warshall(const Graph& g);

}  // namespace sheriff::graph
