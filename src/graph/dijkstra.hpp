#pragma once
// Single-source shortest paths. The flow router uses Dijkstra (with ECMP
// tie tracking) instead of all-pairs Floyd–Warshall when it only needs the
// paths out of one host.

#include <vector>

#include "graph/graph.hpp"

namespace sheriff::graph {

struct ShortestPathTree {
  std::vector<double> distance;               ///< from the source
  std::vector<std::vector<Vertex>> parents;   ///< all tight predecessors (ECMP)

  /// One shortest path source→target (deterministic: lowest-id parents);
  /// empty if unreachable.
  [[nodiscard]] std::vector<Vertex> path_to(Vertex target) const;

  /// Number of distinct shortest paths to `target` (capped at `cap` to
  /// avoid overflow on highly redundant fabrics).
  [[nodiscard]] std::size_t path_count(Vertex target, std::size_t cap = 1'000'000) const;
};

/// Dijkstra from `source`; `blocked[v] == true` removes v from the graph
/// (used by FLOWREROUTE to route around hot switches). `blocked` may be
/// empty meaning nothing is blocked.
ShortestPathTree dijkstra(const Graph& g, Vertex source, const std::vector<bool>& blocked = {});

/// Same, writing into `out` so repeated runs (the router's cache-miss path)
/// reuse the tree's allocations instead of rebuilding them per call.
void dijkstra_into(const Graph& g, Vertex source, const std::vector<bool>& blocked,
                   ShortestPathTree& out);

}  // namespace sheriff::graph
