#pragma once
// 0/1 knapsack selection used by the PRIORITY function (Alg. 2).
//
// The shim must offload up to C units of capacity while sacrificing as
// little "value" as possible: among subsets of candidate VMs with total
// capacity <= C, it prefers the one that offloads the most capacity and,
// among those, the one with minimum total value ("lowest value but largest
// size" in the paper, with Mbps as the minimum capacity unit).

#include <cstddef>
#include <vector>

namespace sheriff::graph {

struct KnapsackItem {
  std::size_t capacity = 0;  ///< integer capacity units (Mbps)
  double value = 0.0;        ///< importance; lower = better to move
};

struct KnapsackSelection {
  std::vector<std::size_t> chosen;  ///< indices into the item vector
  std::size_t total_capacity = 0;
  double total_value = 0.0;
};

/// Dynamic program over capacities 0..budget (the paper's d[0..C] table):
/// d[j] = minimum total value of a subset with total capacity exactly j,
/// V[j] = that subset. The answer is the feasible j <= budget maximizing j,
/// breaking ties by minimum value. O(items * budget) time.
KnapsackSelection min_value_knapsack(const std::vector<KnapsackItem>& items, std::size_t budget);

}  // namespace sheriff::graph
