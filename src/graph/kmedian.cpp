#include "graph/kmedian.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/require.hpp"

namespace sheriff::graph {

namespace detail {

void validate(const KMedianInstance& instance) {
  SHERIFF_REQUIRE(instance.distance != nullptr, "instance needs a distance matrix");
  SHERIFF_REQUIRE(instance.k >= 1, "k must be at least 1");
  SHERIFF_REQUIRE(instance.k <= instance.facilities.size(), "k exceeds facility count");
  const std::size_t n = instance.distance->size();
  for (std::size_t c : instance.clients) SHERIFF_REQUIRE(c < n, "client out of range");
  for (std::size_t f : instance.facilities) SHERIFF_REQUIRE(f < n, "facility out of range");
}

bool for_each_combination(std::size_t n, std::size_t p,
                          const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> idx(p);
  for (std::size_t i = 0; i < p; ++i) idx[i] = i;
  if (p > n) return true;
  for (;;) {
    if (!fn(idx)) return false;
    // Advance to the next combination.
    std::size_t i = p;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - p) break;
      if (i == 0) return true;
    }
    if (idx[i] == i + n - p) return true;
    ++idx[i];
    for (std::size_t j = i + 1; j < p; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace detail

using detail::for_each_combination;
using detail::validate;

double kmedian_cost(const KMedianInstance& instance, const std::vector<std::size_t>& medians) {
  SHERIFF_REQUIRE(!medians.empty(), "median set must be non-empty");
  double total = 0.0;
  for (std::size_t c : instance.clients) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t m : medians) best = std::min(best, instance.distance->at(c, m));
    total += best;
  }
  return total;
}

KMedianSolution local_search_kmedian(const KMedianInstance& instance, std::size_t p,
                                     double min_relative_gain) {
  validate(instance);
  SHERIFF_REQUIRE(p >= 1, "swap size p must be at least 1");
  const auto& facilities = instance.facilities;

  KMedianSolution sol;
  sol.medians.assign(facilities.begin(),
                     facilities.begin() + static_cast<std::ptrdiff_t>(instance.k));
  sol.cost = kmedian_cost(instance, sol.medians);
  sol.evaluations = 1;
  const std::size_t max_swap = std::min(p, instance.k);

  bool improved = true;
  while (improved && !sol.hit_evaluation_cap) {
    improved = false;
    // Try swap sizes 1..p; first improvement restarts the scan.
    for (std::size_t swap = 1; swap <= max_swap && !improved; ++swap) {
      std::vector<std::size_t> outside;
      outside.reserve(facilities.size());
      for (std::size_t f : facilities) {
        if (std::find(sol.medians.begin(), sol.medians.end(), f) == sol.medians.end()) {
          outside.push_back(f);
        }
      }
      if (outside.size() < swap) continue;
      for_each_combination(sol.medians.size(), swap, [&](const std::vector<std::size_t>& out_idx) {
        return for_each_combination(outside.size(), swap,
                                    [&](const std::vector<std::size_t>& in_idx) {
          if (instance.max_evaluations != 0 &&
              sol.evaluations >= instance.max_evaluations) {
            sol.hit_evaluation_cap = true;
            return false;  // budget spent: keep the current solution
          }
          std::vector<std::size_t> candidate = sol.medians;
          for (std::size_t i = 0; i < swap; ++i) candidate[out_idx[i]] = outside[in_idx[i]];
          const double cost = kmedian_cost(instance, candidate);
          ++sol.evaluations;
          if (cost < sol.cost * (1.0 - min_relative_gain)) {
            sol.medians = std::move(candidate);
            sol.cost = cost;
            improved = true;
            return false;  // stop scanning, restart outer loop
          }
          return true;
        });
      });
      if (sol.hit_evaluation_cap) break;
    }
  }
  std::sort(sol.medians.begin(), sol.medians.end());
  return sol;
}

KMedianSolution exhaustive_kmedian(const KMedianInstance& instance) {
  validate(instance);
  KMedianSolution best;
  best.cost = std::numeric_limits<double>::infinity();
  for_each_combination(instance.facilities.size(), instance.k,
                       [&](const std::vector<std::size_t>& idx) {
    std::vector<std::size_t> candidate(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) candidate[i] = instance.facilities[idx[i]];
    const double cost = kmedian_cost(instance, candidate);
    ++best.evaluations;
    if (cost < best.cost) {
      best.cost = cost;
      best.medians = std::move(candidate);
    }
    return true;
  });
  std::sort(best.medians.begin(), best.medians.end());
  return best;
}

}  // namespace sheriff::graph
