#include "graph/graph.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace sheriff::graph {

Graph::Graph(std::size_t vertex_count) : adjacency_(vertex_count) {}

void Graph::add_edge(Vertex u, Vertex v, double weight) {
  SHERIFF_REQUIRE(u < adjacency_.size() && v < adjacency_.size(), "edge endpoint out of range");
  SHERIFF_REQUIRE(weight >= 0.0, "edge weight must be non-negative");
  SHERIFF_REQUIRE(u != v, "self loops are not allowed");
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  if (edge_count_ == 0) {
    uniform_weight_ = weight;
  } else if (weight != uniform_weight_) {
    weights_uniform_ = false;
  }
  ++edge_count_;
  total_weight_ += weight;
}

Vertex Graph::add_vertex() {
  adjacency_.emplace_back();
  return static_cast<Vertex>(adjacency_.size() - 1);
}

std::span<const Edge> Graph::neighbors(Vertex v) const {
  SHERIFF_REQUIRE(v < adjacency_.size(), "vertex out of range");
  return adjacency_[v];
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  SHERIFF_REQUIRE(u < adjacency_.size() && v < adjacency_.size(), "vertex out of range");
  const auto& edges = adjacency_[u];
  return std::any_of(edges.begin(), edges.end(), [v](const Edge& e) { return e.to == v; });
}

double Graph::min_edge_weight(Vertex u, Vertex v) const {
  SHERIFF_REQUIRE(u < adjacency_.size() && v < adjacency_.size(), "vertex out of range");
  double best = kInfiniteDistance;
  for (const Edge& e : adjacency_[u]) {
    if (e.to == v) best = std::min(best, e.weight);
  }
  return best;
}

std::size_t Graph::component_count() const {
  std::vector<bool> seen(adjacency_.size(), false);
  std::size_t components = 0;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < adjacency_.size(); ++start) {
    if (seen[start]) continue;
    ++components;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Edge& e : adjacency_[v]) {
        if (!seen[e.to]) {
          seen[e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
  }
  return components;
}

DistanceMatrix::DistanceMatrix(std::size_t n, double fill) : n_(n), data_(n * n, fill) {
  for (std::size_t i = 0; i < n_; ++i) set(i, i, 0.0);
}

void DistanceMatrix::set_symmetric(std::size_t i, std::size_t j, double d) {
  set(i, j, d);
  set(j, i, d);
}

bool DistanceMatrix::all_finite() const noexcept {
  for (double d : data_) {
    if (d == kInfiniteDistance) return false;
  }
  return true;
}

double DistanceMatrix::max_triangle_violation() const noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t k = 0; k < n_; ++k) {
        const double direct = at(i, j);
        const double via = at(i, k) + at(k, j);
        if (direct > via) worst = std::max(worst, direct - via);
      }
    }
  }
  return worst;
}

}  // namespace sheriff::graph
