#include "graph/kmedian_fast.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace sheriff::graph {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

/// One accepted/recommended single swap out of a delta sweep.
struct SwapChoice {
  bool found = false;
  std::size_t position = 0;  ///< median slot to close
  std::size_t facility = 0;  ///< facility id to open
  double gain = 0.0;
};

/// Per-shard sweep output; merged in shard order after the parallel phase.
struct ShardResult {
  // Best-improvement: highest-gain improving swap of the shard.
  SwapChoice best;
  // First-improvement: per median slot, the smallest outside-scan index of
  // an improving facility in this shard (kNone when none improves there).
  std::vector<std::size_t> first_by_pos;
};

bool improves(double cost, double gain, double min_relative_gain) {
  // Mirror the reference acceptance test: candidate < cost · (1 − ε).
  return cost - gain < cost * (1.0 - min_relative_gain);
}

/// (gain, facility id, position) ordering for best-improvement: strictly
/// higher gain wins; ties break on lowest facility id, then lowest slot.
bool better_choice(const SwapChoice& candidate, const SwapChoice& incumbent) {
  if (!incumbent.found) return true;
  if (candidate.gain != incumbent.gain) return candidate.gain > incumbent.gain;
  if (candidate.facility != incumbent.facility) return candidate.facility < incumbent.facility;
  return candidate.position < incumbent.position;
}

}  // namespace

KMedianState::KMedianState(const KMedianInstance& instance, std::vector<std::size_t> medians)
    : instance_(&instance) {
  open_mask_.assign(instance.distance->size(), 0);
  reset(std::move(medians));
}

void KMedianState::reset(std::vector<std::size_t> medians) {
  SHERIFF_REQUIRE(!medians.empty(), "median set must be non-empty");
  for (std::size_t f : open_) open_mask_[f] = 0;
  open_ = std::move(medians);
  for (std::size_t f : open_) {
    SHERIFF_REQUIRE(f < open_mask_.size(), "median out of range");
    open_mask_[f] = 1;
  }
  const std::size_t clients = instance_->clients.size();
  d1_.assign(clients, kInf);
  d2_.assign(clients, kInf);
  m1_.assign(clients, 0);
  m2_.assign(clients, 0);
  for (std::size_t ci = 0; ci < clients; ++ci) rebuild_client(ci);
  recompute_cost();
}

bool KMedianState::is_open(std::size_t facility) const {
  return facility < open_mask_.size() && open_mask_[facility] != 0;
}

void KMedianState::rebuild_client(std::size_t ci) {
  const std::size_t c = instance_->clients[ci];
  double d1 = kInf;
  double d2 = kInf;
  std::uint32_t m1 = 0;
  std::uint32_t m2 = 0;
  for (std::size_t s = 0; s < open_.size(); ++s) {
    const double d = instance_->distance->at(c, open_[s]);
    if (d < d1) {
      d2 = d1;
      m2 = m1;
      d1 = d;
      m1 = static_cast<std::uint32_t>(s);
    } else if (d < d2) {
      d2 = d;
      m2 = static_cast<std::uint32_t>(s);
    }
  }
  d1_[ci] = d1;
  d2_[ci] = d2;
  m1_[ci] = m1;
  m2_[ci] = m2;
}

void KMedianState::recompute_cost() {
  // Fixed client order: the sum is bitwise equal to kmedian_cost over the
  // same median set, so the fast trajectory tracks the reference exactly.
  double total = 0.0;
  for (std::size_t ci = 0; ci < d1_.size(); ++ci) total += d1_[ci];
  cost_ = total;
}

void KMedianState::apply_swap(std::size_t position, std::size_t facility) {
  SHERIFF_REQUIRE(position < open_.size(), "swap position out of range");
  SHERIFF_REQUIRE(facility < open_mask_.size(), "swap facility out of range");
  SHERIFF_REQUIRE(open_mask_[facility] == 0, "swap facility already open");
  open_mask_[open_[position]] = 0;
  open_[position] = facility;
  open_mask_[facility] = 1;
  const std::uint32_t pos = static_cast<std::uint32_t>(position);
  for (std::size_t ci = 0; ci < d1_.size(); ++ci) {
    if (m1_[ci] == pos || m2_[ci] == pos) {
      rebuild_client(ci);
      continue;
    }
    const double d = instance_->distance->at(instance_->clients[ci], facility);
    if (d < d1_[ci]) {
      d2_[ci] = d1_[ci];
      m2_[ci] = m1_[ci];
      d1_[ci] = d;
      m1_[ci] = pos;
    } else if (d < d2_[ci]) {
      d2_[ci] = d;
      m2_[ci] = pos;
    }
  }
  recompute_cost();
}

namespace {

/// Facilities outside the current median set, in instance order — the same
/// scan order the reference solver uses.
std::vector<std::size_t> outside_facilities(const KMedianInstance& instance,
                                            const KMedianState& state) {
  std::vector<std::size_t> outside;
  outside.reserve(instance.facilities.size());
  for (std::size_t f : instance.facilities) {
    if (!state.is_open(f)) outside.push_back(f);
  }
  return outside;
}

/// Evaluates the candidate facilities `outside[lo..hi)` against every median
/// slot via the delta formula and records the shard's recommendation.
void sweep_shard(const KMedianInstance& instance, const KMedianState& state,
                 const std::vector<std::size_t>& outside, std::size_t lo, std::size_t hi,
                 const FastKMedianOptions& options, ShardResult& result) {
  const std::size_t k = state.open().size();
  const std::size_t clients = instance.clients.size();
  const double cost = state.cost();
  std::vector<double> loss(k);
  if (options.policy == SwapPolicy::kFirstImprovement) {
    result.first_by_pos.assign(k, kNone);
  }
  for (std::size_t oi = lo; oi < hi; ++oi) {
    const std::size_t f = outside[oi];
    std::fill(loss.begin(), loss.end(), 0.0);
    double gain_add = 0.0;
    for (std::size_t ci = 0; ci < clients; ++ci) {
      const double dcf = instance.distance->at(instance.clients[ci], f);
      const double d1 = state.nearest_distance(ci);
      if (dcf < d1) {
        gain_add += d1 - dcf;
      } else {
        // Only matters when the client's own median closes: it reconnects
        // to min(second-nearest, f).
        loss[state.nearest_position(ci)] += std::min(state.second_distance(ci), dcf) - d1;
      }
    }
    for (std::size_t pos = 0; pos < k; ++pos) {
      const double gain = gain_add - loss[pos];
      if (!improves(cost, gain, options.min_relative_gain)) continue;
      if (options.policy == SwapPolicy::kFirstImprovement) {
        // oi ascends, so the first hit per slot is the shard's smallest.
        if (result.first_by_pos[pos] == kNone) result.first_by_pos[pos] = oi;
      } else {
        SwapChoice candidate{true, pos, f, gain};
        if (better_choice(candidate, result.best)) result.best = candidate;
      }
    }
  }
}

/// One full delta sweep over all k·|outside| single swaps. Shards the
/// candidate facilities, merges shard results in fixed order, and returns
/// the chosen swap (policy-dependent) — byte-identical for any pool size.
SwapChoice delta_sweep(const KMedianInstance& instance, const KMedianState& state,
                       const std::vector<std::size_t>& outside,
                       const FastKMedianOptions& options) {
  SwapChoice chosen;
  if (outside.empty()) return chosen;
  const std::size_t shard_size = std::max<std::size_t>(1, options.shard_size);
  const std::size_t shards = (outside.size() + shard_size - 1) / shard_size;
  std::vector<ShardResult> results(shards);
  const auto run_shard = [&](std::size_t s) {
    const std::size_t lo = s * shard_size;
    const std::size_t hi = std::min(outside.size(), lo + shard_size);
    sweep_shard(instance, state, outside, lo, hi, options, results[s]);
  };
  if (options.pool != nullptr && shards > 1) {
    common::parallel_for(*options.pool, shards, run_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
  }
  if (options.policy == SwapPolicy::kFirstImprovement) {
    // Reference order is median-slot major: the winner is the lowest slot
    // with any improving facility, then the smallest scan index there.
    const std::size_t k = state.open().size();
    for (std::size_t pos = 0; pos < k && !chosen.found; ++pos) {
      std::size_t first = kNone;
      for (const ShardResult& r : results) {
        if (r.first_by_pos[pos] != kNone) {
          first = r.first_by_pos[pos];
          break;  // shards cover ascending index ranges
        }
      }
      if (first != kNone) {
        chosen.found = true;
        chosen.position = pos;
        chosen.facility = outside[first];
      }
    }
  } else {
    for (const ShardResult& r : results) {
      if (r.best.found && better_choice(r.best, chosen)) chosen = r.best;
    }
  }
  return chosen;
}

/// The p ≥ 2 convergence check: the reference combinational first-improvement
/// scan over swap sizes 2..p, seeded from the current (fast-p1) solution.
/// Applies the first improving multi-swap via state.reset and returns true;
/// returns false when no multi-swap improves (local optimality certificate).
bool multi_swap_scan(const KMedianInstance& instance, KMedianState& state, KMedianSolution& sol,
                     const FastKMedianOptions& options) {
  const std::size_t max_swap = std::min(options.p, instance.k);
  for (std::size_t swap = 2; swap <= max_swap; ++swap) {
    const std::vector<std::size_t> outside = outside_facilities(instance, state);
    if (outside.size() < swap) continue;
    bool found = false;
    detail::for_each_combination(
        state.open().size(), swap, [&](const std::vector<std::size_t>& out_idx) {
          return detail::for_each_combination(
              outside.size(), swap, [&](const std::vector<std::size_t>& in_idx) {
                if (instance.max_evaluations != 0 &&
                    sol.evaluations >= instance.max_evaluations) {
                  sol.hit_evaluation_cap = true;
                  return false;
                }
                std::vector<std::size_t> candidate = state.open();
                for (std::size_t i = 0; i < swap; ++i) candidate[out_idx[i]] = outside[in_idx[i]];
                const double cost = kmedian_cost(instance, candidate);
                ++sol.evaluations;
                if (cost < state.cost() * (1.0 - options.min_relative_gain)) {
                  state.reset(std::move(candidate));
                  found = true;
                  return false;
                }
                return true;
              });
        });
    if (found) return true;
    if (sol.hit_evaluation_cap) return false;
  }
  return false;
}

bool all_distances_finite(const KMedianInstance& instance) {
  for (std::size_t c : instance.clients) {
    for (std::size_t f : instance.facilities) {
      if (!std::isfinite(instance.distance->at(c, f))) return false;
    }
  }
  return true;
}

}  // namespace

KMedianSolution fast_kmedian(const KMedianInstance& instance, const FastKMedianOptions& options) {
  detail::validate(instance);
  SHERIFF_REQUIRE(options.p >= 1, "swap size p must be at least 1");
  if (!all_distances_finite(instance)) {
    // A partitioned fabric can leave unreachable pairs; the delta formulas
    // would mix infinities (∞ − ∞), so defer to the reference solver.
    return local_search_kmedian(instance, options.p, options.min_relative_gain);
  }

  KMedianState state(instance,
                     {instance.facilities.begin(),
                      instance.facilities.begin() + static_cast<std::ptrdiff_t>(instance.k)});
  KMedianSolution sol;
  sol.evaluations = 1;

  bool converged = false;
  while (!converged && !sol.hit_evaluation_cap) {
    // Fast p=1 phase: delta sweeps until no single swap improves.
    for (;;) {
      if (instance.max_evaluations != 0 && sol.evaluations >= instance.max_evaluations) {
        sol.hit_evaluation_cap = true;
        break;
      }
      const std::vector<std::size_t> outside = outside_facilities(instance, state);
      const SwapChoice choice = delta_sweep(instance, state, outside, options);
      sol.evaluations += outside.size() * state.open().size();
      if (!choice.found) break;
      state.apply_swap(choice.position, choice.facility);
    }
    if (sol.hit_evaluation_cap) break;
    // Convergence check: no p ≤ options.p swap may improve. A successful
    // multi-swap re-opens the fast p=1 phase, exactly like the reference
    // restarting its scan at swap size 1.
    converged = options.p < 2 || !multi_swap_scan(instance, state, sol, options);
  }

  sol.medians = state.open();
  std::sort(sol.medians.begin(), sol.medians.end());
  sol.cost = state.cost();
  return sol;
}

}  // namespace sheriff::graph
