#pragma once
// Weighted graph with adjacency lists. This is the representation behind
// both of the paper's graphs: the wired network graph G_r (racks +
// switches) and the rack-level cost graph T that VMMIGRATION reduces to a
// k-median instance on (Sec. V-A).

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace sheriff::graph {

using Vertex = std::uint32_t;

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

struct Edge {
  Vertex to = 0;
  double weight = 0.0;
};

/// Undirected weighted multigraph (parallel edges allowed — the rack graph
/// T is explicitly a multigraph in the paper before Floyd–Warshall
/// collapses it to a complete simple graph T').
class Graph {
 public:
  explicit Graph(std::size_t vertex_count = 0);

  [[nodiscard]] std::size_t vertex_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds an undirected edge u—v with the given non-negative weight.
  void add_edge(Vertex u, Vertex v, double weight);

  /// Appends a new isolated vertex, returning its id.
  Vertex add_vertex();

  [[nodiscard]] std::span<const Edge> neighbors(Vertex v) const;

  /// True if some edge u—v exists.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// Smallest weight among parallel edges u—v; infinity if none.
  [[nodiscard]] double min_edge_weight(Vertex u, Vertex v) const;

  /// Sum of all edge weights (each undirected edge counted once).
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// True while every edge carries the same weight (trivially true when
  /// empty). All the DCN fabrics' hop-distance graphs are uniform, which
  /// lets shortest-path construction take a level-synchronous fast path.
  [[nodiscard]] bool uniform_weights() const noexcept { return weights_uniform_; }

  /// The weight shared by every edge; meaningful only when
  /// uniform_weights() and edge_count() > 0.
  [[nodiscard]] double uniform_weight() const noexcept { return uniform_weight_; }

  /// Number of connected components (weights ignored).
  [[nodiscard]] std::size_t component_count() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
  double total_weight_ = 0.0;
  double uniform_weight_ = 0.0;
  bool weights_uniform_ = true;
};

/// Dense symmetric distance matrix, the output shape of all-pairs shortest
/// paths and the input shape of the k-median solvers.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n, double fill = kInfiniteDistance);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const { return data_[i * n_ + j]; }
  void set(std::size_t i, std::size_t j, double d) { data_[i * n_ + j] = d; }
  /// Sets both (i,j) and (j,i).
  void set_symmetric(std::size_t i, std::size_t j, double d);

  /// True when every off-diagonal entry is finite.
  [[nodiscard]] bool all_finite() const noexcept;

  /// Maximum violation of the triangle inequality (0 for a metric).
  [[nodiscard]] double max_triangle_violation() const noexcept;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

}  // namespace sheriff::graph
