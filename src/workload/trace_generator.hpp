#pragma once
// Synthetic trace generators — the stand-in for the paper's proprietary
// ZopleCloud traces (Fig. 3–5). Each generator produces a streaming time
// series with the qualitative structure the paper's raw data shows:
//
//   * CPU utilization: strong diurnal cycle + AR(1) colored noise
//     (MySQL-style CPU-bound hosts),
//   * disk I/O rate: modest baseline with heavy bursts,
//   * switch traffic: daily cycle modulated by a weekly envelope with
//     regular peaks and troughs.
//
// All randomness is seeded; a generator is a deterministic function of its
// options + seed.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "snapshot/fwd.hpp"

namespace sheriff::wl {

/// Streaming time-series source. Values are in the generator's natural
/// units (percent, MB, ...); callers normalize as needed.
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  /// Produces the next sample.
  virtual double next() = 0;
  /// Convenience: the next n samples.
  [[nodiscard]] std::vector<double> generate(std::size_t n);
  /// Checkpoint hooks: mutable stream state only (RNG position, AR state,
  /// sample clock). Options stay with the constructor — load_state assumes
  /// the target was built with the same options and seed.
  virtual void save_state(snapshot::Writer& writer) const = 0;
  virtual void load_state(snapshot::Reader& reader) = 0;
};

struct SeasonalTraceOptions {
  double base = 40.0;        ///< mean level
  double amplitude = 25.0;   ///< seasonal swing
  double period = 288.0;     ///< samples per cycle (e.g. 5-min samples/day)
  double phase = 0.0;        ///< cycle offset in samples
  double ar_coefficient = 0.8;   ///< AR(1) noise persistence
  double noise_sigma = 3.0;      ///< innovation std-dev of the noise
  double burst_probability = 0.0;   ///< per-sample chance of a spike
  double burst_magnitude = 0.0;     ///< mean spike height (exponential)
  double floor = 0.0;        ///< clamp lower bound
  double ceiling = 1e18;     ///< clamp upper bound
};

/// base + amplitude * sin(2 pi (t+phase)/period) + AR(1) noise + bursts.
class SeasonalTraceGenerator : public TraceGenerator {
 public:
  SeasonalTraceGenerator(SeasonalTraceOptions options, std::uint64_t seed);
  double next() override;
  void save_state(snapshot::Writer& writer) const override;
  void load_state(snapshot::Reader& reader) override;

 private:
  SeasonalTraceOptions options_;
  common::Pcg32 rng_;
  double ar_state_ = 0.0;
  std::size_t t_ = 0;
};

/// Weekly switch traffic: daily sinusoid scaled by a 7-day envelope
/// (weekdays heavier than weekends), like the paper's Fig. 5.
class WeeklyTrafficGenerator : public TraceGenerator {
 public:
  struct Options {
    double base_mb = 45.0;
    double daily_amplitude_mb = 30.0;
    double samples_per_day = 48.0;  ///< 30-min samples
    double weekend_factor = 0.55;   ///< weekend scale of the daily swing
    double noise_sigma = 2.5;
    double ar_coefficient = 0.6;
  };
  WeeklyTrafficGenerator(Options options, std::uint64_t seed);
  double next() override;
  void save_state(snapshot::Writer& writer) const override;
  void load_state(snapshot::Reader& reader) override;

 private:
  Options options_;
  common::Pcg32 rng_;
  double ar_state_ = 0.0;
  std::size_t t_ = 0;
};

/// Factory presets matching Fig. 3 (CPU %), Fig. 4 (disk I/O MB) and
/// Fig. 5 (weekly traffic MB).
std::unique_ptr<TraceGenerator> make_cpu_trace(std::uint64_t seed);
std::unique_ptr<TraceGenerator> make_disk_io_trace(std::uint64_t seed);
std::unique_ptr<TraceGenerator> make_weekly_traffic_trace(std::uint64_t seed);

/// Normalizes a raw trace into [0,1] given the natural full-scale value.
std::vector<double> normalize_trace(const std::vector<double>& raw, double full_scale);

}  // namespace sheriff::wl
