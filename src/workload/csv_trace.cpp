#include "workload/csv_trace.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>

#include "common/require.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::wl {

namespace {

/// Splits one CSV line (no quoted-comma support: monitoring exports are
/// plain numeric tables).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

bool parse_double(const std::string& text, double* out) {
  // Trim surrounding whitespace / CR.
  std::size_t begin = text.find_first_not_of(" \t\r");
  std::size_t end = text.find_last_not_of(" \t\r");
  if (begin == std::string::npos) return false;
  const std::string trimmed = text.substr(begin, end - begin + 1);
  char* parse_end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &parse_end);
  if (parse_end != trimmed.c_str() + trimmed.size()) return false;
  *out = value;
  return true;
}

}  // namespace

std::vector<double> read_csv_column(std::istream& is, std::size_t column) {
  std::vector<double> out;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto cells = split_csv_line(line);
    SHERIFF_REQUIRE(column < cells.size(),
                    "CSV line " + std::to_string(line_no) + " has no column " +
                        std::to_string(column));
    double value = 0.0;
    if (!parse_double(cells[column], &value)) {
      // A non-numeric first data row is a header; anything later is an error.
      SHERIFF_REQUIRE(first, "CSV line " + std::to_string(line_no) +
                                 ": non-numeric cell '" + cells[column] + "'");
      first = false;
      continue;
    }
    first = false;
    out.push_back(value);
  }
  return out;
}

std::vector<double> read_csv_column_file(const std::string& path, std::size_t column) {
  std::ifstream is(path);
  SHERIFF_REQUIRE(is.good(), "cannot open CSV file: " + path);
  return read_csv_column(is, column);
}

ReplayTraceGenerator::ReplayTraceGenerator(std::vector<double> samples, bool loop)
    : samples_(std::move(samples)), loop_(loop) {
  SHERIFF_REQUIRE(!samples_.empty(), "replay trace needs at least one sample");
}

double ReplayTraceGenerator::next() {
  const double value = samples_[position_];
  if (position_ + 1 < samples_.size()) {
    ++position_;
  } else if (loop_) {
    position_ = 0;
  }
  return value;
}

void ReplayTraceGenerator::save_state(snapshot::Writer& writer) const {
  writer.put_u64(position_);
}

void ReplayTraceGenerator::load_state(snapshot::Reader& reader) {
  const std::uint64_t position = reader.get_u64();
  SHERIFF_REQUIRE(position < samples_.size(), "replay position beyond the recorded trace");
  position_ = static_cast<std::size_t>(position);
}

}  // namespace sheriff::wl
