#pragma once
// Dependency graph G_d (Sec. II-C): edges join VMs that communicate /
// depend on each other. It doubles as the conflict graph for migration —
// two dependent VMs must not share a physical host.

#include <cstddef>
#include <span>
#include <vector>

#include "workload/vm.hpp"

namespace sheriff::wl {

class DependencyGraph {
 public:
  explicit DependencyGraph(std::size_t vm_count = 0);

  [[nodiscard]] std::size_t vm_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  void resize(std::size_t vm_count);
  /// Adds an (undirected) dependency a—b; duplicate edges are ignored.
  void add_dependency(VmId a, VmId b);

  [[nodiscard]] bool depends(VmId a, VmId b) const;
  /// N_d(v): the VM's dependency neighbors (excluding itself).
  [[nodiscard]] std::span<const VmId> neighbors(VmId vm) const;

 private:
  std::vector<std::vector<VmId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace sheriff::wl
