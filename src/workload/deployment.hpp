#pragma once
// Deployment: the live state of "which VM runs where, under what load".
// It owns the VM population, per-host capacity bookkeeping, the dependency
// graph, and the per-VM workload dynamics (trace-generator driven), and it
// enforces the migration feasibility constraints of Sec. III-C:
// destination capacity (Eq. 8) and the dependency conflict rule (Eq. 7).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "snapshot/fwd.hpp"
#include "topology/topology.hpp"
#include "workload/dependency.hpp"
#include "workload/trace_generator.hpp"
#include "workload/vm.hpp"

namespace sheriff::common {
class ThreadPool;
}  // namespace sheriff::common

namespace sheriff::wl {

enum class PlacementPolicy : std::uint8_t {
  kUniform,  ///< VMs spread uniformly over hosts with room
  kSkewed,   ///< a subset of hosts is preferentially packed (creates the
             ///< imbalance Fig. 9/10 start from)
};

struct DeploymentOptions {
  double vms_per_host = 3.0;        ///< average population density
  int min_vm_capacity = 1;
  int max_vm_capacity = 20;         ///< Sec. VI-B: "VM capacity up to 20"
  int host_capacity = 80;           ///< capacity units a host can carry
  double delay_sensitive_fraction = 0.1;
  double value_mean = 5.0;          ///< VM values ~ Exp(1/mean) + 1
  double dependency_degree = 1.0;   ///< average dependency edges per VM
  PlacementPolicy placement = PlacementPolicy::kSkewed;
  double skew_hot_fraction = 0.25;  ///< share of hosts that attract extra VMs
  double skew_weight = 6.0;         ///< attraction multiplier for hot hosts
  double hot_vm_fraction = 0.08;    ///< VMs with elevated load dynamics
  /// Multiplier on hot_vm_fraction for VMs placed on the skew-attractor
  /// hosts (1.0 = hotness independent of placement). Raising it makes the
  /// packed hosts also the busy ones — the overloaded-rack scenario the
  /// balance experiments start from.
  double hot_host_bias = 1.0;
  std::uint64_t seed = 42;
};

class Deployment {
 public:
  /// Creates and places the VM population over `topo`'s hosts. The
  /// topology must outlive the deployment.
  Deployment(const topo::Topology& topo, const DeploymentOptions& options);

  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const DeploymentOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] const VirtualMachine& vm(VmId id) const;
  [[nodiscard]] std::span<const VirtualMachine> vms() const noexcept { return vms_; }
  [[nodiscard]] const DependencyGraph& dependencies() const noexcept { return dependencies_; }

  /// VMs currently hosted on `host`.
  [[nodiscard]] std::span<const VmId> vms_on_host(topo::NodeId host) const;
  /// Capacity units already committed on `host`.
  [[nodiscard]] int host_used_capacity(topo::NodeId host) const;
  [[nodiscard]] int host_free_capacity(topo::NodeId host) const;
  [[nodiscard]] int host_capacity() const noexcept { return options_.host_capacity; }

  /// True when `vm` may move to `host`: enough free capacity and no
  /// dependency conflict with VMs already there.
  [[nodiscard]] bool can_place(VmId vm, topo::NodeId host) const;

  /// Relocates the VM (checks can_place; throws if infeasible).
  void move_vm(VmId vm, topo::NodeId host);

  /// Declares a dependency between two VMs after construction (e.g. a new
  /// application tier coming up). The VMs must currently live on different
  /// hosts — dependent VMs may never share one.
  void add_dependency(VmId a, VmId b);

  /// Advances every VM's workload profile by one sample tick.
  void advance();

  /// Same, sweeping the VMs across `pool` (serial when null). Each VM owns
  /// its feature generators and their counter-seeded RNG streams, so the
  /// per-VM writes are disjoint and the result is bit-identical to the
  /// serial sweep at any pool size.
  void advance(common::ThreadPool* pool);

  /// Capacity-weighted load on a host as a percentage of its capacity.
  [[nodiscard]] double host_load_percent(topo::NodeId host) const;
  /// Standard deviation of host_load_percent over all hosts — the Fig. 9 /
  /// Fig. 10 balance metric.
  [[nodiscard]] double workload_stddev() const;
  /// Mean of host_load_percent over all hosts.
  [[nodiscard]] double workload_mean() const;

  /// Mutable access for the engine (updates profiles after prediction).
  VirtualMachine& vm_mutable(VmId id);

  /// Checkpoint hooks. Everything the constructor derives deterministically
  /// from (topology, options, seed) — VM capacities/values, dependencies,
  /// attractor set, generator options — is NOT serialized; load_state
  /// assumes a freshly constructed deployment with identical inputs and
  /// restores only the mutable state: placement (including the
  /// history-dependent per-host VM ordering, which downstream iteration
  /// depends on bit-for-bit), profiles, and trace-generator streams.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct VmDynamics {
    // One generator per profile feature, pre-normalized to [0, 1].
    std::array<std::unique_ptr<TraceGenerator>, kFeatureCount> feature_sources;
  };

  void create_population(common::Pcg32& rng);
  void place_population(common::Pcg32& rng);
  void create_dependencies(common::Pcg32& rng);
  void create_dynamics(common::Pcg32& rng);

  const topo::Topology* topo_;
  DeploymentOptions options_;
  std::vector<VirtualMachine> vms_;
  std::vector<VmDynamics> dynamics_;
  DependencyGraph dependencies_;
  std::vector<std::vector<VmId>> host_vms_;  ///< indexed by NodeId
  std::vector<int> host_used_;               ///< indexed by NodeId
  std::vector<bool> attractor_host_;         ///< skew attractors, indexed by NodeId
};

}  // namespace sheriff::wl
