#include "workload/deployment.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "snapshot/archive.hpp"

namespace sheriff::wl {

Deployment::Deployment(const topo::Topology& topo, const DeploymentOptions& options)
    : topo_(&topo), options_(options) {
  SHERIFF_REQUIRE(options.vms_per_host > 0.0, "vms_per_host must be positive");
  SHERIFF_REQUIRE(options.min_vm_capacity >= 1, "min VM capacity must be >= 1");
  SHERIFF_REQUIRE(options.max_vm_capacity >= options.min_vm_capacity,
                  "max VM capacity below min");
  SHERIFF_REQUIRE(options.max_vm_capacity <= options.host_capacity,
                  "a VM must fit on an empty host");
  host_vms_.resize(topo.node_count());
  host_used_.assign(topo.node_count(), 0);

  common::Pcg32 rng(options.seed);
  create_population(rng);
  place_population(rng);
  create_dependencies(rng);
  create_dynamics(rng);
  advance();  // start from a live profile, not all-zeros
}

void Deployment::create_population(common::Pcg32& rng) {
  const std::size_t host_count = topo_->host_count();
  const auto vm_count = static_cast<std::size_t>(
      std::llround(static_cast<double>(host_count) * options_.vms_per_host));
  vms_.reserve(vm_count);
  for (std::size_t i = 0; i < vm_count; ++i) {
    VirtualMachine vm;
    vm.id = static_cast<VmId>(i);
    vm.capacity = rng.uniform_int(options_.min_vm_capacity, options_.max_vm_capacity);
    vm.value = 1.0 + rng.exponential(1.0 / options_.value_mean);
    vm.delay_sensitive = rng.bernoulli(options_.delay_sensitive_fraction);
    vms_.push_back(vm);
  }
  dependencies_.resize(vms_.size());
}

void Deployment::place_population(common::Pcg32& rng) {
  const auto hosts = topo_->nodes_of_kind(topo::NodeKind::kHost);
  SHERIFF_REQUIRE(!hosts.empty(), "topology has no hosts");

  // Attraction weights: under the skewed policy a hot subset of hosts
  // attracts `skew_weight` times the placement probability, producing the
  // initial imbalance the balance experiments start from.
  std::vector<double> weight(hosts.size(), 1.0);
  attractor_host_.assign(host_vms_.size(), false);
  if (options_.placement == PlacementPolicy::kSkewed) {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (rng.next_double() < options_.skew_hot_fraction) {
        weight[i] = options_.skew_weight;
        attractor_host_[hosts[i]] = true;
      }
    }
  }
  double total_weight = 0.0;
  for (double w : weight) total_weight += w;

  for (auto& vm : vms_) {
    topo::NodeId chosen = topo::kInvalidNode;
    // Weighted sampling with rejection on capacity/conflict; bounded tries
    // then linear fallback to guarantee progress.
    for (int attempt = 0; attempt < 64 && chosen == topo::kInvalidNode; ++attempt) {
      double pick = rng.next_double() * total_weight;
      std::size_t idx = 0;
      for (; idx + 1 < hosts.size(); ++idx) {
        pick -= weight[idx];
        if (pick <= 0.0) break;
      }
      if (host_used_[hosts[idx]] + vm.capacity <= options_.host_capacity) chosen = hosts[idx];
    }
    if (chosen == topo::kInvalidNode) {
      for (topo::NodeId h : hosts) {
        if (host_used_[h] + vm.capacity <= options_.host_capacity) {
          chosen = h;
          break;
        }
      }
    }
    SHERIFF_REQUIRE(chosen != topo::kInvalidNode,
                    "deployment does not fit: raise host_capacity or lower vms_per_host");
    vm.host = chosen;
    host_vms_[chosen].push_back(vm.id);
    host_used_[chosen] += vm.capacity;
  }
}

void Deployment::create_dependencies(common::Pcg32& rng) {
  if (vms_.size() < 2) return;
  const auto target_edges = static_cast<std::size_t>(
      std::llround(static_cast<double>(vms_.size()) * options_.dependency_degree / 2.0));
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 20 + 100;
  while (made < target_edges && attempts < max_attempts) {
    ++attempts;
    const auto a = static_cast<VmId>(rng.next_below(static_cast<std::uint32_t>(vms_.size())));
    const auto b = static_cast<VmId>(rng.next_below(static_cast<std::uint32_t>(vms_.size())));
    if (a == b) continue;
    // Dependent VMs must not share a host (conflict rule), so only link
    // VMs that already live apart.
    if (vms_[a].host == vms_[b].host) continue;
    if (dependencies_.depends(a, b)) continue;
    dependencies_.add_dependency(a, b);
    ++made;
  }
}

void Deployment::create_dynamics(common::Pcg32& rng) {
  dynamics_.resize(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    double hot_probability = options_.hot_vm_fraction;
    if (vms_[i].host != topo::kInvalidNode && attractor_host_[vms_[i].host]) {
      hot_probability *= options_.hot_host_bias;
    }
    const bool hot = rng.next_double() < hot_probability;
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      SeasonalTraceOptions opt;
      opt.base = hot ? rng.uniform(0.55, 0.75) : rng.uniform(0.2, 0.45);
      opt.amplitude = rng.uniform(0.05, hot ? 0.25 : 0.15);
      opt.period = rng.uniform(180.0, 420.0);
      opt.phase = rng.uniform(0.0, opt.period);
      opt.ar_coefficient = rng.uniform(0.6, 0.9);
      opt.noise_sigma = rng.uniform(0.01, 0.04);
      opt.burst_probability = hot ? 0.05 : 0.005;
      opt.burst_magnitude = hot ? 0.2 : 0.08;
      opt.floor = 0.0;
      opt.ceiling = 1.0;
      dynamics_[i].feature_sources[f] =
          std::make_unique<SeasonalTraceGenerator>(opt, rng.next_u32());
    }
  }
}

const VirtualMachine& Deployment::vm(VmId id) const {
  SHERIFF_REQUIRE(id < vms_.size(), "VM id out of range");
  return vms_[id];
}

VirtualMachine& Deployment::vm_mutable(VmId id) {
  SHERIFF_REQUIRE(id < vms_.size(), "VM id out of range");
  return vms_[id];
}

std::span<const VmId> Deployment::vms_on_host(topo::NodeId host) const {
  SHERIFF_REQUIRE(host < host_vms_.size(), "host id out of range");
  return host_vms_[host];
}

int Deployment::host_used_capacity(topo::NodeId host) const {
  SHERIFF_REQUIRE(host < host_used_.size(), "host id out of range");
  return host_used_[host];
}

int Deployment::host_free_capacity(topo::NodeId host) const {
  return options_.host_capacity - host_used_capacity(host);
}

bool Deployment::can_place(VmId vm_id, topo::NodeId host) const {
  const VirtualMachine& m = vm(vm_id);
  SHERIFF_REQUIRE(topo_->node(host).kind == topo::NodeKind::kHost,
                  "placement target is not a host");
  if (m.host == host) return false;
  if (host_free_capacity(host) < m.capacity) return false;
  for (VmId other : dependencies_.neighbors(vm_id)) {
    if (vms_[other].host == host) return false;  // conflict rule (Eq. 7)
  }
  return true;
}

void Deployment::move_vm(VmId vm_id, topo::NodeId host) {
  SHERIFF_REQUIRE(can_place(vm_id, host), "infeasible VM move");
  VirtualMachine& m = vms_[vm_id];
  auto& source_list = host_vms_[m.host];
  source_list.erase(std::find(source_list.begin(), source_list.end(), vm_id));
  host_used_[m.host] -= m.capacity;
  m.host = host;
  host_vms_[host].push_back(vm_id);
  host_used_[host] += m.capacity;
}

void Deployment::add_dependency(VmId a, VmId b) {
  SHERIFF_REQUIRE(a < vms_.size() && b < vms_.size(), "VM id out of range");
  SHERIFF_REQUIRE(vms_[a].host != vms_[b].host,
                  "dependent VMs may not share a host (conflict rule)");
  dependencies_.add_dependency(a, b);
}

void Deployment::advance() {
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      vms_[i].profile.values[f] = dynamics_[i].feature_sources[f]->next();
    }
  }
}

void Deployment::advance(common::ThreadPool* pool) {
  // Each VM's feature generators own independent counter-seeded RNG
  // streams, so iteration i touches only vms_[i]/dynamics_[i]: the sweep
  // parallelizes with bit-identical results at any pool size. Tiny fleets
  // stay serial — task dispatch would cost more than the tick.
  constexpr std::size_t kParallelThreshold = 512;
  if (pool == nullptr || vms_.size() < kParallelThreshold) {
    advance();
    return;
  }
  common::parallel_for(*pool, vms_.size(), [this](std::size_t i) {
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      vms_[i].profile.values[f] = dynamics_[i].feature_sources[f]->next();
    }
  });
}

void Deployment::save_state(snapshot::Writer& writer) const {
  writer.put_u64(vms_.size());
  for (const VirtualMachine& m : vms_) {
    writer.put_u32(m.host);
    for (double v : m.profile.values) writer.put_f64(v);
  }
  // host_vms_ ordering is history-dependent (move_vm erases + appends), and
  // vms_on_host() iteration order feeds migration decisions — serialize it
  // verbatim instead of reconstructing it.
  writer.put_u64(host_vms_.size());
  for (const auto& list : host_vms_) writer.put_u32v(list);
  writer.put_u64(host_used_.size());
  for (int used : host_used_) writer.put_i64(used);
  writer.put_u64(dynamics_.size());
  for (const VmDynamics& d : dynamics_) {
    for (const auto& source : d.feature_sources) source->save_state(writer);
  }
}

void Deployment::load_state(snapshot::Reader& reader) {
  const std::uint64_t vm_count_stored = reader.get_u64();
  SHERIFF_REQUIRE(vm_count_stored == vms_.size(),
                  "checkpoint VM count does not match this deployment");
  for (VirtualMachine& m : vms_) {
    m.host = reader.get_u32();
    for (double& v : m.profile.values) v = reader.get_f64();
  }
  const std::uint64_t host_lists = reader.get_u64();
  SHERIFF_REQUIRE(host_lists == host_vms_.size(),
                  "checkpoint host table does not match this topology");
  for (auto& list : host_vms_) list = reader.get_u32v();
  const std::uint64_t used_entries = reader.get_u64();
  SHERIFF_REQUIRE(used_entries == host_used_.size(),
                  "checkpoint host-capacity table does not match this topology");
  for (int& used : host_used_) used = static_cast<int>(reader.get_i64());
  const std::uint64_t dynamics_entries = reader.get_u64();
  SHERIFF_REQUIRE(dynamics_entries == dynamics_.size(),
                  "checkpoint dynamics table does not match this deployment");
  for (VmDynamics& d : dynamics_) {
    for (const auto& source : d.feature_sources) source->load_state(reader);
  }
}

double Deployment::host_load_percent(topo::NodeId host) const {
  double load = 0.0;
  for (VmId id : vms_on_host(host)) load += vms_[id].effective_load();
  return 100.0 * load / static_cast<double>(options_.host_capacity);
}

double Deployment::workload_stddev() const {
  common::RunningStats stats;
  for (const auto& node : topo_->nodes()) {
    if (node.kind == topo::NodeKind::kHost) stats.add(host_load_percent(node.id));
  }
  return stats.stddev();
}

double Deployment::workload_mean() const {
  common::RunningStats stats;
  for (const auto& node : topo_->nodes()) {
    if (node.kind == topo::NodeKind::kHost) stats.add(host_load_percent(node.id));
  }
  return stats.mean();
}

}  // namespace sheriff::wl
