#include "workload/dependency.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace sheriff::wl {

DependencyGraph::DependencyGraph(std::size_t vm_count) : adjacency_(vm_count) {}

void DependencyGraph::resize(std::size_t vm_count) {
  SHERIFF_REQUIRE(vm_count >= adjacency_.size(), "shrinking would orphan edges");
  adjacency_.resize(vm_count);
}

void DependencyGraph::add_dependency(VmId a, VmId b) {
  SHERIFF_REQUIRE(a < adjacency_.size() && b < adjacency_.size(), "VM id out of range");
  SHERIFF_REQUIRE(a != b, "a VM cannot depend on itself");
  if (depends(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
}

bool DependencyGraph::depends(VmId a, VmId b) const {
  SHERIFF_REQUIRE(a < adjacency_.size() && b < adjacency_.size(), "VM id out of range");
  const auto& edges = adjacency_[a];
  return std::find(edges.begin(), edges.end(), b) != edges.end();
}

std::span<const VmId> DependencyGraph::neighbors(VmId vm) const {
  SHERIFF_REQUIRE(vm < adjacency_.size(), "VM id out of range");
  return adjacency_[vm];
}

}  // namespace sheriff::wl
