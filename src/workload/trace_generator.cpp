#include "workload/trace_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "snapshot/rng_io.hpp"

namespace sheriff::wl {

std::vector<double> TraceGenerator::generate(std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

SeasonalTraceGenerator::SeasonalTraceGenerator(SeasonalTraceOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SHERIFF_REQUIRE(options.period > 0.0, "seasonal period must be positive");
  SHERIFF_REQUIRE(std::fabs(options.ar_coefficient) < 1.0, "AR(1) coefficient must be stable");
}

double SeasonalTraceGenerator::next() {
  const double phase =
      2.0 * std::numbers::pi * (static_cast<double>(t_) + options_.phase) / options_.period;
  ++t_;
  ar_state_ = options_.ar_coefficient * ar_state_ + rng_.normal(0.0, options_.noise_sigma);
  double value = options_.base + options_.amplitude * std::sin(phase) + ar_state_;
  if (options_.burst_probability > 0.0 && rng_.bernoulli(options_.burst_probability)) {
    value += rng_.exponential(1.0 / std::max(options_.burst_magnitude, 1e-9));
  }
  return std::clamp(value, options_.floor, options_.ceiling);
}

void SeasonalTraceGenerator::save_state(snapshot::Writer& writer) const {
  snapshot::put_rng(writer, rng_);
  writer.put_f64(ar_state_);
  writer.put_u64(t_);
}

void SeasonalTraceGenerator::load_state(snapshot::Reader& reader) {
  snapshot::get_rng(reader, rng_);
  ar_state_ = reader.get_f64();
  t_ = reader.get_u64();
}

WeeklyTrafficGenerator::WeeklyTrafficGenerator(Options options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SHERIFF_REQUIRE(options.samples_per_day > 0.0, "samples_per_day must be positive");
}

double WeeklyTrafficGenerator::next() {
  const double day = static_cast<double>(t_) / options_.samples_per_day;
  const int day_of_week = static_cast<int>(day) % 7;
  const bool weekend = day_of_week >= 5;
  const double daily_phase = 2.0 * std::numbers::pi * day;
  ++t_;
  ar_state_ = options_.ar_coefficient * ar_state_ + rng_.normal(0.0, options_.noise_sigma);
  const double swing = weekend ? options_.weekend_factor : 1.0;
  // Shift the sinusoid so traffic troughs at "night" (day fraction 0).
  const double value = options_.base_mb +
                       swing * options_.daily_amplitude_mb * std::sin(daily_phase - 0.5 * std::numbers::pi) +
                       ar_state_;
  return std::max(value, 0.0);
}

void WeeklyTrafficGenerator::save_state(snapshot::Writer& writer) const {
  snapshot::put_rng(writer, rng_);
  writer.put_f64(ar_state_);
  writer.put_u64(t_);
}

void WeeklyTrafficGenerator::load_state(snapshot::Reader& reader) {
  snapshot::get_rng(reader, rng_);
  ar_state_ = reader.get_f64();
  t_ = reader.get_u64();
}

std::unique_ptr<TraceGenerator> make_cpu_trace(std::uint64_t seed) {
  SeasonalTraceOptions options;
  options.base = 45.0;         // percent
  options.amplitude = 28.0;    // day/night swing
  options.period = 288.0;      // 5-min samples, 24 h cycle
  options.ar_coefficient = 0.85;
  options.noise_sigma = 4.0;
  options.burst_probability = 0.01;
  options.burst_magnitude = 15.0;
  options.floor = 0.0;
  options.ceiling = 100.0;
  return std::make_unique<SeasonalTraceGenerator>(options, seed);
}

std::unique_ptr<TraceGenerator> make_disk_io_trace(std::uint64_t seed) {
  SeasonalTraceOptions options;
  options.base = 250.0;        // MB/interval
  options.amplitude = 90.0;
  options.period = 288.0;
  options.ar_coefficient = 0.5;
  options.noise_sigma = 60.0;
  options.burst_probability = 0.06;  // the heavy spikes of Fig. 4
  options.burst_magnitude = 350.0;
  options.floor = 0.0;
  options.ceiling = 1200.0;
  return std::make_unique<SeasonalTraceGenerator>(options, seed);
}

std::unique_ptr<TraceGenerator> make_weekly_traffic_trace(std::uint64_t seed) {
  WeeklyTrafficGenerator::Options options;  // defaults match Fig. 5's shape
  return std::make_unique<WeeklyTrafficGenerator>(options, seed);
}

std::vector<double> normalize_trace(const std::vector<double>& raw, double full_scale) {
  SHERIFF_REQUIRE(full_scale > 0.0, "full scale must be positive");
  std::vector<double> out;
  out.reserve(raw.size());
  for (double v : raw) out.push_back(common::clamp01(v / full_scale));
  return out;
}

}  // namespace sheriff::wl
