#pragma once
// Workload profile W^k_ij = [CPU, MEM, IO, TRF] (Sec. IV-A): the four
// monitored features of a VM, each normalized to [0, 1].

#include <array>
#include <cstddef>
#include <string>

namespace sheriff::wl {

enum class Feature : std::size_t { kCpu = 0, kMemory = 1, kDiskIo = 2, kTraffic = 3 };
inline constexpr std::size_t kFeatureCount = 4;

const char* to_string(Feature feature) noexcept;

struct WorkloadProfile {
  std::array<double, kFeatureCount> values{};  ///< each in [0, 1]

  [[nodiscard]] double operator[](Feature f) const noexcept {
    return values[static_cast<std::size_t>(f)];
  }
  double& operator[](Feature f) noexcept { return values[static_cast<std::size_t>(f)]; }

  /// Largest component — the alert magnitude basis of Sec. IV-C.
  [[nodiscard]] double max_component() const noexcept;
  /// True when any component exceeds `threshold`.
  [[nodiscard]] bool any_exceeds(double threshold) const noexcept;
  /// Clamps every component into [0, 1].
  void clamp();

  [[nodiscard]] std::string to_string() const;
};

}  // namespace sheriff::wl
