#include "workload/profile.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/table.hpp"

namespace sheriff::wl {

const char* to_string(Feature feature) noexcept {
  switch (feature) {
    case Feature::kCpu: return "cpu";
    case Feature::kMemory: return "mem";
    case Feature::kDiskIo: return "io";
    case Feature::kTraffic: return "trf";
  }
  return "unknown";
}

double WorkloadProfile::max_component() const noexcept {
  return *std::max_element(values.begin(), values.end());
}

bool WorkloadProfile::any_exceeds(double threshold) const noexcept {
  return std::any_of(values.begin(), values.end(),
                     [threshold](double v) { return v > threshold; });
}

void WorkloadProfile::clamp() {
  for (double& v : values) v = common::clamp01(v);
}

std::string WorkloadProfile::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    if (i > 0) out += ", ";
    out += sheriff::wl::to_string(static_cast<Feature>(i));
    out += "=";
    out += common::format_fixed(values[i], 2);
  }
  out += "]";
  return out;
}

}  // namespace sheriff::wl
