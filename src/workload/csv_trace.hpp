#pragma once
// CSV trace import: drive VM workload dynamics or the predictors with
// *real* measured traces instead of the synthetic generators — the hook a
// production adopter uses to replace our ZopleCloud stand-ins with their
// own monitoring exports.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "workload/trace_generator.hpp"

namespace sheriff::wl {

/// Reads one numeric column from CSV text. `column` selects by 0-based
/// index; a non-numeric first row is treated as a header and skipped.
/// Throws RequirementError on malformed numeric cells or a missing column.
std::vector<double> read_csv_column(std::istream& is, std::size_t column = 0);

/// Convenience: load from a file path.
std::vector<double> read_csv_column_file(const std::string& path, std::size_t column = 0);

/// A TraceGenerator that replays a recorded series. `loop` controls what
/// happens at the end: wrap around (periodic replay) or hold the last
/// value.
class ReplayTraceGenerator final : public TraceGenerator {
 public:
  explicit ReplayTraceGenerator(std::vector<double> samples, bool loop = true);
  double next() override;
  void save_state(snapshot::Writer& writer) const override;
  void load_state(snapshot::Reader& reader) override;

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

 private:
  std::vector<double> samples_;
  std::size_t position_ = 0;
  bool loop_;
};

}  // namespace sheriff::wl
