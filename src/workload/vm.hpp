#pragma once
// Virtual machine model (Sec. II-C): the unit of resource allocation. Each
// VM m^k_ij lives on a host, carries an integer capacity (Mbps is the
// paper's minimum capacity unit), a value (importance; PRIORITY prefers to
// move low-value VMs), a delay-sensitivity flag (delay-sensitive VMs are
// never migrated), and its current workload profile.

#include <cstdint>

#include "topology/entities.hpp"
#include "workload/profile.hpp"

namespace sheriff::wl {

using VmId = std::uint32_t;
inline constexpr VmId kInvalidVm = static_cast<VmId>(-1);

struct VirtualMachine {
  VmId id = kInvalidVm;
  topo::NodeId host = topo::kInvalidNode;
  int capacity = 1;              ///< resource size in capacity units (<= 20 in Sec. VI-B)
  double value = 1.0;            ///< importance weight used by PRIORITY
  bool delay_sensitive = false;  ///< excluded from migration by Alg. 2
  WorkloadProfile profile;       ///< current measured workload

  /// Capacity-weighted effective load this VM puts on its host; the CPU
  /// component is the paper's primary overload driver.
  [[nodiscard]] double effective_load() const noexcept {
    return static_cast<double>(capacity) * profile[Feature::kCpu];
  }
};

}  // namespace sheriff::wl
