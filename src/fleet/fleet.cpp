#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/timing.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/checkpoint.hpp"

namespace sheriff::fleet {

namespace {

// ---------------------------------------------------------------------------
// Grid fingerprint: endian-stable FNV-1a over the grid's identity. Feeds
// bytes explicitly (never raw struct memory) so the hash is the same on
// every host the manifest might travel to.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;

  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(std::string_view s) noexcept {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

// ---------------------------------------------------------------------------
// JSON helpers. Doubles are %.17g — the shortest-exact-enough decimal form,
// identical on every libc we build against — and strings are escaped per
// RFC 8259 (scenario names are the only free-form input).
std::string fmt_f64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

// ---------------------------------------------------------------------------
// Manifest payload (section FMAN v1). RunSummary fields travel in
// declaration order; doubles as bit patterns (put_f64), so a record read
// back from the manifest reproduces its JSONL line byte for byte.
constexpr std::uint32_t kManifestVersion = 1;

void put_record(snapshot::Writer& w, const RunRecord& r) {
  w.put_u64(r.run_id);
  w.put_str(r.scenario);
  w.put_u64(r.seed);
  w.put_u64(r.rounds);
  w.put_u32(r.metrics_crc);
  w.put_u32(r.checkpoint_crc);
  const core::RunSummary& s = r.summary;
  w.put_u64(s.rounds);
  w.put_u64(s.total_alerts);
  w.put_u64(s.total_migrations);
  w.put_u64(s.total_reroutes);
  w.put_f64(s.total_migration_cost);
  w.put_f64(s.total_migration_seconds);
  w.put_f64(s.total_downtime_seconds);
  w.put_u64(s.total_search_space);
  w.put_f64(s.first_stddev);
  w.put_f64(s.last_stddev);
  w.put_f64(s.mean_link_peak);
  w.put_u64(s.rounds_with_failures);
  w.put_u64(s.peak_orphaned_vms);
  w.put_u64(s.total_recovery_migrations);
  w.put_u64(s.total_protocol_drops);
  w.put_u64(s.total_protocol_retries);
  w.put_u64(r.metrics.size());
  for (const MetricSample& m : r.metrics) {
    w.put_str(m.name);
    w.put_f64(m.value);
    w.put_u8(static_cast<std::uint8_t>(m.kind));
  }
}

RunRecord get_record(snapshot::Reader& rd) {
  RunRecord r;
  r.run_id = rd.get_u64();
  r.scenario = rd.get_str();
  r.seed = rd.get_u64();
  r.rounds = rd.get_u64();
  r.metrics_crc = rd.get_u32();
  r.checkpoint_crc = rd.get_u32();
  core::RunSummary& s = r.summary;
  s.rounds = rd.get_u64();
  s.total_alerts = rd.get_u64();
  s.total_migrations = rd.get_u64();
  s.total_reroutes = rd.get_u64();
  s.total_migration_cost = rd.get_f64();
  s.total_migration_seconds = rd.get_f64();
  s.total_downtime_seconds = rd.get_f64();
  s.total_search_space = rd.get_u64();
  s.first_stddev = rd.get_f64();
  s.last_stddev = rd.get_f64();
  s.mean_link_peak = rd.get_f64();
  s.rounds_with_failures = rd.get_u64();
  s.peak_orphaned_vms = rd.get_u64();
  s.total_recovery_migrations = rd.get_u64();
  s.total_protocol_drops = rd.get_u64();
  s.total_protocol_retries = rd.get_u64();
  const std::uint64_t n = rd.counted(10);  // name length prefix + f64 + kind
  r.metrics.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MetricSample m;
    m.name = rd.get_str();
    m.value = rd.get_f64();
    const std::uint8_t kind = rd.get_u8();
    if (kind > static_cast<std::uint8_t>(MetricKind::kGauge)) {
      throw snapshot::SnapshotError("fleet manifest: unknown metric kind " +
                                    std::to_string(kind));
    }
    m.kind = static_cast<MetricKind>(kind);
    r.metrics.push_back(std::move(m));
  }
  r.completed = true;
  r.from_manifest = true;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------

std::vector<MetricSample> capture_metrics(const obs::MetricRegistry& registry) {
  std::vector<MetricSample> out;
  out.reserve(registry.size() * 2);
  registry.for_each_counter([&](const std::string& name, const obs::Counter& c) {
    out.push_back({name, static_cast<double>(c.value()), MetricKind::kCounter});
  });
  registry.for_each_gauge([&](const std::string& name, const obs::Gauge& g) {
    out.push_back({name, g.value(), MetricKind::kGauge});
  });
  registry.for_each_histogram([&](const std::string& name, const obs::Histogram& h) {
    out.push_back({name + ".count", static_cast<double>(h.total()), MetricKind::kCounter});
    out.push_back({name + ".sum", h.sum(), MetricKind::kCounter});
  });
  std::sort(out.begin(), out.end(), [](const MetricSample& a, const MetricSample& b) {
    return a.name != b.name ? a.name < b.name : a.kind < b.kind;
  });
  return out;
}

std::uint64_t SweepGrid::fingerprint() const {
  Fnv1a f;
  f.u64(scenarios.size());
  for (const ScenarioSpec& s : scenarios) {
    f.str(s.name);
    f.u64(s.rounds);
    if (s.topology != nullptr) {
      f.u64(s.topology->node_count());
      f.u64(s.topology->rack_count());
      f.u64(s.topology->host_count());
    } else {
      f.u64(0);
    }
    f.u64(static_cast<std::uint64_t>(s.config.mode));
    f.u64(static_cast<std::uint64_t>(s.config.protocol));
    f.u64(static_cast<std::uint64_t>(s.config.predictor));
    f.byte(s.fault_plan != nullptr || s.config.fault_plan != nullptr ? 1 : 0);
  }
  f.u64(seeds.size());
  for (std::uint64_t seed : seeds) f.u64(seed);
  return f.h;
}

std::string jsonl_line(const RunRecord& record) {
  std::string out = "{\"run_id\":" + std::to_string(record.run_id) + ",\"scenario\":";
  append_json_string(out, record.scenario);
  out += ",\"seed\":" + std::to_string(record.seed);
  out += ",\"rounds\":" + std::to_string(record.rounds);
  out += ",\"metrics_crc\":" + std::to_string(record.metrics_crc);
  out += ",\"checkpoint_crc\":" + std::to_string(record.checkpoint_crc);
  const core::RunSummary& s = record.summary;
  out += ",\"summary\":{";
  out += "\"rounds\":" + std::to_string(s.rounds);
  out += ",\"total_alerts\":" + std::to_string(s.total_alerts);
  out += ",\"total_migrations\":" + std::to_string(s.total_migrations);
  out += ",\"total_reroutes\":" + std::to_string(s.total_reroutes);
  out += ",\"total_migration_cost\":" + fmt_f64(s.total_migration_cost);
  out += ",\"total_migration_seconds\":" + fmt_f64(s.total_migration_seconds);
  out += ",\"total_downtime_seconds\":" + fmt_f64(s.total_downtime_seconds);
  out += ",\"total_search_space\":" + std::to_string(s.total_search_space);
  out += ",\"first_stddev\":" + fmt_f64(s.first_stddev);
  out += ",\"last_stddev\":" + fmt_f64(s.last_stddev);
  out += ",\"mean_link_peak\":" + fmt_f64(s.mean_link_peak);
  out += ",\"rounds_with_failures\":" + std::to_string(s.rounds_with_failures);
  out += ",\"peak_orphaned_vms\":" + std::to_string(s.peak_orphaned_vms);
  out += ",\"total_recovery_migrations\":" + std::to_string(s.total_recovery_migrations);
  out += ",\"total_protocol_drops\":" + std::to_string(s.total_protocol_drops);
  out += ",\"total_protocol_retries\":" + std::to_string(s.total_protocol_retries);
  out += "},\"metrics\":{";
  bool first = true;
  for (const MetricSample& m : record.metrics) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, m.name);
    out += ':';
    out += fmt_f64(m.value);
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------

void MetricAggregate::absorb(const RunRecord& record) {
  for (const MetricSample& m : record.metrics) {
    auto& [kind, samples] = series_[m.name];
    if (samples.empty()) kind = m.kind;
    samples.push_back(m.value);
  }
  ++runs_;
}

double MetricAggregate::quantile(const std::string& name, double q) const {
  const auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  return common::quantile(it->second.second, q);
}

std::vector<double> MetricAggregate::samples(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? std::vector<double>{} : it->second.second;
}

void MetricAggregate::merge_into(obs::MetricRegistry& registry) const {
  registry.counter("fleet.runs").add(runs_);
  for (const auto& [name, entry] : series_) {
    const auto& [kind, samples] = entry;
    if (kind == MetricKind::kCounter) {
      // Cross-run sums land in a gauge: histogram `.sum` flattenings are
      // fractional, and a double keeps them exact where a u64 counter
      // would truncate.
      double total = 0.0;
      for (double v : samples) total += v;
      registry.gauge(name).set(total);
    }
    registry.gauge(name + ".p50").set(common::quantile(samples, 0.50));
    registry.gauge(name + ".p95").set(common::quantile(samples, 0.95));
    registry.gauge(name + ".p99").set(common::quantile(samples, 0.99));
  }
}

std::string FleetReport::jsonl() const {
  std::string out;
  for (const RunRecord& r : runs) {
    if (!r.completed) continue;
    out += jsonl_line(r);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------

Manifest load_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw snapshot::SnapshotError("cannot open fleet manifest: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  snapshot::Reader reader(std::move(bytes));
  reader.expect_section("FMAN", kManifestVersion);
  Manifest m;
  m.grid_fingerprint = reader.get_u64();
  m.run_count = reader.get_u64();
  const std::uint64_t n = reader.counted(8 * 4);
  m.completed.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.completed.push_back(get_record(reader));
  reader.leave_section();
  if (!reader.at_end()) {
    throw snapshot::SnapshotError("trailing bytes after fleet manifest: " + path);
  }
  return m;
}

void save_manifest(const std::string& path, const Manifest& manifest) {
  snapshot::Writer writer;
  writer.begin_section("FMAN", kManifestVersion);
  writer.put_u64(manifest.grid_fingerprint);
  writer.put_u64(manifest.run_count);
  writer.put_u64(manifest.completed.size());
  for (const RunRecord& r : manifest.completed) put_record(writer, r);
  writer.end_section();

  // Atomic publish: a sweep killed mid-write leaves the previous manifest
  // intact, never a torn one — that is what makes --resume trustworthy.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw snapshot::SnapshotError("cannot write fleet manifest: " + tmp);
    const auto& bytes = writer.buffer();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw snapshot::SnapshotError("short write on fleet manifest: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw snapshot::SnapshotError("cannot publish fleet manifest: " + path);
  }
}

// ---------------------------------------------------------------------------

FleetReport run_sweep(const SweepGrid& grid, const FleetOptions& options) {
  for (const ScenarioSpec& s : grid.scenarios) {
    SHERIFF_REQUIRE(s.topology != nullptr, "fleet scenario needs a topology");
    SHERIFF_REQUIRE(s.rounds > 0, "fleet scenario needs at least one round");
  }
  SHERIFF_REQUIRE(!options.resume || !options.manifest_path.empty(),
                  "fleet resume needs a manifest path");

  const obs::Stopwatch sweep_clock;
  const std::size_t run_count = grid.run_count();
  const std::uint64_t fingerprint = grid.fingerprint();

  FleetReport report;
  report.runs.resize(run_count);
  for (std::size_t id = 0; id < run_count; ++id) {
    const ScenarioSpec& spec = grid.scenarios[id / grid.seeds.size()];
    RunRecord& r = report.runs[id];
    r.run_id = id;
    r.scenario = spec.name;
    r.seed = grid.seeds[id % grid.seeds.size()];
    r.rounds = spec.rounds;
  }

  Manifest manifest;
  manifest.grid_fingerprint = fingerprint;
  manifest.run_count = run_count;
  if (options.resume) {
    if (std::ifstream probe(options.manifest_path, std::ios::binary); probe) {
      probe.close();
      Manifest loaded = load_manifest(options.manifest_path);
      if (loaded.grid_fingerprint != fingerprint || loaded.run_count != run_count) {
        throw snapshot::SnapshotError(
            "fleet manifest does not match this sweep grid (fingerprint or run count "
            "differ): " +
            options.manifest_path);
      }
      for (RunRecord& r : loaded.completed) {
        if (r.run_id >= run_count) {
          throw snapshot::SnapshotError("fleet manifest records run " +
                                        std::to_string(r.run_id) + " beyond the grid");
        }
        const std::uint64_t id = r.run_id;
        report.runs[id] = std::move(r);
        ++report.skipped;
      }
      for (const RunRecord& r : report.runs) {
        if (r.completed) manifest.completed.push_back(r);
      }
    }
  }

  // Shared read-only substrate: one maskless k-median planner per distinct
  // topology that at least one kKMedian scenario can borrow (the engine
  // itself enforces the borrow envelope — fast path, no faults — so
  // passing the substrate to every run of the topology is safe).
  std::map<const topo::Topology*, std::unique_ptr<core::KMedianPlanner>> planners;
  for (const ScenarioSpec& s : grid.scenarios) {
    if (s.config.mode != core::ManagerMode::kKMedian) continue;
    if (!planners.contains(s.topology)) {
      planners.emplace(s.topology, std::make_unique<core::KMedianPlanner>(*s.topology));
    }
  }

  std::vector<std::uint64_t> pending;
  pending.reserve(run_count);
  for (std::size_t id = 0; id < run_count; ++id) {
    if (!report.runs[id].completed) pending.push_back(id);
  }

  common::ThreadPool fleet_pool(std::max<std::size_t>(1, options.workers));

  // kTwoLevel inner pools: a free list sized by demand (at most one pool
  // per concurrently busy fleet worker), checked out for the duration of a
  // run and recycled.
  std::mutex inner_mutex;
  std::vector<std::unique_ptr<common::ThreadPool>> inner_pools;
  const auto checkout_inner = [&] {
    std::scoped_lock lock(inner_mutex);
    if (!inner_pools.empty()) {
      auto pool = std::move(inner_pools.back());
      inner_pools.pop_back();
      return pool;
    }
    return std::make_unique<common::ThreadPool>(
        std::max<std::size_t>(1, options.engine_threads));
  };
  const auto checkin_inner = [&](std::unique_ptr<common::ThreadPool> pool) {
    std::scoped_lock lock(inner_mutex);
    inner_pools.push_back(std::move(pool));
  };

  std::mutex commit_mutex;  // guards report.runs writes + manifest publishes
  std::atomic<std::size_t> budget_claims{0};

  const auto run_one = [&](std::uint64_t id) {
    if (options.max_runs > 0 &&
        budget_claims.fetch_add(1, std::memory_order_relaxed) >= options.max_runs) {
      return;  // budget exhausted: the run stays pending for a later --resume
    }
    const ScenarioSpec& spec = grid.scenarios[id / grid.seeds.size()];

    wl::DeploymentOptions deployment = spec.deployment;
    deployment.seed = grid.seeds[id % grid.seeds.size()];

    core::EngineConfig config = spec.config;
    if (spec.fault_plan != nullptr) config.fault_plan = spec.fault_plan;
    if (options.observe) config.observe = true;

    std::unique_ptr<common::ThreadPool> inner;
    if (options.pool_policy == PoolPolicy::kTwoLevel) {
      inner = checkout_inner();
      config.pool = inner.get();
    } else {
      // The reentrancy guard turns the engine's sweeps into inline serial
      // loops on this fleet worker: one run saturates exactly one core.
      config.pool = &fleet_pool;
    }

    core::EngineSubstrate substrate;
    if (const auto it = planners.find(spec.topology); it != planners.end()) {
      substrate.kmedian_planner = it->second.get();
    }

    const obs::Stopwatch run_clock;
    core::DistributedEngine engine(*spec.topology, deployment, config, substrate);
    const std::vector<core::RoundMetrics> rounds = engine.run(spec.rounds);

    RunRecord record = report.runs[id];  // identity fields already filled
    std::ostringstream csv;
    core::write_metrics_csv(csv, rounds);
    const std::string csv_bytes = csv.str();
    record.metrics_crc = snapshot::detail::crc32(
        reinterpret_cast<const std::uint8_t*>(csv_bytes.data()), csv_bytes.size());
    if (options.keep_metrics_csv) record.metrics_csv = csv_bytes;
    if (options.checkpoint) {
      const std::vector<std::uint8_t> bytes = core::Checkpoint::serialize(engine);
      record.checkpoint_crc = snapshot::detail::crc32(bytes.data(), bytes.size());
    }
    record.summary = core::summarize(rounds);
    if (const obs::ObservationHub* hub = engine.observation_hub(); hub != nullptr) {
      record.metrics = capture_metrics(hub->registry());
    }
    record.completed = true;
    record.from_manifest = false;
    record.seconds = run_clock.elapsed_seconds();

    if (inner != nullptr) checkin_inner(std::move(inner));

    std::scoped_lock lock(commit_mutex);
    report.runs[id] = std::move(record);
    ++report.executed;
    if (!options.manifest_path.empty()) {
      const auto at = std::lower_bound(
          manifest.completed.begin(), manifest.completed.end(), id,
          [](const RunRecord& r, std::uint64_t v) { return r.run_id < v; });
      manifest.completed.insert(at, report.runs[id]);
      save_manifest(options.manifest_path, manifest);
    }
  };

  common::parallel_for(fleet_pool, pending.size(),
                       [&](std::size_t i) { run_one(pending[i]); });

  for (const RunRecord& r : report.runs) {
    if (r.completed) report.aggregate.absorb(r);
  }
  report.pending = run_count - report.executed - report.skipped;
  report.seconds = sweep_clock.elapsed_seconds();

  if (!options.jsonl_path.empty()) {
    const std::string tmp = options.jsonl_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw snapshot::SnapshotError("cannot write fleet JSONL: " + tmp);
      const std::string lines = report.jsonl();
      out.write(lines.data(), static_cast<std::streamsize>(lines.size()));
      if (!out) throw snapshot::SnapshotError("short write on fleet JSONL: " + tmp);
    }
    if (std::rename(tmp.c_str(), options.jsonl_path.c_str()) != 0) {
      throw snapshot::SnapshotError("cannot publish fleet JSONL: " + options.jsonl_path);
    }
  }
  return report;
}

}  // namespace sheriff::fleet
