#pragma once
// Fleet runner (DESIGN.md §12): execute N independent engine runs — a
// (scenario × seed) grid — concurrently on a bounded worker pool, with
//
//   * per-run deterministic seeding (the grid cell fully determines the
//     run; nothing depends on scheduling),
//   * a shared read-only substrate (the topology is borrowed by pointer,
//     and kKMedian scenarios borrow one pre-built maskless KMedianPlanner
//     per topology through core::EngineSubstrate),
//   * per-run isolated obs registries merged into a MetricAggregate with
//     cross-run p50/p95/p99 quantiles,
//   * a JSONL result stream (one deterministic line per run, emitted in
//     run-id order whatever order the workers finished in), and
//   * a crash-resumable sweep manifest built on src/snapshot/: every
//     completed run is recorded with its metrics-CSV and checkpoint CRCs,
//     and FleetOptions::resume skips exactly the recorded runs.
//
// Determinism contract: the per-run outputs (metrics CSV bytes, final
// checkpoint bytes, registry snapshot, summary) are byte-identical for any
// worker count and either pool-ownership policy — the workers only decide
// *when* a run executes, never *what* it computes. tests/test_fleet.cpp
// pins a 32-run grid at workers 1/2/8 against direct serial engines.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "obs/registry.hpp"

namespace sheriff::fleet {

/// How a run's registry values combine across the fleet: counters (and
/// histogram count/sum flattenings) are extensive — the aggregate sums
/// them — while gauges are per-run observations the aggregate quantiles.
enum class MetricKind : std::uint8_t { kCounter, kGauge };

struct MetricSample {
  std::string name;
  double value = 0.0;
  MetricKind kind = MetricKind::kGauge;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// Name-sorted, kind-tagged flattening of one run's registry (histograms
/// contribute `.count` and `.sum` as counters). Deterministic: the same
/// run produces the same vector byte for byte.
std::vector<MetricSample> capture_metrics(const obs::MetricRegistry& registry);

/// One row of the sweep grid: a named scenario executed once per seed.
struct ScenarioSpec {
  std::string name;
  /// Borrowed; must outlive the sweep. Scenarios may share one topology —
  /// the fleet builds at most one k-median substrate per distinct pointer.
  const topo::Topology* topology = nullptr;
  /// Per-run deployment; `seed` is overridden by the grid seed.
  wl::DeploymentOptions deployment;
  /// Per-run engine config; `pool` is overridden by the pool policy and
  /// `observe` is forced on when FleetOptions::observe is set.
  core::EngineConfig config;
  std::size_t rounds = 10;
  /// Optional deterministic fault schedule applied to every seed of this
  /// scenario (overrides config.fault_plan when set). Borrowed.
  const fault::FaultPlan* fault_plan = nullptr;
};

struct SweepGrid {
  std::vector<ScenarioSpec> scenarios;
  std::vector<std::uint64_t> seeds;

  [[nodiscard]] std::size_t run_count() const noexcept {
    return scenarios.size() * seeds.size();
  }
  /// Stable identity hash (FNV-1a over scenario names/rounds/topology
  /// shape/mode and the seed list). The manifest stores it so a resume
  /// against a *different* grid is rejected instead of silently mixing
  /// incompatible results. An identity check, not full config equality.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Who owns the thread pool the engines' internal sweeps run on
/// (DESIGN.md §12). Both policies are deadlock-free and byte-identical.
enum class PoolPolicy : std::uint8_t {
  /// Engines borrow the fleet's own pool; the parallel_for reentrancy
  /// guard runs their sweeps inline on the calling fleet worker. One run
  /// = one core — the default, and the fastest once the grid is at least
  /// as wide as the machine.
  kFleetOwned,
  /// Two-level: each busy fleet worker checks out a private inner pool of
  /// `engine_threads` workers for its engine's sweeps. Useful when the
  /// grid is narrower than the machine and the per-run fabrics are large.
  kTwoLevel,
};

struct FleetOptions {
  std::size_t workers = 1;                         ///< fleet-level concurrency bound
  PoolPolicy pool_policy = PoolPolicy::kFleetOwned;
  std::size_t engine_threads = 2;                  ///< inner pool size (kTwoLevel)
  /// Force EngineConfig::observe on so every run has a registry to merge.
  bool observe = true;
  /// Serialize the final engine into a checkpoint and record its CRC.
  bool checkpoint = true;
  /// Retain each run's full metrics CSV in RunRecord::metrics_csv (tests
  /// byte-compare them; off by default to keep big sweeps lean).
  bool keep_metrics_csv = false;
  /// Sweep manifest path ("" = no manifest). Rewritten atomically (tmp +
  /// rename) after every completed run, so a killed sweep loses at most
  /// the runs that were still in flight.
  std::string manifest_path;
  /// Load `manifest_path` first and skip every run it records (their
  /// RunRecords are reconstructed from the manifest byte-exactly). A
  /// missing manifest file starts fresh; a fingerprint mismatch throws
  /// snapshot::SnapshotError.
  bool resume = false;
  /// Execute at most this many runs this invocation (0 = unlimited): the
  /// deterministic "kill the sweep after K runs" used by the resume tests.
  std::size_t max_runs = 0;
  /// Write the merged JSONL result stream here at sweep end ("" = skip).
  std::string jsonl_path;
};

/// One run's deterministic result. Identity fields are always filled;
/// result fields only when `completed`.
struct RunRecord {
  std::uint64_t run_id = 0;    ///< scenario_index * seeds.size() + seed_index
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t rounds = 0;
  std::uint32_t metrics_crc = 0;    ///< CRC-32 of the run's metrics CSV bytes
  std::uint32_t checkpoint_crc = 0; ///< CRC-32 of the final checkpoint (0 when skipped)
  core::RunSummary summary;
  std::vector<MetricSample> metrics;  ///< capture_metrics() of the run's registry
  bool completed = false;
  bool from_manifest = false;  ///< satisfied by --resume, not executed here
  double seconds = 0.0;        ///< wall clock; informational, never serialized
  std::string metrics_csv;     ///< only with FleetOptions::keep_metrics_csv
};

/// The run's JSONL line: one JSON object, no trailing newline. Built only
/// from deterministic RunRecord fields (never wall time), with doubles in
/// %.17g — so the line is byte-identical whether the run executed here, on
/// another worker count, or was replayed from a manifest.
std::string jsonl_line(const RunRecord& record);

/// Cross-run metric merger. absorb() runs in run-id order; quantiles are
/// exact (computed over the raw per-run samples via common::quantile, the
/// same brute force a test would do — that equality is pinned).
class MetricAggregate {
 public:
  void absorb(const RunRecord& record);

  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
  /// Exact q-quantile of `name` over the absorbed runs (0.0 when no run
  /// reported the metric; a single report is every quantile of itself).
  [[nodiscard]] double quantile(const std::string& name, double q) const;
  /// Raw per-run samples of `name`, in absorb order (empty when unknown).
  [[nodiscard]] std::vector<double> samples(const std::string& name) const;
  /// All series, name-sorted: (kind, samples in absorb order).
  [[nodiscard]] const std::map<std::string, std::pair<MetricKind, std::vector<double>>>&
  series() const noexcept {
    return series_;
  }

  /// Merges into an aggregate registry: counter-kind series sum into the
  /// `name` gauge (double-valued, so fractional histogram `.sum`
  /// flattenings stay exact); every series additionally publishes
  /// `name.p50/.p95/.p99` gauges; the run count lands in the `fleet.runs`
  /// counter.
  void merge_into(obs::MetricRegistry& registry) const;

 private:
  std::map<std::string, std::pair<MetricKind, std::vector<double>>> series_;
  std::size_t runs_ = 0;
};

/// A sweep's outcome. `runs` is indexed by run id and always grid-sized;
/// slots a killed sweep never reached have completed=false.
struct FleetReport {
  std::vector<RunRecord> runs;
  std::size_t executed = 0;  ///< runs executed by this invocation
  std::size_t skipped = 0;   ///< runs satisfied from the manifest
  std::size_t pending = 0;   ///< runs left undone (max_runs budget hit)
  double seconds = 0.0;      ///< sweep wall clock
  MetricAggregate aggregate; ///< merged registries of all completed runs

  /// The JSONL stream: completed runs in run-id order, one line each.
  [[nodiscard]] std::string jsonl() const;
};

/// Executes the grid. Throws common::RequirementError on a malformed grid
/// and snapshot::SnapshotError on a corrupt or mismatched manifest; an
/// exception from inside a run aborts the sweep (completed runs are
/// already in the manifest, so a crashed sweep resumes).
FleetReport run_sweep(const SweepGrid& grid, const FleetOptions& options);

/// The on-disk sweep manifest (exposed for tests/tools; run_sweep reads
/// and writes it through these).
struct Manifest {
  std::uint64_t grid_fingerprint = 0;
  std::uint64_t run_count = 0;
  std::vector<RunRecord> completed;  ///< ascending run_id
};

[[nodiscard]] Manifest load_manifest(const std::string& path);
void save_manifest(const std::string& path, const Manifest& manifest);

}  // namespace sheriff::fleet
