#include "migration/request.hpp"

#include "common/require.hpp"

namespace sheriff::mig {

const char* to_string(RequestOutcome outcome) noexcept {
  switch (outcome) {
    case RequestOutcome::kAck: return "ACK";
    case RequestOutcome::kRejectCapacity: return "REJECT";
    case RequestOutcome::kIgnoredNotDelegate: return "IGNORED";
  }
  return "unknown";
}

AdmissionBroker::AdmissionBroker(wl::Deployment& deployment) : deployment_(&deployment) {}

RequestOutcome AdmissionBroker::request(wl::VmId vm, topo::NodeId destination_host,
                                        topo::RackId handler_rack) {
  const topo::Topology& topo = deployment_->topology();
  const topo::Node& dest = topo.node(destination_host);
  SHERIFF_REQUIRE(dest.kind == topo::NodeKind::kHost, "destination must be a host");

  // "if i != p: v_i is not the candidate delegation → ignore" (Alg. 4).
  if (dest.rack != handler_rack) return RequestOutcome::kIgnoredNotDelegate;

  if (!deployment_->can_place(vm, destination_host)) {
    ++rejects_;
    return RequestOutcome::kRejectCapacity;
  }
  deployment_->move_vm(vm, destination_host);
  ++acks_;
  return RequestOutcome::kAck;
}

}  // namespace sheriff::mig
