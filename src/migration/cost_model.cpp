#include "migration/cost_model.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"

namespace sheriff::mig {

MigrationCostModel::MigrationCostModel(const topo::Topology& topo,
                                       const wl::Deployment& deployment, CostParams params)
    : topo_(&topo),
      deployment_(&deployment),
      params_(params),
      distance_graph_(topo.wired_graph(topo::EdgeWeight::kDistance)) {
  SHERIFF_REQUIRE(params.computing_cost >= 0.0, "C_r must be non-negative");
  SHERIFF_REQUIRE(params.request_gbps > 0.0, "requested bandwidth must be positive");
}

void MigrationCostModel::set_bandwidth_state(const net::FairShareResult* shares) {
  shares_ = shares;
  if (!retain_trees_) tree_cache_.clear();
}

void MigrationCostModel::begin_round() {
  if (!retain_trees_) tree_cache_.clear();
}

void MigrationCostModel::set_tree_cache_retained(bool retain) {
  retain_trees_ = retain;
  if (!retain) {
    std::scoped_lock lock(cache_mutex_);
    tree_cache_.clear();
  }
}

const graph::ShortestPathTree& MigrationCostModel::tree_for(topo::NodeId source) const {
  {
    std::scoped_lock lock(cache_mutex_);
    const auto it = tree_cache_.find(source);
    if (it != tree_cache_.end()) return *it->second;
  }
  // Compute outside the lock (two threads may race on the same source;
  // the loser's work is discarded, which is cheaper than serializing all
  // Dijkstra runs).
  auto tree = std::make_unique<graph::ShortestPathTree>(
      graph::dijkstra(distance_graph_, source));
  std::scoped_lock lock(cache_mutex_);
  const auto [it, inserted] = tree_cache_.try_emplace(source, std::move(tree));
  return *it->second;
}

double MigrationCostModel::host_distance(topo::NodeId from, topo::NodeId to) const {
  if (from == to) return 0.0;
  if (shared_leaf_trees_) {
    const auto edges = distance_graph_.neighbors(from);
    if (edges.size() == 1) {
      // Single-homed: every path out of `from` crosses its one leaf edge,
      // so the neighbor's (shared) tree answers the query.
      const auto& leaf = edges[0];
      if (to == leaf.to) return leaf.weight;
      return leaf.weight + tree_for(leaf.to).distance[to];
    }
  }
  return tree_for(from).distance[to];
}

std::vector<topo::NodeId> MigrationCostModel::shortest_path(topo::NodeId from,
                                                            topo::NodeId to) const {
  if (shared_leaf_trees_ && from != to) {
    const auto edges = distance_graph_.neighbors(from);
    if (edges.size() == 1) {
      const auto& leaf = edges[0];
      if (to == leaf.to) return {from, to};
      auto path = tree_for(leaf.to).path_to(to);
      if (path.empty()) return path;  // unreachable
      path.insert(path.begin(), from);
      return path;
    }
  }
  return tree_for(from).path_to(to);
}

CostBreakdown MigrationCostModel::cost(wl::VmId vm_id, topo::NodeId destination) const {
  const wl::VirtualMachine& vm = deployment_->vm(vm_id);
  SHERIFF_REQUIRE(topo_->node(destination).kind == topo::NodeKind::kHost,
                  "migration destination must be a host");
  CostBreakdown breakdown;
  breakdown.computing = params_.computing_cost;

  // Dependency cost (Eq. 1's C_d·D(e)·χ term), in the configured mode.
  // Partner-rooted mode queries the same distances from the partner's tree
  // (the wired graph is undirected, so d(a,b) = d(b,a)): one tree per
  // partner instead of one per candidate destination.
  double new_span = 0.0;
  double old_span = 0.0;
  for (wl::VmId other : deployment_->dependencies().neighbors(vm_id)) {
    const topo::NodeId partner = deployment_->vm(other).host;
    new_span += partner_rooted_ ? host_distance(partner, destination)
                                : host_distance(destination, partner);
    if (params_.dependency_mode == DependencyCostMode::kClampedDelta) {
      old_span += partner_rooted_ ? host_distance(partner, vm.host)
                                  : host_distance(vm.host, partner);
    }
  }
  switch (params_.dependency_mode) {
    case DependencyCostMode::kPostMoveSpan:
      breakdown.dependency = params_.unit_distance_cost * new_span;
      break;
    case DependencyCostMode::kClampedDelta:
      breakdown.dependency =
          params_.unit_distance_cost * std::max(0.0, new_span - old_span);
      break;
  }

  // Transmission cost over the shortest distance path source → destination.
  const auto path = shortest_path(vm.host, destination);
  if (path.size() < 2) return breakdown;  // unreachable: infeasible
  double transmission = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const topo::LinkId link = topo_->link_between(path[i], path[i + 1]);
    const double capacity = topo_->link(link).capacity_gbps;
    double available = capacity;
    if (shares_ != nullptr) {
      available = std::max(shares_->available_bandwidth(*topo_, link),
                           params_.management_reserve_fraction * capacity);
    }
    // B(e): the smaller of available and requested bandwidth, which must
    // clear the threshold B_t for the link to be usable.
    const double b = std::min(available, params_.request_gbps);
    if (b <= params_.bandwidth_threshold_gbps) return breakdown;  // infeasible
    const double t = static_cast<double>(vm.capacity) / b;  // T(e)
    const double p = b / capacity;                          // P(e)
    transmission += params_.delta * t + params_.eta * p;
  }
  breakdown.transmission = transmission;
  breakdown.feasible = true;
  return breakdown;
}

double MigrationCostModel::path_bottleneck_bandwidth(wl::VmId vm,
                                                     topo::NodeId destination) const {
  const wl::VirtualMachine& m = deployment_->vm(vm);
  const auto path = shortest_path(m.host, destination);
  if (path.size() < 2) return 0.0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const topo::LinkId link = topo_->link_between(path[i], path[i + 1]);
    const double capacity = topo_->link(link).capacity_gbps;
    double available = capacity;
    if (shares_ != nullptr) {
      available = std::max(shares_->available_bandwidth(*topo_, link),
                           params_.management_reserve_fraction * capacity);
    }
    bottleneck = std::min(bottleneck, std::min(available, params_.request_gbps));
  }
  return bottleneck;
}

double MigrationCostModel::total_cost(wl::VmId vm, topo::NodeId destination) const {
  const CostBreakdown breakdown = cost(vm, destination);
  return breakdown.feasible ? breakdown.total() : std::numeric_limits<double>::infinity();
}

}  // namespace sheriff::mig
