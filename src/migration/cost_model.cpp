#include "migration/cost_model.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"

namespace sheriff::mig {

MigrationCostModel::MigrationCostModel(const topo::Topology& topo,
                                       const wl::Deployment& deployment, CostParams params)
    : topo_(&topo),
      deployment_(&deployment),
      params_(params),
      distance_graph_(topo.wired_graph(topo::EdgeWeight::kDistance)),
      surface_(topo),
      rows_(topo.node_count()) {
  SHERIFF_REQUIRE(params.computing_cost >= 0.0, "C_r must be non-negative");
  SHERIFF_REQUIRE(params.request_gbps > 0.0, "requested bandwidth must be positive");
  // Static leaf tables: a single-homed node reaches the fabric only
  // through its one wired link, so its paths are its peer's plus that leaf
  // edge — the structural fact behind both the shared-leaf tree mode and
  // the surface-mode path decomposition.
  const std::size_t n = topo.node_count();
  single_homed_.assign(n, 0);
  rack_leaf_.assign(n, 0);
  leaf_link_.assign(n, 0);
  leaf_tor_.assign(n, topo::kInvalidNode);
  for (topo::NodeId v = 0; v < n; ++v) {
    const auto edges = distance_graph_.neighbors(v);
    if (edges.size() != 1) continue;
    single_homed_[v] = 1;
    leaf_tor_[v] = edges[0].to;
    leaf_link_[v] = topo.link_between(v, edges[0].to);
    const auto& node = topo.node(v);
    rack_leaf_[v] = node.kind == topo::NodeKind::kHost && node.rack != topo::kInvalidRack &&
                            topo.rack(node.rack).tor == edges[0].to
                        ? 1
                        : 0;
  }
  for (const auto& link : topo.links()) {
    if (topo.node(link.a).kind == topo::NodeKind::kHost &&
        topo.node(link.b).kind == topo::NodeKind::kHost) {
      hosts_adjacent_ = true;
      break;
    }
  }
}

MigrationCostModel::~MigrationCostModel() { clear_rows(); }

void MigrationCostModel::clear_rows() const {
  for (auto& slot : rows_) {
    delete slot.exchange(nullptr, std::memory_order_acq_rel);
  }
}

void MigrationCostModel::set_bandwidth_state(const net::FairShareResult* shares) {
  shares_ = shares;
  if (!retain_trees_) clear_rows();
  if (surface_enabled_ && shares != nullptr) {
    surface_.build(shares, params_.management_reserve_fraction, params_.request_gbps,
                   params_.bandwidth_threshold_gbps);
    surface_builds_.fetch_add(1, std::memory_order_relaxed);
  } else {
    surface_.clear();
  }
}

void MigrationCostModel::begin_round() {
  if (!retain_trees_) clear_rows();
}

void MigrationCostModel::set_tree_cache_retained(bool retain) {
  retain_trees_ = retain;
  if (!retain) clear_rows();
}

void MigrationCostModel::set_surface_enabled(bool enabled) {
  if (surface_enabled_ == enabled) return;
  surface_enabled_ = enabled;
  // Rack-keyed link memos exist only in surface mode; drop the rows so
  // they rebuild in the right shape (serial-only toggle, like the other
  // mode switches).
  clear_rows();
  if (enabled && shares_ != nullptr) {
    surface_.build(shares_, params_.management_reserve_fraction, params_.request_gbps,
                   params_.bandwidth_threshold_gbps);
    surface_builds_.fetch_add(1, std::memory_order_relaxed);
  } else if (!enabled) {
    surface_.clear();
  }
}

CostModelStats MigrationCostModel::stats() const noexcept {
  CostModelStats out;
  out.evaluated = evaluated_.load(std::memory_order_relaxed);
  out.pruned = pruned_.load(std::memory_order_relaxed);
  out.surface_builds = surface_builds_.load(std::memory_order_relaxed);
  return out;
}

MigrationCostModel::Row* MigrationCostModel::build_row(topo::NodeId root) const {
  auto* row = new Row;
  row->tree = graph::dijkstra(distance_graph_, root);
  if (surface_enabled_) {
    // Destination-rack memo: the root→ToR link sequence along the tree's
    // deterministic path, shared by every shim querying this root within
    // (and across) rounds. link_between runs once per (root, rack) instead
    // of once per (candidate, hop).
    const std::size_t racks = topo_->rack_count();
    row->rack_links.resize(racks);
    row->rack_ok.assign(racks, 0);
    for (topo::RackId r = 0; r < racks; ++r) {
      const topo::NodeId tor = topo_->rack(r).tor;
      if (tor == topo::kInvalidNode) continue;
      if (row->tree.distance[tor] == graph::kInfiniteDistance) continue;
      const auto path = row->tree.path_to(tor);
      if (path.empty()) continue;
      auto& links = row->rack_links[r];
      links.reserve(path.size() - 1);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        links.push_back(topo_->link_between(path[i], path[i + 1]));
      }
      row->rack_ok[r] = 1;
    }
  }
  return row;
}

const MigrationCostModel::Row& MigrationCostModel::row_for(topo::NodeId root) const {
  std::atomic<Row*>& slot = rows_[root];
  Row* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  // Build outside any lock (two threads may race on the same root; the
  // loser's identical, deterministic row is discarded — cheaper than
  // serializing all Dijkstra runs, and the published row never mutates).
  Row* built = build_row(root);
  Row* expected = nullptr;
  if (slot.compare_exchange_strong(expected, built, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *built;
  }
  delete built;
  return *expected;
}

const graph::ShortestPathTree& MigrationCostModel::tree_for(topo::NodeId source) const {
  return row_for(source).tree;
}

const graph::ShortestPathTree& MigrationCostModel::distance_tree(topo::NodeId root) const {
  return row_for(root).tree;
}

double MigrationCostModel::host_distance(topo::NodeId from, topo::NodeId to) const {
  if (from == to) return 0.0;
  if (shared_leaf_trees_) {
    if (single_homed_[from] != 0) {
      // Single-homed: every path out of `from` crosses its one leaf edge,
      // so the neighbor's (shared) tree answers the query.
      const auto& leaf = distance_graph_.neighbors(from)[0];
      if (to == leaf.to) return leaf.weight;
      return leaf.weight + tree_for(leaf.to).distance[to];
    }
  }
  return tree_for(from).distance[to];
}

std::vector<topo::NodeId> MigrationCostModel::shortest_path(topo::NodeId from,
                                                            topo::NodeId to) const {
  if (shared_leaf_trees_ && from != to) {
    if (single_homed_[from] != 0) {
      const topo::NodeId via = leaf_tor_[from];
      if (to == via) return {from, to};
      auto path = tree_for(via).path_to(to);
      if (path.empty()) return path;  // unreachable
      path.insert(path.begin(), from);
      return path;
    }
  }
  return tree_for(from).path_to(to);
}

double MigrationCostModel::dependency_cost(wl::VmId vm_id, topo::NodeId vm_host,
                                           topo::NodeId destination) const {
  // Dependency cost (Eq. 1's C_d·D(e)·χ term), in the configured mode.
  // Partner-rooted mode queries the same distances from the partner's tree
  // (the wired graph is undirected, so d(a,b) = d(b,a)): one tree per
  // partner instead of one per candidate destination. Shared verbatim by
  // cost() and candidate_lower_bound() so both produce the identical FP
  // value.
  double new_span = 0.0;
  double old_span = 0.0;
  for (wl::VmId other : deployment_->dependencies().neighbors(vm_id)) {
    const topo::NodeId partner = deployment_->vm(other).host;
    new_span += partner_rooted_ ? host_distance(partner, destination)
                                : host_distance(destination, partner);
    if (params_.dependency_mode == DependencyCostMode::kClampedDelta) {
      old_span += partner_rooted_ ? host_distance(partner, vm_host)
                                  : host_distance(vm_host, partner);
    }
  }
  switch (params_.dependency_mode) {
    case DependencyCostMode::kPostMoveSpan:
      return params_.unit_distance_cost * new_span;
    case DependencyCostMode::kClampedDelta:
      return params_.unit_distance_cost * std::max(0.0, new_span - old_span);
  }
  return 0.0;
}

void MigrationCostModel::surface_transmission(const wl::VirtualMachine& vm,
                                              topo::NodeId destination,
                                              CostBreakdown& breakdown) const {
  // Replays the legacy per-link loop — same links, same order, same FP
  // expressions — against the SoA snapshot, so the result is bit-identical
  // to the surface-off evaluation. An infeasible link aborts with the
  // partial sum discarded, exactly as the legacy early return did.
  const topo::NodeId src = vm.host;
  if (src == destination) return;  // one-node path: infeasible, as before
  const double cap = static_cast<double>(vm.capacity);
  const double delta = params_.delta;
  const double eta = params_.eta;
  double transmission = 0.0;
  if (shared_leaf_trees_ && single_homed_[src] != 0) {
    // Legacy path shape: [src] + tor_tree.path_to(dst). First link is the
    // leaf edge; the middle is the memoized root→ToR sequence when the
    // destination hangs single-homed off its rack's ToR (every fat-tree
    // host); otherwise walk the same deterministic tree path live.
    const topo::NodeId root = leaf_tor_[src];
    if (!surface_.step(leaf_link_[src], cap, delta, eta, transmission)) return;
    if (destination != root) {
      const Row& row = row_for(root);
      if (rack_leaf_[destination] != 0) {
        const topo::RackId rack = topo_->node(destination).rack;
        if (row.rack_ok[rack] == 0) return;  // unreachable
        for (const topo::LinkId l : row.rack_links[rack]) {
          if (!surface_.step(l, cap, delta, eta, transmission)) return;
        }
        if (!surface_.step(leaf_link_[destination], cap, delta, eta, transmission)) return;
      } else {
        const auto path = row.tree.path_to(destination);
        if (path.empty()) return;  // unreachable
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const topo::LinkId l = topo_->link_between(path[i], path[i + 1]);
          if (!surface_.step(l, cap, delta, eta, transmission)) return;
        }
      }
    }
  } else {
    const auto path = shortest_path(src, destination);
    if (path.size() < 2) return;  // unreachable
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const topo::LinkId l = topo_->link_between(path[i], path[i + 1]);
      if (!surface_.step(l, cap, delta, eta, transmission)) return;
    }
  }
  breakdown.transmission = transmission;
  breakdown.feasible = true;
}

void MigrationCostModel::legacy_transmission(const wl::VirtualMachine& vm,
                                             topo::NodeId destination,
                                             CostBreakdown& breakdown) const {
  // Transmission cost over the shortest distance path source → destination.
  const auto path = shortest_path(vm.host, destination);
  if (path.size() < 2) return;  // unreachable: infeasible
  double transmission = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const topo::LinkId link = topo_->link_between(path[i], path[i + 1]);
    const double capacity = topo_->link(link).capacity_gbps;
    double available = capacity;
    if (shares_ != nullptr) {
      available = std::max(shares_->available_bandwidth(*topo_, link),
                           params_.management_reserve_fraction * capacity);
    }
    // B(e): the smaller of available and requested bandwidth, which must
    // clear the threshold B_t for the link to be usable.
    const double b = std::min(available, params_.request_gbps);
    if (b <= params_.bandwidth_threshold_gbps) return;  // infeasible
    const double t = static_cast<double>(vm.capacity) / b;  // T(e)
    const double p = b / capacity;                          // P(e)
    transmission += params_.delta * t + params_.eta * p;
  }
  breakdown.transmission = transmission;
  breakdown.feasible = true;
}

CostBreakdown MigrationCostModel::cost(wl::VmId vm_id, topo::NodeId destination) const {
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  const wl::VirtualMachine& vm = deployment_->vm(vm_id);
  SHERIFF_REQUIRE(topo_->node(destination).kind == topo::NodeKind::kHost,
                  "migration destination must be a host");
  CostBreakdown breakdown;
  breakdown.computing = params_.computing_cost;
  breakdown.dependency = dependency_cost(vm_id, vm.host, destination);

  if (surface_enabled_ && surface_.ready()) {
    surface_transmission(vm, destination, breakdown);
  } else {
    legacy_transmission(vm, destination, breakdown);
  }
  return breakdown;
}

double MigrationCostModel::total_cost_with_base(wl::VmId vm_id, topo::NodeId destination,
                                                double base) const {
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  const wl::VirtualMachine& vm = deployment_->vm(vm_id);
  CostBreakdown breakdown;
  if (surface_enabled_ && surface_.ready()) {
    surface_transmission(vm, destination, breakdown);
  } else {
    legacy_transmission(vm, destination, breakdown);
  }
  // total() folds (computing + dependency) + transmission left-to-right
  // and `base` is that exact inner sum, so this is bitwise total_cost().
  return breakdown.feasible ? base + breakdown.transmission
                            : std::numeric_limits<double>::infinity();
}

double MigrationCostModel::candidate_lower_bound(wl::VmId vm_id, topo::NodeId destination,
                                                 double* base_out) const {
  const wl::VirtualMachine& vm = deployment_->vm(vm_id);
  if (destination == vm.host) return std::numeric_limits<double>::infinity();
  // The computing + dependency base is evaluated with the identical FP
  // expression cost()/total() use, so base == total − transmission exactly.
  const double base = params_.computing_cost + dependency_cost(vm_id, vm.host, destination);
  if (base_out != nullptr) *base_out = base;
  if (!(surface_enabled_ && surface_.ready())) return base;
  if (!surface_.host_usable(vm.host) || !surface_.host_usable(destination)) {
    return std::numeric_limits<double>::infinity();
  }
  // With no host—host link, src != dst guarantees every path has >= 2
  // links, whose first (last) is incident to src (dst). Nonnegative
  // left-folded sums are monotone under rounding, so the accumulated
  // transmission S_n satisfies S_n >= fl(t_first + t_last) >=
  // fl(min_src + min_dst), hence fl(base + S_n) >= fl(base + fl(...)).
  if (hosts_adjacent_) return base;
  const double cap = static_cast<double>(vm.capacity);
  const double src_term = surface_.min_incident_term(vm.host, cap, params_.delta, params_.eta);
  const double dst_term =
      surface_.min_incident_term(destination, cap, params_.delta, params_.eta);
  return base + (src_term + dst_term);
}

bool MigrationCostModel::provably_infeasible(wl::VmId vm_id, topo::NodeId destination) const {
  const wl::VirtualMachine& vm = deployment_->vm(vm_id);
  if (destination == vm.host) return true;  // one-node path never feasible
  if (!(surface_enabled_ && surface_.ready())) return false;
  return !surface_.host_usable(vm.host) || !surface_.host_usable(destination);
}

double MigrationCostModel::path_bottleneck_bandwidth(wl::VmId vm,
                                                     topo::NodeId destination) const {
  const wl::VirtualMachine& m = deployment_->vm(vm);
  const auto path = shortest_path(m.host, destination);
  if (path.size() < 2) return 0.0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const topo::LinkId link = topo_->link_between(path[i], path[i + 1]);
    const double capacity = topo_->link(link).capacity_gbps;
    double available = capacity;
    if (shares_ != nullptr) {
      available = std::max(shares_->available_bandwidth(*topo_, link),
                           params_.management_reserve_fraction * capacity);
    }
    bottleneck = std::min(bottleneck, std::min(available, params_.request_gbps));
  }
  return bottleneck;
}

double MigrationCostModel::total_cost(wl::VmId vm, topo::NodeId destination) const {
  const CostBreakdown breakdown = cost(vm, destination);
  return breakdown.feasible ? breakdown.total() : std::numeric_limits<double>::infinity();
}

}  // namespace sheriff::mig
