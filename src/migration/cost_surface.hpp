#pragma once
// Per-round SoA snapshot of Eq. (1)'s per-link transmission state.
//
// The cost model evaluates δ·T(e) + η·P(e) for every link of every
// candidate path, where T(e) = m.capacity / B(e), P(e) = B(e)/C(e) and
// B(e) = min(max(available, reserve·C(e)), requested). Within one manage
// round the fair-share result — and therefore B(e) and P(e) — is fixed,
// yet the per-candidate evaluation recomputed them per (VM, destination)
// pair per path link. The surface snapshots B(e), P(e) and the B(e) > B_t
// usability bit once per round into flat arrays indexed by LinkId, using
// the *exact same floating-point expressions* the per-candidate kernel
// used, so the flat kernel is bit-identical to the legacy one.

#include <cstdint>
#include <limits>
#include <vector>

#include "net/fair_share.hpp"
#include "topology/topology.hpp"

namespace sheriff::mig {

class CostSurface {
 public:
  CostSurface() = default;
  explicit CostSurface(const topo::Topology& topo) : topo_(&topo) {}

  /// Snapshots the round's link state. `shares == nullptr` means idle
  /// links, mirroring the cost model's convention. Per link:
  ///   available = max(shares->available_bandwidth, reserve·C(e))  (or C(e) idle)
  ///   B(e) = min(available, requested);  usable iff B(e) > B_t;  P(e) = B(e)/C(e)
  void build(const net::FairShareResult* shares, double reserve_fraction,
             double request_gbps, double threshold_gbps);

  void clear() noexcept { ready_ = false; }
  [[nodiscard]] bool ready() const noexcept { return ready_; }

  [[nodiscard]] bool usable(topo::LinkId l) const noexcept { return usable_[l] != 0; }
  [[nodiscard]] double bandwidth(topo::LinkId l) const noexcept { return b_[l]; }
  [[nodiscard]] double utilization(topo::LinkId l) const noexcept { return p_[l]; }

  /// Accumulates link l's transmission term δ·T(e) + η·P(e) into
  /// `transmission`; false when the link is below B_t (path infeasible).
  /// The expression matches the legacy per-candidate kernel op for op.
  [[nodiscard]] bool step(topo::LinkId l, double vm_capacity, double delta, double eta,
                          double& transmission) const noexcept {
    if (usable_[l] == 0) return false;
    const double t = vm_capacity / b_[l];  // T(e)
    transmission += delta * t + eta * p_[l];
    return true;
  }

  /// True iff any link incident to h is usable. Every src→dst path starts
  /// (ends) on a link incident to src (dst), so a host with no usable
  /// incident link is provably unreachable for migration this round.
  [[nodiscard]] bool host_usable(topo::NodeId h) const noexcept { return host_usable_[h] != 0; }

  /// Cheapest single-link transmission term any path touching h can incur
  /// at h: min over usable incident links of δ·(vm_capacity/B(e)) + η·P(e),
  /// the identical FP expression step() adds. +inf when no link is usable.
  [[nodiscard]] double min_incident_term(topo::NodeId h, double vm_capacity, double delta,
                                         double eta) const noexcept {
    double best = std::numeric_limits<double>::infinity();
    for (const topo::LinkId l : topo_->links_of(h)) {
      if (usable_[l] == 0) continue;
      const double term = delta * (vm_capacity / b_[l]) + eta * p_[l];
      if (term < best) best = term;
    }
    return best;
  }

 private:
  const topo::Topology* topo_ = nullptr;
  std::vector<double> b_;              ///< B(e) per link
  std::vector<double> p_;              ///< P(e) = B(e)/C(e) per link
  std::vector<std::uint8_t> usable_;   ///< B(e) > B_t per link
  std::vector<std::uint8_t> host_usable_;  ///< any usable incident link, per node
  bool ready_ = false;
};

}  // namespace sheriff::mig
