#pragma once
// Migration cost model, Eq. (1) of the paper:
//
//   Cost(v_i, v_p) = C_r                                  (computing cost)
//                  + C_d · D(e) · χ                       (dependency cost)
//                  + Σ_{e ∈ P(v_i,v_p)} (δ·T(e) + η·P(e)) (transmission cost)
//
// with T(e) = m.capacity / B(e) the transmission time, P(e) = B(e)/C(e)
// the utilization rate, B(e) = min(available bandwidth, requested
// bandwidth) required to exceed the threshold B_t.
//
// Dependency cost: the paper's term is the change in total wired distance
// of the induced dependency neighborhood after the move. We evaluate it as
// C_d times the summed distance from the *destination* to every dependency
// neighbor of the VM (the post-move neighborhood span); this keeps the
// term non-negative — as the assignment solvers require — while preserving
// the paper's intent of penalizing moves away from communication partners.
//
// Hot path (DESIGN.md §14): distance trees live in a lock-free row cache
// (one atomically published Row per root, replacing the historical
// mutex + unordered_map), each Row carrying a destination-rack-keyed memo
// of root→ToR link sequences; per-link bandwidth state is snapshotted once
// per round into a CostSurface. Both are bit-transparent: every mode
// produces the same CostBreakdown with the surface on or off.

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "migration/cost_surface.hpp"
#include "net/fair_share.hpp"
#include "topology/topology.hpp"
#include "workload/deployment.hpp"

namespace sheriff::mig {

/// How the dependency term of Eq. (1) is evaluated.
enum class DependencyCostMode : std::uint8_t {
  /// C_d times the post-move communication span: Σ_{u ∈ N_d(m)}
  /// D(dest, host(u)). Non-negative and monotone — the default, because
  /// the matching solvers need non-negative costs.
  kPostMoveSpan,
  /// The paper's literal formula: C_d times the *change* of the induced
  /// neighborhood distance, Σ D(new) − Σ D(old), clamped at 0 (a move
  /// toward the partners is free, never negative).
  kClampedDelta,
};

struct CostParams {
  double computing_cost = 100.0;      ///< C_r (Sec. VI-B sets 100)
  double unit_distance_cost = 1.0;    ///< C_d (Sec. VI-B sets 1)
  DependencyCostMode dependency_mode = DependencyCostMode::kPostMoveSpan;
  double delta = 1.0;                 ///< δ, transmission-time weight
  double eta = 1.0;                   ///< η, utilization weight
  double bandwidth_threshold_gbps = 0.05;  ///< B_t: links below this are unusable
  double request_gbps = 1.0;          ///< bandwidth requested for the transfer
  /// Management-plane reserve: live migration always gets at least this
  /// fraction of a link's capacity even when tenant flows saturate it
  /// (DCNs carve out a management slice; without it, the saturated hosts —
  /// exactly the ones that must shed VMs — could never migrate anything).
  double management_reserve_fraction = 0.1;
};

struct CostBreakdown {
  double computing = 0.0;
  double dependency = 0.0;
  double transmission = 0.0;
  bool feasible = false;  ///< false when some path link is below B_t

  [[nodiscard]] double total() const noexcept { return computing + dependency + transmission; }
};

/// Monotone evaluation counters (process-lifetime; the engine publishes
/// per-round deltas). `evaluated + pruned` over any matching sweep equals
/// the sweep's exhaustive evaluation count — pruning is provably lossless,
/// never a silent cap, and the identity is asserted in the tier-1 tests.
struct CostModelStats {
  std::uint64_t evaluated = 0;       ///< full Eq. (1) evaluations (cost() calls)
  std::uint64_t pruned = 0;          ///< candidates skipped by the admissible bound
  std::uint64_t surface_builds = 0;  ///< per-round CostSurface snapshots taken
};

/// Evaluates Eq. (1) for candidate moves on a fixed topology. Shortest
/// (distance-weighted) trees are computed lazily per root and published
/// into a lock-free row cache; call `begin_round()` when the network state
/// changes. Concurrent cost()/total_cost() calls are safe (rows are
/// immutable once published; a lost publication race discards the
/// duplicate), which lets every shim evaluate its proposals in parallel.
class MigrationCostModel {
 public:
  MigrationCostModel(const topo::Topology& topo, const wl::Deployment& deployment,
                     CostParams params = {});
  ~MigrationCostModel();

  MigrationCostModel(const MigrationCostModel&) = delete;
  MigrationCostModel& operator=(const MigrationCostModel&) = delete;

  /// Installs the current bandwidth state (link loads from the fair-share
  /// allocator). Without it, links are treated as idle. With the surface
  /// enabled this snapshots the per-link SoA arrays once for the round.
  void set_bandwidth_state(const net::FairShareResult* shares);

  /// Invalidates the per-root row cache. With retention on (default) this
  /// is a no-op: the trees are built on the immutable distance graph and
  /// never depend on bandwidth state, so discarding them between rounds
  /// only re-runs identical Dijkstras.
  void begin_round();

  /// Toggles tree retention across bandwidth-state changes. Disabling
  /// reproduces the historical clear-every-round behavior (the bench
  /// baseline); it never changes results, only how often trees rebuild.
  void set_tree_cache_retained(bool retain);
  [[nodiscard]] bool tree_cache_retained() const noexcept { return retain_trees_; }

  /// Roots the dependency-span Dijkstra trees at the VMs' *partners*
  /// instead of the candidate destination. Distances on the undirected
  /// wired graph are symmetric, so the spans are equal (up to FP summation
  /// order along a path); but a matching pass evaluates every candidate
  /// destination against a small partner set, so partner rooting shrinks
  /// the row cache from one tree per candidate host to one per partner —
  /// the dominant Dijkstra load of the manage phase.
  void set_partner_rooted(bool partner_rooted) noexcept { partner_rooted_ = partner_rooted; }
  [[nodiscard]] bool partner_rooted() const noexcept { return partner_rooted_; }

  /// Shares trees across single-homed hosts: a host with exactly one wired
  /// link (every fat-tree host; not BCube servers, which relay traffic)
  /// reaches the fabric only through that link, so its distances and paths
  /// are the neighbor ToR's tree plus the leaf edge. All hosts of a rack
  /// then share the ToR-rooted tree, collapsing the cache from one tree
  /// per queried host to one per queried rack. Distances can differ from
  /// the host-rooted tree by FP summation order, and equal-length paths by
  /// tie-break root, so this is a mode, not a pure cache change.
  void set_shared_leaf_trees(bool shared) noexcept { shared_leaf_trees_ = shared; }
  [[nodiscard]] bool shared_leaf_trees() const noexcept { return shared_leaf_trees_; }

  /// Toggles the per-round CostSurface (flat SoA link state + rack-keyed
  /// link-sequence memos). Bit-transparent: the flat kernel replays the
  /// legacy kernel's FP ops in the legacy order, so every CostBreakdown is
  /// identical with the surface on or off. Serial-only toggle (clears the
  /// row cache so memos are rebuilt in the right shape).
  void set_surface_enabled(bool enabled);
  [[nodiscard]] bool surface_enabled() const noexcept { return surface_enabled_; }

  /// Toggles bound-guarded candidate pruning in propose_matching. The
  /// bound is exact and admissible (see candidate_lower_bound), so the
  /// selected moves are bitwise identical with pruning on or off; only the
  /// evaluated/pruned counter split changes.
  void set_pruning_enabled(bool enabled) noexcept { pruning_ = enabled; }
  [[nodiscard]] bool pruning_enabled() const noexcept { return pruning_; }

  [[nodiscard]] CostModelStats stats() const noexcept;

  /// Cost of migrating `vm` from its current host to `destination`.
  [[nodiscard]] CostBreakdown cost(wl::VmId vm, topo::NodeId destination) const;

  /// Total cost convenience: +inf when infeasible.
  [[nodiscard]] double total_cost(wl::VmId vm, topo::NodeId destination) const;

  /// Admissible lower bound on total_cost(vm, destination): the exact
  /// computing + dependency base (identical FP expression to cost()) plus,
  /// when the surface is live, the cheapest transmission terms any path
  /// must pay on its first link (incident to the source) and last link
  /// (incident to the destination). Nonnegative left-folded partial sums
  /// are monotone under rounding, so bound ≤ total_cost always — the
  /// argmin can never be pruned away. +inf when the move is provably
  /// infeasible (then total_cost is +inf too). When `base_out` is given it
  /// receives the computing + dependency base, which the caller can hand
  /// back to total_cost_with_base so a surviving candidate never pays the
  /// dependency walk twice.
  [[nodiscard]] double candidate_lower_bound(wl::VmId vm, topo::NodeId destination,
                                             double* base_out = nullptr) const;

  /// total_cost with the computing + dependency base precomputed by
  /// candidate_lower_bound. total() folds (computing + dependency) +
  /// transmission left-to-right and `base` is that exact inner sum, so
  /// `base + transmission` is bitwise total_cost(vm, destination) — just
  /// without re-walking the dependency set. Counts as one full evaluation
  /// in the stats (it is one).
  [[nodiscard]] double total_cost_with_base(wl::VmId vm, topo::NodeId destination,
                                            double base) const;

  /// True when every source→destination path is provably below B_t (or the
  /// destination is the VM's own host): total_cost is certainly +inf, so
  /// the matching layer can skip the evaluation at any batch size.
  [[nodiscard]] bool provably_infeasible(wl::VmId vm, topo::NodeId destination) const;

  /// Accounting hook for the matching layer: one candidate skipped by the
  /// bound (would have been evaluated by the exhaustive sweep).
  void note_pruned() const noexcept { pruned_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] const CostParams& params() const noexcept { return params_; }

  /// Wired distance (meters over shortest distance path) between hosts.
  [[nodiscard]] double host_distance(topo::NodeId from, topo::NodeId to) const;

  /// Bottleneck bandwidth B(e*) the migration transfer would get on the
  /// path from the VM's host to `destination` (management reserve
  /// applied); 0 when unreachable. Feeds the live-migration timeline.
  [[nodiscard]] double path_bottleneck_bandwidth(wl::VmId vm, topo::NodeId destination) const;

  /// Shared distance rows: the deterministic shortest-path tree rooted at
  /// `root` on the immutable (unmasked) distance graph, built on demand
  /// and cached. KMedianPlanner reuses these rows for its pristine-fabric
  /// distance matrix so there is one source of truth for ToR distances.
  [[nodiscard]] const graph::ShortestPathTree& distance_tree(topo::NodeId root) const;

 private:
  /// One root's cache line: the Dijkstra tree plus (surface mode only) the
  /// destination-rack-keyed memo of root→ToR link sequences along the
  /// tree's deterministic paths. Immutable once published into rows_.
  struct Row {
    graph::ShortestPathTree tree;
    std::vector<std::vector<topo::LinkId>> rack_links;
    std::vector<std::uint8_t> rack_ok;
  };

  const Row& row_for(topo::NodeId root) const;
  [[nodiscard]] Row* build_row(topo::NodeId root) const;
  void clear_rows() const;
  const graph::ShortestPathTree& tree_for(topo::NodeId source) const;
  /// One shortest distance path `from` → `to` (empty when unreachable),
  /// routed through the shared leaf tree when the mode is on.
  [[nodiscard]] std::vector<topo::NodeId> shortest_path(topo::NodeId from,
                                                        topo::NodeId to) const;
  /// Eq. (1)'s dependency term, shared verbatim between cost() and
  /// candidate_lower_bound() so their FP results are identical.
  [[nodiscard]] double dependency_cost(wl::VmId vm_id, topo::NodeId vm_host,
                                       topo::NodeId destination) const;
  /// Surface-mode transmission kernel: fills breakdown.transmission and
  /// .feasible replaying the legacy per-link loop on the SoA arrays.
  void surface_transmission(const wl::VirtualMachine& vm, topo::NodeId destination,
                            CostBreakdown& breakdown) const;
  /// Legacy transmission kernel (per-link walk against the fair-share
  /// result), shared by cost() and total_cost_with_base.
  void legacy_transmission(const wl::VirtualMachine& vm, topo::NodeId destination,
                           CostBreakdown& breakdown) const;

  const topo::Topology* topo_;
  const wl::Deployment* deployment_;
  CostParams params_;
  graph::Graph distance_graph_;
  const net::FairShareResult* shares_ = nullptr;
  bool retain_trees_ = true;
  bool partner_rooted_ = false;
  bool shared_leaf_trees_ = false;
  bool surface_enabled_ = false;
  bool pruning_ = false;
  bool hosts_adjacent_ = false;  ///< any host—host link (disables the 2-link bound)
  CostSurface surface_;
  // Static leaf tables (hosts with exactly one wired link).
  std::vector<std::uint8_t> single_homed_;  ///< per node: exactly one incident link
  std::vector<std::uint8_t> rack_leaf_;     ///< single-homed AND leaf peer == own rack's ToR
  std::vector<topo::LinkId> leaf_link_;     ///< the leaf link (valid iff single_homed_)
  std::vector<topo::NodeId> leaf_tor_;      ///< the leaf peer (valid iff single_homed_)
  // Lock-free row cache: slot published once via CAS, then immutable; a
  // losing builder deletes its duplicate (rows are deterministic, so the
  // winner's copy is identical). Cleared only at serial points.
  mutable std::vector<std::atomic<Row*>> rows_;
  // Evaluation counters (relaxed: monotone totals, read at serial points).
  mutable std::atomic<std::uint64_t> evaluated_{0};
  mutable std::atomic<std::uint64_t> pruned_{0};
  mutable std::atomic<std::uint64_t> surface_builds_{0};
};

}  // namespace sheriff::mig
