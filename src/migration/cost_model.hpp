#pragma once
// Migration cost model, Eq. (1) of the paper:
//
//   Cost(v_i, v_p) = C_r                                  (computing cost)
//                  + C_d · D(e) · χ                       (dependency cost)
//                  + Σ_{e ∈ P(v_i,v_p)} (δ·T(e) + η·P(e)) (transmission cost)
//
// with T(e) = m.capacity / B(e) the transmission time, P(e) = B(e)/C(e)
// the utilization rate, B(e) = min(available bandwidth, requested
// bandwidth) required to exceed the threshold B_t.
//
// Dependency cost: the paper's term is the change in total wired distance
// of the induced dependency neighborhood after the move. We evaluate it as
// C_d times the summed distance from the *destination* to every dependency
// neighbor of the VM (the post-move neighborhood span); this keeps the
// term non-negative — as the assignment solvers require — while preserving
// the paper's intent of penalizing moves away from communication partners.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "net/fair_share.hpp"
#include "topology/topology.hpp"
#include "workload/deployment.hpp"

namespace sheriff::mig {

/// How the dependency term of Eq. (1) is evaluated.
enum class DependencyCostMode : std::uint8_t {
  /// C_d times the post-move communication span: Σ_{u ∈ N_d(m)}
  /// D(dest, host(u)). Non-negative and monotone — the default, because
  /// the matching solvers need non-negative costs.
  kPostMoveSpan,
  /// The paper's literal formula: C_d times the *change* of the induced
  /// neighborhood distance, Σ D(new) − Σ D(old), clamped at 0 (a move
  /// toward the partners is free, never negative).
  kClampedDelta,
};

struct CostParams {
  double computing_cost = 100.0;      ///< C_r (Sec. VI-B sets 100)
  double unit_distance_cost = 1.0;    ///< C_d (Sec. VI-B sets 1)
  DependencyCostMode dependency_mode = DependencyCostMode::kPostMoveSpan;
  double delta = 1.0;                 ///< δ, transmission-time weight
  double eta = 1.0;                   ///< η, utilization weight
  double bandwidth_threshold_gbps = 0.05;  ///< B_t: links below this are unusable
  double request_gbps = 1.0;          ///< bandwidth requested for the transfer
  /// Management-plane reserve: live migration always gets at least this
  /// fraction of a link's capacity even when tenant flows saturate it
  /// (DCNs carve out a management slice; without it, the saturated hosts —
  /// exactly the ones that must shed VMs — could never migrate anything).
  double management_reserve_fraction = 0.1;
};

struct CostBreakdown {
  double computing = 0.0;
  double dependency = 0.0;
  double transmission = 0.0;
  bool feasible = false;  ///< false when some path link is below B_t

  [[nodiscard]] double total() const noexcept { return computing + dependency + transmission; }
};

/// Evaluates Eq. (1) for candidate moves on a fixed topology. Shortest
/// (distance-weighted) paths are computed lazily per source host and
/// cached; call `begin_round()` when the network state changes. Concurrent
/// cost()/total_cost() calls are safe (the path cache is mutex-guarded),
/// which lets every shim evaluate its proposals in parallel.
class MigrationCostModel {
 public:
  MigrationCostModel(const topo::Topology& topo, const wl::Deployment& deployment,
                     CostParams params = {});

  /// Installs the current bandwidth state (link loads from the fair-share
  /// allocator). Without it, links are treated as idle.
  void set_bandwidth_state(const net::FairShareResult* shares);

  /// Invalidates the per-source path cache. With retention on (default)
  /// this is a no-op: the trees are built on the immutable distance graph
  /// and never depend on bandwidth state, so discarding them between
  /// rounds only re-runs identical Dijkstras.
  void begin_round();

  /// Toggles tree retention across bandwidth-state changes. Disabling
  /// reproduces the historical clear-every-round behavior (the bench
  /// baseline); it never changes results, only how often trees rebuild.
  void set_tree_cache_retained(bool retain);
  [[nodiscard]] bool tree_cache_retained() const noexcept { return retain_trees_; }

  /// Roots the dependency-span Dijkstra trees at the VMs' *partners*
  /// instead of the candidate destination. Distances on the undirected
  /// wired graph are symmetric, so the spans are equal (up to FP summation
  /// order along a path); but a matching pass evaluates every candidate
  /// destination against a small partner set, so partner rooting shrinks
  /// the tree cache from one tree per candidate host to one per partner —
  /// the dominant Dijkstra load of the manage phase.
  void set_partner_rooted(bool partner_rooted) noexcept { partner_rooted_ = partner_rooted; }
  [[nodiscard]] bool partner_rooted() const noexcept { return partner_rooted_; }

  /// Shares trees across single-homed hosts: a host with exactly one wired
  /// link (every fat-tree host; not BCube servers, which relay traffic)
  /// reaches the fabric only through that link, so its distances and paths
  /// are the neighbor ToR's tree plus the leaf edge. All hosts of a rack
  /// then share the ToR-rooted tree, collapsing the cache from one tree
  /// per queried host to one per queried rack. Distances can differ from
  /// the host-rooted tree by FP summation order, and equal-length paths by
  /// tie-break root, so this is a mode, not a pure cache change.
  void set_shared_leaf_trees(bool shared) noexcept { shared_leaf_trees_ = shared; }
  [[nodiscard]] bool shared_leaf_trees() const noexcept { return shared_leaf_trees_; }

  /// Cost of migrating `vm` from its current host to `destination`.
  [[nodiscard]] CostBreakdown cost(wl::VmId vm, topo::NodeId destination) const;

  /// Total cost convenience: +inf when infeasible.
  [[nodiscard]] double total_cost(wl::VmId vm, topo::NodeId destination) const;

  [[nodiscard]] const CostParams& params() const noexcept { return params_; }

  /// Wired distance (meters over shortest distance path) between hosts.
  [[nodiscard]] double host_distance(topo::NodeId from, topo::NodeId to) const;

  /// Bottleneck bandwidth B(e*) the migration transfer would get on the
  /// path from the VM's host to `destination` (management reserve
  /// applied); 0 when unreachable. Feeds the live-migration timeline.
  [[nodiscard]] double path_bottleneck_bandwidth(wl::VmId vm, topo::NodeId destination) const;

 private:
  const graph::ShortestPathTree& tree_for(topo::NodeId source) const;
  /// One shortest distance path `from` → `to` (empty when unreachable),
  /// routed through the shared leaf tree when the mode is on.
  [[nodiscard]] std::vector<topo::NodeId> shortest_path(topo::NodeId from,
                                                        topo::NodeId to) const;

  const topo::Topology* topo_;
  const wl::Deployment* deployment_;
  CostParams params_;
  graph::Graph distance_graph_;
  const net::FairShareResult* shares_ = nullptr;
  bool retain_trees_ = true;
  bool partner_rooted_ = false;
  bool shared_leaf_trees_ = false;
  // Values are stable pointers so concurrent readers can hold references
  // across rehashes; the mutex only guards lookups/insertions.
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<topo::NodeId, std::unique_ptr<graph::ShortestPathTree>>
      tree_cache_;
};

}  // namespace sheriff::mig
