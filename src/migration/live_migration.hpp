#pragma once
// Six-stage pre-copy live migration (Sec. III-C, Fig. 2; Clark et al.,
// NSDI 2005): initialization/reservation, iterative pre-copy, stop&copy,
// commitment/activation. This model computes the stage durations t1..t4,
// the downtime, and the bytes moved, given memory size, page dirty rate
// and the bandwidth the transfer gets.

#include <cstddef>

namespace sheriff::mig {

struct LiveMigrationParams {
  double memory_gb = 4.0;          ///< VM RAM to copy
  double dirty_rate_gbps = 0.5;    ///< rate at which pages are re-dirtied
  double bandwidth_gbps = 1.0;     ///< transfer rate granted to the migration
  int max_precopy_rounds = 6;      ///< bound on iterative pre-copy rounds
  double stop_copy_threshold_gb = 0.05;  ///< remainder small enough to stop&copy
  double init_seconds = 0.5;       ///< t1: initialization + reservation
  double commit_seconds = 0.3;     ///< t4: commitment + activation
};

struct LiveMigrationTimeline {
  double t1_init_seconds = 0.0;      ///< initialization + reservation
  double t2_precopy_seconds = 0.0;   ///< iterative pre-copy
  double t3_downtime_seconds = 0.0;  ///< stop & copy (service suspended)
  double t4_commit_seconds = 0.0;    ///< commitment + activation
  double transferred_gb = 0.0;       ///< total bytes moved (all rounds)
  int precopy_rounds = 0;

  [[nodiscard]] double total_seconds() const noexcept {
    return t1_init_seconds + t2_precopy_seconds + t3_downtime_seconds + t4_commit_seconds;
  }
};

/// Simulates the pre-copy iteration: each round retransmits the pages
/// dirtied during the previous round; rounds stop when the residue drops
/// below the stop&copy threshold or the round bound is hit.
LiveMigrationTimeline simulate_live_migration(const LiveMigrationParams& params);

}  // namespace sheriff::mig
