#include "migration/cost_surface.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace sheriff::mig {

void CostSurface::build(const net::FairShareResult* shares, double reserve_fraction,
                        double request_gbps, double threshold_gbps) {
  SHERIFF_REQUIRE(topo_ != nullptr, "CostSurface built without a topology");
  const std::size_t links = topo_->link_count();
  b_.resize(links);
  p_.resize(links);
  usable_.resize(links);
  for (topo::LinkId l = 0; l < links; ++l) {
    const double capacity = topo_->link(l).capacity_gbps;
    double available = capacity;
    if (shares != nullptr) {
      available = std::max(shares->available_bandwidth(*topo_, l),
                           reserve_fraction * capacity);
    }
    // B(e): the smaller of available and requested bandwidth — the exact
    // expression (and clamp order) the per-candidate kernel evaluated.
    const double b = std::min(available, request_gbps);
    b_[l] = b;
    p_[l] = b / capacity;
    usable_[l] = b > threshold_gbps ? 1 : 0;
  }
  host_usable_.assign(topo_->node_count(), 0);
  for (topo::NodeId n = 0; n < topo_->node_count(); ++n) {
    for (const topo::LinkId l : topo_->links_of(n)) {
      if (usable_[l] != 0) {
        host_usable_[n] = 1;
        break;
      }
    }
  }
  ready_ = true;
}

}  // namespace sheriff::mig
