#include "migration/live_migration.hpp"

#include "common/require.hpp"

namespace sheriff::mig {

LiveMigrationTimeline simulate_live_migration(const LiveMigrationParams& params) {
  SHERIFF_REQUIRE(params.memory_gb > 0.0, "memory size must be positive");
  SHERIFF_REQUIRE(params.bandwidth_gbps > 0.0, "bandwidth must be positive");
  SHERIFF_REQUIRE(params.dirty_rate_gbps >= 0.0, "dirty rate must be non-negative");
  SHERIFF_REQUIRE(params.max_precopy_rounds >= 1, "need at least one pre-copy round");

  LiveMigrationTimeline timeline;
  timeline.t1_init_seconds = params.init_seconds;
  timeline.t4_commit_seconds = params.commit_seconds;

  // Bandwidth is in Gbit/s and sizes in GByte: 8 bits per byte.
  const double rate_gBps = params.bandwidth_gbps / 8.0;
  const double dirty_gBps = params.dirty_rate_gbps / 8.0;

  double remaining = params.memory_gb;  // to transfer this round
  for (int round = 0; round < params.max_precopy_rounds; ++round) {
    if (remaining <= params.stop_copy_threshold_gb) break;
    const double round_seconds = remaining / rate_gBps;
    timeline.t2_precopy_seconds += round_seconds;
    timeline.transferred_gb += remaining;
    ++timeline.precopy_rounds;
    // Pages dirtied while this round streamed must go again next round
    // (never more than the whole memory).
    remaining = dirty_gBps * round_seconds;
    if (remaining > params.memory_gb) remaining = params.memory_gb;
  }

  // Stop & copy: suspend and move the residue.
  timeline.t3_downtime_seconds = remaining / rate_gBps;
  timeline.transferred_gb += remaining;
  return timeline;
}

}  // namespace sheriff::mig
