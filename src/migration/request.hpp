#pragma once
// REQUEST action (Alg. 4): receiver-side admission for migration. The
// destination rack's delegation node serves requests first-come-first-
// served; it ACKs when it is the responsible delegate and the destination
// host has room (and no dependency conflict), otherwise rejects or
// ignores. On ACK the reservation is applied immediately, so later
// requests in the same round see the updated capacity — exactly the FCFS
// conflict-avoidance of the paper.

#include <cstddef>

#include "topology/topology.hpp"
#include "workload/deployment.hpp"

namespace sheriff::mig {

enum class RequestOutcome : std::uint8_t {
  kAck,                 ///< reserved and migrated
  kRejectCapacity,      ///< h_pq lacks capacity (or dependency conflict)
  kIgnoredNotDelegate,  ///< the addressed shim does not own the destination
};

const char* to_string(RequestOutcome outcome) noexcept;

class AdmissionBroker {
 public:
  /// The broker mutates the shared deployment on ACK.
  explicit AdmissionBroker(wl::Deployment& deployment);

  /// Processes one REQUEST(m, h_dest) addressed to `handler_rack`'s shim.
  RequestOutcome request(wl::VmId vm, topo::NodeId destination_host,
                         topo::RackId handler_rack);

  [[nodiscard]] std::size_t ack_count() const noexcept { return acks_; }
  [[nodiscard]] std::size_t reject_count() const noexcept { return rejects_; }

 private:
  wl::Deployment* deployment_;
  std::size_t acks_ = 0;
  std::size_t rejects_ = 0;
};

}  // namespace sheriff::mig
