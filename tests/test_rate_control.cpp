// QCN reaction-point tests: rate limits cut under congestion feedback,
// recover in binary-search fashion afterwards, interact correctly with the
// fair-share allocator, and ultimately drain the congested queues.

#include <gtest/gtest.h>

#include <limits>

#include "common/require.hpp"
#include "net/fair_share.hpp"
#include "net/rate_control.hpp"
#include "net/routing.hpp"
#include "topology/fat_tree.hpp"

namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;

namespace {

topo::Topology narrow_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 2;
  options.tor_agg_gbps = 1.0;
  return topo::build_fat_tree(options);
}

std::vector<net::Flow> incast_flows(const topo::Topology& t, double demand) {
  // Several racks all send to one victim host: guaranteed congestion.
  std::vector<net::Flow> flows;
  const topo::NodeId victim = t.rack(0).hosts[0];
  for (topo::RackId r = 1; r <= 3; ++r) {
    for (topo::NodeId h : t.rack(r).hosts) {
      net::Flow f;
      f.id = static_cast<net::FlowId>(flows.size());
      f.src_host = h;
      f.dst_host = victim;
      f.demand_gbps = demand;
      flows.push_back(f);
    }
  }
  return flows;
}

}  // namespace

TEST(FlowEffectiveDemand, HonorsLimit) {
  net::Flow f;
  f.demand_gbps = 2.0;
  EXPECT_DOUBLE_EQ(f.effective_demand(), 2.0);  // unlimited by default
  f.rate_limit_gbps = 0.5;
  EXPECT_DOUBLE_EQ(f.effective_demand(), 0.5);
  f.rate_limit_gbps = 5.0;
  EXPECT_DOUBLE_EQ(f.effective_demand(), 2.0);
}

TEST(QcnRateController, CutsUnderCongestionAndRecoversAfter) {
  const auto t = narrow_fat_tree();
  const net::Router router(t);
  auto flows = incast_flows(t, 1.5);
  router.route_all(std::span<net::Flow>(flows));

  net::QcnConfig qconfig;
  qconfig.equilibrium_queue = 0.5;
  net::SwitchQueues queues(t, qconfig);
  net::QcnRateController controller;

  // Drive congestion for a few periods: limits must appear and bite.
  bool limited = false;
  for (int tick = 0; tick < 8; ++tick) {
    const auto shares = net::max_min_fair_share(t, flows);
    queues.update(shares, flows);
    controller.update(flows, queues);
    for (const auto& f : flows) {
      if (f.rate_limit_gbps < f.demand_gbps) limited = true;
    }
  }
  EXPECT_TRUE(limited);
  EXPECT_GT(controller.tracked_flows(), 0u);

  // Kill the demand: queues drain, recovery lifts every limit.
  for (auto& f : flows) f.demand_gbps = 0.01;
  for (int tick = 0; tick < 80; ++tick) {
    const auto shares = net::max_min_fair_share(t, flows);
    queues.update(shares, flows);
    controller.update(flows, queues);
  }
  EXPECT_EQ(controller.tracked_flows(), 0u);
  for (const auto& f : flows) {
    EXPECT_EQ(f.rate_limit_gbps, std::numeric_limits<double>::infinity());
  }
}

TEST(QcnRateController, LimitsReduceQueueBacklog) {
  const auto t = narrow_fat_tree();
  const net::Router router(t);

  const auto run = [&](bool enable_control) {
    auto flows = incast_flows(t, 1.5);
    router.route_all(std::span<net::Flow>(flows));
    net::QcnConfig qconfig;
    qconfig.equilibrium_queue = 0.5;
    net::SwitchQueues queues(t, qconfig);
    net::QcnRateController controller;
    double total_backlog = 0.0;
    for (int tick = 0; tick < 30; ++tick) {
      const auto shares = net::max_min_fair_share(t, flows);
      queues.update(shares, flows);
      if (enable_control) controller.update(flows, queues);
      for (const auto& node : t.nodes()) {
        if (topo::is_switch(node.kind)) total_backlog += queues.queue_length(node.id);
      }
    }
    return total_backlog;
  };

  const double with_control = run(true);
  const double without_control = run(false);
  EXPECT_LT(with_control, 0.7 * without_control);
}

TEST(QcnRateController, NeverBelowFloor) {
  const auto t = narrow_fat_tree();
  const net::Router router(t);
  auto flows = incast_flows(t, 2.0);
  router.route_all(std::span<net::Flow>(flows));
  net::QcnConfig qconfig;
  qconfig.equilibrium_queue = 0.1;  // very aggressive congestion signal
  net::SwitchQueues queues(t, qconfig);
  net::QcnRateConfig rconfig;
  rconfig.min_rate_gbps = 0.05;
  net::QcnRateController controller(rconfig);
  for (int tick = 0; tick < 40; ++tick) {
    const auto shares = net::max_min_fair_share(t, flows);
    queues.update(shares, flows);
    controller.update(flows, queues);
  }
  for (const auto& f : flows) {
    EXPECT_GE(f.rate_limit_gbps, rconfig.min_rate_gbps - 1e-12);
  }
}

TEST(QcnRateController, ConfigValidation) {
  net::QcnRateConfig bad;
  bad.decrease_gain = 1.5;
  EXPECT_THROW(net::QcnRateController{bad}, sc::RequirementError);
  bad = {};
  bad.min_rate_gbps = 0.0;
  EXPECT_THROW(net::QcnRateController{bad}, sc::RequirementError);
}

TEST(QcnRateController, UnroutedFlowsIgnored) {
  const auto t = narrow_fat_tree();
  std::vector<net::Flow> flows(1);
  flows[0].demand_gbps = 1.0;  // never routed
  net::SwitchQueues queues(t);
  net::QcnRateController controller;
  controller.update(flows, queues);
  EXPECT_EQ(controller.tracked_flows(), 0u);
}
