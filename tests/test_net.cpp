// Network substrate tests: routing validity and ECMP spread, max–min
// fairness invariants, queue/QCN congestion signalling with DSCP marking,
// and rerouting around hot switches.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "net/fair_share.hpp"
#include "net/flow.hpp"
#include "net/flow_stats.hpp"
#include "net/queueing.hpp"
#include "net/reroute.hpp"
#include "net/routing.hpp"
#include "topology/fat_tree.hpp"

namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;

namespace {

topo::Topology small_fat_tree(double tor_agg_gbps = 10.0) {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 2;
  options.tor_agg_gbps = tor_agg_gbps;
  return topo::build_fat_tree(options);
}

net::Flow make_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst, double demand) {
  net::Flow f;
  f.id = id;
  f.src_host = src;
  f.dst_host = dst;
  f.demand_gbps = demand;
  return f;
}

}  // namespace

TEST(Routing, PathEndpointsAndAdjacency) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  auto flow = make_flow(1, hosts.front(), hosts.back(), 1.0);
  ASSERT_TRUE(router.route(flow));
  ASSERT_GE(flow.path.size(), 2u);
  EXPECT_EQ(flow.path.front(), hosts.front());
  EXPECT_EQ(flow.path.back(), hosts.back());
  for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
    EXPECT_TRUE(t.adjacent(flow.path[i], flow.path[i + 1]));
  }
}

TEST(Routing, IntraRackPathIsTwoHops) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const auto& rack = t.rack(0);
  auto flow = make_flow(2, rack.hosts[0], rack.hosts[1], 1.0);
  ASSERT_TRUE(router.route(flow));
  EXPECT_EQ(flow.path.size(), 3u);  // host — ToR — host
  EXPECT_EQ(flow.path[1], rack.tor);
}

TEST(Routing, EcmpSpreadsAcrossCores) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  // Cross-pod pair: a 4-pod fat tree has 4 distinct shortest paths.
  const topo::NodeId src = t.rack(0).hosts[0];
  const topo::NodeId dst = t.rack(t.rack_count() - 1).hosts[0];
  EXPECT_EQ(router.shortest_path_count(src, dst), 4u);

  std::set<topo::NodeId> cores_used;
  for (net::FlowId id = 0; id < 64; ++id) {
    auto flow = make_flow(id, src, dst, 1.0);
    ASSERT_TRUE(router.route(flow));
    for (topo::NodeId n : flow.path) {
      if (t.node(n).kind == topo::NodeKind::kCoreSwitch) cores_used.insert(n);
    }
  }
  EXPECT_GE(cores_used.size(), 2u);  // hashing actually spreads
}

TEST(Routing, SelfFlowRejected) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  auto flow = make_flow(3, t.rack(0).hosts[0], t.rack(0).hosts[0], 1.0);
  EXPECT_FALSE(router.route(flow));
  EXPECT_FALSE(flow.routed());
}

// Steady state on a static topology: re-routing the same flow table must
// be served from the resolved-path cache, returning identical paths.
TEST(Routing, PathCacheHitsOnSteadyStateQueries) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < 16; ++id) {
    flows.push_back(make_flow(id, hosts[id % hosts.size()],
                              hosts[(id * 7 + 3) % hosts.size()], 0.5));
  }
  router.route_all(flows);
  const std::size_t misses_after_warmup = router.cache_stats().path_misses;
  EXPECT_EQ(router.cache_stats().path_hits, 0u);

  std::vector<std::vector<topo::NodeId>> first_paths;
  for (const auto& f : flows) first_paths.push_back(f.path);
  for (int repeat = 0; repeat < 3; ++repeat) {
    router.route_all(flows);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      EXPECT_EQ(flows[i].path, first_paths[i]) << "flow " << i;
    }
  }
  EXPECT_EQ(router.cache_stats().path_misses, misses_after_warmup);
  EXPECT_GT(router.cache_stats().path_hits, 0u);
}

// Blocked reroute probes are the queries that repeat round over round:
// both successful probes and probes that found no path must be cached,
// keyed on the sorted blocked set.
TEST(Routing, PathCacheServesBlockedProbes) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const topo::NodeId src = t.rack(0).hosts[0];
  const topo::NodeId dst = t.rack(t.rack_count() - 1).hosts[0];
  auto flow = make_flow(9, src, dst, 1.0);
  ASSERT_TRUE(router.route(flow));
  ASSERT_GE(flow.path.size(), 3u);

  // Block the core the flow transits (the path midpoint on a cross-pod
  // route): the probe must detour around it, and the repeat must be a
  // cache hit returning the identical detour.
  const std::vector<topo::NodeId> blocked{flow.path[flow.path.size() / 2]};
  ASSERT_TRUE(router.route(flow, blocked));
  const auto detour = flow.path;
  EXPECT_EQ(std::find(detour.begin(), detour.end(), blocked[0]), detour.end());
  const std::size_t hits_before = router.cache_stats().path_hits;
  ASSERT_TRUE(router.route(flow, blocked));
  EXPECT_EQ(flow.path, detour);
  EXPECT_EQ(router.cache_stats().path_hits, hits_before + 1);

  // A probe with every egress blocked fails — and the failure itself is
  // cached, so the repeat doesn't recompute a doomed Dijkstra.
  auto local = make_flow(10, t.rack(0).hosts[0], t.rack(0).hosts[1], 1.0);
  const std::vector<topo::NodeId> wall{t.rack(0).tor};
  EXPECT_FALSE(router.route(local, wall));
  const std::size_t hits_mid = router.cache_stats().path_hits;
  EXPECT_FALSE(router.route(local, wall));
  EXPECT_EQ(router.cache_stats().path_hits, hits_mid + 1);
}

TEST(FairShare, SingleFlowGetsMinOfDemandAndBottleneck) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  std::vector<net::Flow> flows{
      make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 5.0)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  // Host links are 1 Gbps: the flow is capped at 1.
  EXPECT_NEAR(result.flow_rate[0], 1.0, 1e-9);
  EXPECT_NEAR(flows[0].allocated_gbps, 1.0, 1e-9);
}

TEST(FairShare, DemandBelowCapacityIsGrantedFully) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  std::vector<net::Flow> flows{
      make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 0.25)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  EXPECT_NEAR(result.flow_rate[0], 0.25, 1e-9);
}

TEST(FairShare, TwoFlowsShareABottleneckEqually) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  // Both flows originate at the same host: its 1 Gbps uplink is shared.
  const topo::NodeId src = t.rack(0).hosts[0];
  std::vector<net::Flow> flows{make_flow(0, src, t.rack(1).hosts[0], 5.0),
                               make_flow(1, src, t.rack(1).hosts[1], 5.0)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  EXPECT_NEAR(result.flow_rate[0], 0.5, 1e-9);
  EXPECT_NEAR(result.flow_rate[1], 0.5, 1e-9);
}

TEST(FairShare, NoLinkExceedsCapacity) {
  const auto t = small_fat_tree(1.0);  // narrow ToR uplinks to force contention
  const net::Router router(t);
  sc::Pcg32 rng(5);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < 60; ++id) {
    const auto a = rng.pick(hosts);
    const auto b = rng.pick(hosts);
    if (a == b) continue;
    flows.push_back(make_flow(id, a, b, rng.uniform(0.1, 2.0)));
  }
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    EXPECT_LE(result.link_load_gbps[l], t.link(l).capacity_gbps + 1e-6);
    EXPECT_LE(result.link_utilization[l], 1.0 + 1e-6);
  }
  // Max-min property: no flow got more than its demand.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(result.flow_rate[f], flows[f].demand_gbps + 1e-9);
  }
}

TEST(FairShare, UnsatisfiedFlowHasSaturatedLink) {
  const auto t = small_fat_tree(1.0);
  const net::Router router(t);
  const topo::NodeId src = t.rack(0).hosts[0];
  std::vector<net::Flow> flows{make_flow(0, src, t.rack(1).hosts[0], 3.0),
                               make_flow(1, src, t.rack(1).hosts[1], 3.0),
                               make_flow(2, src, t.rack(2).hosts[0], 3.0)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (result.flow_rate[f] < flows[f].demand_gbps - 1e-6) {
      // A rate-limited flow must cross at least one saturated link.
      bool found_saturated = false;
      const auto& path = flows[f].path;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto l = t.link_between(path[i], path[i + 1]);
        if (result.link_load_gbps[l] >= t.link(l).capacity_gbps - 1e-6) {
          found_saturated = true;
        }
      }
      EXPECT_TRUE(found_saturated);
    }
  }
}

TEST(FairShare, AvailableBandwidthRejectsOutOfRangeLink) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  std::vector<net::Flow> flows{
      make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 0.5)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  // In range: fine. One past the end: a hard requirement failure, not UB —
  // this was a hot-path .at() once, and the bound must stay checked.
  EXPECT_GE(result.available_bandwidth(t, t.link_count() - 1), 0.0);
  EXPECT_THROW(static_cast<void>(result.available_bandwidth(t, t.link_count())),
               sc::RequirementError);
  EXPECT_THROW(static_cast<void>(result.available_bandwidth(t, static_cast<topo::LinkId>(-1))),
               sc::RequirementError);
}

TEST(FlowStats, JainIndexExtremes) {
  const std::vector<double> equal{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(net::jain_fairness_index(equal), 1.0, 1e-12);
  const std::vector<double> monopoly{4.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(net::jain_fairness_index(monopoly), 0.25, 1e-12);  // 1/n
  EXPECT_DOUBLE_EQ(net::jain_fairness_index({}), 1.0);
  const std::vector<double> starved{0.0, 0.0};
  EXPECT_DOUBLE_EQ(net::jain_fairness_index(starved), 1.0);
}

TEST(FlowStats, QosOnUncongestedFabricIsPerfect) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  std::vector<net::Flow> flows{
      make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 0.2),
      make_flow(1, t.rack(2).hosts[0], t.rack(3).hosts[0], 0.3)};
  router.route_all(flows);
  (void)net::max_min_fair_share(t, flows);
  const auto stats = net::compute_qos_stats(flows);
  EXPECT_EQ(stats.offered_flows, 2u);
  EXPECT_EQ(stats.satisfied_flows, 2u);
  EXPECT_DOUBLE_EQ(stats.satisfied_fraction(), 1.0);
  EXPECT_NEAR(stats.mean_satisfaction, 1.0, 1e-9);
  EXPECT_NEAR(stats.total_allocated_gbps, 0.5, 1e-9);
}

TEST(FlowStats, QosDegradesUnderOverload) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const topo::NodeId src = t.rack(0).hosts[0];  // one 1 Gbps uplink, 3 Gbps wanted
  std::vector<net::Flow> flows{make_flow(0, src, t.rack(1).hosts[0], 1.0),
                               make_flow(1, src, t.rack(2).hosts[0], 1.0),
                               make_flow(2, src, t.rack(3).hosts[0], 1.0)};
  router.route_all(flows);
  (void)net::max_min_fair_share(t, flows);
  const auto stats = net::compute_qos_stats(flows);
  EXPECT_EQ(stats.satisfied_flows, 0u);
  EXPECT_NEAR(stats.mean_satisfaction, 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(stats.jain_fairness, 1.0, 1e-9);  // equal shares are fair
  EXPECT_NEAR(stats.total_allocated_gbps, 1.0, 1e-6);
}

TEST(FlowStats, RateLimitedDemandCounts) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  std::vector<net::Flow> flows{make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 0.8)};
  flows[0].rate_limit_gbps = 0.4;
  router.route_all(flows);
  (void)net::max_min_fair_share(t, flows);
  const auto stats = net::compute_qos_stats(flows);
  // Satisfaction is judged against the *effective* (limited) demand.
  EXPECT_EQ(stats.satisfied_flows, 1u);
  EXPECT_NEAR(stats.total_demand_gbps, 0.4, 1e-9);
}

class FairShareProperties : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperties, InvariantsHoldOnRandomWorkloads) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto t = small_fat_tree(rng.bernoulli(0.5) ? 1.0 : 10.0);
  const net::Router router(t);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  const std::size_t n_flows = 20 + rng.next_below(80);
  for (net::FlowId id = 0; id < n_flows; ++id) {
    const auto a = rng.pick(hosts);
    const auto b = rng.pick(hosts);
    if (a == b) continue;
    auto f = make_flow(id, a, b, rng.uniform(0.05, 2.5));
    if (rng.bernoulli(0.3)) f.rate_limit_gbps = rng.uniform(0.1, 1.0);
    flows.push_back(f);
  }
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);

  // (1) No link over capacity. (2) No flow over its effective demand.
  // (3) Pareto: every unsatisfied flow crosses a saturated link.
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    EXPECT_LE(result.link_load_gbps[l], t.link(l).capacity_gbps + 1e-6);
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(result.flow_rate[f], flows[f].effective_demand() + 1e-9);
    if (flows[f].routed() && result.flow_rate[f] < flows[f].effective_demand() - 1e-6) {
      bool saturated = false;
      const auto& path = flows[f].path;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto l = t.link_between(path[i], path[i + 1]);
        if (result.link_load_gbps[l] >= t.link(l).capacity_gbps - 1e-6) saturated = true;
      }
      EXPECT_TRUE(saturated) << "flow " << f << " starved without a bottleneck";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareProperties, ::testing::Range(1, 13));

TEST(Queueing, CongestionBuildsAndDrains) {
  const auto t = small_fat_tree(1.0);
  const net::Router router(t);
  // Two hosts of rack 0 blast one host of rack 1: the shared downlink and
  // uplinks overload, so offered exceeds serviced somewhere.
  std::vector<net::Flow> flows{
      make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 2.0),
      make_flow(1, t.rack(0).hosts[1], t.rack(1).hosts[0], 2.0)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);

  net::QcnConfig config;
  config.equilibrium_queue = 0.5;
  net::SwitchQueues queues(t, config);
  for (int tick = 0; tick < 10; ++tick) queues.update(result, flows);
  const auto congested = queues.congested_switches();
  EXPECT_FALSE(congested.empty());

  // Marked flows transit a congested switch.
  bool any_marked = false;
  for (const auto& f : flows) any_marked |= f.dscp == net::DscpMark::kCongested;
  EXPECT_TRUE(any_marked);

  // Remove the load: queues drain and feedback recovers.
  for (auto& f : flows) f.demand_gbps = 0.0;
  std::vector<net::Flow> quiet = flows;
  const auto idle = net::max_min_fair_share(t, quiet);
  for (int tick = 0; tick < 60; ++tick) queues.update(idle, quiet);
  EXPECT_TRUE(queues.congested_switches().empty());
}

TEST(Queueing, IdleNetworkNeverCongests) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  std::vector<net::Flow> flows{
      make_flow(0, t.rack(0).hosts[0], t.rack(1).hosts[0], 0.1)};
  router.route_all(flows);
  const auto result = net::max_min_fair_share(t, flows);
  net::SwitchQueues queues(t);
  for (int tick = 0; tick < 20; ++tick) queues.update(result, flows);
  EXPECT_TRUE(queues.congested_switches().empty());
  for (const auto& node : t.nodes()) {
    if (topo::is_switch(node.kind)) {
      EXPECT_DOUBLE_EQ(queues.queue_length(node.id), 0.0);
    }
  }
}

TEST(Reroute, MovesFlowsOffHotSwitch) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const net::FlowRerouter rerouter(router);
  const topo::NodeId src = t.rack(0).hosts[0];
  const topo::NodeId dst = t.rack(t.rack_count() - 1).hosts[0];
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < 16; ++id) flows.push_back(make_flow(id, src, dst, 1.0));
  router.route_all(flows);

  // Pick a core switch some flow uses.
  topo::NodeId hot = topo::kInvalidNode;
  for (const auto& f : flows) {
    for (topo::NodeId n : f.path) {
      if (t.node(n).kind == topo::NodeKind::kCoreSwitch) hot = n;
    }
  }
  ASSERT_NE(hot, topo::kInvalidNode);

  const auto report = rerouter.reroute_around(flows, hot, 1.0);
  EXPECT_GT(report.candidates, 0u);
  EXPECT_EQ(report.rerouted, report.candidates);  // alt paths exist in a fat tree
  for (const auto& f : flows) EXPECT_FALSE(f.transits(hot));
}

TEST(Reroute, RespectsDelaySensitiveFlows) {
  const auto t = small_fat_tree();
  const net::Router router(t);
  const net::FlowRerouter rerouter(router);
  auto flow = make_flow(0, t.rack(0).hosts[0], t.rack(t.rack_count() - 1).hosts[0], 1.0);
  flow.delay_sensitive = true;
  std::vector<net::Flow> flows{flow};
  router.route_all(flows);
  topo::NodeId mid = flows[0].path[flows[0].path.size() / 2];
  const auto report = rerouter.reroute_around(flows, mid, 1.0);
  EXPECT_EQ(report.candidates, 0u);
  EXPECT_EQ(report.rerouted, 0u);
}
