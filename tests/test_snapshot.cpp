// Checkpoint/restore subsystem tests (DESIGN.md §10): archive framing and
// corruption handling, RNG state round-trips, per-subsystem save/load, and
// the headline guarantee — run N == run N/2, save, load into a fresh
// engine, run N/2 — byte-identical metrics CSV, trace contents, and
// placement, pristine and faulted, across thread-pool sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/predictor.hpp"
#include "fault/fault_plan.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/checkpoint.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/model_selection.hpp"
#include "timeseries/narnet.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "workload/csv_trace.hpp"
#include "workload/trace_generator.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace fault = sheriff::fault;
namespace snap = sheriff::snapshot;
namespace obs = sheriff::obs;
namespace ts = sheriff::ts;
namespace sc = sheriff::common;

// --- archive framing ---------------------------------------------------------

TEST(SnapshotArchive, PrimitivesRoundTripExactly) {
  snap::Writer w;
  w.begin_section("TEST", 3);
  w.put_u8(0xAB);
  w.put_bool(true);
  w.put_bool(false);
  w.put_u32(0xDEADBEEFU);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(-0.0);
  w.put_f64(std::nan(""));
  w.put_f64(1e-310);  // denormal
  w.put_str("sheriff");
  const std::vector<double> f64v{1.5, -2.5, 0.0};
  const std::vector<std::uint64_t> u64v{7, 8};
  const std::vector<std::uint32_t> u32v{1, 2, 3};
  w.put_f64v(f64v);
  w.put_u64v(u64v);
  w.put_u32v(u32v);
  w.end_section();

  snap::Reader r(w.buffer());
  EXPECT_FALSE(r.at_end());
  r.expect_section("TEST", 3);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  const double neg_zero = r.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_TRUE(std::isnan(r.get_f64()));
  EXPECT_EQ(r.get_f64(), 1e-310);
  EXPECT_EQ(r.get_str(), "sheriff");
  EXPECT_EQ(r.get_f64v(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.get_u64v(), (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(r.get_u32v(), (std::vector<std::uint32_t>{1, 2, 3}));
  r.leave_section();
  EXPECT_TRUE(r.at_end());
}

TEST(SnapshotArchive, TruncatedSectionFailsLoudly) {
  snap::Writer w;
  w.begin_section("TRNC", 1);
  w.put_f64v(std::vector<double>(64, 3.14));
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes.resize(bytes.size() - 5);
  snap::Reader r(std::move(bytes));
  EXPECT_THROW(r.expect_section("TRNC", 1), snap::SnapshotError);
}

TEST(SnapshotArchive, CorruptPayloadFailsCrc) {
  snap::Writer w;
  w.begin_section("CRCC", 1);
  w.put_str("payload that will rot");
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes.back() ^= 0x01;  // bit rot in the payload
  snap::Reader r(std::move(bytes));
  EXPECT_THROW(r.expect_section("CRCC", 1), snap::SnapshotError);
}

TEST(SnapshotArchive, VersionSkewIsRejectedWithDiagnostic) {
  snap::Writer w;
  w.begin_section("VERS", 2);
  w.put_u64(1);
  w.end_section();
  snap::Reader r(w.buffer());
  try {
    r.expect_section("VERS", 1);
    FAIL() << "version skew accepted";
  } catch (const snap::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos);
  }
}

TEST(SnapshotArchive, BadPreambleIsRejected) {
  snap::Writer w;
  w.begin_section("OKAY", 1);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(snap::Reader r(std::move(bytes)), snap::SnapshotError);
}

TEST(SnapshotArchive, CorruptElementCountIsRejectedNotAllocated) {
  // A huge element count must throw before any allocation is sized by it.
  snap::Writer w;
  w.begin_section("CNTS", 1);
  w.put_u64(0xFFFFFFFFFFFFFFFFULL);  // claims ~2^64 elements
  w.end_section();
  snap::Reader r(w.buffer());
  r.expect_section("CNTS", 1);
  EXPECT_THROW((void)r.counted(8), snap::SnapshotError);
}

TEST(SnapshotArchive, LeftoverPayloadBytesAreAnError) {
  snap::Writer w;
  w.begin_section("LEFT", 1);
  w.put_u64(1);
  w.put_u64(2);
  w.end_section();
  snap::Reader r(w.buffer());
  r.expect_section("LEFT", 1);
  EXPECT_EQ(r.get_u64(), 1U);
  EXPECT_THROW(r.leave_section(), snap::SnapshotError);
}

// --- RNG state round-trip (satellite: common::Rng) ---------------------------

TEST(SnapshotRng, SaveRestoreNextDrawEqualsUninterrupted) {
  sc::Pcg32 rng(2024, 7);
  (void)rng.normal();  // may leave a cached second deviate
  const sc::Pcg32::State saved = rng.state();

  std::vector<double> uninterrupted;
  for (int i = 0; i < 8; ++i) uninterrupted.push_back(rng.next_double());
  for (int i = 0; i < 8; ++i) uninterrupted.push_back(rng.normal());
  for (int i = 0; i < 8; ++i) uninterrupted.push_back(rng.uniform(-3.0, 9.0));

  sc::Pcg32 restored(1, 1);  // arbitrary seed, fully overwritten
  restored.restore(saved);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(restored.next_double(), uninterrupted[i]);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(restored.normal(), uninterrupted[8 + i]);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(restored.uniform(-3.0, 9.0), uninterrupted[16 + i]);
}

// --- per-subsystem round-trips ----------------------------------------------

namespace {

/// Saves `source` into one section and loads it into `target`.
template <typename T>
void round_trip(const T& source, T& target) {
  snap::Writer w;
  w.begin_section("UNIT", 1);
  source.save_state(w);
  w.end_section();
  snap::Reader r(w.buffer());
  r.expect_section("UNIT", 1);
  target.load_state(r);
  r.leave_section();
}

}  // namespace

TEST(SnapshotSubsystems, SeasonalTraceGeneratorResumesMidStream) {
  wl::SeasonalTraceOptions options;
  options.burst_probability = 0.05;
  options.burst_magnitude = 10.0;
  wl::SeasonalTraceGenerator a(options, 99);
  for (int i = 0; i < 100; ++i) (void)a.next();

  wl::SeasonalTraceGenerator b(options, 99);
  round_trip(a, b);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SnapshotSubsystems, WeeklyTrafficGeneratorResumesMidStream) {
  wl::WeeklyTrafficGenerator a(wl::WeeklyTrafficGenerator::Options{}, 3);
  for (int i = 0; i < 77; ++i) (void)a.next();
  wl::WeeklyTrafficGenerator b(wl::WeeklyTrafficGenerator::Options{}, 3);
  round_trip(a, b);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SnapshotSubsystems, ReplayTraceGeneratorKeepsPosition) {
  wl::ReplayTraceGenerator a({1.0, 2.0, 3.0, 4.0}, /*loop=*/true);
  (void)a.next();
  (void)a.next();
  wl::ReplayTraceGenerator b({1.0, 2.0, 3.0, 4.0}, /*loop=*/true);
  round_trip(a, b);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SnapshotSubsystems, HoltScalarStateRoundTrips) {
  core::HoltScalar a(0.4, 0.3);
  for (int i = 0; i < 20; ++i) a.observe(0.1 * i);
  core::HoltScalar b(0.4, 0.3);
  b.restore(a.state());
  EXPECT_EQ(a.predict(3), b.predict(3));
  a.observe(1.7);
  b.observe(1.7);
  EXPECT_EQ(a.predict(1), b.predict(1));
}

TEST(SnapshotSubsystems, FittedArimaForecastsIdentically) {
  std::vector<double> series;
  sc::Pcg32 rng(5);
  for (int i = 0; i < 120; ++i) series.push_back(10.0 + 3.0 * std::sin(i / 7.0) + rng.normal());

  ts::ArimaModel a(ts::ArimaOrder{2, 1, 1});
  a.fit(series);
  ts::ArimaModel b(ts::ArimaOrder{2, 1, 1});
  round_trip(a, b);
  EXPECT_EQ(a.forecast(series, 12), b.forecast(series, 12));
}

TEST(SnapshotSubsystems, FittedNarnetForecastsIdentically) {
  std::vector<double> series;
  for (int i = 0; i < 90; ++i) series.push_back(5.0 + 2.0 * std::sin(i / 5.0));
  ts::NarNet a(ts::NarNet::Options{});
  a.fit(series);
  ts::NarNet b(ts::NarNet::Options{});
  round_trip(a, b);
  EXPECT_EQ(a.forecast(series, 8), b.forecast(series, 8));
}

TEST(SnapshotSubsystems, DynamicModelSelectorKeepsFitnessAndSelection) {
  const auto make = [] {
    auto s = std::make_unique<ts::DynamicModelSelector>(8);
    s->add_model(ts::make_arima_forecaster(1, 1, 1));
    s->add_model(ts::make_narnet_forecaster(4, 8, 17));
    s->add_model(ts::make_naive_forecaster());
    return s;
  };
  std::vector<double> series;
  sc::Pcg32 rng(13);
  for (int i = 0; i < 100; ++i) series.push_back(20.0 + 5.0 * std::sin(i / 9.0) + rng.normal());

  auto a = make();
  a->fit(series);
  std::vector<double> history(series);
  for (int i = 0; i < 12; ++i) {
    (void)a->predict_next(history);
    const double truth = 20.0 + 5.0 * std::sin((100 + i) / 9.0);
    a->observe(truth);
    history.push_back(truth);
  }

  auto b = make();
  round_trip(*a, *b);
  EXPECT_EQ(a->best_model(), b->best_model());
  EXPECT_EQ(a->forecast(history, 6), b->forecast(history, 6));
}

TEST(SnapshotSubsystems, SelectorRejectsMismatchedCandidateSet) {
  auto a = std::make_unique<ts::DynamicModelSelector>(8);
  a->add_model(ts::make_naive_forecaster());
  a->add_model(ts::make_arima_forecaster(1, 0, 0));

  auto b = std::make_unique<ts::DynamicModelSelector>(8);
  b->add_model(ts::make_naive_forecaster());  // one candidate, not two

  snap::Writer w;
  w.begin_section("UNIT", 1);
  a->save_state(w);
  w.end_section();
  snap::Reader r(w.buffer());
  r.expect_section("UNIT", 1);
  EXPECT_ANY_THROW(b->load_state(r));
}

// --- full-engine resume equivalence ------------------------------------------

namespace {

struct ParityOptions {
  bool faulted = false;
  std::size_t save_pool_threads = 1;
  std::size_t resume_pool_threads = 8;
  std::size_t half_rounds = 20;
  core::PredictorKind predictor = core::PredictorKind::kHolt;
};

core::EngineConfig parity_config(const fault::FaultPlan* plan, sc::ThreadPool* pool,
                                 core::PredictorKind predictor) {
  core::EngineConfig config;
  config.observe = true;
  config.predictor = predictor;
  config.fault_plan = plan;
  config.pool = pool;
  return config;
}

std::string metrics_csv(const std::vector<core::RoundMetrics>& rounds) {
  std::ostringstream os;
  core::write_metrics_csv(os, rounds);
  return os.str();
}

std::vector<std::uint32_t> placement(const core::DistributedEngine& engine) {
  std::vector<std::uint32_t> hosts;
  for (wl::VmId vm = 0; vm < engine.deployment().vm_count(); ++vm) {
    hosts.push_back(engine.deployment().vm(vm).host);
  }
  return hosts;
}

void expect_traces_equal(const core::DistributedEngine& a, const core::DistributedEngine& b) {
  const auto ta = a.observation_hub()->trace().snapshot();
  const auto tb = b.observation_hub()->trace().snapshot();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].seq, tb[i].seq);
    EXPECT_EQ(ta[i].round, tb[i].round);
    EXPECT_EQ(ta[i].shim, tb[i].shim);
    EXPECT_EQ(ta[i].type, tb[i].type);
    EXPECT_EQ(ta[i].a, tb[i].a);
    EXPECT_EQ(ta[i].b, tb[i].b);
    EXPECT_EQ(ta[i].value, tb[i].value);
    if (ta[i].seq != tb[i].seq) break;  // one diagnostic, not thousands
  }
  EXPECT_EQ(a.observation_hub()->trace().next_seq(), b.observation_hub()->trace().next_seq());
}

fault::FaultPlan parity_fault_plan(const topo::Topology& topology, std::size_t half_rounds) {
  fault::FaultOptions options;
  options.seed = 17;
  options.message_drop_probability = 0.15;
  // Link flaps on both sides of the save point, plus a permanent host
  // loss and a shim crash straddling the resume — the injector-replay
  // restore path has to reproduce all of it. Explicit link ids (not
  // random_link_flaps) so the same plan shape works on server-centric
  // fabrics like BCube, which have no switch-to-switch links.
  fault::FaultPlan plan(options);
  const auto link = [&](std::size_t nth) {
    return static_cast<topo::LinkId>(nth % topology.link_count());
  };
  plan.fail_link(link(7), 2, 6);
  plan.fail_link(link(23), half_rounds - 1, half_rounds + 3);
  plan.fail_link(link(41), half_rounds + 4, 2 * half_rounds - 2);
  plan.fail_host(topology.rack(1).hosts[0], half_rounds / 2);
  plan.fail_shim(0, half_rounds - 2, half_rounds + 2);
  return plan;
}

/// The headline guarantee: an uninterrupted 2H-round run vs H rounds →
/// serialize → fresh engine (possibly different pool size) → deserialize
/// → H more rounds. Metrics CSV, placement, and trace contents must match
/// byte for byte.
void expect_resume_equivalence(const topo::Topology& topology,
                               const wl::DeploymentOptions& deploy, const ParityOptions& opt) {
  fault::FaultPlan plan =
      opt.faulted ? parity_fault_plan(topology, opt.half_rounds) : fault::FaultPlan{};
  const fault::FaultPlan* plan_ptr = opt.faulted ? &plan : nullptr;
  sc::ThreadPool save_pool(opt.save_pool_threads);
  sc::ThreadPool resume_pool(opt.resume_pool_threads);

  // Uninterrupted reference.
  core::DistributedEngine continuous(topology, deploy,
                                     parity_config(plan_ptr, &save_pool, opt.predictor));
  std::vector<core::RoundMetrics> continuous_tail;
  for (std::size_t r = 0; r < 2 * opt.half_rounds; ++r) {
    core::RoundMetrics m = continuous.run_round();
    if (r >= opt.half_rounds) continuous_tail.push_back(m);
  }

  // Save at H...
  core::DistributedEngine first_half(topology, deploy,
                                     parity_config(plan_ptr, &save_pool, opt.predictor));
  for (std::size_t r = 0; r < opt.half_rounds; ++r) (void)first_half.run_round();
  const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(first_half);

  // ... load into a fresh engine (different pool size) and finish.
  core::DistributedEngine resumed(topology, deploy,
                                  parity_config(plan_ptr, &resume_pool, opt.predictor));
  core::Checkpoint::deserialize(resumed, checkpoint);
  ASSERT_EQ(resumed.rounds_run(), opt.half_rounds);
  std::vector<core::RoundMetrics> resumed_tail;
  for (std::size_t r = 0; r < opt.half_rounds; ++r) resumed_tail.push_back(resumed.run_round());

  EXPECT_EQ(metrics_csv(continuous_tail), metrics_csv(resumed_tail));
  EXPECT_EQ(placement(continuous), placement(resumed));
  expect_traces_equal(continuous, resumed);
}

topo::Topology small_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 3;
  options.tor_agg_gbps = 1.0;
  return topo::build_fat_tree(options);
}

topo::Topology small_bcube() {
  // levels = 2 so the fabric has switch-to-switch links for the flap plan.
  topo::BCubeOptions options;
  options.ports = 3;
  options.levels = 2;
  return topo::build_bcube(options);
}

wl::DeploymentOptions parity_deployment() {
  wl::DeploymentOptions options;
  options.seed = 23;
  options.vms_per_host = 2.5;
  options.placement = wl::PlacementPolicy::kSkewed;
  return options;
}

}  // namespace

TEST(SnapshotEngine, FatTreePristineResumesByteIdentical) {
  ParityOptions opt;
  opt.save_pool_threads = 1;
  opt.resume_pool_threads = 8;
  expect_resume_equivalence(small_fat_tree(), parity_deployment(), opt);
}

TEST(SnapshotEngine, FatTreeFaultedResumesByteIdentical) {
  ParityOptions opt;
  opt.faulted = true;
  opt.save_pool_threads = 8;
  opt.resume_pool_threads = 1;
  expect_resume_equivalence(small_fat_tree(), parity_deployment(), opt);
}

TEST(SnapshotEngine, BCubePristineResumesByteIdentical) {
  ParityOptions opt;
  opt.save_pool_threads = 8;
  opt.resume_pool_threads = 1;
  expect_resume_equivalence(small_bcube(), parity_deployment(), opt);
}

TEST(SnapshotEngine, BCubeFaultedResumesByteIdentical) {
  ParityOptions opt;
  opt.faulted = true;
  opt.save_pool_threads = 1;
  opt.resume_pool_threads = 8;
  expect_resume_equivalence(small_bcube(), parity_deployment(), opt);
}

TEST(SnapshotEngine, EnsemblePredictorResumesAcrossTheFirstFit) {
  // H=30: the save lands before the ensemble's first fit (min_fit 48), so
  // the resumed run must fit from restored histories mid-flight and still
  // match the uninterrupted run bit for bit.
  topo::FatTreeOptions topo_options;
  topo_options.pods = 4;
  topo_options.hosts_per_rack = 1;
  wl::DeploymentOptions deploy;
  deploy.seed = 31;
  deploy.vms_per_host = 1.5;
  ParityOptions opt;
  opt.half_rounds = 30;
  opt.predictor = core::PredictorKind::kEnsemble;
  expect_resume_equivalence(topo::build_fat_tree(topo_options), deploy, opt);
}

TEST(SnapshotEngine, CheckpointRejectsMismatchedEngine) {
  const topo::Topology fat_tree = small_fat_tree();
  core::DistributedEngine source(fat_tree, parity_deployment(), core::EngineConfig{});
  (void)source.run_round();
  const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(source);

  // Different topology.
  {
    const topo::Topology bcube = small_bcube();
    core::DistributedEngine target(bcube, parity_deployment(), core::EngineConfig{});
    EXPECT_THROW(core::Checkpoint::deserialize(target, checkpoint), snap::SnapshotError);
  }
  // Different config (manager mode is fingerprinted).
  {
    core::EngineConfig config;
    config.mode = core::ManagerMode::kCentralized;
    core::DistributedEngine target(fat_tree, parity_deployment(), config);
    EXPECT_ANY_THROW(core::Checkpoint::deserialize(target, checkpoint));
  }
  // Different deployment seed => different placement/flow fingerprint...
  // unless counts happen to collide; the load must still succeed or throw,
  // never crash. Same-everything must succeed:
  {
    core::DistributedEngine target(fat_tree, parity_deployment(), core::EngineConfig{});
    EXPECT_NO_THROW(core::Checkpoint::deserialize(target, checkpoint));
    EXPECT_EQ(target.rounds_run(), 1U);
  }
}

TEST(SnapshotEngine, UnknownSectionVersionIsRejected) {
  const topo::Topology topology = small_fat_tree();
  core::DistributedEngine source(topology, parity_deployment(), core::EngineConfig{});
  (void)source.run_round();
  std::vector<std::uint8_t> bytes = core::Checkpoint::serialize(source);
  // The first section's version field sits right after the 8-byte
  // preamble, the 4-byte magic, and the 4-byte tag.
  bytes[16] += 1;
  core::DistributedEngine target(topology, parity_deployment(), core::EngineConfig{});
  try {
    core::Checkpoint::deserialize(target, std::move(bytes));
    FAIL() << "future section version accepted";
  } catch (const snap::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos);
  }
}

TEST(SnapshotEngine, TruncatedAndCorruptCheckpointsFailLoudly) {
  const topo::Topology topology = small_fat_tree();
  core::DistributedEngine source(topology, parity_deployment(), core::EngineConfig{});
  (void)source.run_round();
  const std::vector<std::uint8_t> bytes = core::Checkpoint::serialize(source);

  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{11}}) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + keep);
    core::DistributedEngine target(topology, parity_deployment(), core::EngineConfig{});
    EXPECT_THROW(core::Checkpoint::deserialize(target, std::move(truncated)),
                 snap::SnapshotError)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
  {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    core::DistributedEngine target(topology, parity_deployment(), core::EngineConfig{});
    EXPECT_THROW(core::Checkpoint::deserialize(target, std::move(corrupt)),
                 snap::SnapshotError);
  }
}

// Archive mutation fuzz: no mutated checkpoint — random byte flips,
// overwrites, truncations, or garbage tails — may ever crash, hang, or
// over-allocate the loader; every failure mode must surface as a thrown
// SnapshotError. A load that happens to succeed is fine when the mutation
// misses anything load-bearing (e.g. flips a byte the CRC does cover but
// the mutated payload re-validates — it cannot: CRC mismatch throws — or
// lands in bytes the reader never consumes; both are vanishingly rare and
// harmless, so the assertion is "throws SnapshotError or loads", never
// "dies".)
TEST(SnapshotEngine, MutatedCheckpointsAlwaysFailAsSnapshotError) {
  const topo::Topology topology = small_fat_tree();
  core::DistributedEngine source(topology, parity_deployment(), core::EngineConfig{});
  for (int r = 0; r < 3; ++r) (void)source.run_round();
  const std::vector<std::uint8_t> pristine = core::Checkpoint::serialize(source);
  ASSERT_GT(pristine.size(), 64u);

  std::size_t threw = 0;
  std::size_t loaded = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    sc::Pcg32 rng(0x5EED0000 + seed, seed);
    std::vector<std::uint8_t> bytes = pristine;

    // Mutation recipe drawn from the seed: truncate, flip a burst of bytes,
    // overwrite a run with a constant, or append garbage. Several stacked
    // per seed so corruptions compound like real torn/bit-rotted files.
    const std::size_t edits = 1 + rng.next_below(3);
    for (std::size_t e = 0; e < edits; ++e) {
      switch (rng.next_below(4)) {
        case 0: {  // truncate anywhere, including inside the preamble
          bytes.resize(rng.next_below(static_cast<std::uint32_t>(bytes.size() + 1)));
          break;
        }
        case 1: {  // flip 1-8 random bytes
          if (bytes.empty()) break;
          const std::size_t flips = 1 + rng.next_below(8);
          for (std::size_t i = 0; i < flips; ++i) {
            bytes[rng.next_below(static_cast<std::uint32_t>(bytes.size()))] ^=
                static_cast<std::uint8_t>(1 + rng.next_below(255));
          }
          break;
        }
        case 2: {  // overwrite a run with a constant (fake lengths/counts)
          if (bytes.empty()) break;
          const std::size_t start = rng.next_below(static_cast<std::uint32_t>(bytes.size()));
          const std::size_t len = std::min<std::size_t>(1 + rng.next_below(16),
                                                        bytes.size() - start);
          const auto value = static_cast<std::uint8_t>(rng.next_u32());
          for (std::size_t i = 0; i < len; ++i) bytes[start + i] = value;
          break;
        }
        default: {  // append garbage (leftover bytes must be rejected)
          const std::size_t extra = 1 + rng.next_below(32);
          for (std::size_t i = 0; i < extra; ++i) {
            bytes.push_back(static_cast<std::uint8_t>(rng.next_u32()));
          }
          break;
        }
      }
    }
    if (bytes == pristine) continue;

    core::DistributedEngine target(topology, parity_deployment(), core::EngineConfig{});
    try {
      core::Checkpoint::deserialize(target, std::move(bytes));
      ++loaded;  // mutation missed everything load-bearing
    } catch (const snap::SnapshotError&) {
      ++threw;  // the one acceptable failure mode
    }
    // Anything else — std::bad_alloc from a forged count, a std::logic_error,
    // a segfault — escapes the try and fails the test (or kills the process,
    // which the harness reports just as loudly).
  }
  // The CRC and framing make silent acceptance of a corrupt archive
  // essentially impossible: virtually every seed must have thrown.
  EXPECT_GT(threw, 190u);
  EXPECT_LT(loaded, 10u);
}
