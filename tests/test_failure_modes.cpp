// Failure-injection and adversarial-input tests: saturated fabrics, full
// hosts, unroutable flows, conflicting dependencies, degenerate
// topologies, and pathological time series — the system must degrade
// gracefully (reject / skip / stay consistent), never corrupt state.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "core/engine.hpp"
#include "core/vm_migration.hpp"
#include "migration/cost_model.hpp"
#include "migration/request.hpp"
#include "net/fair_share.hpp"
#include "net/reroute.hpp"
#include "net/routing.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/narnet.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace mig = sheriff::mig;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;
namespace ts = sheriff::ts;

namespace {

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

}  // namespace

TEST(FailureModes, SaturatedTargetsLeaveEveryCandidateUnplaced) {
  wl::DeploymentOptions options;
  options.seed = 50;
  options.min_vm_capacity = 10;
  options.max_vm_capacity = 10;
  options.host_capacity = 80;
  options.dependency_degree = 0.0;
  wl::Deployment d(test_topology(), options);

  mig::MigrationCostModel model(test_topology(), d);
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);
  // Targets: hosts without room for a 10-unit VM (the skewed placement
  // packs some hosts to the brim).
  std::vector<topo::NodeId> full_hosts;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost && d.host_free_capacity(node.id) < 10) {
      full_hosts.push_back(node.id);
    }
  }
  ASSERT_FALSE(full_hosts.empty()) << "seed produced no full hosts";
  // Candidates living elsewhere cannot enter any of them.
  std::vector<wl::VmId> candidates;
  for (const auto& vm : d.vms()) {
    if (std::find(full_hosts.begin(), full_hosts.end(), vm.host) == full_hosts.end()) {
      candidates.push_back(vm.id);
    }
    if (candidates.size() == 3) break;
  }
  ASSERT_EQ(candidates.size(), 3u);
  const auto plan = scheduler.migrate(candidates, full_hosts);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.unplaced.size(), 3u);
}

TEST(FailureModes, DependencyCliqueBlocksColocation) {
  wl::DeploymentOptions options;
  options.seed = 51;
  options.dependency_degree = 0.0;
  wl::Deployment d(test_topology(), options);
  // Make VM 0 depend on every VM of a destination host: it cannot move there.
  const topo::NodeId dest = [&] {
    for (const auto& node : test_topology().nodes()) {
      if (node.kind == topo::NodeKind::kHost && node.id != d.vm(0).host &&
          !d.vms_on_host(node.id).empty() && d.host_free_capacity(node.id) >= d.vm(0).capacity) {
        return node.id;
      }
    }
    return topo::kInvalidNode;
  }();
  ASSERT_NE(dest, topo::kInvalidNode);
  const auto deps =
      std::vector<wl::VmId>(d.vms_on_host(dest).begin(), d.vms_on_host(dest).end());
  for (wl::VmId other : deps) d.add_dependency(0, other);
  EXPECT_FALSE(d.can_place(0, dest));
  EXPECT_THROW(d.move_vm(0, dest), sc::RequirementError);
  // And the guard itself: two VMs on one host cannot become dependent.
  const auto cohost = d.vms_on_host(d.vm(0).host);
  if (cohost.size() >= 2) {
    EXPECT_THROW(d.add_dependency(cohost[0], cohost[1]), sc::RequirementError);
  }
}

TEST(FailureModes, RerouteWithNoAlternativePathKeepsOldRoute) {
  // Intra-rack flow: host — ToR — host has no ToR-free alternative.
  const auto& t = test_topology();
  const net::Router router(t);
  const net::FlowRerouter rerouter(router);
  net::Flow flow;
  flow.id = 0;
  flow.src_host = t.rack(0).hosts[0];
  flow.dst_host = t.rack(0).hosts[1];
  flow.demand_gbps = 0.5;
  std::vector<net::Flow> flows{flow};
  router.route_all(flows);
  const auto old_path = flows[0].path;
  const auto report = rerouter.reroute_around(flows, t.rack(0).tor, 1.0);
  EXPECT_EQ(report.candidates, 1u);
  EXPECT_EQ(report.rerouted, 0u);
  EXPECT_EQ(flows[0].path, old_path);  // untouched, not broken
}

TEST(FailureModes, FairShareWithZeroDemandsAndUnroutedFlows) {
  const auto& t = test_topology();
  std::vector<net::Flow> flows(3);
  flows[0].demand_gbps = 0.0;  // zero demand
  flows[1].demand_gbps = 1.0;  // unrouted (empty path)
  const auto result = net::max_min_fair_share(t, flows);
  for (double rate : result.flow_rate) EXPECT_DOUBLE_EQ(rate, 0.0);
  for (double load : result.link_load_gbps) EXPECT_DOUBLE_EQ(load, 0.0);
}

TEST(FailureModes, CostModelRejectsNonHostDestination) {
  wl::DeploymentOptions options;
  options.seed = 52;
  const wl::Deployment d(test_topology(), options);
  mig::MigrationCostModel model(test_topology(), d);
  const auto tor = test_topology().rack(0).tor;
  EXPECT_THROW((void)model.cost(0, tor), sc::RequirementError);
}

TEST(FailureModes, EngineSurvivesExtremeDemand) {
  core::EngineConfig config;
  config.parallel_collect = false;
  config.flow_demand_scale_gbps = 50.0;  // absurd oversubscription
  wl::DeploymentOptions options;
  options.seed = 53;
  options.dependency_degree = 2.0;
  core::DistributedEngine engine(test_topology(), options, config);
  const auto metrics = engine.run(5);
  for (const auto& m : metrics) {
    EXPECT_LE(m.max_link_utilization, 1.0 + 1e-9);  // fair share still caps links
    EXPECT_TRUE(std::isfinite(m.migration_cost));
  }
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost) {
      EXPECT_LE(engine.deployment().host_used_capacity(node.id),
                engine.deployment().host_capacity());
    }
  }
}

TEST(FailureModes, EngineWithNoDependenciesHasNoFlows) {
  core::EngineConfig config;
  config.parallel_collect = false;
  wl::DeploymentOptions options;
  options.seed = 54;
  options.dependency_degree = 0.0;
  core::DistributedEngine engine(test_topology(), options, config);
  EXPECT_TRUE(engine.flows().empty());
  const auto metrics = engine.run(3);  // still runs: host alerts only
  EXPECT_EQ(metrics.size(), 3u);
  for (const auto& m : metrics) {
    EXPECT_EQ(m.switch_alerts, 0u);
    EXPECT_EQ(m.reroutes, 0u);
  }
}

TEST(FailureModes, MinimalPodFatTreeHasEmptyRegions) {
  // pods = 2: each pod has one rack; two-hop neighbors via aggs stay
  // within the pod, so regions contain only the rack itself.
  topo::FatTreeOptions options;
  options.pods = 2;
  options.hosts_per_rack = 2;
  const auto t = topo::build_fat_tree(options);
  EXPECT_TRUE(t.neighbor_racks(0).empty());

  core::SheriffConfig config;
  core::ShimController shim(0, t, config);
  const auto targets = shim.region_target_hosts();
  EXPECT_EQ(targets.size(), 2u);  // own hosts only: migration stays possible
}

TEST(FailureModes, ArimaOnConstantSeriesStaysFinite) {
  const std::vector<double> flat(100, 5.0);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 1});
  model.fit(flat);
  const auto f = model.forecast(flat, 5);
  for (double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 5.0, 0.5);
  }
}

TEST(FailureModes, NarnetOnWildSeriesStaysBounded) {
  // Alternating extremes — the net must not blow up numerically.
  std::vector<double> wild;
  for (int t = 0; t < 200; ++t) wild.push_back(t % 2 == 0 ? 1000.0 : -1000.0);
  ts::NarNet::Options options;
  options.inputs = 4;
  options.hidden = 6;
  options.max_epochs = 50;
  ts::NarNet net(options);
  net.fit(wild);
  const double prediction = net.predict_next(wild);
  EXPECT_TRUE(std::isfinite(prediction));
  EXPECT_LT(std::fabs(prediction), 1e4);
}

TEST(FailureModes, BrokerSurvivesRepeatedRequestsForSameVm) {
  wl::DeploymentOptions options;
  options.seed = 55;
  wl::Deployment d(test_topology(), options);
  mig::AdmissionBroker broker(d);
  const auto& vm = d.vm(0);
  topo::NodeId dest = topo::kInvalidNode;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost && d.can_place(vm.id, node.id)) {
      dest = node.id;
      break;
    }
  }
  ASSERT_NE(dest, topo::kInvalidNode);
  EXPECT_EQ(broker.request(0, dest, test_topology().node(dest).rack),
            mig::RequestOutcome::kAck);
  // Asking again for the same placement: the VM already lives there.
  EXPECT_EQ(broker.request(0, dest, test_topology().node(dest).rack),
            mig::RequestOutcome::kRejectCapacity);
  EXPECT_EQ(d.vm(0).host, dest);
}

TEST(FailureModes, OversizedVmNeverFits) {
  wl::DeploymentOptions options;
  options.seed = 56;
  options.max_vm_capacity = 80;  // as large as a whole host
  options.host_capacity = 80;
  options.vms_per_host = 0.5;
  wl::Deployment d(test_topology(), options);
  // Find a full-host VM; it can only move to completely empty hosts.
  for (const auto& vm : d.vms()) {
    if (vm.capacity != 80) continue;
    for (const auto& node : test_topology().nodes()) {
      if (node.kind != topo::NodeKind::kHost) continue;
      const bool empty = d.vms_on_host(node.id).empty();
      if (node.id != vm.host) {
        EXPECT_EQ(d.can_place(vm.id, node.id), empty);
      }
    }
    return;
  }
  GTEST_SKIP() << "no full-host VM drawn for this seed";
}
