// NARNET tests: the net must learn clean nonlinear signals, beat ARIMA on
// them (the paper's motivation for the combined model), behave sanely on
// edge cases, and stay deterministic under a fixed seed.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/narnet.hpp"
#include "timeseries/simulate.hpp"

namespace ts = sheriff::ts;
namespace sc = sheriff::common;

namespace {

ts::NarNet::Options small_net(int inputs = 8, int hidden = 12, std::uint64_t seed = 7) {
  ts::NarNet::Options options;
  options.inputs = inputs;
  options.hidden = hidden;
  options.seed = seed;
  options.max_epochs = 250;
  return options;
}

}  // namespace

TEST(NarNet, LearnsCleanSine) {
  sc::Pcg32 rng(31);
  const auto series = ts::simulate_sine(1.0, 24.0, 0.0, 400, rng);
  ts::NarNet net(small_net());
  net.fit(series);
  ASSERT_TRUE(net.fitted());

  // One-step predictions on the training tail should be tight.
  const auto preds = net.one_step_predictions(series, 300);
  std::vector<double> actual(series.begin() + 300, series.end());
  EXPECT_LT(sc::mean_squared_error(actual, preds), 0.02);
}

TEST(NarNet, BeatsArimaOnStrongNonlinearity) {
  // |sin| is sharply nonlinear at its kinks; a linear ARMA struggles.
  sc::Pcg32 rng(32);
  std::vector<double> series;
  for (int t = 0; t < 500; ++t) {
    series.push_back(std::fabs(std::sin(2.0 * std::numbers::pi * t / 24.0)) +
                     rng.normal(0.0, 0.01));
  }
  const std::vector<double> train(series.begin(), series.begin() + 400);

  ts::NarNet net(small_net(12, 16));
  net.fit(train);
  ts::ArimaModel arima(ts::ArimaOrder{2, 0, 1});
  arima.fit(train);

  std::vector<double> actual(series.begin() + 400, series.end());
  const auto net_preds = net.one_step_predictions(series, 400);
  const auto arima_preds = arima.one_step_predictions(series, 400);
  const double net_mse = sc::mean_squared_error(actual, net_preds);
  const double arima_mse = sc::mean_squared_error(actual, arima_preds);
  EXPECT_LT(net_mse, arima_mse);
}

TEST(NarNet, DeterministicUnderFixedSeed) {
  sc::Pcg32 rng(33);
  const auto series = ts::simulate_sine(1.0, 30.0, 0.05, 300, rng);
  ts::NarNet a(small_net(8, 10, 99));
  ts::NarNet b(small_net(8, 10, 99));
  a.fit(series);
  b.fit(series);
  EXPECT_DOUBLE_EQ(a.predict_next(series), b.predict_next(series));
}

TEST(NarNet, RecursiveForecastStaysBounded) {
  sc::Pcg32 rng(34);
  const auto series = ts::simulate_sine(1.0, 24.0, 0.02, 400, rng);
  ts::NarNet net(small_net());
  net.fit(series);
  const auto f = net.forecast(series, 48);
  ASSERT_EQ(f.size(), 48u);
  for (double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::fabs(v), 3.0);  // the signal lives in [-1, 1]
  }
}

TEST(NarNet, PredictBeforeFitThrows) {
  ts::NarNet net(small_net());
  const std::vector<double> h(20, 1.0);
  EXPECT_THROW((void)net.predict_next(h), sc::RequirementError);
}

TEST(NarNet, HistoryShorterThanWindowThrows) {
  sc::Pcg32 rng(35);
  const auto series = ts::simulate_sine(1.0, 24.0, 0.0, 200, rng);
  ts::NarNet net(small_net(16, 8));
  net.fit(series);
  const std::vector<double> short_history(5, 0.0);
  EXPECT_THROW((void)net.predict_next(short_history), sc::RequirementError);
}

TEST(NarNet, TooShortTrainingSeriesThrows) {
  ts::NarNet net(small_net(16, 8));
  const std::vector<double> tiny(10, 1.0);
  EXPECT_THROW(net.fit(tiny), sc::RequirementError);
}

TEST(NarNet, RejectsBadOptions) {
  ts::NarNet::Options bad;
  bad.inputs = 0;
  EXPECT_THROW(ts::NarNet{bad}, sc::RequirementError);
  bad = {};
  bad.hidden = 0;
  EXPECT_THROW(ts::NarNet{bad}, sc::RequirementError);
  bad = {};
  bad.validation_fraction = 0.95;
  EXPECT_THROW(ts::NarNet{bad}, sc::RequirementError);
}

TEST(NarNet, HandlesConstantSeries) {
  const std::vector<double> flat(100, 0.7);
  ts::NarNet net(small_net(6, 6));
  net.fit(flat);
  EXPECT_NEAR(net.predict_next(flat), 0.7, 0.05);
}

TEST(NarNet, ValidationMseReported) {
  sc::Pcg32 rng(36);
  const auto series = ts::simulate_sine(1.0, 24.0, 0.05, 300, rng);
  ts::NarNet net(small_net());
  net.fit(series);
  EXPECT_GT(net.validation_mse(), 0.0);
  EXPECT_LT(net.validation_mse(), 0.5);
}
