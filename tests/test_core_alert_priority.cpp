// Core tests: alert scheme (Sec. IV-C), the per-VM predictors, and the
// PRIORITY selection function (Alg. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "core/alert.hpp"
#include "core/predictor.hpp"
#include "core/priority.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace sc = sheriff::common;

namespace {

wl::WorkloadProfile profile(double cpu, double mem, double io, double trf) {
  wl::WorkloadProfile p;
  p[wl::Feature::kCpu] = cpu;
  p[wl::Feature::kMemory] = mem;
  p[wl::Feature::kDiskIo] = io;
  p[wl::Feature::kTraffic] = trf;
  return p;
}

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

}  // namespace

TEST(AlertScheme, FiresOnlyAboveThreshold) {
  const core::AlertScheme scheme(0.9);
  EXPECT_DOUBLE_EQ(scheme.vm_alert(profile(0.5, 0.5, 0.5, 0.5)), 0.0);
  EXPECT_FALSE(scheme.fires(profile(0.9, 0.1, 0.1, 0.1)));  // exactly at threshold: no
  EXPECT_DOUBLE_EQ(scheme.vm_alert(profile(0.95, 0.1, 0.1, 0.1)), 0.95);
  // ALERT is the max component even when a *different* one crossed.
  EXPECT_DOUBLE_EQ(scheme.vm_alert(profile(0.92, 0.97, 0.1, 0.1)), 0.97);
}

TEST(AlertScheme, ThresholdValidation) {
  EXPECT_THROW(core::AlertScheme(0.0), sc::RequirementError);
  EXPECT_THROW(core::AlertScheme(1.5), sc::RequirementError);
}

TEST(AlertSource, Names) {
  EXPECT_STREQ(core::to_string(core::AlertSource::kHost), "host");
  EXPECT_STREQ(core::to_string(core::AlertSource::kLocalTor), "local-tor");
  EXPECT_STREQ(core::to_string(core::AlertSource::kOuterSwitch), "outer-switch");
}

TEST(HoltPredictor, TracksLinearTrend) {
  core::HoltProfilePredictor predictor(0.8, 0.5);
  for (int t = 0; t < 40; ++t) {
    predictor.observe(profile(0.01 * t, 0.5, 0.5, 0.5));
  }
  ASSERT_TRUE(predictor.ready());
  const auto p1 = predictor.predict(1);
  EXPECT_NEAR(p1[wl::Feature::kCpu], 0.40, 0.03);
  const auto p5 = predictor.predict(5);
  EXPECT_GT(p5[wl::Feature::kCpu], p1[wl::Feature::kCpu]);  // extrapolates the trend
  EXPECT_NEAR(p1[wl::Feature::kMemory], 0.5, 1e-6);         // flat features stay flat
}

TEST(HoltPredictor, PredictionsClampToUnit) {
  core::HoltProfilePredictor predictor(0.9, 0.9);
  for (int t = 0; t < 20; ++t) predictor.observe(profile(0.05 * t, 0.0, 0.0, 0.0));
  const auto p = predictor.predict(50);
  EXPECT_LE(p[wl::Feature::kCpu], 1.0);
  EXPECT_GE(p[wl::Feature::kTraffic], 0.0);
}

TEST(HoltPredictor, NotReadyBeforeTwoSamples) {
  core::HoltProfilePredictor predictor;
  EXPECT_FALSE(predictor.ready());
  predictor.observe(profile(0.5, 0.5, 0.5, 0.5));
  EXPECT_FALSE(predictor.ready());
  predictor.observe(profile(0.5, 0.5, 0.5, 0.5));
  EXPECT_TRUE(predictor.ready());
}

TEST(EnsemblePredictor, FitsAfterMinSamplesAndPredicts) {
  core::EnsembleProfilePredictor::Options options;
  options.min_fit = 48;
  options.history = 64;
  options.refit_interval = 1000;  // fit once
  core::EnsembleProfilePredictor predictor(options);
  for (int t = 0; t < 60; ++t) {
    const double cpu = 0.5 + 0.3 * std::sin(t / 6.0);
    predictor.observe(profile(cpu, 0.4, 0.3, 0.2));
    if (t < 47) {
      EXPECT_FALSE(predictor.ready());
    }
  }
  ASSERT_TRUE(predictor.ready());
  const auto p = predictor.predict(1);
  for (double v : p.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_FALSE(predictor.current_model(wl::Feature::kCpu).empty());
}

TEST(Priority, SingleModePicksMaxAlert) {
  wl::DeploymentOptions options;
  options.seed = 42;
  options.delay_sensitive_fraction = 0.0;
  const wl::Deployment d(test_topology(), options);
  const std::vector<wl::VmId> candidates{0, 1, 2, 3};
  const std::vector<double> alerts{0.91, 0.99, 0.95, 0.0};
  const auto sel = core::priority_select(d, candidates, alerts, core::PriorityMode::kSingle, 0);
  ASSERT_EQ(sel.selected.size(), 1u);
  EXPECT_EQ(sel.selected[0], 1u);
  EXPECT_EQ(sel.offloaded_capacity, d.vm(1).capacity);
}

TEST(Priority, EliminatesDelaySensitive) {
  wl::DeploymentOptions options;
  options.seed = 43;
  options.delay_sensitive_fraction = 1.0;  // everyone is delay-sensitive
  const wl::Deployment d(test_topology(), options);
  const std::vector<wl::VmId> candidates{0, 1, 2};
  const std::vector<double> alerts{0.95, 0.96, 0.97};
  const auto single =
      core::priority_select(d, candidates, alerts, core::PriorityMode::kSingle, 0);
  EXPECT_TRUE(single.selected.empty());
  EXPECT_EQ(single.eliminated_delay_sensitive, 3u);
  const auto knap = core::priority_select(d, candidates, alerts, core::PriorityMode::kBeta, 50);
  EXPECT_TRUE(knap.selected.empty());
}

TEST(Priority, KnapsackRespectsBudget) {
  wl::DeploymentOptions options;
  options.seed = 44;
  options.delay_sensitive_fraction = 0.0;
  const wl::Deployment d(test_topology(), options);
  std::vector<wl::VmId> candidates;
  for (wl::VmId id = 0; id < 10; ++id) candidates.push_back(id);
  const int budget = 25;
  const auto sel = core::priority_select(d, candidates, {}, core::PriorityMode::kAlpha, budget);
  EXPECT_LE(sel.offloaded_capacity, budget);
  int cap = 0;
  double value = 0.0;
  for (wl::VmId id : sel.selected) {
    cap += d.vm(id).capacity;
    value += d.vm(id).value;
  }
  EXPECT_EQ(cap, sel.offloaded_capacity);
  EXPECT_NEAR(value, sel.sacrificed_value, 1e-9);
}

TEST(Priority, ZeroBudgetSelectsNothing) {
  wl::DeploymentOptions options;
  options.seed = 45;
  const wl::Deployment d(test_topology(), options);
  const auto sel = core::priority_select(d, {0, 1, 2}, {}, core::PriorityMode::kBeta, 0);
  EXPECT_TRUE(sel.selected.empty());
}

TEST(Priority, EmptyCandidatesHandled) {
  wl::DeploymentOptions options;
  options.seed = 46;
  const wl::Deployment d(test_topology(), options);
  const auto sel = core::priority_select(d, {}, {}, core::PriorityMode::kAlpha, 100);
  EXPECT_TRUE(sel.selected.empty());
  EXPECT_EQ(sel.offloaded_capacity, 0);
}

TEST(Priority, MismatchedAlertVectorThrows) {
  wl::DeploymentOptions options;
  options.seed = 47;
  const wl::Deployment d(test_topology(), options);
  EXPECT_THROW(
      core::priority_select(d, {0, 1}, {0.5}, core::PriorityMode::kSingle, 0),
      sc::RequirementError);
}
