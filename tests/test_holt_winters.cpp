// Holt–Winters seasonal forecaster tests: it must nail clean seasonal
// signals, beat the naive floor on seasonal traffic, integrate with the
// dynamic selector, and validate its inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "timeseries/holt_winters.hpp"
#include "timeseries/model_selection.hpp"
#include "workload/trace_generator.hpp"

namespace ts = sheriff::ts;
namespace sc = sheriff::common;
namespace wl = sheriff::wl;

namespace {

std::vector<double> seasonal_signal(std::size_t n, double period, double trend,
                                    double noise, std::uint64_t seed) {
  sc::Pcg32 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.push_back(10.0 + trend * static_cast<double>(t) +
                  4.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / period) +
                  rng.normal(0.0, noise));
  }
  return out;
}

}  // namespace

TEST(HoltWinters, ExactOnCleanSeasonalSeries) {
  const auto series = seasonal_signal(240, 24.0, 0.0, 0.0, 1);
  ts::HoltWintersModel::Options options;
  options.period = 24;
  ts::HoltWintersModel model(options);
  model.fit(series);
  const auto f = model.forecast(series, 24);
  for (std::size_t h = 0; h < f.size(); ++h) {
    const std::size_t t = series.size() + h;
    const double truth =
        10.0 + 4.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 24.0);
    EXPECT_NEAR(f[h], truth, 0.35) << "horizon " << h;
  }
}

TEST(HoltWinters, TracksTrendPlusSeason) {
  const auto series = seasonal_signal(240, 24.0, 0.05, 0.0, 2);
  ts::HoltWintersModel::Options options;
  options.period = 24;
  ts::HoltWintersModel model(options);
  model.fit(series);
  const auto f = model.forecast(series, 48);
  // The forecast must keep climbing with the trend (compare same phase one
  // season apart).
  EXPECT_GT(f[47], f[23]);
  EXPECT_NEAR(f[47] - f[23], 0.05 * 24.0, 0.5);
}

TEST(HoltWinters, BeatsNaiveOnWeeklyTraffic) {
  auto gen = wl::make_weekly_traffic_trace(3);
  const auto series = gen->generate(48 * 14);
  const std::size_t split = series.size() / 2;
  const std::vector<double> train(series.begin(),
                                  series.begin() + static_cast<std::ptrdiff_t>(split));

  ts::HoltWintersModel::Options options;
  options.period = 48;  // daily season at 30-min samples
  ts::HoltWintersModel model(options);
  model.fit(train);

  std::vector<double> hw_preds;
  std::vector<double> naive_preds;
  std::vector<double> actual;
  for (std::size_t t = split; t < series.size(); ++t) {
    const std::span<const double> history(series.data(), t);
    hw_preds.push_back(model.predict_next(history));
    naive_preds.push_back(series[t - 1]);
    actual.push_back(series[t]);
  }
  EXPECT_LT(sc::mean_squared_error(actual, hw_preds),
            sc::mean_squared_error(actual, naive_preds));
}

TEST(HoltWinters, GainTuningNeverHurtsTrainingError) {
  const auto series = seasonal_signal(240, 24.0, 0.02, 0.4, 4);
  ts::HoltWintersModel::Options fixed;
  fixed.period = 24;
  fixed.tune_gains = false;
  ts::HoltWintersModel fixed_model(fixed);
  fixed_model.fit(series);

  ts::HoltWintersModel::Options tuned = fixed;
  tuned.tune_gains = true;
  ts::HoltWintersModel tuned_model(tuned);
  tuned_model.fit(series);
  EXPECT_LE(tuned_model.training_mse(), fixed_model.training_mse() + 1e-12);
}

TEST(HoltWinters, InputValidation) {
  ts::HoltWintersModel::Options bad;
  bad.period = 1;
  EXPECT_THROW(ts::HoltWintersModel{bad}, sc::RequirementError);
  bad = {};
  bad.level_gain = 1.5;
  EXPECT_THROW(ts::HoltWintersModel{bad}, sc::RequirementError);

  ts::HoltWintersModel::Options ok;
  ok.period = 24;
  ts::HoltWintersModel model(ok);
  const std::vector<double> short_series(30, 1.0);  // < 2 seasons
  EXPECT_THROW(model.fit(short_series), sc::RequirementError);
  const std::vector<double> h(48, 1.0);
  EXPECT_THROW((void)model.forecast(h, 1), sc::RequirementError);  // before fit
}

TEST(HoltWinters, SelectorIntegration) {
  // On a strongly seasonal series the Holt-Winters candidate should win
  // the Eq. (14) fitness contest against the naive floor.
  const auto series = seasonal_signal(400, 24.0, 0.0, 0.2, 5);
  const std::vector<double> train(series.begin(), series.begin() + 300);

  ts::DynamicModelSelector selector(24);
  selector.add_model(ts::make_holt_winters_forecaster(24));
  selector.add_model(ts::make_naive_forecaster());
  selector.fit(train);

  std::vector<double> history = train;
  for (std::size_t t = 300; t < series.size(); ++t) {
    (void)selector.predict_next(history);
    selector.observe(series[t]);
    history.push_back(series[t]);
  }
  EXPECT_EQ(selector.best_model(), 0u);
  EXPECT_EQ(selector.model_name(0), "HoltWinters(24)");
}
