// The flattened migration decision kernel (DESIGN.md §14): the per-round
// CostSurface must be bit-transparent (every CostBreakdown identical with
// the surface on or off), the candidate lower bound must be admissible
// (bound <= exact cost, always), and bound-guarded pruning must never
// change a selection — locked by a 50-seed pruned-vs-exhaustive
// differential on both reference fabrics plus engine-level CSV/checkpoint
// byte parity across pool sizes, pristine and faulted. Also the
// update_flow_demands skip-write: a constant-demand round must leave the
// incremental fair-share solver's flows untouched (reused_flows > 0).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/vm_migration.hpp"
#include "fault/fault_plan.hpp"
#include "migration/cost_model.hpp"
#include "net/fair_share.hpp"
#include "net/routing.hpp"
#include "snapshot/checkpoint.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace mig = sheriff::mig;
namespace net = sheriff::net;
namespace fault = sheriff::fault;
namespace sc = sheriff::common;

namespace {

topo::Topology small_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 3;
  options.tor_agg_gbps = 1.0;  // oversubscribed uplinks: infeasible paths exist
  return topo::build_fat_tree(options);
}

topo::Topology small_bcube() {
  topo::BCubeOptions options;
  options.ports = 3;
  options.levels = 2;
  return topo::build_bcube(options);
}

wl::DeploymentOptions surface_deployment() {
  wl::DeploymentOptions options;
  options.seed = 23;
  options.vms_per_host = 2.5;
  options.placement = wl::PlacementPolicy::kSkewed;
  return options;
}

/// Routed flows + one fair-share allocation: the bandwidth state the
/// manage phase hands the cost model each round.
net::FairShareResult loaded_shares(const topo::Topology& topology,
                                   std::vector<net::Flow>& flows, std::uint64_t seed) {
  const net::Router router(topology);
  sc::Pcg32 rng(seed);
  const auto hosts = topology.nodes_of_kind(topo::NodeKind::kHost);
  for (net::FlowId id = 0; id < net::FlowId{512}; ++id) {
    net::Flow f;
    f.id = id;
    f.src_host = rng.pick(hosts);
    f.dst_host = rng.pick(hosts);
    if (f.src_host == f.dst_host) continue;
    f.demand_gbps = rng.uniform(0.05, 1.5);
    flows.push_back(f);
  }
  router.route_all(flows);
  return net::max_min_fair_share(topology, flows);
}

/// A model in the engine's optimized shape (partner-rooted, shared-leaf)
/// with the surface/pruning toggles under test.
void configure_model(mig::MigrationCostModel& model, const net::FairShareResult* shares,
                     bool surface, bool pruning) {
  model.set_partner_rooted(true);
  model.set_shared_leaf_trees(true);
  model.set_surface_enabled(surface);
  model.set_pruning_enabled(pruning);
  model.set_bandwidth_state(shares);
}

void expect_breakdown_bitwise_equal(const mig::CostBreakdown& a, const mig::CostBreakdown& b,
                                    wl::VmId vm, topo::NodeId dest) {
  // EXPECT_EQ on doubles is exact equality — the surface kernel replays
  // the legacy FP ops in the legacy order, so no tolerance is owed.
  EXPECT_EQ(a.feasible, b.feasible) << "vm=" << vm << " dest=" << dest;
  EXPECT_EQ(a.computing, b.computing) << "vm=" << vm << " dest=" << dest;
  EXPECT_EQ(a.dependency, b.dependency) << "vm=" << vm << " dest=" << dest;
  EXPECT_EQ(a.transmission, b.transmission) << "vm=" << vm << " dest=" << dest;
}

void expect_surface_transparent(const topo::Topology& topology) {
  const wl::Deployment deployment(topology, surface_deployment());
  std::vector<net::Flow> flows;
  const net::FairShareResult shares = loaded_shares(topology, flows, 5);
  const auto hosts = topology.nodes_of_kind(topo::NodeKind::kHost);

  // Both leaf-tree modes: shared (engine's optimized shape, rack-memo fast
  // path) and per-host (the generic shortest_path branch).
  for (const bool shared_leaf : {true, false}) {
    mig::MigrationCostModel legacy(topology, deployment);
    mig::MigrationCostModel surfaced(topology, deployment);
    configure_model(legacy, &shares, false, false);
    configure_model(surfaced, &shares, true, false);
    legacy.set_shared_leaf_trees(shared_leaf);
    surfaced.set_shared_leaf_trees(shared_leaf);

    sc::Pcg32 rng(11);
    for (int i = 0; i < 500; ++i) {
      const auto vm = static_cast<wl::VmId>(rng.next_below(
          static_cast<std::uint32_t>(deployment.vm_count())));
      const topo::NodeId dest = rng.pick(hosts);
      expect_breakdown_bitwise_equal(legacy.cost(vm, dest), surfaced.cost(vm, dest), vm, dest);
      EXPECT_EQ(legacy.total_cost(vm, dest), surfaced.total_cost(vm, dest));
    }
    // Idle-fabric corner: no bandwidth state installed -> the surface is
    // cleared and both models run the legacy loop on idle links.
    legacy.set_bandwidth_state(nullptr);
    surfaced.set_bandwidth_state(nullptr);
    sc::Pcg32 rng2(12);
    for (int i = 0; i < 100; ++i) {
      const auto vm = static_cast<wl::VmId>(rng2.next_below(
          static_cast<std::uint32_t>(deployment.vm_count())));
      const topo::NodeId dest = rng2.pick(hosts);
      expect_breakdown_bitwise_equal(legacy.cost(vm, dest), surfaced.cost(vm, dest), vm, dest);
    }
  }
}

}  // namespace

// --- bit-transparency of the surface kernel ---------------------------------

TEST(CostSurface, FatTreeSurfaceCostsMatchLegacyBitwise) {
  expect_surface_transparent(small_fat_tree());
}

TEST(CostSurface, BCubeSurfaceCostsMatchLegacyBitwise) {
  expect_surface_transparent(small_bcube());
}

// --- admissibility of the candidate lower bound -----------------------------

TEST(CostSurface, LowerBoundIsAdmissibleOnRandomCandidatePairs) {
  for (const bool bcube : {false, true}) {
    const topo::Topology topology = bcube ? small_bcube() : small_fat_tree();
    const wl::Deployment deployment(topology, surface_deployment());
    std::vector<net::Flow> flows;
    const net::FairShareResult shares = loaded_shares(topology, flows, 7);
    mig::MigrationCostModel model(topology, deployment);
    configure_model(model, &shares, true, true);

    const auto hosts = topology.nodes_of_kind(topo::NodeKind::kHost);
    sc::Pcg32 rng(13);
    std::size_t infeasible = 0;
    for (int i = 0; i < 1000; ++i) {
      const auto vm = static_cast<wl::VmId>(rng.next_below(
          static_cast<std::uint32_t>(deployment.vm_count())));
      const topo::NodeId dest = rng.pick(hosts);
      const double bound = model.candidate_lower_bound(vm, dest);
      const double exact = model.total_cost(vm, dest);
      // The defining property: bound <= exact, so the argmin can never be
      // pruned. (<= holds for +inf == +inf too.)
      ASSERT_LE(bound, exact) << "inadmissible bound: vm=" << vm << " dest=" << dest;
      if (model.provably_infeasible(vm, dest)) {
        ++infeasible;
        ASSERT_EQ(exact, std::numeric_limits<double>::infinity())
            << "provably_infeasible lied: vm=" << vm << " dest=" << dest;
      }
    }
    // The own-host case alone guarantees some provably-infeasible pairs.
    EXPECT_GT(infeasible, 0u);
  }
}

// --- 50-seed pruned-vs-exhaustive selection identity ------------------------

TEST(CostSurface, PrunedMatchingSelectsIdenticallyAcross50Seeds) {
  for (const bool bcube : {false, true}) {
    const topo::Topology topology = bcube ? small_bcube() : small_fat_tree();
    const wl::Deployment deployment(topology, surface_deployment());
    std::vector<net::Flow> flows;
    const net::FairShareResult shares = loaded_shares(topology, flows, 3);
    mig::MigrationCostModel model(topology, deployment);
    configure_model(model, &shares, true, false);

    const auto hosts = topology.nodes_of_kind(topo::NodeKind::kHost);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      sc::Pcg32 rng(seed + 1);
      // Candidate sets of 1 (the bound-guarded scan) and 2..4 (the
      // Hungarian branch with infeasibility skips).
      std::vector<wl::VmId> candidates;
      const std::size_t n = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i) {
        candidates.push_back(static_cast<wl::VmId>(rng.next_below(
            static_cast<std::uint32_t>(deployment.vm_count()))));
      }
      std::vector<topo::NodeId> targets;
      for (std::size_t i = 0; i < 16; ++i) targets.push_back(rng.pick(hosts));

      const mig::CostModelStats before = model.stats();
      model.set_pruning_enabled(false);
      std::size_t space_off = 0;
      const auto exhaustive =
          core::propose_matching(deployment, model, candidates, targets, &space_off);
      const mig::CostModelStats mid = model.stats();
      model.set_pruning_enabled(true);
      std::size_t space_on = 0;
      const auto pruned =
          core::propose_matching(deployment, model, candidates, targets, &space_on);
      const mig::CostModelStats after = model.stats();

      // Selection identity, bitwise: same pairs, same costs, same order.
      ASSERT_EQ(pruned.size(), exhaustive.size()) << "seed=" << seed;
      for (std::size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned[i].vm, exhaustive[i].vm) << "seed=" << seed;
        EXPECT_EQ(pruned[i].dest, exhaustive[i].dest) << "seed=" << seed;
        EXPECT_EQ(pruned[i].cost, exhaustive[i].cost) << "seed=" << seed;
      }
      // Scanned search space is an accounting invariant of the sweep
      // shape, not of pruning.
      EXPECT_EQ(space_on, space_off) << "seed=" << seed;
      // Losslessness identity: every candidate the exhaustive sweep
      // evaluated was either evaluated or explicitly counted as pruned —
      // pruning is never a silent cap.
      const std::uint64_t evaluated_off = mid.evaluated - before.evaluated;
      const std::uint64_t pruned_off = mid.pruned - before.pruned;
      const std::uint64_t evaluated_on = after.evaluated - mid.evaluated;
      const std::uint64_t pruned_on = after.pruned - mid.pruned;
      EXPECT_EQ(pruned_off, 0u) << "seed=" << seed;
      EXPECT_EQ(evaluated_on + pruned_on, evaluated_off) << "seed=" << seed;
    }
  }
}

// --- engine-level differential: CSV + checkpoint byte parity ----------------

namespace {

std::string metrics_csv(const std::vector<core::RoundMetrics>& rounds) {
  std::ostringstream os;
  core::write_metrics_csv(os, rounds);
  return os.str();
}

fault::FaultPlan surface_fault_plan(const topo::Topology& topology, std::size_t rounds) {
  fault::FaultOptions options;
  options.seed = 17;
  options.message_drop_probability = 0.15;
  fault::FaultPlan plan(options);
  const auto link = [&](std::size_t nth) {
    return static_cast<topo::LinkId>(nth % topology.link_count());
  };
  plan.fail_link(link(7), 2, rounds / 4);
  plan.fail_link(link(23), rounds / 3, rounds / 2);
  plan.fail_host(topology.rack(1).hosts[0], rounds / 2);
  plan.fail_shim(0, rounds / 4, 3 * rounds / 4);
  return plan;
}

struct DecisionLeg {
  bool cost_surface = false;
  bool cost_pruning = false;
  bool parallel_workload = false;
  bool prewarm_cost_rows = false;
  std::size_t pool_threads = 1;
};

/// Runs one engine leg and returns (metrics CSV, checkpoint bytes).
/// observe=false on purpose: the registry serializes into the OBSR
/// checkpoint section and the evaluated/pruned counter *split* legally
/// differs between prune-on and prune-off runs — the parity claim is
/// about simulation state, which the counters are not part of.
std::pair<std::string, std::vector<std::uint8_t>> run_decision_leg(
    const topo::Topology& topology, const fault::FaultPlan* plan, const DecisionLeg& leg,
    std::size_t rounds) {
  sc::ThreadPool pool(leg.pool_threads);
  core::EngineConfig config;
  config.fault_plan = plan;
  config.pool = &pool;
  config.cost_surface = leg.cost_surface;
  config.cost_pruning = leg.cost_pruning;
  config.parallel_workload = leg.parallel_workload;
  config.prewarm_cost_rows = leg.prewarm_cost_rows;
  core::DistributedEngine engine(topology, surface_deployment(), config);
  std::vector<core::RoundMetrics> metrics;
  metrics.reserve(rounds);
  std::size_t actions = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    metrics.push_back(engine.run_round());
    actions += metrics.back().migrations + metrics.back().reroutes;
  }
  EXPECT_GT(actions, 0u);  // the comparison must not be vacuous
  return {metrics_csv(metrics), core::Checkpoint::serialize(engine)};
}

/// The headline differential: naive kernel (surface off, pruning off,
/// serial advance, 1 thread) vs the optimized kernel at pool sizes
/// 1/2/8 — metrics CSV and checkpoint bytes must match byte for byte.
void expect_decision_kernel_invariance(const topo::Topology& topology, bool faulted) {
  const std::size_t rounds = 60;
  fault::FaultPlan plan =
      faulted ? surface_fault_plan(topology, rounds) : fault::FaultPlan{};
  const fault::FaultPlan* plan_ptr = faulted ? &plan : nullptr;

  const auto [reference_csv, reference_bytes] =
      run_decision_leg(topology, plan_ptr, DecisionLeg{}, rounds);

  // Surface without pruning first: isolates the kernel-transparency claim
  // from the bound.
  {
    DecisionLeg leg;
    leg.cost_surface = true;
    const auto [csv, bytes] = run_decision_leg(topology, plan_ptr, leg, rounds);
    EXPECT_EQ(csv, reference_csv) << "surface-only leg diverged";
    EXPECT_TRUE(bytes == reference_bytes) << "surface-only checkpoint diverged";
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    DecisionLeg leg;
    leg.cost_surface = true;
    leg.cost_pruning = true;
    leg.parallel_workload = true;
    leg.prewarm_cost_rows = true;
    leg.pool_threads = threads;
    const auto [csv, bytes] = run_decision_leg(topology, plan_ptr, leg, rounds);
    EXPECT_EQ(csv, reference_csv) << "metrics diverged at pool=" << threads;
    EXPECT_TRUE(bytes == reference_bytes) << "checkpoint diverged at pool=" << threads;
  }
}

}  // namespace

TEST(CostSurface, FatTreePristineDecisionKernelIsConfigInvariant) {
  expect_decision_kernel_invariance(small_fat_tree(), false);
}

TEST(CostSurface, FatTreeFaultedDecisionKernelIsConfigInvariant) {
  expect_decision_kernel_invariance(small_fat_tree(), true);
}

TEST(CostSurface, BCubePristineDecisionKernelIsConfigInvariant) {
  expect_decision_kernel_invariance(small_bcube(), false);
}

TEST(CostSurface, BCubeFaultedDecisionKernelIsConfigInvariant) {
  expect_decision_kernel_invariance(small_bcube(), true);
}

TEST(CostSurface, CheckpointLoadsAcrossKernelConfigs) {
  // cost_surface / cost_pruning / parallel_workload are results-identical
  // accelerations, so they are excluded from the checkpoint fingerprint —
  // a checkpoint saved with them on loads into an engine with them off.
  const topo::Topology topology = small_fat_tree();
  core::EngineConfig fast;
  core::DistributedEngine engine(topology, surface_deployment(), fast);
  for (std::size_t r = 0; r < 4; ++r) (void)engine.run_round();
  const std::vector<std::uint8_t> bytes = core::Checkpoint::serialize(engine);

  core::EngineConfig naive;
  naive.cost_surface = false;
  naive.cost_pruning = false;
  naive.parallel_workload = false;
  core::DistributedEngine resumed(topology, surface_deployment(), naive);
  EXPECT_NO_THROW(core::Checkpoint::deserialize(resumed, bytes));
}

// --- update_flow_demands skip-write -----------------------------------------

TEST(CostSurface, ConstantDemandRoundReusesFlowsInFairShareSolver) {
  // With the per-edge demand scale at 0 every flow's demand is 0 every
  // round; the skip-write in update_flow_demands must leave the flows
  // untouched so the incremental solver's value-based dirty detection
  // reuses them instead of re-filling their components.
  const topo::Topology topology = small_fat_tree();
  core::EngineConfig config;
  config.flow_demand_scale_gbps = 0.0;
  config.incremental_fair_share = true;
  core::DistributedEngine engine(topology, surface_deployment(), config);
  for (std::size_t r = 0; r < 3; ++r) (void)engine.run_round();
  EXPECT_GT(engine.fair_share_solver().stats().reused_flows, 0u);
}
