// Sharded manage sweep (DESIGN.md §11): the shard plan's partition laws,
// and the headline determinism guarantee — a run's metrics CSV and final
// checkpoint bytes are identical for ANY manage_shards value, pristine and
// faulted, on both reference fabrics. The shard count must behave exactly
// like the thread-pool size: a throughput knob, never a semantics knob.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/manage_shards.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/checkpoint.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace fault = sheriff::fault;
namespace snap = sheriff::snapshot;
namespace sc = sheriff::common;

// --- shard plan laws ---------------------------------------------------------

TEST(ShardPlan, PartitionIsContiguousCompleteAndBalanced) {
  for (std::size_t racks : {1u, 2u, 7u, 8u, 9u, 16u, 37u, 512u}) {
    for (std::size_t shards : {1u, 2u, 3u, 8u, 16u}) {
      const core::ManageShardPlan plan(racks, shards);
      const std::size_t effective = std::min(shards, racks);
      ASSERT_EQ(plan.shard_count(), effective);
      ASSERT_EQ(plan.rack_count(), racks);
      std::size_t covered = 0;
      topo::RackId next = 0;
      std::size_t min_size = racks;
      std::size_t max_size = 0;
      for (std::size_t s = 0; s < plan.shard_count(); ++s) {
        const auto block = plan.racks_of(s);
        min_size = std::min(min_size, block.size());
        max_size = std::max(max_size, block.size());
        for (topo::RackId r : block) {
          // Contiguous ascending coverage: each rack appears exactly once,
          // in order, and maps back to its shard.
          ASSERT_EQ(r, next) << "racks=" << racks << " shards=" << shards;
          ASSERT_EQ(plan.shard_of(r), s);
          ++next;
          ++covered;
        }
      }
      ASSERT_EQ(covered, racks);
      // Balanced: block sizes differ by at most one.
      ASSERT_LE(max_size - min_size, 1u) << "racks=" << racks << " shards=" << shards;
    }
  }
}

TEST(ShardPlan, ClampsAndHandlesEmptyFabric) {
  const core::ManageShardPlan oversubscribed(4, 100);
  EXPECT_EQ(oversubscribed.shard_count(), 4u);  // clamped to one rack per shard
  const core::ManageShardPlan zero_request(4, 0);
  EXPECT_EQ(zero_request.shard_count(), 1u);  // clamped up to one shard
  const core::ManageShardPlan empty(0, 8);
  EXPECT_EQ(empty.shard_count(), 0u);
  EXPECT_EQ(empty.rack_count(), 0u);
}

// --- determinism across shard counts ----------------------------------------

namespace {

topo::Topology small_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;  // 8 racks: shard counts 1/2/8 are all distinct plans
  options.hosts_per_rack = 3;
  options.tor_agg_gbps = 1.0;
  return topo::build_fat_tree(options);
}

topo::Topology small_bcube() {
  topo::BCubeOptions options;
  options.ports = 3;  // 9 racks
  options.levels = 2;
  return topo::build_bcube(options);
}

wl::DeploymentOptions sharding_deployment() {
  wl::DeploymentOptions options;
  options.seed = 23;
  options.vms_per_host = 2.5;
  options.placement = wl::PlacementPolicy::kSkewed;
  return options;
}

std::string metrics_csv(const std::vector<core::RoundMetrics>& rounds) {
  std::ostringstream os;
  core::write_metrics_csv(os, rounds);
  return os.str();
}

/// Faults across the whole horizon: link flaps, a permanent host loss, a
/// shim crash with neighbor takeover, and a lossy control channel — the
/// commit order and the protocol's RNG draw sequence must stay identical
/// for every shard count even under all of it.
fault::FaultPlan sharding_fault_plan(const topo::Topology& topology, std::size_t rounds) {
  fault::FaultOptions options;
  options.seed = 17;
  options.message_drop_probability = 0.15;
  fault::FaultPlan plan(options);
  const auto link = [&](std::size_t nth) {
    return static_cast<topo::LinkId>(nth % topology.link_count());
  };
  plan.fail_link(link(7), 2, rounds / 4);
  plan.fail_link(link(23), rounds / 3, rounds / 2);
  plan.fail_link(link(41), rounds / 2, rounds - 2);
  plan.fail_host(topology.rack(1).hosts[0], rounds / 2);
  plan.fail_shim(0, rounds / 4, 3 * rounds / 4);
  return plan;
}

struct ShardInvarianceOptions {
  bool faulted = false;
  core::MigrationProtocol protocol = core::MigrationProtocol::kMessagePassing;
  std::size_t rounds = 200;
};

core::EngineConfig sharding_config(const fault::FaultPlan* plan, sc::ThreadPool* pool,
                                   std::size_t shards,
                                   core::MigrationProtocol protocol) {
  core::EngineConfig config;
  config.observe = true;
  config.protocol = protocol;
  config.fault_plan = plan;
  config.pool = pool;
  config.manage_shards = shards;
  return config;
}

/// The headline guarantee: run R rounds at manage_shards ∈ {1, 2, 8} and
/// require the metrics CSV and the final checkpoint (placement, flows,
/// predictors, trace rings, shard bookkeeping — every serialized byte) to
/// be identical across the three runs.
void expect_shard_count_invariance(const topo::Topology& topology,
                                   const wl::DeploymentOptions& deploy,
                                   const ShardInvarianceOptions& opt) {
  fault::FaultPlan plan =
      opt.faulted ? sharding_fault_plan(topology, opt.rounds) : fault::FaultPlan{};
  const fault::FaultPlan* plan_ptr = opt.faulted ? &plan : nullptr;
  std::string reference_csv;
  std::vector<std::uint8_t> reference_checkpoint;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    sc::ThreadPool pool(4);
    core::DistributedEngine engine(topology, deploy,
                                   sharding_config(plan_ptr, &pool, shards, opt.protocol));
    ASSERT_EQ(engine.shard_plan().shard_count(),
              std::min<std::size_t>(shards, topology.rack_count()));
    std::vector<core::RoundMetrics> rounds;
    rounds.reserve(opt.rounds);
    for (std::size_t r = 0; r < opt.rounds; ++r) rounds.push_back(engine.run_round());
    const std::string csv = metrics_csv(rounds);
    const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(engine);
    if (shards == 1) {
      reference_csv = csv;
      reference_checkpoint = checkpoint;
      // The single-shard run must still do real work, or the comparison
      // is vacuous: alerts fired and management acted.
      std::size_t alerts = 0;
      std::size_t actions = 0;
      for (const auto& m : rounds) {
        alerts += m.host_alerts + m.tor_alerts + m.switch_alerts;
        actions += m.migrations + m.reroutes;
      }
      ASSERT_GT(alerts, 0u);
      ASSERT_GT(actions, 0u);
    } else {
      EXPECT_EQ(csv, reference_csv) << "metrics diverged at manage_shards=" << shards;
      EXPECT_EQ(checkpoint == reference_checkpoint, true)
          << "checkpoint bytes diverged at manage_shards=" << shards;
    }
  }
}

}  // namespace

TEST(ManageSharding, FatTreePristineIsShardCountInvariant) {
  expect_shard_count_invariance(small_fat_tree(), sharding_deployment(), {});
}

TEST(ManageSharding, FatTreeFaultedIsShardCountInvariant) {
  ShardInvarianceOptions opt;
  opt.faulted = true;
  expect_shard_count_invariance(small_fat_tree(), sharding_deployment(), opt);
}

TEST(ManageSharding, BCubePristineIsShardCountInvariant) {
  expect_shard_count_invariance(small_bcube(), sharding_deployment(), {});
}

TEST(ManageSharding, BCubeFaultedIsShardCountInvariant) {
  ShardInvarianceOptions opt;
  opt.faulted = true;
  expect_shard_count_invariance(small_bcube(), sharding_deployment(), opt);
}

TEST(ManageSharding, SerializedFcfsProtocolIsShardCountInvariant) {
  ShardInvarianceOptions opt;
  opt.protocol = core::MigrationProtocol::kSerializedFcfs;
  opt.rounds = 60;
  expect_shard_count_invariance(small_fat_tree(), sharding_deployment(), opt);
}

// --- bookkeeping and the legacy sweep ---------------------------------------

TEST(ManageSharding, ShardStatsCloseAndRoundTripThroughCheckpoints) {
  const topo::Topology topology = small_fat_tree();
  sc::ThreadPool pool(2);
  core::EngineConfig config;
  config.observe = true;
  config.pool = &pool;
  config.manage_shards = 4;
  core::DistributedEngine engine(topology, sharding_deployment(), config);
  std::size_t conflicts = 0;
  for (std::size_t r = 0; r < 40; ++r) conflicts += engine.run_round().shard_conflicts;

  const core::ManageShardStats& stats = engine.shard_stats();
  EXPECT_EQ(stats.sharded_rounds, 40u);
  // Claims partition into commits + conflicts, and the per-round metric
  // sums to the same conflict tally.
  EXPECT_EQ(stats.reroute_claims, stats.reroute_commits + stats.reroute_conflicts);
  EXPECT_EQ(stats.vm_claims, stats.vm_commits + stats.vm_conflicts);
  EXPECT_EQ(stats.reroute_conflicts + stats.vm_conflicts, conflicts);
  EXPECT_EQ(stats.demands_by_rack.size(), engine.shard_plan().rack_count());

  // The SHRD section round-trips into a fresh engine.
  const std::vector<std::uint8_t> bytes = core::Checkpoint::serialize(engine);
  core::DistributedEngine resumed(topology, sharding_deployment(), config);
  core::Checkpoint::deserialize(resumed, bytes);
  EXPECT_EQ(resumed.shard_stats().sharded_rounds, stats.sharded_rounds);
  EXPECT_EQ(resumed.shard_stats().reroute_claims, stats.reroute_claims);
  EXPECT_EQ(resumed.shard_stats().reroute_commits, stats.reroute_commits);
  EXPECT_EQ(resumed.shard_stats().reroute_conflicts, stats.reroute_conflicts);
  EXPECT_EQ(resumed.shard_stats().vm_claims, stats.vm_claims);
  EXPECT_EQ(resumed.shard_stats().vm_commits, stats.vm_commits);
  EXPECT_EQ(resumed.shard_stats().vm_conflicts, stats.vm_conflicts);
  EXPECT_EQ(resumed.shard_stats().demands_by_rack, stats.demands_by_rack);
}

TEST(ManageSharding, LegacySweepStillRunsAndNeverReportsShardConflicts) {
  const topo::Topology topology = small_fat_tree();
  core::EngineConfig config;
  config.parallel_collect = false;
  config.sharded_manage = false;  // the pre-sharding interleaved select() sweep
  core::DistributedEngine engine(topology, sharding_deployment(), config);
  EXPECT_EQ(engine.shard_plan().shard_count(), 1u);
  std::size_t alerts = 0;
  for (std::size_t r = 0; r < 40; ++r) {
    const core::RoundMetrics m = engine.run_round();
    EXPECT_EQ(m.shard_conflicts, 0u);
    alerts += m.host_alerts + m.tor_alerts + m.switch_alerts;
  }
  EXPECT_GT(alerts, 0u);
  EXPECT_EQ(engine.shard_stats().sharded_rounds, 0u);
}

TEST(ManageSharding, CheckpointFingerprintSeparatesShardedFromLegacy) {
  // sharded_manage changes semantics, so it fingerprints; manage_shards is
  // a throughput knob, so a checkpoint loads across different shard counts.
  const topo::Topology topology = small_fat_tree();
  core::EngineConfig sharded;
  sharded.manage_shards = 2;
  core::DistributedEngine engine(topology, sharding_deployment(), sharded);
  for (std::size_t r = 0; r < 4; ++r) (void)engine.run_round();
  const std::vector<std::uint8_t> bytes = core::Checkpoint::serialize(engine);

  core::EngineConfig other_shards = sharded;
  other_shards.manage_shards = 8;
  core::DistributedEngine compatible(topology, sharding_deployment(), other_shards);
  EXPECT_NO_THROW(core::Checkpoint::deserialize(compatible, bytes));

  core::EngineConfig legacy = sharded;
  legacy.sharded_manage = false;
  core::DistributedEngine mismatched(topology, sharding_deployment(), legacy);
  EXPECT_THROW(core::Checkpoint::deserialize(mismatched, bytes), snap::SnapshotError);
}
