// Tests for the two adopter-facing extensions: the legacy three-tier
// topology builder (Sheriff is topology-agnostic) and CSV trace import /
// replay (swap the synthetic stand-ins for real monitoring exports).

#include <gtest/gtest.h>

#include <sstream>

#include "common/require.hpp"
#include "core/engine.hpp"
#include "topology/three_tier.hpp"
#include "workload/csv_trace.hpp"

namespace topo = sheriff::topo;
namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace sc = sheriff::common;

class ThreeTierShapes : public ::testing::TestWithParam<int> {};

TEST_P(ThreeTierShapes, MatchesClosedForm) {
  topo::ThreeTierOptions options;
  options.racks = GetParam();
  options.hosts_per_rack = 3;
  options.racks_per_agg = 4;
  const auto shape = topo::three_tier_shape(options);
  const auto t = topo::build_three_tier(options);
  EXPECT_EQ(t.rack_count(), shape.racks);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kHost), shape.hosts);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kTorSwitch), shape.tor_switches);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kAggSwitch), shape.agg_switches);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kCoreSwitch), shape.core_switches);
  EXPECT_EQ(t.link_count(), shape.links);
}

INSTANTIATE_TEST_SUITE_P(RackCounts, ThreeTierShapes, ::testing::Values(4, 8, 16, 17, 32));

TEST(ThreeTier, TorsAreSingleHomed) {
  topo::ThreeTierOptions options;
  options.racks = 8;
  options.racks_per_agg = 4;
  const auto t = topo::build_three_tier(options);
  for (const auto& rack : t.racks()) {
    std::size_t uplinks = 0;
    for (topo::LinkId l : t.links_of(rack.tor)) {
      if (topo::is_switch(t.node(t.peer(l, rack.tor)).kind)) ++uplinks;
    }
    EXPECT_EQ(uplinks, 1u);  // the legacy tree's defining property
  }
}

TEST(ThreeTier, NeighborRegionsAreAggGroups) {
  topo::ThreeTierOptions options;
  options.racks = 8;
  options.racks_per_agg = 4;
  const auto t = topo::build_three_tier(options);
  // Rack 0's one-hop neighbors are the other racks on its agg switch.
  const auto neighbors = t.neighbor_racks(0);
  EXPECT_EQ(neighbors.size(), 3u);
  for (topo::RackId r : neighbors) EXPECT_LT(r, 4u);
}

TEST(ThreeTier, EngineRunsEndToEnd) {
  topo::ThreeTierOptions options;
  options.racks = 8;
  options.hosts_per_rack = 3;
  const auto t = topo::build_three_tier(options);
  core::EngineConfig config;
  config.parallel_collect = false;
  wl::DeploymentOptions deploy;
  deploy.seed = 61;
  core::DistributedEngine engine(t, deploy, config);
  const auto metrics = engine.run(8);
  EXPECT_EQ(metrics.size(), 8u);
  for (const auto& node : t.nodes()) {
    if (node.kind == topo::NodeKind::kHost) {
      EXPECT_LE(engine.deployment().host_used_capacity(node.id),
                engine.deployment().host_capacity());
    }
  }
  // Balance still improves on the legacy tree.
  EXPECT_LT(metrics.back().workload_stddev_after, metrics.front().workload_stddev_before);
}

TEST(ThreeTier, RejectsBadOptions) {
  topo::ThreeTierOptions options;
  options.racks = 0;
  EXPECT_THROW(topo::build_three_tier(options), sc::RequirementError);
}

TEST(CsvTrace, ParsesPlainColumn) {
  std::istringstream csv("1.5\n2.25\n-3\n");
  const auto values = wl::read_csv_column(csv);
  EXPECT_EQ(values, (std::vector<double>{1.5, 2.25, -3.0}));
}

TEST(CsvTrace, SkipsHeaderAndSelectsColumn) {
  std::istringstream csv("time,cpu,mem\n0,42.5,10\n1,43.5,11\n\n2,44.5,12\n");
  const auto values = wl::read_csv_column(csv, 1);
  EXPECT_EQ(values, (std::vector<double>{42.5, 43.5, 44.5}));
}

TEST(CsvTrace, RejectsNonNumericDataCell) {
  std::istringstream csv("cpu\n42\noops\n");
  EXPECT_THROW(wl::read_csv_column(csv), sc::RequirementError);
}

TEST(CsvTrace, RejectsMissingColumn) {
  std::istringstream csv("1,2\n3\n");
  EXPECT_THROW(wl::read_csv_column(csv, 1), sc::RequirementError);
}

TEST(CsvTrace, MissingFileThrows) {
  EXPECT_THROW(wl::read_csv_column_file("/nonexistent/trace.csv"), sc::RequirementError);
}

TEST(ReplayTrace, LoopsAndHolds) {
  wl::ReplayTraceGenerator looping({1.0, 2.0, 3.0}, /*loop=*/true);
  const auto looped = looping.generate(7);
  EXPECT_EQ(looped, (std::vector<double>{1, 2, 3, 1, 2, 3, 1}));

  wl::ReplayTraceGenerator holding({1.0, 2.0}, /*loop=*/false);
  const auto held = holding.generate(4);
  EXPECT_EQ(held, (std::vector<double>{1, 2, 2, 2}));

  EXPECT_THROW(wl::ReplayTraceGenerator({}, true), sc::RequirementError);
}

TEST(ReplayTrace, RoundTripsThroughCsv) {
  std::istringstream csv("traffic\n10\n20\n30\n");
  wl::ReplayTraceGenerator replay(wl::read_csv_column(csv), true);
  EXPECT_EQ(replay.size(), 3u);
  EXPECT_DOUBLE_EQ(replay.next(), 10.0);
  EXPECT_DOUBLE_EQ(replay.next(), 20.0);
}
