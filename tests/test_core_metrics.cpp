// Tests for the metrics utilities, the shim Observation-driven collect
// phase (ToR queue/utilization prediction of Sec. IV-A), and the engine's
// QCN integration.

#include <gtest/gtest.h>

#include <sstream>

#include "common/require.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/shim_controller.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace sc = sheriff::common;

namespace {

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::DeploymentOptions deployment_options(std::uint64_t seed = 42) {
  wl::DeploymentOptions options;
  options.seed = seed;
  return options;
}

}  // namespace

TEST(Metrics, TableAndCsvRoundTrip) {
  core::EngineConfig config;
  config.parallel_collect = false;
  core::DistributedEngine engine(test_topology(), deployment_options(), config);
  const auto rounds = engine.run(4);

  const auto table = core::metrics_table(rounds);
  EXPECT_EQ(table.rows(), 4u);
  EXPECT_EQ(table.cell(2, 0), "2");  // round ids in order

  std::ostringstream csv;
  core::write_metrics_csv(csv, rounds);
  const std::string text = csv.str();
  EXPECT_NE(text.find("round,stddev_before"), std::string::npos);
  // header + one line per round
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')), 5u);
}

TEST(Metrics, SummaryAggregates) {
  core::EngineConfig config;
  config.parallel_collect = false;
  core::DistributedEngine engine(test_topology(), deployment_options(7), config);
  const auto rounds = engine.run(6);
  const auto summary = core::summarize(rounds);
  EXPECT_EQ(summary.rounds, 6u);
  EXPECT_DOUBLE_EQ(summary.first_stddev, rounds.front().workload_stddev_before);
  EXPECT_DOUBLE_EQ(summary.last_stddev, rounds.back().workload_stddev_after);
  std::size_t migrations = 0;
  for (const auto& m : rounds) migrations += m.migrations;
  EXPECT_EQ(summary.total_migrations, migrations);
  EXPECT_GE(summary.mean_link_peak, 0.0);
  EXPECT_LE(summary.mean_link_peak, 1.0 + 1e-9);
}

TEST(Metrics, EmptySummaryIsZero) {
  const auto summary = core::summarize({});
  EXPECT_EQ(summary.rounds, 0u);
  EXPECT_EQ(summary.total_migrations, 0u);
}

TEST(ShimObservation, PredictedTorQueueTriggersAlert) {
  const wl::Deployment deployment(test_topology(), deployment_options(3));
  core::SheriffConfig config;
  core::ShimController shim(0, test_topology(), config);
  std::vector<wl::WorkloadProfile> predicted(deployment.vm_count());  // all-zero: calm

  core::ShimController::Observation obs;
  obs.fleet_mean_load_percent = 50.0;  // no host is a relative hotspot
  obs.predicted_tor_queue = 10.0;      // above equilibrium
  obs.tor_queue_equilibrium = 4.0;
  const auto calm = shim.collect(deployment, predicted, obs);
  ASSERT_EQ(calm.alerts.size(), 1u);
  EXPECT_EQ(calm.alerts[0].source, core::AlertSource::kLocalTor);

  obs.predicted_tor_queue = 1.0;  // below equilibrium: silent
  const auto quiet = shim.collect(deployment, predicted, obs);
  EXPECT_TRUE(quiet.alerts.empty());
}

TEST(ShimObservation, PredictedUtilizationOverridesShares) {
  const wl::Deployment deployment(test_topology(), deployment_options(4));
  core::SheriffConfig config;
  config.tor_utilization_threshold = 0.85;
  core::ShimController shim(1, test_topology(), config);
  std::vector<wl::WorkloadProfile> predicted(deployment.vm_count());

  core::ShimController::Observation obs;
  obs.fleet_mean_load_percent = 50.0;
  obs.predicted_tor_utilization = 0.95;  // predicted hot even with no shares
  const auto result = shim.collect(deployment, predicted, obs);
  ASSERT_EQ(result.alerts.size(), 1u);
  EXPECT_EQ(result.alerts[0].source, core::AlertSource::kLocalTor);
  EXPECT_NEAR(result.alerts[0].value, 0.95, 1e-12);
}

TEST(ShimObservation, HotSwitchListBecomesAlerts) {
  const wl::Deployment deployment(test_topology(), deployment_options(5));
  core::SheriffConfig config;
  core::ShimController shim(2, test_topology(), config);
  std::vector<wl::WorkloadProfile> predicted(deployment.vm_count());

  const auto cores = test_topology().nodes_of_kind(topo::NodeKind::kCoreSwitch);
  core::ShimController::Observation obs;
  obs.fleet_mean_load_percent = 50.0;
  const std::vector<topo::NodeId> hot{cores[0], cores[1]};
  obs.hot_switches = hot;
  const auto result = shim.collect(deployment, predicted, obs);
  ASSERT_EQ(result.alerts.size(), 2u);
  for (const auto& alert : result.alerts) {
    EXPECT_EQ(alert.source, core::AlertSource::kOuterSwitch);
  }
}

TEST(EngineQcn, RateControlReducesCongestedRounds) {
  const auto run = [&](bool qcn) {
    core::EngineConfig config;
    config.parallel_collect = false;
    config.qcn_rate_control = qcn;
    config.flow_demand_scale_gbps = 1.2;  // slam the fabric
    auto deploy = deployment_options(9);
    deploy.dependency_degree = 2.0;
    core::DistributedEngine engine(test_topology(), deploy, config);
    std::size_t congested = 0;
    std::size_t limited = 0;
    for (int r = 0; r < 12; ++r) {
      const auto m = engine.run_round();
      congested += m.congested_switches;
      limited += m.rate_limited_flows;
    }
    return std::pair{congested, limited};
  };
  const auto [congested_on, limited_on] = run(true);
  const auto [congested_off, limited_off] = run(false);
  EXPECT_GT(limited_on, 0u);
  EXPECT_EQ(limited_off, 0u);
  EXPECT_LT(congested_on, congested_off);
}

// Golden-file lockdown of the CSV schema (S3 of the observability sweep):
// downstream notebooks parse this byte for byte, so the header and the cell
// formatting (fixed precisions per column) are pinned exactly. All doubles
// in the golden row are dyadic rationals, so std::fixed formatting is
// deterministic across platforms.
TEST(Metrics, CsvGoldenRow) {
  core::RoundMetrics m;
  m.round = 3;
  m.workload_stddev_before = 1.25;
  m.workload_stddev_after = 0.75;
  m.workload_mean = 2.5;
  m.host_alerts = 4;
  m.tor_alerts = 2;
  m.switch_alerts = 1;
  m.migrations = 5;
  m.migration_requests = 7;
  m.migration_rejects = 2;
  m.reroutes = 3;
  m.migration_cost = 12.5;
  m.search_space = 96;
  m.max_link_utilization = 0.875;
  m.congested_switches = 2;
  m.rate_limited_flows = 6;
  m.flow_satisfaction = 0.5;
  m.flow_fairness = 1.0;
  m.migration_seconds = 2.25;
  m.migration_downtime_seconds = 0.0625;
  m.failed_links = 1;
  m.failed_switches = 0;
  m.orphaned_vms = 2;
  m.unroutable_flows = 3;
  m.protocol_drops = 4;
  m.protocol_retries = 5;
  m.recovery_migrations = 6;
  m.shard_conflicts = 7;

  std::ostringstream csv;
  core::write_metrics_csv(csv, std::span<const core::RoundMetrics>(&m, 1));

  const std::string expected =
      "round,stddev_before,stddev_after,mean_load,host_alerts,tor_alerts,switch_alerts,"
      "migrations,requests,rejects,reroutes,migration_cost,search_space,max_link_util,"
      "congested_switches,rate_limited_flows,flow_satisfaction,flow_fairness,migration_s,"
      "downtime_s,failed_links,failed_switches,orphaned_vms,unroutable_flows,protocol_drops,"
      "protocol_retries,recovery_migrations,shard_conflicts\n"
      "3,1.250,0.750,2.500,4,2,1,5,7,2,3,12.50,96,0.875,2,6,0.500,1.000,2.25,0.0625,"
      "1,0,2,3,4,5,6,7\n";
  EXPECT_EQ(csv.str(), expected);
}
