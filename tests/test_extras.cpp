// Focused extras: ARMA(1,1) psi weights, ensemble refit cadence, DOT
// export on BCube, plot resampling, and engine protocol metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/predictor.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/simulate.hpp"
#include "topology/bcube.hpp"
#include "topology/dot_export.hpp"
#include "topology/fat_tree.hpp"

namespace ts = sheriff::ts;
namespace sc = sheriff::common;
namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;

TEST(ArimaExtras, Arma11PsiWeightsClosedForm) {
  // For ARMA(1,1): psi_1 = phi + theta, psi_j = phi^{j-1} psi_1 for j >= 1.
  sc::Pcg32 rng(91);
  const auto x = ts::simulate_arma({0.5}, {0.3}, 0.0, 1.0, 6000, rng);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 1});
  model.fit(x);
  const double phi = model.ar_coefficients()[0];
  const double theta = model.ma_coefficients()[0];
  const auto psi = model.psi_weights(6);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_NEAR(psi[1], phi + theta, 1e-12);
  for (std::size_t j = 2; j < psi.size(); ++j) {
    EXPECT_NEAR(psi[j], (phi + theta) * std::pow(phi, static_cast<double>(j - 1)), 1e-12);
  }
}

TEST(EnsembleExtras, RefitsOnConfiguredInterval) {
  core::EnsembleProfilePredictor::Options options;
  options.min_fit = 48;
  options.history = 96;
  options.refit_interval = 16;
  options.selector_window = 8;
  core::EnsembleProfilePredictor predictor(options);
  sc::Pcg32 rng(92);
  wl::WorkloadProfile p;
  // Feed well past several refit intervals; predictions must stay sane.
  for (int t = 0; t < 100; ++t) {
    for (auto& v : p.values) v = 0.4 + 0.2 * std::sin(t / 7.0) + rng.normal(0.0, 0.02);
    p.clamp();
    predictor.observe(p);
    if (predictor.ready()) {
      const auto forecast = predictor.predict(2);
      for (double v : forecast.values) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
  EXPECT_TRUE(predictor.ready());
}

TEST(DotExportExtras, BCubeLevelsRendered) {
  topo::BCubeOptions options;
  options.ports = 3;
  options.levels = 1;
  const auto t = topo::build_bcube(options);
  std::ostringstream os;
  topo::write_dot(os, t);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("bcube-n3-k1"), std::string::npos);
  EXPECT_NE(dot.find("bcube-switch"), std::string::npos);  // level-1 switches
  EXPECT_NE(dot.find("cluster_rack2"), std::string::npos);
}

TEST(PlotExtras, ResamplesLongSeriesToWidth) {
  std::vector<double> series(1000);
  for (std::size_t i = 0; i < series.size(); ++i) series[i] = static_cast<double>(i);
  sc::PlotOptions options;
  options.width = 40;
  options.height = 8;
  const auto chart = sc::render_plot(series, options);
  // Every canvas row is exactly width wide (plus label/axis characters).
  std::istringstream lines(chart);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    const auto bar = line.find('|');
    if (bar == std::string::npos) continue;
    EXPECT_EQ(line.size() - bar - 1, 40u);
    ++rows;
  }
  EXPECT_EQ(rows, 8u);
}

TEST(PlotExtras, SparklineWidthRespected) {
  std::vector<double> series(500);
  sc::Pcg32 rng(93);
  for (auto& v : series) v = rng.next_double();
  const auto spark = sc::sparkline(series, 32);
  // Each glyph is a 3-byte UTF-8 block character.
  EXPECT_EQ(spark.size() % 3, 0u);
  EXPECT_LE(spark.size() / 3, 32u);
}

TEST(EngineExtras, ProtocolMetricsExposed) {
  topo::FatTreeOptions topt;
  topt.pods = 4;
  topt.hosts_per_rack = 3;
  const auto t = topo::build_fat_tree(topt);
  core::EngineConfig config;
  config.parallel_collect = false;
  wl::DeploymentOptions deploy;
  deploy.seed = 94;
  deploy.skew_weight = 10.0;
  deploy.hot_host_bias = 4.0;
  core::DistributedEngine engine(t, deploy, config);
  bool saw_iteration = false;
  for (int r = 0; r < 8; ++r) {
    const auto m = engine.run_round();
    if (m.migrations > 0) {
      EXPECT_GE(m.protocol_iterations, 1u);
      saw_iteration = true;
    }
  }
  EXPECT_TRUE(saw_iteration);
}
