// Fault subsystem tests: plan ordering/dedup, liveness-aware routing,
// injector semantics, shim takeover, lossy-protocol convergence, replay
// determinism, and orphan recovery after host/ToR failures.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/lossy_channel.hpp"
#include "net/routing.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace fault = sheriff::fault;
namespace net = sheriff::net;
namespace topo = sheriff::topo;
namespace wl = sheriff::wl;

namespace {

const topo::Topology& fat_tree() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::DeploymentOptions deployment_options(std::uint64_t seed = 42) {
  wl::DeploymentOptions options;
  options.seed = seed;
  options.vms_per_host = 3.0;
  return options;
}

core::EngineConfig engine_config() {
  core::EngineConfig config;
  config.parallel_collect = false;  // keep unit tests single-threaded
  return config;
}

std::string csv_of(std::span<const core::RoundMetrics> rounds) {
  std::ostringstream os;
  core::write_metrics_csv(os, rounds);
  return os.str();
}

}  // namespace

// --- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, EventsSortedAndDeduped) {
  fault::FaultPlan plan;
  plan.add(5, fault::FaultKind::kLinkDown, 3)
      .add(1, fault::FaultKind::kSwitchDown, 2)
      .add(5, fault::FaultKind::kLinkDown, 3)  // duplicate, dropped
      .add(1, fault::FaultKind::kLinkDown, 7);
  ASSERT_EQ(plan.size(), 3u);
  const auto events = plan.events();
  EXPECT_EQ(events[0].round, 1u);
  EXPECT_EQ(events[0].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(events[0].target, 7u);
  EXPECT_EQ(events[1].kind, fault::FaultKind::kSwitchDown);
  EXPECT_EQ(events[2].round, 5u);
  EXPECT_EQ(plan.due(1).size(), 2u);
  EXPECT_EQ(plan.due(5).size(), 1u);
  EXPECT_TRUE(plan.due(2).empty());
  EXPECT_TRUE(plan.due(99).empty());
  EXPECT_EQ(plan.horizon(), 5u);
}

TEST(FaultPlan, FailHelpersEmitRecoveryPairs) {
  fault::FaultPlan plan;
  plan.fail_switch(4, 2, 6);
  plan.fail_host(9, 3);      // permanent: no up event
  plan.fail_host(9, 3, 1);   // up_round <= down_round: still permanent
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.due(2).front().kind, fault::FaultKind::kSwitchDown);
  EXPECT_EQ(plan.due(6).front().kind, fault::FaultKind::kSwitchUp);
  EXPECT_EQ(plan.due(3).front().kind, fault::FaultKind::kHostDown);
  EXPECT_EQ(plan.horizon(), 6u);
}

TEST(FaultPlan, RandomLinkFlapsAreFabricOnlyAndInRange) {
  const auto& t = fat_tree();
  fault::FaultOptions options;
  options.seed = 7;
  const auto plan = fault::FaultPlan::random_link_flaps(t, options, 5, 2, 10, 2);
  EXPECT_EQ(plan.size(), 10u);  // 5 down + 5 up
  for (const auto& e : plan.events()) {
    ASSERT_TRUE(e.kind == fault::FaultKind::kLinkDown || e.kind == fault::FaultKind::kLinkUp);
    const auto& link = t.link(static_cast<topo::LinkId>(e.target));
    EXPECT_NE(t.node(link.a).kind, topo::NodeKind::kHost);
    EXPECT_NE(t.node(link.b).kind, topo::NodeKind::kHost);
    if (e.kind == fault::FaultKind::kLinkDown) {
      EXPECT_GE(e.round, 2u);
      EXPECT_LT(e.round, 10u);
    }
  }
  // Same seed replays the same schedule.
  const auto replay = fault::FaultPlan::random_link_flaps(t, options, 5, 2, 10, 2);
  ASSERT_EQ(replay.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(replay.events()[i], plan.events()[i]);
  }
}

// --- LossyChannel ----------------------------------------------------------

TEST(LossyChannel, DropRateTracksProbability) {
  fault::LossyChannel reliable(0.0, 1);
  EXPECT_TRUE(reliable.lossless());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(reliable.deliver());

  fault::LossyChannel lossy(0.3, 1);
  EXPECT_FALSE(lossy.lossless());
  std::size_t delivered = 0;
  for (int i = 0; i < 1000; ++i) delivered += lossy.deliver() ? 1 : 0;
  EXPECT_EQ(lossy.drops(), 1000u - delivered);
  EXPECT_GT(delivered, 600u);
  EXPECT_LT(delivered, 800u);
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, TorDeathTakesShimDownAndRecovers) {
  const auto& t = fat_tree();
  fault::FaultPlan plan;
  plan.fail_switch(t.rack(2).tor, 1, 3);
  fault::FaultInjector injector(t, plan);

  auto report = injector.advance(0);
  EXPECT_FALSE(report.fabric_changed);
  EXPECT_FALSE(injector.shim_down(2));

  report = injector.advance(1);
  EXPECT_TRUE(report.fabric_changed);
  EXPECT_TRUE(report.shims_changed);
  EXPECT_TRUE(injector.shim_down(2));
  EXPECT_EQ(injector.failed_switch_count(), 1u);
  EXPECT_GT(injector.failed_link_count(), 0u);  // the ToR's links are severed

  report = injector.advance(2);
  EXPECT_FALSE(report.fabric_changed);

  report = injector.advance(3);
  EXPECT_TRUE(report.fabric_changed);
  EXPECT_FALSE(injector.shim_down(2));
  EXPECT_EQ(injector.failed_switch_count(), 0u);
  EXPECT_EQ(injector.failed_link_count(), 0u);
}

TEST(FaultInjector, ExplicitShimCrashOutlivesTorRecovery) {
  const auto& t = fat_tree();
  fault::FaultPlan plan;
  plan.fail_shim(2, 1, 5);
  plan.fail_switch(t.rack(2).tor, 1, 2);
  fault::FaultInjector injector(t, plan);
  injector.advance(0);
  injector.advance(1);
  EXPECT_TRUE(injector.shim_down(2));
  injector.advance(2);  // ToR back, but the shim process is still dead
  EXPECT_TRUE(injector.shim_down(2));
  EXPECT_EQ(injector.failed_switch_count(), 0u);
  injector.advance(5);
  EXPECT_FALSE(injector.shim_down(2));
}

TEST(FaultInjector, HostFailureTracksOrphanSources) {
  const auto& t = fat_tree();
  const topo::NodeId host = t.rack(0).hosts[1];
  fault::FaultPlan plan;
  plan.fail_host(host, 2, 4);
  fault::FaultInjector injector(t, plan);
  injector.advance(2);
  ASSERT_EQ(injector.failed_hosts().size(), 1u);
  EXPECT_EQ(injector.failed_hosts().front(), host);
  EXPECT_TRUE(injector.host_down(host));
  injector.advance(4);
  EXPECT_TRUE(injector.failed_hosts().empty());
}

// --- Router liveness -------------------------------------------------------

TEST(RouterLiveness, DeadTorSeversItsRackOnly) {
  const auto& t = fat_tree();
  topo::LivenessMask mask(t);
  net::Router router(t);
  router.apply_liveness(&mask);

  const auto& victim = t.rack(0);
  const topo::NodeId inside = victim.hosts[0];
  const topo::NodeId sibling = victim.hosts[1];
  const topo::NodeId outside = t.rack(2).hosts[0];
  ASSERT_TRUE(router.reachable(inside, outside));

  mask.set_node(victim.tor, false);
  EXPECT_TRUE(router.refresh_liveness());
  EXPECT_FALSE(router.refresh_liveness());  // version unchanged: no recompute
  // Single-homed fat-tree hosts talk only through their ToR: even the
  // intra-rack pair is cut, while the rest of the fabric is untouched.
  EXPECT_FALSE(router.reachable(inside, outside));
  EXPECT_FALSE(router.reachable(inside, sibling));
  EXPECT_TRUE(router.reachable(t.rack(1).hosts[0], outside));

  net::Flow flow;
  flow.src_host = inside;
  flow.dst_host = outside;
  EXPECT_FALSE(router.route(flow));
  EXPECT_FALSE(flow.routed());

  mask.set_node(victim.tor, true);
  EXPECT_TRUE(router.refresh_liveness());
  EXPECT_TRUE(router.reachable(inside, outside));
  EXPECT_TRUE(router.route(flow));
}

TEST(RouterLiveness, FatTreeMultipathSurvivesAggAndCoreLoss) {
  const auto& t = fat_tree();
  topo::LivenessMask mask(t);
  net::Router router(t);
  router.apply_liveness(&mask);

  // One agg switch and one core switch die; every host pair stays
  // reachable because the fat tree has redundant equal-cost paths.
  mask.set_node(t.nodes_of_kind(topo::NodeKind::kAggSwitch).front(), false);
  mask.set_node(t.nodes_of_kind(topo::NodeKind::kCoreSwitch).front(), false);
  router.refresh_liveness();
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  for (topo::NodeId h : hosts) {
    EXPECT_TRUE(router.reachable(hosts.front(), h));
  }
  net::Flow flow;
  flow.src_host = hosts.front();
  flow.dst_host = hosts.back();
  EXPECT_TRUE(router.route(flow));
}

// --- Engine integration ----------------------------------------------------

TEST(EngineFault, EmptyPlanMatchesNoPlanByteForByte) {
  const fault::FaultPlan empty_plan;
  auto with_plan = engine_config();
  with_plan.fault_plan = &empty_plan;
  core::DistributedEngine a(fat_tree(), deployment_options(5), engine_config());
  core::DistributedEngine b(fat_tree(), deployment_options(5), with_plan);
  const auto ma = a.run(6);
  const auto mb = b.run(6);
  EXPECT_EQ(csv_of(ma), csv_of(mb));
}

TEST(EngineFault, ReplayIsByteIdentical) {
  fault::FaultOptions options;
  options.seed = 11;
  options.message_drop_probability = 0.25;
  auto plan = fault::FaultPlan::random_link_flaps(fat_tree(), options, 4, 1, 6, 2);
  plan.fail_host(fat_tree().rack(1).hosts[0], 3);
  plan.set_options(options);

  auto config = engine_config();
  config.fault_plan = &plan;
  core::DistributedEngine a(fat_tree(), deployment_options(5), config);
  core::DistributedEngine b(fat_tree(), deployment_options(5), config);
  const std::string ca = csv_of(a.run(8));
  const std::string cb = csv_of(b.run(8));
  EXPECT_FALSE(ca.empty());
  EXPECT_EQ(ca, cb);
}

TEST(EngineFault, ShimCrashHandsRackToNeighbor) {
  fault::FaultPlan plan;
  plan.fail_shim(0, 1);
  auto config = engine_config();
  config.fault_plan = &plan;
  core::DistributedEngine engine(fat_tree(), deployment_options(5), config);
  EXPECT_EQ(engine.managing_rack(0), 0u);  // nothing failed yet
  engine.run(2);
  const topo::RackId takeover = engine.managing_rack(0);
  ASSERT_NE(takeover, topo::kInvalidRack);
  EXPECT_NE(takeover, 0u);
  const auto neighbors = fat_tree().neighbor_racks(0);
  EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), takeover), neighbors.end());
  EXPECT_EQ(engine.managing_rack(takeover), takeover);
}

TEST(EngineFault, LossyProtocolStillConvergesAtThirtyPercent) {
  fault::FaultPlan plan;  // pristine fabric, lossy control plane
  fault::FaultOptions options;
  options.message_drop_probability = 0.3;
  options.max_protocol_retries = 16;
  plan.set_options(options);

  auto config = engine_config();
  config.fault_plan = &plan;
  core::DistributedEngine engine(fat_tree(), deployment_options(3), config);
  const auto metrics = engine.run(10);

  const std::size_t iteration_cap =
      engine.config().sheriff.max_matching_rounds + options.max_protocol_retries;
  std::size_t total_migrations = 0;
  std::size_t total_drops = 0;
  for (const auto& m : metrics) {
    EXPECT_LE(m.protocol_iterations, iteration_cap);
    EXPECT_LE(m.migrations, m.migration_requests);
    total_migrations += m.migrations;
    total_drops += m.protocol_drops;
  }
  EXPECT_GT(total_migrations, 0u);  // losses delay, they must not starve
  EXPECT_GT(total_drops, 0u);      // and the channel really was lossy

  // No lost reservations: the deployment ledger still balances and no
  // dependency pair was collapsed onto one host.
  const auto& d = engine.deployment();
  for (const auto& node : fat_tree().nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    int used = 0;
    for (wl::VmId id : d.vms_on_host(node.id)) used += d.vm(id).capacity;
    EXPECT_EQ(used, d.host_used_capacity(node.id));
    EXPECT_LE(used, d.host_capacity());
  }
  for (wl::VmId a = 0; a < d.vm_count(); ++a) {
    for (wl::VmId b : d.dependencies().neighbors(a)) {
      EXPECT_NE(d.vm(a).host, d.vm(b).host);
    }
  }
}

namespace {

void expect_orphans_replaced(core::ManagerMode mode) {
  const auto& t = fat_tree();
  auto dopt = deployment_options(4);
  // Probe the deterministic placement for a populated host to kill.
  const topo::NodeId victim = [&] {
    wl::Deployment probe(t, dopt);
    for (topo::NodeId h : t.nodes_of_kind(topo::NodeKind::kHost)) {
      if (!probe.vms_on_host(h).empty()) return h;
    }
    return t.nodes_of_kind(topo::NodeKind::kHost).front();
  }();

  fault::FaultPlan plan;
  plan.fail_host(victim, 2);
  auto config = engine_config();
  config.mode = mode;
  config.fault_plan = &plan;
  core::DistributedEngine engine(t, dopt, config);
  const auto metrics = engine.run(8);

  EXPECT_GT(metrics[2].orphaned_vms, 0u);
  std::size_t recovered = 0;
  for (const auto& m : metrics) recovered += m.recovery_migrations;
  EXPECT_GE(recovered, metrics[2].orphaned_vms);
  EXPECT_EQ(metrics.back().orphaned_vms, 0u);
  EXPECT_TRUE(engine.deployment().vms_on_host(victim).empty());
}

}  // namespace

TEST(EngineFault, HostFailureOrphansReplacedSheriff) {
  expect_orphans_replaced(core::ManagerMode::kSheriff);
}

TEST(EngineFault, HostFailureOrphansReplacedCentralized) {
  expect_orphans_replaced(core::ManagerMode::kCentralized);
}

TEST(EngineFault, TorOutageOrphansWholeRackAndRecovers) {
  const auto& t = fat_tree();
  auto dopt = deployment_options(42);
  dopt.vms_per_host = 2.0;  // headroom so the whole rack can evacuate
  const auto plan = fault::FaultPlan::tor_outage(t, 0, 2, 12);
  auto config = engine_config();
  config.fault_plan = &plan;
  core::DistributedEngine engine(t, dopt, config);
  const auto outage_rounds = engine.run(10);

  EXPECT_EQ(outage_rounds[1].failed_switches, 0u);
  EXPECT_EQ(outage_rounds[2].failed_switches, 1u);
  EXPECT_GT(outage_rounds[2].orphaned_vms, 0u);
  EXPECT_GT(outage_rounds[2].unroutable_flows, 0u);
  // Evacuation completes while the ToR is still down: the cut-off rack is
  // empty and nothing can have migrated back in.
  EXPECT_EQ(outage_rounds.back().orphaned_vms, 0u);
  for (topo::NodeId h : t.rack(0).hosts) {
    EXPECT_TRUE(engine.deployment().vms_on_host(h).empty());
  }

  // The rebooted ToR rejoins the fabric without residue.
  const auto recovered_rounds = engine.run(4);
  EXPECT_EQ(recovered_rounds.back().failed_switches, 0u);
  EXPECT_EQ(recovered_rounds.back().unroutable_flows, 0u);
  EXPECT_EQ(engine.managing_rack(0), 0u);
}

// --- Thread-pool determinism ------------------------------------------------
// The parallel sweeps (predictor observe, shim collect, switch queues,
// protocol propose) write only per-index slots and draw from per-VM RNG
// streams, so the pool size must never show in the output. 60 rounds on a
// fabric big enough to cross every fan-out threshold (324 VMs > 256, 18
// racks > 8), byte-compared across pool sizes 1, 2, and 8, with and
// without a fault schedule.

namespace {

const topo::Topology& parallel_fat_tree() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 6;
    options.hosts_per_rack = 6;
    return topo::build_fat_tree(options);
  }();
  return t;
}

std::string run_with_pool(std::size_t pool_threads, const fault::FaultPlan* plan) {
  sheriff::common::ThreadPool pool(pool_threads);
  core::EngineConfig config;
  config.parallel_collect = true;
  config.pool = &pool;
  config.fault_plan = plan;
  core::DistributedEngine engine(parallel_fat_tree(), deployment_options(9), config);
  return csv_of(engine.run(60));
}

}  // namespace

TEST(EngineDeterminism, PoolSizeNeverChangesMetricsPristine) {
  const std::string baseline = run_with_pool(1, nullptr);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run_with_pool(2, nullptr), baseline);
  EXPECT_EQ(run_with_pool(8, nullptr), baseline);
}

TEST(EngineDeterminism, PoolSizeNeverChangesMetricsUnderFaults) {
  const auto& t = parallel_fat_tree();
  fault::FaultOptions options;
  options.seed = 23;
  options.message_drop_probability = 0.15;
  options.max_protocol_retries = 8;
  auto plan = fault::FaultPlan::random_link_flaps(t, options, 6, 5, 50, 10);
  plan.fail_switch(t.rack(3).tor, 12, 30);
  plan.fail_host(t.rack(7).hosts[1], 20, 44);
  plan.set_options(options);

  const std::string baseline = run_with_pool(1, &plan);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run_with_pool(2, &plan), baseline);
  EXPECT_EQ(run_with_pool(8, &plan), baseline);
}

// --- Metrics plumbing ------------------------------------------------------

TEST(MetricsFault, SummarizeEmptySpanIsZeroed) {
  const auto s = core::summarize({});
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.total_migrations, 0u);
  EXPECT_EQ(s.rounds_with_failures, 0u);
  EXPECT_EQ(s.peak_orphaned_vms, 0u);
  EXPECT_EQ(s.total_protocol_drops, 0u);
  EXPECT_DOUBLE_EQ(s.mean_link_peak, 0.0);
}

TEST(MetricsFault, CsvAndSummaryCarryFailureColumns) {
  std::vector<core::RoundMetrics> rounds(3);
  rounds[1].failed_links = 4;
  rounds[1].failed_switches = 1;
  rounds[1].orphaned_vms = 5;
  rounds[1].recovery_migrations = 5;
  rounds[2].protocol_drops = 7;
  rounds[2].protocol_retries = 2;

  const std::string csv = csv_of(rounds);
  EXPECT_NE(csv.find("failed_links"), std::string::npos);
  EXPECT_NE(csv.find("orphaned_vms"), std::string::npos);
  EXPECT_NE(csv.find("recovery_migrations"), std::string::npos);

  const auto s = core::summarize(rounds);
  EXPECT_EQ(s.rounds_with_failures, 1u);
  EXPECT_EQ(s.peak_orphaned_vms, 5u);
  EXPECT_EQ(s.total_recovery_migrations, 5u);
  EXPECT_EQ(s.total_protocol_drops, 7u);
  EXPECT_EQ(s.total_protocol_retries, 2u);
}
