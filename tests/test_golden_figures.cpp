// Golden-figure regression tests: pin small-instance outputs of the
// figure benches byte-for-byte. The figure pipelines (trace generation,
// ARIMA fitting, the balance loop, the Sheriff-vs-centralized sweep) are
// fully deterministic given their seeds, so any diff here is a behavior
// change that would silently reshape the paper figures.
//
// Golden files live in tests/golden/ and are compared byte-exact. To
// regenerate after an intentional change:
//
//     SHERIFF_REGEN_GOLDENS=1 ctest -L golden
//
// then review the diff of tests/golden/*.txt like any other code change.
// Wall-clock columns (the *_seconds fields of ManagerComparison) are
// deliberately excluded — only deterministic columns are pinned.
//
// This target compiles bench/bench_support.cpp directly instead of
// linking a bench library: the ASan preset builds with
// SHERIFF_BUILD_BENCH=OFF, and these tests must still run there.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/arima.hpp"
#include "topology/fat_tree.hpp"
#include "workload/trace_generator.hpp"

namespace bench = sheriff::bench;
namespace common = sheriff::common;
namespace topo = sheriff::topo;
namespace ts = sheriff::ts;
namespace wl = sheriff::wl;

namespace {

std::string golden_path(const std::string& name) {
  return std::string(SHERIFF_GOLDEN_DIR) + "/" + name;
}

/// Byte-exact comparison against tests/golden/<name>; with
/// SHERIFF_REGEN_GOLDENS=1 the file is rewritten instead and the test
/// passes, so a regen run is also a smoke test of the pipelines.
void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  const char* regen = std::getenv("SHERIFF_REGEN_GOLDENS");
  if (regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with SHERIFF_REGEN_GOLDENS=1";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "output of " << name
      << " drifted; if intentional, regenerate with SHERIFF_REGEN_GOLDENS=1 "
         "and review the golden diff";
}

}  // namespace

// Small instance of bench_fig06_arima: four days of the weekly traffic
// trace, 50/50 train/test, ARIMA(1,1,1) one-step predictions.
TEST(GoldenFigures, Fig06ArimaSmallInstance) {
  auto gen = wl::make_weekly_traffic_trace(601);
  const auto series = gen->generate(48 * 4);
  const std::size_t split = series.size() / 2;
  const std::vector<double> train(series.begin(),
                                  series.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> actual(series.begin() + static_cast<std::ptrdiff_t>(split),
                                   series.end());

  ts::ArimaModel model(ts::ArimaOrder{1, 1, 1});
  model.fit(train);

  const auto train_preds = model.one_step_predictions(train, 8);
  const std::vector<double> train_actual(train.begin() + 8, train.end());
  const auto test_preds = model.one_step_predictions(series, split);
  std::vector<double> bias(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) bias[i] = actual[i] - test_preds[i];

  std::ostringstream os;
  os << "fig06 small instance: weekly trace seed 601, 48*4 samples, ARIMA(1,1,1)\n"
     << "phi=" << common::format_fixed(model.ar_coefficients()[0], 6)
     << " theta=" << common::format_fixed(model.ma_coefficients()[0], 6)
     << " c=" << common::format_fixed(model.intercept(), 6)
     << " sigma^2=" << common::format_fixed(model.innovation_variance(), 6) << "\n";
  common::Table table({"window", "MSE", "RMSE", "MAPE %", "mean bias", "signal stddev"});
  table.begin_row()
      .add("train (in-sample)")
      .add(common::mean_squared_error(train_actual, train_preds), 3)
      .add(common::root_mean_squared_error(train_actual, train_preds), 3)
      .add(common::mean_absolute_percentage_error(train_actual, train_preds), 2)
      .add(0.0, 3)
      .add(common::stddev(train_actual), 2);
  table.begin_row()
      .add("test (one-step)")
      .add(common::mean_squared_error(actual, test_preds), 3)
      .add(common::root_mean_squared_error(actual, test_preds), 3)
      .add(common::mean_absolute_percentage_error(actual, test_preds), 2)
      .add(common::mean(bias), 3)
      .add(common::stddev(actual), 2);
  table.print(os);
  expect_matches_golden("fig06_arima_small.txt", os.str());
}

// Small instance of bench_fig09_fattree_balance: 4-pod Fat-Tree, 8
// migration rounds, including the rendered stddev curve.
TEST(GoldenFigures, Fig09FatTreeBalanceSmallInstance) {
  topo::FatTreeOptions topt;
  topt.pods = 4;
  topt.hosts_per_rack = 2;
  const auto topology = topo::build_fat_tree(topt);
  const auto result = bench::run_balance(topology, 8, 901);

  std::ostringstream os;
  os << "fig09 small instance: " << topology.name() << " (" << topology.host_count()
     << " hosts, " << topology.rack_count() << " racks), 8 rounds, seed 901\n";
  common::Table table({"migration round", "workload stddev %"});
  for (std::size_t r = 0; r < result.stddev_by_round.size(); ++r) {
    table.begin_row().add(r).add(result.stddev_by_round[r], 2);
  }
  table.print(os);
  common::PlotOptions plot;
  plot.title = "\nworkload stddev (%) by migration round";
  plot.series_names = {"stddev"};
  os << common::render_plot(result.stddev_by_round, plot);
  os << "\nmigrations " << result.total_migrations << ", alerts " << result.total_alerts
     << "\n";
  expect_matches_golden("fig09_fattree_balance_small.txt", os.str());
}

// Small instance of bench_fig11_fattree_cost: the Sheriff-vs-centralized
// sweep at 4 and 8 pods. Only deterministic columns are pinned — the
// sweep's wall-clock seconds are left out.
TEST(GoldenFigures, Fig11FatTreeCostSmallInstance) {
  const auto sweep = bench::sweep_fat_tree({4, 8}, 1101);

  std::ostringstream os;
  os << "fig11 small instance: fat-tree pods {4, 8}, 5% alerted, seed 1101\n";
  common::Table table({"pods", "hosts", "alerted", "APP cost", "OPT cost", "APP space",
                       "OPT space", "APP moves", "OPT moves"});
  for (const auto& p : sweep) {
    table.begin_row()
        .add(p.size_param)
        .add(p.hosts)
        .add(p.alerted)
        .add(p.sheriff_cost, 3)
        .add(p.centralized_cost, 3)
        .add(p.sheriff_space)
        .add(p.centralized_space)
        .add(p.sheriff_migrations)
        .add(p.centralized_migrations);
  }
  table.print(os);
  double worst_ratio = 0.0;
  for (const auto& p : sweep) {
    if (p.centralized_cost > 0.0) {
      worst_ratio = std::max(worst_ratio, p.sheriff_cost / p.centralized_cost);
    }
  }
  os << "\nworst sheriff/optimal cost ratio: " << common::format_fixed(worst_ratio, 3)
     << "\n";
  expect_matches_golden("fig11_fattree_cost_small.txt", os.str());
}
