// Fleet runner (DESIGN.md §12): the headline guarantee — a sweep's per-run
// outputs (metrics CSV bytes, checkpoint bytes, registry capture) are
// byte-identical for ANY worker count and either pool-ownership policy,
// and identical to direct serially-constructed engines that own their own
// substrate — plus the crash/resume contract (a killed sweep resumed from
// its manifest reproduces the uninterrupted sweep's JSONL byte for byte)
// and the cross-run quantile aggregation pinned against brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"
#include "fleet/fleet.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/checkpoint.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace fleet = sheriff::fleet;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace fault = sheriff::fault;
namespace snap = sheriff::snapshot;
namespace sc = sheriff::common;

namespace {

topo::Topology fleet_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;  // 8 racks, 24 hosts
  options.hosts_per_rack = 3;
  options.tor_agg_gbps = 1.0;
  return topo::build_fat_tree(options);
}

wl::DeploymentOptions fleet_deployment() {
  wl::DeploymentOptions options;
  options.vms_per_host = 2.5;
  options.placement = wl::PlacementPolicy::kSkewed;
  return options;  // seed is overridden per grid cell
}

fault::FaultPlan fleet_fault_plan(const topo::Topology& topology, std::size_t rounds) {
  fault::FaultOptions options;
  options.seed = 17;
  options.message_drop_probability = 0.15;
  fault::FaultPlan plan(options);
  plan.fail_link(static_cast<topo::LinkId>(7 % topology.link_count()), 2, rounds / 2);
  plan.fail_host(topology.rack(1).hosts[0], rounds / 2);
  plan.fail_shim(0, rounds / 4, 3 * rounds / 4);
  return plan;
}

constexpr std::size_t kGridRounds = 12;

/// The 32-run grid of the determinism pin: 4 scenarios (pristine sheriff,
/// faulted sheriff, k-median — the substrate-borrowing mode — and the
/// centralized baseline) × 8 seeds.
fleet::SweepGrid make_grid(const topo::Topology& topology, const fault::FaultPlan* plan) {
  fleet::SweepGrid grid;
  grid.seeds = {11, 12, 13, 14, 15, 16, 17, 18};

  fleet::ScenarioSpec sheriff;
  sheriff.name = "sheriff";
  sheriff.topology = &topology;
  sheriff.deployment = fleet_deployment();
  sheriff.rounds = kGridRounds;
  grid.scenarios.push_back(sheriff);

  fleet::ScenarioSpec faulted = sheriff;
  faulted.name = "sheriff_faulted";
  faulted.fault_plan = plan;
  grid.scenarios.push_back(faulted);

  fleet::ScenarioSpec kmedian = sheriff;
  kmedian.name = "kmedian";
  kmedian.config.mode = core::ManagerMode::kKMedian;
  grid.scenarios.push_back(kmedian);

  fleet::ScenarioSpec centralized = sheriff;
  centralized.name = "centralized";
  centralized.config.mode = core::ManagerMode::kCentralized;
  grid.scenarios.push_back(centralized);
  return grid;
}

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "sheriff_fleet_" + leaf;
}

/// Brute-force linear-interpolation quantile, written independently of
/// common::quantile so the aggregation test is a genuine cross-check.
double brute_quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

// --- worker-count / policy invariance and direct-engine parity ---------------

TEST(Fleet, WorkerCountAndPolicyInvarianceMatchesDirectEngines) {
  const topo::Topology topology = fleet_fat_tree();
  const fault::FaultPlan plan = fleet_fault_plan(topology, kGridRounds);
  const fleet::SweepGrid grid = make_grid(topology, &plan);
  ASSERT_EQ(grid.run_count(), 32u);

  fleet::FleetOptions base;
  base.keep_metrics_csv = true;

  // Reference: one worker, fleet-owned pool.
  base.workers = 1;
  const fleet::FleetReport reference = fleet::run_sweep(grid, base);
  ASSERT_EQ(reference.runs.size(), 32u);
  ASSERT_EQ(reference.executed, 32u);

  // Non-vacuity: the grid as a whole alerted and acted, and every run
  // produced a checkpoint and a registry capture.
  std::size_t alerts = 0;
  std::size_t actions = 0;
  for (const fleet::RunRecord& r : reference.runs) {
    ASSERT_TRUE(r.completed);
    ASSERT_NE(r.checkpoint_crc, 0u);
    ASSERT_FALSE(r.metrics.empty());
    alerts += r.summary.total_alerts;
    actions += r.summary.total_migrations + r.summary.total_reroutes;
  }
  ASSERT_GT(alerts, 0u);
  ASSERT_GT(actions, 0u);

  // Worker counts 2 and 8, plus the two-level pool policy: every per-run
  // byte must match the reference.
  std::vector<fleet::FleetOptions> variants;
  for (const std::size_t workers : {2u, 8u}) {
    fleet::FleetOptions v = base;
    v.workers = workers;
    variants.push_back(v);
  }
  {
    fleet::FleetOptions two_level = base;
    two_level.workers = 2;
    two_level.pool_policy = fleet::PoolPolicy::kTwoLevel;
    two_level.engine_threads = 2;
    variants.push_back(two_level);
  }
  for (const fleet::FleetOptions& v : variants) {
    const fleet::FleetReport report = fleet::run_sweep(grid, v);
    ASSERT_EQ(report.executed, 32u);
    for (std::size_t id = 0; id < 32; ++id) {
      const fleet::RunRecord& got = report.runs[id];
      const fleet::RunRecord& want = reference.runs[id];
      EXPECT_EQ(got.metrics_csv, want.metrics_csv)
          << "metrics CSV diverged: run " << id << " workers=" << v.workers
          << " two_level=" << (v.pool_policy == fleet::PoolPolicy::kTwoLevel);
      EXPECT_EQ(got.metrics_crc, want.metrics_crc) << "run " << id;
      EXPECT_EQ(got.checkpoint_crc, want.checkpoint_crc)
          << "checkpoint bytes diverged: run " << id << " workers=" << v.workers;
      EXPECT_EQ(got.metrics, want.metrics) << "registry capture diverged: run " << id;
      EXPECT_EQ(fleet::jsonl_line(got), fleet::jsonl_line(want)) << "run " << id;
    }
    EXPECT_EQ(report.jsonl(), reference.jsonl());
  }

  // Direct-engine parity: each grid cell run standalone — its own pool,
  // its own (owned, never borrowed) k-median substrate — reproduces the
  // fleet run byte for byte. This is what makes substrate borrowing an
  // optimization rather than a semantics change.
  sc::ThreadPool pool(2);
  for (std::size_t id = 0; id < grid.run_count(); ++id) {
    const fleet::ScenarioSpec& spec = grid.scenarios[id / grid.seeds.size()];
    wl::DeploymentOptions deploy = spec.deployment;
    deploy.seed = grid.seeds[id % grid.seeds.size()];
    core::EngineConfig config = spec.config;
    config.fault_plan = spec.fault_plan;
    config.observe = true;
    config.pool = &pool;
    core::DistributedEngine engine(topology, deploy, config);
    const std::vector<core::RoundMetrics> rounds = engine.run(spec.rounds);
    std::ostringstream csv;
    core::write_metrics_csv(csv, rounds);
    const std::string csv_bytes = csv.str();
    EXPECT_EQ(csv_bytes, reference.runs[id].metrics_csv) << "run " << id;
    const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(engine);
    EXPECT_EQ(snap::detail::crc32(checkpoint.data(), checkpoint.size()),
              reference.runs[id].checkpoint_crc)
        << "run " << id;
    ASSERT_NE(engine.observation_hub(), nullptr);
    EXPECT_EQ(fleet::capture_metrics(engine.observation_hub()->registry()),
              reference.runs[id].metrics)
        << "run " << id;
  }
}

// --- crash/resume ------------------------------------------------------------

TEST(Fleet, KilledSweepResumesIntoIdenticalJsonl) {
  const topo::Topology topology = fleet_fat_tree();
  fleet::SweepGrid grid = make_grid(topology, nullptr);
  grid.scenarios.resize(2);  // pristine + (plan-less) faulted spec: 2 × 4 = 8 runs
  grid.scenarios[1].fault_plan = nullptr;
  grid.seeds = {21, 22, 23, 24};
  ASSERT_EQ(grid.run_count(), 8u);

  // The uninterrupted sweep is the oracle.
  fleet::FleetOptions plain;
  plain.workers = 1;
  const fleet::FleetReport oracle = fleet::run_sweep(grid, plain);
  const std::string oracle_jsonl = oracle.jsonl();
  ASSERT_FALSE(oracle_jsonl.empty());

  const std::string manifest = temp_path("resume.manifest");
  const std::string jsonl_file = temp_path("resume.jsonl");
  std::remove(manifest.c_str());

  // "Kill" after 3 of 8 runs: a deterministic budget with one worker.
  fleet::FleetOptions first = plain;
  first.manifest_path = manifest;
  first.max_runs = 3;
  const fleet::FleetReport killed = fleet::run_sweep(grid, first);
  EXPECT_EQ(killed.executed, 3u);
  EXPECT_EQ(killed.skipped, 0u);
  EXPECT_EQ(killed.pending, 5u);

  // Resume: exactly the 5 missing runs execute, the 3 recorded ones are
  // replayed from the manifest, and the merged JSONL equals the oracle's.
  fleet::FleetOptions second = plain;
  second.manifest_path = manifest;
  second.resume = true;
  second.jsonl_path = jsonl_file;
  const fleet::FleetReport resumed = fleet::run_sweep(grid, second);
  EXPECT_EQ(resumed.executed, 5u);
  EXPECT_EQ(resumed.skipped, 3u);
  EXPECT_EQ(resumed.pending, 0u);
  std::size_t replayed = 0;
  for (const fleet::RunRecord& r : resumed.runs) {
    ASSERT_TRUE(r.completed);
    if (r.from_manifest) ++replayed;
  }
  EXPECT_EQ(replayed, 3u);
  EXPECT_EQ(resumed.jsonl(), oracle_jsonl);

  // The JSONL file on disk carries the same bytes.
  std::ifstream in(jsonl_file, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::stringstream file_bytes;
  file_bytes << in.rdbuf();
  EXPECT_EQ(file_bytes.str(), oracle_jsonl);

  // A third invocation is a no-op sweep: everything comes from the manifest.
  const fleet::FleetReport third = fleet::run_sweep(grid, second);
  EXPECT_EQ(third.executed, 0u);
  EXPECT_EQ(third.skipped, 8u);
  EXPECT_EQ(third.jsonl(), oracle_jsonl);

  std::remove(manifest.c_str());
  std::remove(jsonl_file.c_str());
}

TEST(Fleet, ManifestRejectsAForeignGrid) {
  const topo::Topology topology = fleet_fat_tree();
  fleet::SweepGrid grid = make_grid(topology, nullptr);
  grid.scenarios.resize(1);
  grid.seeds = {1, 2};

  const std::string manifest = temp_path("foreign.manifest");
  std::remove(manifest.c_str());
  fleet::FleetOptions options;
  options.workers = 1;
  options.manifest_path = manifest;
  (void)fleet::run_sweep(grid, options);

  fleet::SweepGrid other = grid;
  other.seeds = {3, 4};  // same run count, different identity
  EXPECT_NE(other.fingerprint(), grid.fingerprint());
  fleet::FleetOptions resume = options;
  resume.resume = true;
  EXPECT_THROW((void)fleet::run_sweep(other, resume), snap::SnapshotError);
  std::remove(manifest.c_str());
}

// --- manifest round trip ------------------------------------------------------

TEST(Fleet, ManifestRoundTripsRecordsByteExactly) {
  fleet::Manifest manifest;
  manifest.grid_fingerprint = 0xDEADBEEFCAFEF00DULL;
  manifest.run_count = 3;
  fleet::RunRecord record;
  record.run_id = 2;
  record.scenario = "quoted \"name\" with \\slash and \tcontrol";
  record.seed = 77;
  record.rounds = 9;
  record.metrics_crc = 0x12345678;
  record.checkpoint_crc = 0x9ABCDEF0;
  record.summary.rounds = 9;
  record.summary.total_alerts = 41;
  record.summary.total_migration_cost = 1.0 / 3.0;  // needs all 17 digits
  record.summary.mean_link_peak = 0.30000000000000004;
  record.metrics = {{"engine.migrations", 5.0, fleet::MetricKind::kCounter},
                    {"fair_share.sum", 2.5, fleet::MetricKind::kCounter},
                    {"round.stddev", 0.125, fleet::MetricKind::kGauge}};
  record.completed = true;
  manifest.completed.push_back(record);

  const std::string path = temp_path("roundtrip.manifest");
  fleet::save_manifest(path, manifest);
  const fleet::Manifest loaded = fleet::load_manifest(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.grid_fingerprint, manifest.grid_fingerprint);
  EXPECT_EQ(loaded.run_count, manifest.run_count);
  ASSERT_EQ(loaded.completed.size(), 1u);
  const fleet::RunRecord& got = loaded.completed.front();
  EXPECT_TRUE(got.from_manifest);
  EXPECT_EQ(got.scenario, record.scenario);
  EXPECT_EQ(got.metrics, record.metrics);
  // The decisive bit: the replayed record's JSONL line is byte-identical
  // to the executed record's.
  EXPECT_EQ(fleet::jsonl_line(got), fleet::jsonl_line(record));
  // And the escaping is real JSON escaping.
  EXPECT_NE(fleet::jsonl_line(record).find("\\\"name\\\""), std::string::npos);
  EXPECT_NE(fleet::jsonl_line(record).find("\\\\slash"), std::string::npos);
  EXPECT_NE(fleet::jsonl_line(record).find("\\u0009"), std::string::npos);
}

// --- cross-run quantile aggregation ------------------------------------------

TEST(Fleet, AggregateQuantilesMatchBruteForceOverFiftySeeds) {
  // 50 synthetic runs with LCG-generated registries: the aggregate's
  // p50/p95/p99 must equal an independent sort-and-interpolate
  // recomputation for every series, including ones only some runs report.
  constexpr std::size_t kRuns = 50;
  const std::vector<std::string> names = {"engine.migrations", "round.stddev",
                                          "queue.peak", "rare.metric"};
  std::uint64_t lcg = 0x243F6A8885A308D3ULL;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(lcg >> 11) / static_cast<double>(1ULL << 53);
  };

  fleet::MetricAggregate aggregate;
  std::map<std::string, std::vector<double>> expected;
  for (std::size_t run = 0; run < kRuns; ++run) {
    fleet::RunRecord record;
    record.run_id = run;
    record.completed = true;
    for (const std::string& name : names) {
      if (name == "rare.metric" && run % 7 != 0) continue;  // sparse series
      const double value = next() * 100.0;
      record.metrics.push_back({name, value, fleet::MetricKind::kGauge});
      expected[name].push_back(value);
    }
    aggregate.absorb(record);
  }
  ASSERT_EQ(aggregate.runs(), kRuns);

  for (const auto& [name, samples] : expected) {
    for (const double q : {0.50, 0.95, 0.99}) {
      EXPECT_DOUBLE_EQ(aggregate.quantile(name, q), brute_quantile(samples, q))
          << name << " q=" << q;
    }
    EXPECT_EQ(aggregate.samples(name), samples);
  }

  // merge_into publishes the same numbers as gauges.
  sheriff::obs::MetricRegistry registry;
  aggregate.merge_into(registry);
  ASSERT_NE(registry.find_counter("fleet.runs"), nullptr);
  EXPECT_EQ(registry.find_counter("fleet.runs")->value(), kRuns);
  for (const auto& [name, samples] : expected) {
    ASSERT_NE(registry.find_gauge(name + ".p95"), nullptr) << name;
    EXPECT_DOUBLE_EQ(registry.find_gauge(name + ".p50")->value(),
                     brute_quantile(samples, 0.50));
    EXPECT_DOUBLE_EQ(registry.find_gauge(name + ".p95")->value(),
                     brute_quantile(samples, 0.95));
    EXPECT_DOUBLE_EQ(registry.find_gauge(name + ".p99")->value(),
                     brute_quantile(samples, 0.99));
  }
  // A single-sample series is its own quantile (the degenerate input the
  // stats fix made well-defined).
  fleet::MetricAggregate lone;
  fleet::RunRecord single;
  single.metrics = {{"only.once", 42.0, fleet::MetricKind::kGauge}};
  lone.absorb(single);
  EXPECT_DOUBLE_EQ(lone.quantile("only.once", 0.99), 42.0);
  EXPECT_DOUBLE_EQ(lone.quantile("never.seen", 0.5), 0.0);
}

// --- small laws --------------------------------------------------------------

TEST(Fleet, EmptyGridAndValidationLaws) {
  const topo::Topology topology = fleet_fat_tree();
  fleet::SweepGrid empty;
  const fleet::FleetReport report = fleet::run_sweep(empty, {});
  EXPECT_TRUE(report.runs.empty());
  EXPECT_EQ(report.executed, 0u);
  EXPECT_EQ(report.jsonl(), "");

  fleet::SweepGrid bad;
  bad.scenarios.push_back({});  // no topology
  bad.seeds = {1};
  EXPECT_THROW((void)fleet::run_sweep(bad, {}), sheriff::common::RequirementError);

  fleet::SweepGrid ok = make_grid(topology, nullptr);
  fleet::FleetOptions resume_without_manifest;
  resume_without_manifest.resume = true;
  EXPECT_THROW((void)fleet::run_sweep(ok, resume_without_manifest),
               sheriff::common::RequirementError);
}
