// Issue-scale resume differentials (slow suite): the Sec. VI-B evaluation
// fabrics at full round counts — run 200 rounds vs 100 → save → load into
// a fresh engine at a different pool size → 100 more. Byte-identical
// metrics CSV and placement, pristine and under an active fault plan.
// The tier-1 counterpart (test_snapshot.cpp) runs the same differential
// on small fabrics.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"
#include "snapshot/checkpoint.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace fault = sheriff::fault;
namespace sc = sheriff::common;

namespace {

constexpr std::size_t kHalfRounds = 100;

std::string metrics_csv(const std::vector<core::RoundMetrics>& rounds) {
  std::ostringstream os;
  core::write_metrics_csv(os, rounds);
  return os.str();
}

std::vector<std::uint32_t> placement(const core::DistributedEngine& engine) {
  std::vector<std::uint32_t> hosts;
  for (wl::VmId vm = 0; vm < engine.deployment().vm_count(); ++vm) {
    hosts.push_back(engine.deployment().vm(vm).host);
  }
  return hosts;
}

void expect_resume_equivalence(const topo::Topology& topology, bool faulted) {
  wl::DeploymentOptions deploy;
  deploy.seed = 2015;
  deploy.vms_per_host = 2.0;
  deploy.placement = wl::PlacementPolicy::kSkewed;

  fault::FaultOptions fault_options;
  fault_options.seed = 41;
  fault_options.message_drop_probability = 0.1;
  fault::FaultPlan plan(fault_options);
  if (faulted) {
    // Explicit link ids so the plan shape also fits BCube (no
    // switch-to-switch links there for random_link_flaps to pick).
    const auto link = [&](std::size_t nth) {
      return static_cast<sheriff::topo::LinkId>(nth % topology.link_count());
    };
    plan.fail_link(link(19), 5, 15);
    plan.fail_link(link(101), kHalfRounds / 2, kHalfRounds / 2 + 10);
    plan.fail_link(link(211), kHalfRounds - 2, kHalfRounds + 8);
    plan.fail_link(link(307), kHalfRounds + 20, 2 * kHalfRounds - 10);
    plan.fail_host(topology.rack(2).hosts[0], kHalfRounds / 2);
    plan.fail_shim(1, kHalfRounds - 5, kHalfRounds + 5);
  }

  sc::ThreadPool pool1(1);
  sc::ThreadPool pool8(8);
  const auto config = [&](sc::ThreadPool* pool) {
    core::EngineConfig c;
    c.observe = true;
    c.fault_plan = faulted ? &plan : nullptr;
    c.pool = pool;
    return c;
  };

  core::DistributedEngine continuous(topology, deploy, config(&pool1));
  std::vector<core::RoundMetrics> continuous_tail;
  for (std::size_t r = 0; r < 2 * kHalfRounds; ++r) {
    core::RoundMetrics m = continuous.run_round();
    if (r >= kHalfRounds) continuous_tail.push_back(m);
  }

  core::DistributedEngine first_half(topology, deploy, config(&pool1));
  for (std::size_t r = 0; r < kHalfRounds; ++r) (void)first_half.run_round();
  const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(first_half);

  core::DistributedEngine resumed(topology, deploy, config(&pool8));
  core::Checkpoint::deserialize(resumed, checkpoint);
  std::vector<core::RoundMetrics> resumed_tail;
  for (std::size_t r = 0; r < kHalfRounds; ++r) resumed_tail.push_back(resumed.run_round());

  EXPECT_EQ(metrics_csv(continuous_tail), metrics_csv(resumed_tail));
  EXPECT_EQ(placement(continuous), placement(resumed));
}

topo::Topology evaluation_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 16;
  options.hosts_per_rack = 4;
  options.tor_agg_gbps = 1.0;
  return topo::build_fat_tree(options);
}

topo::Topology evaluation_bcube() {
  topo::BCubeOptions options;
  options.ports = 4;
  options.levels = 2;
  return topo::build_bcube(options);
}

}  // namespace

TEST(SnapshotScale, FatTreeK16Pristine) { expect_resume_equivalence(evaluation_fat_tree(), false); }

TEST(SnapshotScale, FatTreeK16Faulted) { expect_resume_equivalence(evaluation_fat_tree(), true); }

TEST(SnapshotScale, BCube42Pristine) { expect_resume_equivalence(evaluation_bcube(), false); }

TEST(SnapshotScale, BCube42Faulted) { expect_resume_equivalence(evaluation_bcube(), true); }
