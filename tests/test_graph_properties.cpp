// Randomized property tests for the combinatorial kernels (S2 of the
// observability sweep): the Hungarian assignment solver against the
// permutation brute force that ships with it, and the knapsack DP against
// a from-first-principles subset enumeration. 50 seeds each, instances
// small enough (<= 8x8) that the exhaustive reference is exact. Plus the
// uniform-weight Dijkstra fast path against the general heap loop.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "graph/dijkstra.hpp"
#include "graph/knapsack.hpp"
#include "graph/matching.hpp"

namespace graph = sheriff::graph;
namespace sc = sheriff::common;

namespace {

constexpr int kSeeds = 50;

// --- exhaustive knapsack reference -----------------------------------------
// Mirrors the documented contract of min_value_knapsack: among subsets with
// total capacity <= budget, maximize total capacity; among those, minimize
// total value. Subset enumeration is exact for <= 8 items.
struct BruteKnapsack {
  std::size_t capacity = 0;
  double value = 0.0;
};

BruteKnapsack knapsack_brute_force(const std::vector<graph::KnapsackItem>& items,
                                   std::size_t budget) {
  BruteKnapsack best;  // the empty subset is always feasible
  best.value = 0.0;
  const std::size_t n = items.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::size_t cap = 0;
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        cap += items[i].capacity;
        value += items[i].value;
      }
    }
    if (cap > budget) continue;
    if (cap > best.capacity || (cap == best.capacity && value < best.value)) {
      best.capacity = cap;
      best.value = value;
    }
  }
  return best;
}

}  // namespace

// --- Hungarian vs permutation brute force ----------------------------------

TEST(MatchingProperties, HungarianMatchesBruteForceOnRandomInstances) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    sc::Pcg32 rng(static_cast<std::uint64_t>(seed), 1);
    const std::size_t rows = 1 + rng.next_below(8);
    const std::size_t cols = rows + rng.next_below(static_cast<std::uint32_t>(9 - rows));
    graph::AssignmentProblem problem(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        // ~15% forbidden pairs; costs in [0, 10)
        if (rng.next_below(100) < 15) {
          problem.forbid(r, c);
        } else {
          problem.set_cost(r, c, rng.next_below(10000) / 1000.0);
        }
      }
    }

    const auto fast = graph::solve_assignment(problem);
    const auto brute = graph::solve_assignment_brute_force(problem);

    // Optimality is a pair: match as many rows as possible, then minimize
    // total cost. The exact assignment may differ on ties.
    EXPECT_EQ(fast.matched_count, brute.matched_count) << "seed " << seed;
    EXPECT_NEAR(fast.total_cost, brute.total_cost, 1e-9) << "seed " << seed;

    // The reported assignment must be internally consistent: valid distinct
    // columns, no forbidden pairings, and total_cost = sum of used entries.
    std::vector<bool> used(cols, false);
    double recomputed = 0.0;
    std::size_t matched = 0;
    ASSERT_EQ(fast.assignment.size(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t c = fast.assignment[r];
      if (c == graph::AssignmentResult::kUnassigned) continue;
      ASSERT_LT(c, cols) << "seed " << seed;
      EXPECT_FALSE(used[c]) << "column assigned twice, seed " << seed;
      used[c] = true;
      EXPECT_LT(problem.cost(r, c), graph::AssignmentProblem::kForbidden) << "seed " << seed;
      recomputed += problem.cost(r, c);
      ++matched;
    }
    EXPECT_EQ(matched, fast.matched_count) << "seed " << seed;
    EXPECT_NEAR(recomputed, fast.total_cost, 1e-9) << "seed " << seed;
  }
}

TEST(MatchingProperties, AllForbiddenMeansNothingMatched) {
  graph::AssignmentProblem problem(3, 4);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) problem.forbid(r, c);
  }
  const auto fast = graph::solve_assignment(problem);
  const auto brute = graph::solve_assignment_brute_force(problem);
  EXPECT_EQ(fast.matched_count, 0u);
  EXPECT_EQ(brute.matched_count, 0u);
  EXPECT_DOUBLE_EQ(fast.total_cost, 0.0);
}

// --- knapsack DP vs subset enumeration -------------------------------------

TEST(KnapsackProperties, DpMatchesSubsetEnumerationOnRandomInstances) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    sc::Pcg32 rng(static_cast<std::uint64_t>(seed), 2);
    const std::size_t n = 1 + rng.next_below(8);
    std::vector<graph::KnapsackItem> items(n);
    for (auto& item : items) {
      item.capacity = rng.next_below(20);  // zero-capacity items allowed
      item.value = rng.next_below(1000) / 100.0;
    }
    const std::size_t budget = rng.next_below(60);

    const auto dp = graph::min_value_knapsack(items, budget);
    const auto brute = knapsack_brute_force(items, budget);

    EXPECT_LE(dp.total_capacity, budget) << "seed " << seed;
    EXPECT_EQ(dp.total_capacity, brute.capacity) << "seed " << seed;
    EXPECT_NEAR(dp.total_value, brute.value, 1e-9) << "seed " << seed;

    // The chosen set must recompute to the reported totals, with valid
    // distinct indices.
    std::vector<bool> picked(n, false);
    std::size_t cap = 0;
    double value = 0.0;
    for (const std::size_t i : dp.chosen) {
      ASSERT_LT(i, n) << "seed " << seed;
      EXPECT_FALSE(picked[i]) << "item chosen twice, seed " << seed;
      picked[i] = true;
      cap += items[i].capacity;
      value += items[i].value;
    }
    EXPECT_EQ(cap, dp.total_capacity) << "seed " << seed;
    EXPECT_NEAR(value, dp.total_value, 1e-9) << "seed " << seed;
  }
}

TEST(KnapsackProperties, ZeroBudgetSelectsNothing) {
  const std::vector<graph::KnapsackItem> items{{3, 1.0}, {0, 2.0}, {5, 0.5}};
  const auto dp = graph::min_value_knapsack(items, 0);
  const auto brute = knapsack_brute_force(items, 0);
  EXPECT_EQ(dp.total_capacity, 0u);
  EXPECT_EQ(brute.capacity, 0u);
  EXPECT_TRUE(dp.chosen.empty());
  EXPECT_DOUBLE_EQ(dp.total_value, 0.0);
  EXPECT_DOUBLE_EQ(brute.value, 0.0);
}

// --- uniform-weight Dijkstra fast path vs the heap loop ---------------------
// dijkstra_into takes a level-synchronous fast path when every edge weight
// is identical (uniform_weights()). The claim it must uphold: distances,
// ECMP parent SETS, and parent ORDER are all bit-identical to the general
// heap loop — the router's salt-indexed ECMP walks depend on parent order,
// not just membership. Forcing the heap path on the same fabric is done by
// appending a disconnected two-vertex component with a different edge
// weight: uniformity is a global flag, but the extra component cannot
// influence the main component's tree.

TEST(DijkstraProperties, UniformFastPathMatchesHeapLoopBitwise) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    sc::Pcg32 rng(static_cast<std::uint64_t>(seed), 3);
    const std::size_t n = 6 + rng.next_below(40);
    const double w = (seed % 2 == 0) ? 1.0 : 0.25;
    graph::Graph uniform(n);
    graph::Graph mixed(n);
    // Random connected-ish multigraph: a spine plus random extra edges
    // (parallel edges allowed, as in the paper's rack multigraph T).
    for (graph::Vertex v = 1; v < n; ++v) {
      const graph::Vertex u = rng.next_below(v);
      uniform.add_edge(u, v, w);
      mixed.add_edge(u, v, w);
    }
    const std::size_t extra = rng.next_below(static_cast<std::uint32_t>(2 * n));
    for (std::size_t i = 0; i < extra; ++i) {
      const graph::Vertex u = rng.next_below(static_cast<std::uint32_t>(n));
      const graph::Vertex v = rng.next_below(static_cast<std::uint32_t>(n));
      if (u == v) continue;
      uniform.add_edge(u, v, w);
      mixed.add_edge(u, v, w);
    }
    // De-uniform the mixed copy without touching the main component.
    const graph::Vertex a = mixed.add_vertex();
    const graph::Vertex b = mixed.add_vertex();
    mixed.add_edge(a, b, w * 0.5);
    ASSERT_TRUE(uniform.uniform_weights());
    ASSERT_FALSE(mixed.uniform_weights());

    // A random blocked mask exercises the FLOWREROUTE path shape too.
    std::vector<bool> blocked_uniform(n, false);
    for (std::size_t v = 1; v < n; ++v) blocked_uniform[v] = rng.next_below(10) == 0;
    std::vector<bool> blocked_mixed(blocked_uniform);
    blocked_mixed.resize(n + 2, false);

    const graph::Vertex source = rng.next_below(static_cast<std::uint32_t>(n));
    for (const bool use_mask : {false, true}) {
      const auto fast =
          graph::dijkstra(uniform, source, use_mask ? blocked_uniform : std::vector<bool>{});
      const auto heap =
          graph::dijkstra(mixed, source, use_mask ? blocked_mixed : std::vector<bool>{});
      for (graph::Vertex v = 0; v < n; ++v) {
        EXPECT_EQ(fast.distance[v], heap.distance[v]) << "seed " << seed << " v " << v;
        EXPECT_EQ(fast.parents[v], heap.parents[v]) << "seed " << seed << " v " << v;
      }
    }
  }
}
