// Unit tests for the observability substrate (src/obs/): the per-shim
// event trace rings, the metric registry, the timing utilities that
// replaced common::Stopwatch, the JSONL/CSV export surfaces, and the
// engine-published decision-kernel counters (cost.evaluated/pruned/
// surface_builds) with the pruning-losslessness identity.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "core/engine.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/timing.hpp"
#include "obs/trace.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace obs = sheriff::obs;
namespace sc = sheriff::common;
namespace core = sheriff::core;
namespace topo = sheriff::topo;
namespace wl = sheriff::wl;

// --- EventTrace ------------------------------------------------------------

TEST(EventTrace, StampsRoundShimAndMonotonicSeq) {
  obs::EventTrace trace(4, 16);
  trace.set_round(7);
  trace.emit(2, obs::EventType::kAlertRaised, 10, 0, 1.5);
  trace.set_round(8);
  trace.emit(0, obs::EventType::kRerouteChosen, 3, 0, 2.0);
  trace.emit(obs::EventTrace::kEngine, obs::EventType::kShimTakeover, 1, 2);

  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[0].round, 7u);
  EXPECT_EQ(records[0].shim, 2u);
  EXPECT_EQ(records[0].type, obs::EventType::kAlertRaised);
  EXPECT_EQ(records[0].a, 10u);
  EXPECT_DOUBLE_EQ(records[0].value, 1.5);
  EXPECT_EQ(records[1].round, 8u);
  EXPECT_EQ(records[2].shim, obs::EventTrace::kEngine);
  // snapshot is totally ordered by seq
  for (std::size_t i = 1; i < records.size(); ++i) EXPECT_LT(records[i - 1].seq, records[i].seq);
}

TEST(EventTrace, RingWrapsOverwritingOldest) {
  obs::EventTrace trace(1, 4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    trace.emit(0, obs::EventType::kAlertRaised, i);
  }
  EXPECT_EQ(trace.total_emitted(), 10u);
  EXPECT_EQ(trace.total_dropped(), 6u);
  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 4u);  // bounded by capacity
  // The four newest survive: a = 6, 7, 8, 9 in seq order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, 6u + i);
    EXPECT_EQ(records[i].seq, 6u + i);
  }
}

TEST(EventTrace, ZeroCapacityClampsToOne) {
  obs::EventTrace trace(1, 0);
  EXPECT_EQ(trace.capacity_per_shim(), 1u);
  trace.emit(0, obs::EventType::kAlertRaised, 1);
  trace.emit(0, obs::EventType::kAlertRaised, 2);
  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].a, 2u);
}

TEST(EventTrace, ClearResetsRingsButNotRound) {
  obs::EventTrace trace(2, 8);
  trace.set_round(3);
  trace.emit(0, obs::EventType::kFaultInjected);
  trace.emit(1, obs::EventType::kFaultInjected);
  trace.clear();
  EXPECT_EQ(trace.total_emitted(), 0u);
  EXPECT_EQ(trace.total_dropped(), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
  EXPECT_EQ(trace.round(), 3u);
}

TEST(EventTrace, ConcurrentEmittersOnDistinctShimsGetUniqueSeq) {
  constexpr std::size_t kShims = 8;
  constexpr std::size_t kPerShim = 500;
  obs::EventTrace trace(kShims, kPerShim);
  std::vector<std::thread> threads;
  threads.reserve(kShims);
  for (std::uint32_t s = 0; s < kShims; ++s) {
    threads.emplace_back([&trace, s] {
      for (std::size_t i = 0; i < kPerShim; ++i) {
        trace.emit(s, obs::EventType::kProtocolMsgSent, s, 0, static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(trace.total_emitted(), kShims * kPerShim);
  EXPECT_EQ(trace.total_dropped(), 0u);
  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), kShims * kPerShim);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].seq, records[i].seq);  // unique & sorted
  }
}

TEST(EventTrace, ToStringCoversAllTypesDistinctly) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    names.emplace_back(obs::to_string(static_cast<obs::EventType>(i)));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// --- MetricRegistry --------------------------------------------------------

TEST(MetricRegistry, FindOrCreateReturnsStableReferences) {
  obs::MetricRegistry registry;
  obs::Counter& c1 = registry.counter("engine.migrations");
  c1.add(3);
  obs::Counter& c2 = registry.counter("engine.migrations");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  obs::Gauge& g = registry.gauge("engine.rounds");
  g.set(12.5);
  EXPECT_DOUBLE_EQ(registry.gauge("engine.rounds").value(), 12.5);

  EXPECT_EQ(registry.find_counter("engine.migrations"), &c1);
  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_gauge("nope"), nullptr);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistry, HistogramBucketsBoundariesAndOverflow) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.histogram("x.h", {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1      -> bucket 0
  h.observe(1.0);   // == bound  -> bucket 0 (inclusive upper bound)
  h.observe(1.5);   // (1, 2]    -> bucket 1
  h.observe(4.0);   // (2, 4]    -> bucket 2
  h.observe(100.0); // > 4       -> overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  // bounds consulted only on first registration
  obs::Histogram& again = registry.histogram("x.h", {999.0});
  EXPECT_EQ(&again, &h);
  ASSERT_EQ(again.bounds().size(), 3u);
}

TEST(MetricRegistry, SnapshotIsNameSortedAndFlattensHistograms) {
  obs::MetricRegistry registry;
  registry.gauge("b.gauge").set(2.0);
  registry.counter("a.counter").add(5);
  obs::Histogram& h = registry.histogram("c.hist", {1.0});
  h.observe(0.5);
  h.observe(3.0);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].first, "a.counter");
  EXPECT_DOUBLE_EQ(snap[0].second, 5.0);
  EXPECT_EQ(snap[1].first, "b.gauge");
  EXPECT_EQ(snap[2].first, "c.hist.count");
  EXPECT_DOUBLE_EQ(snap[2].second, 2.0);
  EXPECT_EQ(snap[3].first, "c.hist.sum");
  EXPECT_DOUBLE_EQ(snap[3].second, 3.5);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST(MetricRegistry, CountersAreSafeUnderParallelAdds) {
  obs::MetricRegistry registry;
  obs::Counter& c = registry.counter("parallel.adds");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// --- timing (obs::Stopwatch replaced common::Stopwatch) --------------------

TEST(Stopwatch, MeasuresNonNegative) {
  obs::Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  EXPECT_GE(sw.elapsed_millis(), 0.0);
  EXPECT_GE(sw.elapsed_ns(), 0u);
  const double lap = sw.lap_seconds();
  EXPECT_GE(lap, 0.0);
  sw.restart();
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

TEST(ScopedTimer, AccumulatesAcrossScopes) {
  std::uint64_t sink = 0;
  {
    obs::ScopedTimer timer(sink);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  const std::uint64_t first = sink;
  {
    obs::ScopedTimer timer(sink);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GE(sink, first);  // second scope adds onto the first
}

// --- JSONL export / import -------------------------------------------------

namespace {

obs::TraceRecord make_record(std::uint64_t seq, std::uint32_t round, std::uint32_t shim,
                             obs::EventType type, std::uint32_t a, std::uint32_t b,
                             double value) {
  obs::TraceRecord r;
  r.seq = seq;
  r.round = round;
  r.shim = shim;
  r.type = type;
  r.a = a;
  r.b = b;
  r.value = value;
  return r;
}

}  // namespace

TEST(TraceJsonl, RoundTripIsExactIncludingAwkwardDoubles) {
  std::vector<obs::TraceRecord> records;
  records.push_back(make_record(0, 1, 2, obs::EventType::kAlertRaised, 3, 4, 0.1));
  records.push_back(make_record(1, 1, obs::EventTrace::kEngine, obs::EventType::kShimTakeover,
                                5, obs::EventTrace::kEngine, -3.5));
  records.push_back(
      make_record(2, 7, 0, obs::EventType::kMigrationPlanned, 10, 11, 1e-17));
  records.push_back(make_record(3, 7, 0, obs::EventType::kInvariantViolation, 1, 0,
                                123456789.000000123));
  records.push_back(make_record(4, 8, 3, obs::EventType::kProtocolMsgDropped, 9, 0,
                                std::numeric_limits<double>::max()));
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    records.push_back(make_record(5 + i, 9, 1, static_cast<obs::EventType>(i), 0, 0, 0.0));
  }

  std::stringstream jsonl;
  obs::write_trace_jsonl(records, jsonl);
  const auto reparsed = obs::read_trace_jsonl(jsonl);
  EXPECT_EQ(reparsed, records);  // TraceRecord == is field-exact
}

TEST(TraceJsonl, OneObjectPerLine) {
  std::vector<obs::TraceRecord> records{
      make_record(0, 0, 0, obs::EventType::kAlertRaised, 0, 0, 1.0),
      make_record(1, 0, 1, obs::EventType::kRerouteChosen, 0, 0, 2.0)};
  std::stringstream jsonl;
  obs::write_trace_jsonl(records, jsonl);
  const std::string text = jsonl.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')), 2u);
  EXPECT_NE(text.find("\"type\":\"AlertRaised\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"RerouteChosen\""), std::string::npos);
}

TEST(TraceJsonl, MalformedInputThrows) {
  {
    std::stringstream bad("{\"seq\":0,\"round\":0}\n");  // missing fields
    EXPECT_THROW(obs::read_trace_jsonl(bad), sc::RequirementError);
  }
  {
    std::stringstream bad(
        "{\"seq\":0,\"round\":0,\"shim\":0,\"type\":\"NoSuchEvent\",\"a\":0,\"b\":0,"
        "\"value\":0}\n");
    EXPECT_THROW(obs::read_trace_jsonl(bad), sc::RequirementError);
  }
}

TEST(TraceJsonl, EmptyStreamParsesToEmpty) {
  std::stringstream empty;
  EXPECT_TRUE(obs::read_trace_jsonl(empty).empty());
}

// --- summarize_trace / metrics_table ---------------------------------------

TEST(TraceSummary, CountsPerRoundPerTypeWithTotals) {
  std::vector<obs::TraceRecord> records;
  records.push_back(make_record(0, 0, 0, obs::EventType::kAlertRaised, 0, 0, 0));
  records.push_back(make_record(1, 0, 1, obs::EventType::kAlertRaised, 0, 0, 0));
  records.push_back(make_record(2, 0, 0, obs::EventType::kRerouteChosen, 0, 0, 0));
  records.push_back(make_record(3, 2, 0, obs::EventType::kMigrationCompleted, 0, 0, 0));

  const auto table = obs::summarize_trace(records);
  // one row per distinct round + the totals row
  ASSERT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.cell(0, 0), "0");
  EXPECT_EQ(table.cell(1, 0), "2");
  EXPECT_EQ(table.cell(2, 0), "all");

  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("AlertRaised"), std::string::npos);
}

TEST(MetricsTable, RendersSnapshot) {
  obs::MetricRegistry registry;
  registry.counter("a.one").add(1);
  registry.gauge("b.two").set(2.0);
  const auto table = obs::metrics_table(registry);
  ASSERT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cell(0, 0), "a.one");
  EXPECT_EQ(table.cell(1, 0), "b.two");
}

// --- decision-kernel counters (engine -> registry) --------------------------

namespace {

struct CostCounterTotals {
  std::uint64_t evaluated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t surface_builds = 0;
};

CostCounterTotals run_cost_counter_engine(bool pruning) {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 3;
  options.tor_agg_gbps = 1.0;
  const topo::Topology topology = topo::build_fat_tree(options);
  wl::DeploymentOptions deploy;
  deploy.seed = 23;
  deploy.vms_per_host = 2.5;
  deploy.placement = wl::PlacementPolicy::kSkewed;

  core::EngineConfig config;
  config.observe = true;
  config.cost_pruning = pruning;
  core::DistributedEngine engine(topology, deploy, config);
  for (std::size_t r = 0; r < 30; ++r) (void)engine.run_round();

  const obs::MetricRegistry& registry = engine.observation_hub()->registry();
  CostCounterTotals totals;
  const obs::Counter* evaluated = registry.find_counter("cost.evaluated");
  const obs::Counter* pruned = registry.find_counter("cost.pruned");
  const obs::Counter* builds = registry.find_counter("cost.surface_builds");
  EXPECT_NE(evaluated, nullptr);
  EXPECT_NE(pruned, nullptr);
  EXPECT_NE(builds, nullptr);
  if (evaluated != nullptr) totals.evaluated = evaluated->value();
  if (pruned != nullptr) totals.pruned = pruned->value();
  if (builds != nullptr) totals.surface_builds = builds->value();
  return totals;
}

}  // namespace

TEST(CostKernelCounters, PublishedPerRoundAndPruningIsProvablyLossless) {
  const CostCounterTotals off = run_cost_counter_engine(false);
  const CostCounterTotals on = run_cost_counter_engine(true);

  // The engine publishes per-round deltas of all three counters; a run
  // that alerts and migrates must have evaluated Eq. (1) and snapshotted
  // the surface (once per round with bandwidth state installed).
  EXPECT_GT(off.evaluated, 0u);
  EXPECT_GT(on.evaluated, 0u);
  EXPECT_GT(on.surface_builds, 0u);
  EXPECT_EQ(on.surface_builds, off.surface_builds);

  // Losslessness, end to end: pruning only re-labels would-be evaluations
  // as pruned — it never shrinks the scanned candidate set. With pruning
  // off, nothing may be counted as pruned.
  EXPECT_EQ(off.pruned, 0u);
  EXPECT_GT(on.pruned, 0u);  // the bound must actually fire on this fabric
  EXPECT_EQ(on.evaluated + on.pruned, off.evaluated);
}
