// End-to-end engine tests: alert collection through the shims, Alg. 1
// dispatch, and the round loop's global invariants (capacity safety,
// balance improvement, determinism, sheriff-vs-centralized search space).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/require.hpp"
#include "core/engine.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;

namespace {

const topo::Topology& fat_tree() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::DeploymentOptions deployment_options(std::uint64_t seed = 42) {
  wl::DeploymentOptions options;
  options.seed = seed;
  options.vms_per_host = 3.0;
  return options;
}

core::EngineConfig engine_config() {
  core::EngineConfig config;
  config.parallel_collect = false;  // keep unit tests single-threaded
  return config;
}

}  // namespace

TEST(Engine, RoundsRunAndCountersAreConsistent) {
  core::DistributedEngine engine(fat_tree(), deployment_options(), engine_config());
  const auto metrics = engine.run(6);
  ASSERT_EQ(metrics.size(), 6u);
  EXPECT_EQ(engine.rounds_run(), 6u);
  for (std::size_t r = 0; r < metrics.size(); ++r) {
    EXPECT_EQ(metrics[r].round, r);
    EXPECT_GE(metrics[r].workload_stddev_before, 0.0);
    EXPECT_GE(metrics[r].workload_stddev_after, 0.0);
    EXPECT_LE(metrics[r].migrations, metrics[r].migration_requests);
    EXPECT_GE(metrics[r].max_link_utilization, 0.0);
    EXPECT_LE(metrics[r].max_link_utilization, 1.0 + 1e-9);
  }
}

TEST(Engine, HostCapacityNeverExceeded) {
  core::DistributedEngine engine(fat_tree(), deployment_options(1), engine_config());
  engine.run(8);
  const auto& d = engine.deployment();
  for (const auto& node : fat_tree().nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    EXPECT_LE(d.host_used_capacity(node.id), d.host_capacity());
  }
}

TEST(Engine, DependencyConflictsPreservedAfterMigrations) {
  core::DistributedEngine engine(fat_tree(), deployment_options(2), engine_config());
  engine.run(8);
  const auto& d = engine.deployment();
  for (wl::VmId a = 0; a < d.vm_count(); ++a) {
    for (wl::VmId b : d.dependencies().neighbors(a)) {
      EXPECT_NE(d.vm(a).host, d.vm(b).host);
    }
  }
}

TEST(Engine, MigrationsActuallyHappenUnderSkew) {
  core::DistributedEngine engine(fat_tree(), deployment_options(3), engine_config());
  const auto metrics = engine.run(10);
  std::size_t total_migrations = 0;
  for (const auto& m : metrics) total_migrations += m.migrations;
  EXPECT_GT(total_migrations, 0u);
}

TEST(Engine, BalanceImprovesOverRounds) {
  core::DistributedEngine engine(fat_tree(), deployment_options(4), engine_config());
  const auto metrics = engine.run(12);
  // Average stddev over the last three rounds must beat the first round's
  // (the workload is stochastic, so compare smoothed values).
  const double early = metrics.front().workload_stddev_before;
  double late = 0.0;
  for (std::size_t i = metrics.size() - 3; i < metrics.size(); ++i) {
    late += metrics[i].workload_stddev_after;
  }
  late /= 3.0;
  EXPECT_LT(late, early);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  core::DistributedEngine a(fat_tree(), deployment_options(5), engine_config());
  core::DistributedEngine b(fat_tree(), deployment_options(5), engine_config());
  const auto ma = a.run(5);
  const auto mb = b.run(5);
  for (std::size_t r = 0; r < ma.size(); ++r) {
    EXPECT_EQ(ma[r].migrations, mb[r].migrations);
    EXPECT_DOUBLE_EQ(ma[r].migration_cost, mb[r].migration_cost);
    EXPECT_EQ(ma[r].search_space, mb[r].search_space);
    EXPECT_DOUBLE_EQ(ma[r].workload_stddev_after, mb[r].workload_stddev_after);
  }
}

TEST(Engine, ParallelCollectMatchesSerial) {
  auto parallel_config = engine_config();
  parallel_config.parallel_collect = true;
  core::DistributedEngine serial(fat_tree(), deployment_options(6), engine_config());
  core::DistributedEngine parallel(fat_tree(), deployment_options(6), parallel_config);
  const auto ms = serial.run(4);
  const auto mp = parallel.run(4);
  for (std::size_t r = 0; r < ms.size(); ++r) {
    EXPECT_EQ(ms[r].migrations, mp[r].migrations);
    EXPECT_DOUBLE_EQ(ms[r].migration_cost, mp[r].migration_cost);
    EXPECT_DOUBLE_EQ(ms[r].workload_stddev_after, mp[r].workload_stddev_after);
  }
}

TEST(Engine, CentralizedModeSearchesMoreAndCostsLessPerMove) {
  auto sheriff_config = engine_config();
  auto central_config = engine_config();
  central_config.mode = core::ManagerMode::kCentralized;

  core::DistributedEngine sheriff(fat_tree(), deployment_options(7), sheriff_config);
  core::DistributedEngine central(fat_tree(), deployment_options(7), central_config);
  const auto ms = sheriff.run(8);
  const auto mc = central.run(8);

  std::size_t sheriff_space = 0;
  std::size_t central_space = 0;
  for (const auto& m : ms) sheriff_space += m.search_space;
  for (const auto& m : mc) central_space += m.search_space;
  // The global manager examines far more candidate pairs (Fig. 12/14).
  EXPECT_GT(central_space, 2 * sheriff_space);
}

TEST(Engine, FlowsFollowMigratedVms) {
  core::DistributedEngine engine(fat_tree(), deployment_options(8), engine_config());
  engine.run(8);
  const auto& d = engine.deployment();
  // Every routed flow starts at its owner VM's current host.
  for (const auto& flow : engine.flows()) {
    if (!flow.routed()) continue;
    const auto& path = flow.path;
    EXPECT_EQ(path.front(), flow.src_host);
    EXPECT_EQ(path.back(), flow.dst_host);
    EXPECT_EQ(d.topology().node(flow.src_host).kind, topo::NodeKind::kHost);
  }
}

TEST(Engine, EnsemblePredictorModeRunsOnTinyDeployment) {
  // Keep it tiny: the ensemble refits ARIMA+NARNET per VM.
  topo::FatTreeOptions topt;
  topt.pods = 2;
  topt.hosts_per_rack = 1;
  const auto tiny = topo::build_fat_tree(topt);
  auto dopt = deployment_options(9);
  dopt.vms_per_host = 2.0;
  auto config = engine_config();
  config.predictor = core::PredictorKind::kEnsemble;
  core::DistributedEngine engine(tiny, dopt, config);
  const auto metrics = engine.run(3);
  EXPECT_EQ(metrics.size(), 3u);
}

TEST(Engine, WorksOnBCube) {
  topo::BCubeOptions options;
  options.ports = 4;
  options.levels = 1;
  const auto t = topo::build_bcube(options);
  core::DistributedEngine engine(t, deployment_options(10), engine_config());
  const auto metrics = engine.run(6);
  EXPECT_EQ(metrics.size(), 6u);
  const auto& d = engine.deployment();
  for (const auto& node : t.nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    EXPECT_LE(d.host_used_capacity(node.id), d.host_capacity());
  }
}

class EngineProperties : public ::testing::TestWithParam<int> {};

TEST_P(EngineProperties, InvariantsAcrossSeeds) {
  auto deploy = deployment_options(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  deploy.vms_per_host = 2.0 + (GetParam() % 3);
  auto config = engine_config();
  config.flow_demand_scale_gbps = 0.3 + 0.2 * (GetParam() % 4);
  core::DistributedEngine engine(fat_tree(), deploy, config);
  const auto metrics = engine.run(6);
  const auto& d = engine.deployment();

  // Capacity, conflicts, and accounting must hold whatever the seed.
  for (const auto& node : fat_tree().nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    int used = 0;
    for (wl::VmId id : d.vms_on_host(node.id)) {
      EXPECT_EQ(d.vm(id).host, node.id);
      used += d.vm(id).capacity;
    }
    EXPECT_EQ(used, d.host_used_capacity(node.id));
    EXPECT_LE(used, d.host_capacity());
  }
  for (wl::VmId a = 0; a < d.vm_count(); ++a) {
    for (wl::VmId b : d.dependencies().neighbors(a)) {
      EXPECT_NE(d.vm(a).host, d.vm(b).host);
    }
  }
  for (const auto& m : metrics) {
    EXPECT_LE(m.migrations, m.migration_requests);
    EXPECT_GE(m.flow_satisfaction, 0.0);
    EXPECT_LE(m.flow_satisfaction, 1.0 + 1e-9);
    EXPECT_GT(m.flow_fairness, 0.0);
    EXPECT_LE(m.flow_fairness, 1.0 + 1e-9);
    EXPECT_GE(m.migration_seconds, 0.0);
    EXPECT_GE(m.migration_downtime_seconds, 0.0);
    EXPECT_LE(m.migration_downtime_seconds, m.migration_seconds + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperties, ::testing::Range(1, 9));

TEST(Engine, AlertedVmsMatchesThreshold) {
  core::DistributedEngine engine(fat_tree(), deployment_options(11), engine_config());
  engine.run(2);
  const core::AlertScheme scheme(engine.config().sheriff.vm_alert_threshold);
  for (wl::VmId id : engine.alerted_vms()) {
    EXPECT_LT(id, engine.deployment().vm_count());
  }
}
