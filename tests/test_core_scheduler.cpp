// Core scheduler tests: VMMIGRATION (Alg. 3), the centralized baseline,
// and the Sec. V-A k-median planner with its 3 + 2/p guarantee on real
// topologies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"
#include "core/centralized_manager.hpp"
#include "core/kmedian_planner.hpp"
#include "core/vm_migration.hpp"
#include "migration/cost_model.hpp"
#include "migration/request.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace mig = sheriff::mig;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace sc = sheriff::common;

namespace {

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::Deployment make_deployment(std::uint64_t seed = 42) {
  wl::DeploymentOptions options;
  options.seed = seed;
  return wl::Deployment(test_topology(), options);
}

}  // namespace

TEST(Scheduler, MigratesIntoGivenTargets) {
  auto d = make_deployment();
  mig::MigrationCostModel model(test_topology(), d);
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);

  const std::vector<wl::VmId> candidates{0, 1, 2};
  const std::vector<topo::NodeId> targets = test_topology().rack(5).hosts;
  const auto plan = scheduler.migrate(candidates, targets);

  EXPECT_GT(plan.moves.size(), 0u);
  EXPECT_GT(plan.search_space, 0u);
  for (const auto& move : plan.moves) {
    EXPECT_NE(std::find(targets.begin(), targets.end(), move.to), targets.end());
    EXPECT_EQ(d.vm(move.vm).host, move.to);
    EXPECT_GT(move.cost, 0.0);
  }
  EXPECT_NEAR(plan.total_cost,
              std::accumulate(plan.moves.begin(), plan.moves.end(), 0.0,
                              [](double acc, const auto& m) { return acc + m.cost; }),
              1e-9);
}

TEST(Scheduler, CapacityNeverViolatedUnderPressure) {
  auto d = make_deployment(7);
  mig::MigrationCostModel model(test_topology(), d);
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);

  // Push many VMs at a single small rack: most must be rejected/unplaced.
  std::vector<wl::VmId> candidates;
  for (wl::VmId id = 0; id < 40; ++id) candidates.push_back(id);
  const std::vector<topo::NodeId> targets = test_topology().rack(3).hosts;
  const auto plan = scheduler.migrate(candidates, targets);

  for (topo::NodeId h : targets) {
    EXPECT_LE(d.host_used_capacity(h), d.host_capacity());
  }
  EXPECT_EQ(plan.moves.size() + plan.unplaced.size(), 40u);
}

TEST(Scheduler, RecordsLiveMigrationTimelines) {
  auto d = make_deployment(31);
  mig::MigrationCostModel model(test_topology(), d);
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);
  const auto plan = scheduler.migrate({0, 1, 2}, test_topology().rack(7).hosts);
  ASSERT_GT(plan.moves.size(), 0u);
  double duration_sum = 0.0;
  double downtime_sum = 0.0;
  for (const auto& move : plan.moves) {
    EXPECT_GT(move.duration_seconds, 0.0);
    EXPECT_GE(move.downtime_seconds, 0.0);
    EXPECT_LT(move.downtime_seconds, move.duration_seconds);
    duration_sum += move.duration_seconds;
    downtime_sum += move.downtime_seconds;
  }
  EXPECT_NEAR(plan.total_duration_seconds, duration_sum, 1e-9);
  EXPECT_NEAR(plan.total_downtime_seconds, downtime_sum, 1e-9);
}

TEST(Scheduler, BottleneckBandwidthFeedsTimeline) {
  auto d = make_deployment(32);
  mig::MigrationCostModel model(test_topology(), d);
  // Idle network: the bottleneck equals min(request, host link) = 1 Gbps.
  const auto& vm = d.vm(0);
  topo::NodeId far = topo::kInvalidNode;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost &&
        node.rack != test_topology().node(vm.host).rack) {
      far = node.id;
      break;
    }
  }
  ASSERT_NE(far, topo::kInvalidNode);
  EXPECT_NEAR(model.path_bottleneck_bandwidth(0, far), 1.0, 1e-9);
  // Unreachable (same host) yields zero.
  EXPECT_DOUBLE_EQ(model.path_bottleneck_bandwidth(0, vm.host), 0.0);
}

TEST(Scheduler, EmptyInputsAreGraceful) {
  auto d = make_deployment();
  mig::MigrationCostModel model(test_topology(), d);
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);
  EXPECT_TRUE(scheduler.migrate({}, test_topology().rack(0).hosts).moves.empty());
  const auto plan = scheduler.migrate({0}, {});
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.unplaced.size(), 1u);
}

TEST(Scheduler, DeduplicatesCandidates) {
  auto d = make_deployment();
  mig::MigrationCostModel model(test_topology(), d);
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);
  const auto plan = scheduler.migrate({0, 0, 0}, test_topology().rack(5).hosts);
  std::size_t moves_of_zero = 0;
  for (const auto& m : plan.moves) moves_of_zero += m.vm == 0 ? 1 : 0;
  EXPECT_LE(moves_of_zero, 1u);
}

TEST(Scheduler, MatchingIsLocallyOptimalForSingleVm) {
  auto d = make_deployment(11);
  mig::MigrationCostModel model(test_topology(), d);
  // Cheapest feasible destination should be chosen for a single VM.
  const std::vector<topo::NodeId> targets = test_topology().rack(6).hosts;
  double best = std::numeric_limits<double>::infinity();
  for (topo::NodeId h : targets) {
    if (d.can_place(0, h)) best = std::min(best, model.total_cost(0, h));
  }
  mig::AdmissionBroker broker(d);
  core::VmMigrationScheduler scheduler(d, model, broker);
  const auto plan = scheduler.migrate({0}, targets);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_NEAR(plan.moves[0].cost, best, 1e-9);
}

TEST(Centralized, GlobalSearchCostsAtMostRegional) {
  // Same initial state (same seed): the centralized manager optimizes over
  // every host, so its matched cost per VM cannot exceed the regional
  // scheduler's for the same single VM.
  auto d_regional = make_deployment(21);
  auto d_global = make_deployment(21);
  mig::MigrationCostModel model_r(test_topology(), d_regional);
  mig::MigrationCostModel model_g(test_topology(), d_global);

  const std::vector<wl::VmId> alerted{0, 5, 9};

  mig::AdmissionBroker broker(d_regional);
  core::VmMigrationScheduler regional(d_regional, model_r, broker);
  // Regional region: one rack's hosts only.
  const auto regional_plan =
      regional.migrate(alerted, test_topology().rack(2).hosts);

  core::CentralizedManager manager(d_global, model_g);
  const auto global_plan = manager.migrate(alerted);

  ASSERT_EQ(global_plan.moves.size(), alerted.size());
  if (regional_plan.moves.size() == alerted.size()) {
    EXPECT_LE(global_plan.total_cost, regional_plan.total_cost + 1e-9);
  }
  EXPECT_GT(global_plan.search_space, regional_plan.search_space);
}

TEST(KMedianPlanner, DijkstraAndFloydWarshallAgree) {
  const core::KMedianPlanner fast(test_topology(), /*use_floyd_warshall=*/false);
  const core::KMedianPlanner exact(test_topology(), /*use_floyd_warshall=*/true);
  const auto n = test_topology().rack_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(fast.rack_distances().at(i, j), exact.rack_distances().at(i, j), 1e-6);
    }
  }
}

TEST(KMedianPlanner, DistancesFormAMetric) {
  const core::KMedianPlanner planner(test_topology());
  const auto& m = planner.rack_distances();
  EXPECT_TRUE(m.all_finite());
  EXPECT_NEAR(m.max_triangle_violation(), 0.0, 1e-9);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_NEAR(m.at(i, j), m.at(j, i), 1e-9);  // symmetric
      if (i != j) {
        EXPECT_GT(m.at(i, j), 0.0);
      }
    }
  }
}

class PlannerRatio : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlannerRatio, LocalSearchWithinBoundOnFatTree) {
  const std::size_t p = GetParam();
  const core::KMedianPlanner planner(test_topology());
  std::vector<topo::RackId> sources;
  for (topo::RackId r = 0; r < test_topology().rack_count(); r += 2) sources.push_back(r);
  const std::size_t k = 3;
  const auto approx = planner.plan(sources, k, p);
  const auto exact = planner.plan_exact(sources, k);
  ASSERT_GT(exact.connection_cost, 0.0);
  const double bound = 3.0 + 2.0 / static_cast<double>(p);
  EXPECT_LE(approx.connection_cost, bound * exact.connection_cost + 1e-9);
  EXPECT_GE(approx.connection_cost, exact.connection_cost - 1e-9);
  EXPECT_EQ(approx.destinations.size(), k);
}

INSTANTIATE_TEST_SUITE_P(SwapSizes, PlannerRatio, ::testing::Values(1u, 2u, 3u));

TEST(KMedianManager, MigratesIntoChosenRacks) {
  auto d = make_deployment(41);
  mig::MigrationCostModel model(test_topology(), d);
  const core::KMedianPlanner planner(test_topology());
  core::KMedianMigrationManager::Options options;
  options.destination_racks = 3;
  core::KMedianMigrationManager manager(d, model, planner, options);

  const std::vector<wl::VmId> alerted{0, 4, 8, 12};
  const auto plan = manager.migrate(alerted);
  EXPECT_EQ(manager.last_destinations().size(), 3u);
  EXPECT_GT(plan.search_space, 0u);
  for (const auto& move : plan.moves) {
    const topo::RackId dest_rack = test_topology().node(move.to).rack;
    EXPECT_NE(std::find(manager.last_destinations().begin(),
                        manager.last_destinations().end(), dest_rack),
              manager.last_destinations().end());
  }
}

TEST(KMedianManager, EmptyAlertSetIsNoOp) {
  auto d = make_deployment(42);
  mig::MigrationCostModel model(test_topology(), d);
  const core::KMedianPlanner planner(test_topology());
  core::KMedianMigrationManager manager(d, model, planner);
  const auto plan = manager.migrate({});
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_TRUE(manager.last_destinations().empty());
}

TEST(KMedianManager, SearchesLessThanGlobalMatching) {
  auto d_kmedian = make_deployment(43);
  auto d_global = make_deployment(43);
  mig::MigrationCostModel model_k(test_topology(), d_kmedian);
  mig::MigrationCostModel model_g(test_topology(), d_global);
  const core::KMedianPlanner planner(test_topology());

  std::vector<wl::VmId> alerted;
  for (wl::VmId id = 0; id < 12; ++id) alerted.push_back(id);

  core::KMedianMigrationManager::Options options;
  options.destination_racks = 2;
  core::KMedianMigrationManager manager(d_kmedian, model_k, planner, options);
  const auto kmedian_plan = manager.migrate(alerted);

  core::CentralizedManager global(d_global, model_g);
  const auto global_plan = global.migrate(alerted);

  EXPECT_LT(kmedian_plan.search_space, global_plan.search_space);
  if (!global_plan.moves.empty() && kmedian_plan.moves.size() == global_plan.moves.size()) {
    EXPECT_GE(kmedian_plan.total_cost, global_plan.total_cost - 1e-9);
  }
}

TEST(KMedianPlanner, WorksOnBCube) {
  topo::BCubeOptions options;
  options.ports = 4;
  options.levels = 1;
  const auto t = topo::build_bcube(options);
  const core::KMedianPlanner planner(t);
  EXPECT_TRUE(planner.rack_distances().all_finite());
  const auto plan = planner.plan({0, 1, 2}, 2, 1);
  EXPECT_EQ(plan.destinations.size(), 2u);
  EXPECT_GE(plan.connection_cost, 0.0);
}
